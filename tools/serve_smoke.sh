#!/usr/bin/env bash
# End-to-end smoke test for the `serve` subcommand, run by ctest
# (label: serve).
#
#   serve_smoke.sh <inf2vec_cli>
#
# Generates a tiny synthetic world, trains a small model, starts the HTTP
# serving endpoint on an ephemeral port, and exercises every endpoint the
# service exposes: /score and /topk (including the error path), the
# POST /score batch body with its GET-alias equivalence, a raw-socket
# keep-alive leg proving two pipelined requests share one connection but
# get distinct X-Request-Ids, /modelz
# metadata, /healthz, /metrics with a query string attached (the
# query-string regression an earlier PR fixed), plus the request-level
# observability plane: X-Request-Id echo, the /rpcz per-endpoint stats,
# the /tracez slow-query capture with per-phase attribution, and the
# --access-log wide-event JSONL (validated with check_access_log.py), and
# the memory plane: /memz byte accounting (validated with check_memz.py)
# plus the /heapz sampling heap profiler's start/stop lifecycle.
# JSON payloads are validated with python3, then the server is shut down
# via SIGTERM and must exit 0.
set -euo pipefail

CLI="$1"
WORKDIR="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [[ -n "${SERVER_PID}" ]] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill "${SERVER_PID}" 2>/dev/null || true
    wait "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORKDIR}"
}
trap cleanup EXIT

"${CLI}" generate --profile digg --out "${WORKDIR}" \
    --users 200 --items 25 --seed 7

"${CLI}" train \
    --graph "${WORKDIR}/graph.tsv" --actions "${WORKDIR}/actions.tsv" \
    --model "${WORKDIR}/model.bin" --dim 8 --epochs 1 2> /dev/null

# --max-seconds caps the server's lifetime so a wedged test cannot leak a
# process past the ctest timeout; the SIGTERM below is the normal exit.
"${CLI}" serve --model "${WORKDIR}/model.bin" --port 0 --max-seconds 120 \
    --serve-threads 3 --max-inflight 64 \
    --access-log "${WORKDIR}/access.jsonl" \
    > "${WORKDIR}/serve.log" 2>&1 &
SERVER_PID=$!

# The CLI prints "serving on http://127.0.0.1:PORT (...)" once the socket
# is bound; poll for it (up to ~5s) and pull the ephemeral port out.
PORT=""
for _ in $(seq 1 100); do
  PORT="$(grep -oE 'serving on http://127\.0\.0\.1:[0-9]+' \
      "${WORKDIR}/serve.log" 2>/dev/null | grep -oE '[0-9]+$' || true)"
  [[ -n "${PORT}" ]] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "serve_smoke: FAIL: server exited before binding" >&2
    cat "${WORKDIR}/serve.log" >&2
    exit 1
  fi
  sleep 0.05
done
if [[ -z "${PORT}" ]]; then
  echo "serve_smoke: FAIL: server never reported its port" >&2
  cat "${WORKDIR}/serve.log" >&2
  exit 1
fi
BASE="http://127.0.0.1:${PORT}"

# fetch <url> <expected_http_code> <body_out>
fetch() {
  local code
  code="$(curl -s -o "$3" -w '%{http_code}' --max-time 10 "$1")"
  if [[ "${code}" != "$2" ]]; then
    echo "serve_smoke: FAIL: GET $1 returned HTTP ${code}, want $2" >&2
    cat "$3" >&2
    exit 1
  fi
}

fetch "${BASE}/healthz" 200 "${WORKDIR}/healthz"
grep -q "ok" "${WORKDIR}/healthz"

fetch "${BASE}/modelz" 200 "${WORKDIR}/modelz.json"
python3 - "${WORKDIR}/modelz.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["num_users"] == 200, doc["num_users"]
assert doc["dim"] == 8, doc["dim"]
assert doc["model"]["format_version"] == 2, doc["model"]
assert "aggregation" in doc and "seed_cache" in doc and "serving" in doc
EOF

fetch "${BASE}/score?candidate=1&seeds=2,3" 200 "${WORKDIR}/score.json"
python3 - "${WORKDIR}/score.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["candidate"] == 1
assert isinstance(doc["score"], float)
EOF

fetch "${BASE}/topk?seeds=2,3&k=5" 200 "${WORKDIR}/topk.json"
python3 - "${WORKDIR}/topk.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["k"] == 5 and len(doc["results"]) == 5
assert doc["scanned"] == 198, doc["scanned"]  # 200 users minus 2 seeds.
scores = [r["score"] for r in doc["results"]]
assert scores == sorted(scores, reverse=True), scores
EOF

# Graceful errors: unknown users are 404s with a structured JSON body.
fetch "${BASE}/score?candidate=999999&seeds=2" 404 "${WORKDIR}/err.json"
python3 - "${WORKDIR}/err.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["code"] == "NOT_FOUND", doc
assert "error" in doc, doc
EOF

# post <url> <json_body> <expected_http_code> <body_out>
post() {
  local code
  code="$(curl -s -o "$4" -w '%{http_code}' --max-time 10 -X POST \
      -H 'Content-Type: application/json' --data "$2" "$1")"
  if [[ "${code}" != "$3" ]]; then
    echo "serve_smoke: FAIL: POST $1 returned HTTP ${code}, want $3" >&2
    cat "$4" >&2
    exit 1
  fi
}

# Method-aware routing + POST bodies: a JSON batch through POST /score
# must score row 0 exactly like the GET single-query alias above.
post "${BASE}/score" \
    '{"queries": [{"candidate": 1, "seeds": [2, 3]},
                  {"candidate": 4, "seeds": [2, 3]}]}' \
    200 "${WORKDIR}/batch.json"
python3 - "${WORKDIR}/batch.json" "${WORKDIR}/score.json" <<'EOF'
import json, sys
batch = json.load(open(sys.argv[1]))
single = json.load(open(sys.argv[2]))
assert batch["count"] == 2, batch
assert len(batch["results"]) == 2, batch
assert batch["results"][0]["candidate"] == 1, batch
assert batch["results"][0]["score"] == single["score"], (batch, single)
EOF

# A malformed batch body is a typed 400, not a silent hang or a 200.
post "${BASE}/score" '{"queries": 7}' 400 "${WORKDIR}/badbatch.json"
python3 - "${WORKDIR}/badbatch.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["code"] == "INVALID_ARGUMENT", doc
EOF

# An unrouted method is a 405 naming the allowed methods.
post "${BASE}/topk" '{}' 405 "${WORKDIR}/405.json"
python3 - "${WORKDIR}/405.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["code"] == "METHOD_NOT_ALLOWED", doc
EOF

# Keep-alive leg over a raw socket: two pipelined requests must come back
# in order on the SAME connection, each with its own X-Request-Id.
python3 - "${PORT}" <<'EOF'
import socket, sys
port = int(sys.argv[1])
s = socket.create_connection(("127.0.0.1", port), timeout=10)
req = b"GET /score?candidate=1&seeds=2,3 HTTP/1.1\r\nHost: smoke\r\n\r\n"
s.sendall(req + req)  # Pipelined: both written before any read.
buf = b""
def read_response():
    global buf
    while b"\r\n\r\n" not in buf:
        chunk = s.recv(4096)
        assert chunk, "server closed a keep-alive connection early"
        buf += chunk
    head, rest = buf.split(b"\r\n\r\n", 1)
    lines = head.decode().split("\r\n")
    status = int(lines[0].split()[1])
    clen, rid = 0, ""
    for line in lines[1:]:
        name, _, value = line.partition(": ")
        if name.lower() == "content-length":
            clen = int(value)
        elif name.lower() == "x-request-id":
            rid = value
    while len(rest) < clen:
        chunk = s.recv(4096)
        assert chunk, "server closed mid-body"
        rest += chunk
    buf = rest[clen:]
    return status, rid
first = read_response()
second = read_response()
s.close()
assert first[0] == 200 and second[0] == 200, (first, second)
assert first[1] and second[1], (first, second)
assert first[1] != second[1], "request ids must be per-request, not per-conn"
EOF

# Query strings must be stripped before dispatch: a load balancer probing
# /metrics?foo=1 gets the metrics page, not a 404.
fetch "${BASE}/metrics?foo=1" 200 "${WORKDIR}/metrics.txt"
grep -q "inf2vec_serve_score_requests_total" "${WORKDIR}/metrics.txt"
grep -q "inf2vec_serve_topk_requests_total" "${WORKDIR}/metrics.txt"

# Zero-downtime hot swap: /reloadz reloads the model file in place and
# bumps the serving generation; subsequent responses carry the new stamp.
fetch "${BASE}/reloadz" 200 "${WORKDIR}/reloadz.json"
python3 - "${WORKDIR}/reloadz.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["status"] == "reloaded", doc
assert doc["generation"] == 2, doc
EOF
fetch "${BASE}/score?candidate=1&seeds=2,3" 200 "${WORKDIR}/score2.json"
python3 - "${WORKDIR}/score2.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["generation"] == 2, doc
EOF

# Request-id propagation: an inbound X-Request-Id must come back on the
# response and appear verbatim in the access log below.
curl -s -D "${WORKDIR}/rid_headers" -o "${WORKDIR}/rid.json" \
    --max-time 10 -H "X-Request-Id: smoke-rid-42" \
    "${BASE}/topk?seeds=2,3&k=3"
if ! grep -qi "^x-request-id: smoke-rid-42" "${WORKDIR}/rid_headers"; then
  echo "serve_smoke: FAIL: X-Request-Id not echoed" >&2
  cat "${WORKDIR}/rid_headers" >&2
  exit 1
fi

# /rpcz: per-endpoint live stats — request counts, rate, and latency
# percentiles for the endpoints exercised above.
fetch "${BASE}/rpcz" 200 "${WORKDIR}/rpcz.json"
python3 - "${WORKDIR}/rpcz.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["uptime_sec"] > 0, doc
endpoints = doc["endpoints"]
for path in ("/score", "/topk"):
    row = endpoints[path]
    assert row["requests"] >= 1, (path, row)
    assert row["rate_per_sec"] > 0, (path, row)
    assert row["p50_us"] >= 0 and row["p99_us"] >= row["p50_us"], (path, row)
    assert row["in_flight"] >= 0, (path, row)
# The bad-user /score above must have been counted as an error.
assert endpoints["/score"]["errors"] >= 1, endpoints["/score"]
EOF

# /tracez: the slow-query capture must retain at least one fully
# phase-attributed /topk trace (parse -> seed_gather -> kernel_scan ->
# merge -> serialize) stamped with the request-level attributes.
fetch "${BASE}/tracez" 200 "${WORKDIR}/tracez.json"
python3 - "${WORKDIR}/tracez.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["slowest"], "slow buffer is empty"
topk = [t for t in doc["slowest"] + doc["recent"]
        if t["endpoint"] == "/topk" and t["status"] == 200]
assert topk, "no /topk trace retained"
best = max(topk, key=lambda t: len(t["phases"]))
for phase in ("parse", "kernel_scan", "serialize"):
    assert phase in best["phases"], (phase, best["phases"])
assert best["total_us"] >= best["phases"]["kernel_scan"], best
assert best["request_id"], best
assert "kernel_isa" in best["attrs"], best["attrs"]
assert "seed_count" in best["attrs"], best["attrs"]
assert len(best["spans"]) >= 4, best["spans"]
EOF

# The labeled per-endpoint Prometheus series must be on /metrics too.
fetch "${BASE}/metrics" 200 "${WORKDIR}/metrics2.txt"
grep -q 'inf2vec_http_requests_total{endpoint="/topk"}' \
    "${WORKDIR}/metrics2.txt"
grep -q 'inf2vec_http_latency_us_bucket{endpoint="/topk"' \
    "${WORKDIR}/metrics2.txt"

# /memz: the byte-accounting plane. The serving tables and the seed cache
# (warmed by the queries above) must be accounted, and the payload must
# pass the full schema validator.
fetch "${BASE}/memz" 200 "${WORKDIR}/memz.json"
python3 "$(dirname "$0")/check_memz.py" "${WORKDIR}/memz.json" \
    --expect-gauge serve.embedding_table --expect-gauge serve.seed_cache
# The accounted gauges are exported as Prometheus series too.
grep -q 'inf2vec_mem_serve_embedding_table_bytes' "${WORKDIR}/metrics2.txt"

# /heapz: idle -> status JSON; ?period starts sampling; traffic then
# yields folded stacks; ?stop=1 stops. The running profiler must also be
# visible in /memz's heap_profiler block.
fetch "${BASE}/heapz" 200 "${WORKDIR}/heapz_idle.json"
python3 - "${WORKDIR}/heapz_idle.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["status"] == "idle", doc
assert doc["running"] is False, doc
EOF
fetch "${BASE}/heapz?period=65536" 200 "${WORKDIR}/heapz_start.json"
python3 - "${WORKDIR}/heapz_start.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["status"] == "started", doc
assert doc["sample_period_bytes"] == 65536, doc
EOF
# Drive allocations through the request path so the profiler has samples.
for i in 4 5 6 7; do
  fetch "${BASE}/topk?seeds=${i},$((i+10))&k=5" 200 "${WORKDIR}/warm.json"
done
fetch "${BASE}/memz" 200 "${WORKDIR}/memz2.json"
python3 - "${WORKDIR}/memz2.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["heap_profiler"]["running"] is True, doc["heap_profiler"]
EOF
fetch "${BASE}/heapz?stop=1" 200 "${WORKDIR}/heapz_stop.json"
python3 - "${WORKDIR}/heapz_stop.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["status"] == "stopped", doc
EOF

kill -TERM "${SERVER_PID}"
wait "${SERVER_PID}"
SERVER_PID=""

# The access log: every request above produced one wide event; validate
# the schema and the propagation of the custom request id.
python3 "$(dirname "$0")/check_access_log.py" "${WORKDIR}/access.jsonl" \
    --min-lines 5 --expect-endpoint /topk --expect-phase kernel_scan \
    --expect-request-id smoke-rid-42

echo "serve_smoke: OK"
