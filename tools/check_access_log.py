#!/usr/bin/env python3
"""Schema validator for `serve --access-log` wide-event JSONL files.

Usage: check_access_log.py LOG.jsonl [--min-lines N]
                           [--expect-endpoint /topk] [--expect-phase parse]
                           [--expect-request-id ID]

Each line must be one JSON object with the wide-event schema documented in
docs/OBSERVABILITY.md: request identity (request_id, method, endpoint),
outcome (status, response_bytes), timing (start_unix_us, total_us), the
per-phase duration breakdown (phases), and the root-span attributes
(attrs). Exits 0 when every line validates, 1 with a diagnostic otherwise.
Kept dependency-free (stdlib json only) so it runs in any CI image.

`--self-test` exercises the validator against embedded good/bad fixtures
and is wired up as the `access_log_schema_self_test` ctest entry.
"""

import argparse
import json
import sys
import tempfile

REQUIRED_KEYS = (
    "request_id", "method", "endpoint", "status", "start_unix_us",
    "total_us", "response_bytes", "phases", "attrs",
)


class SchemaError(Exception):
    pass


def require(cond, message):
    if not cond:
        raise SchemaError(message)


def check_nonneg_int(obj, key, where):
    require(key in obj, f"{where}: missing key '{key}'")
    require(isinstance(obj[key], int) and not isinstance(obj[key], bool),
            f"{where}: '{key}' must be an integer, "
            f"got {type(obj[key]).__name__}")
    require(obj[key] >= 0, f"{where}: '{key}'={obj[key]} is negative")


def check_event(event, where):
    require(isinstance(event, dict), f"{where}: must be a JSON object")
    for key in REQUIRED_KEYS:
        require(key in event, f"{where}: missing key '{key}'")
    require(isinstance(event["request_id"], str) and event["request_id"],
            f"{where}: request_id must be a non-empty string")
    require(isinstance(event["method"], str) and event["method"],
            f"{where}: method must be a non-empty string")
    require(isinstance(event["endpoint"], str)
            and event["endpoint"].startswith("/"),
            f"{where}: endpoint must be a path starting with '/'")
    check_nonneg_int(event, "status", where)
    require(100 <= event["status"] <= 599,
            f"{where}: status={event['status']} is not an HTTP status")
    for key in ("start_unix_us", "total_us", "response_bytes"):
        check_nonneg_int(event, key, where)
    phases = event["phases"]
    require(isinstance(phases, dict), f"{where}: phases must be an object")
    for name in phases:
        check_nonneg_int(phases, name, f"{where}: phases")
        # Phases are children of the request envelope; a phase longer than
        # the request means the rebase or the clock went wrong.
        require(phases[name] <= event["total_us"] + 1000,
                f"{where}: phase '{name}'={phases[name]}us exceeds "
                f"total_us={event['total_us']}")
    attrs = event["attrs"]
    require(isinstance(attrs, dict), f"{where}: attrs must be an object")
    for name, value in attrs.items():
        require(isinstance(value, str),
                f"{where}: attrs['{name}'] must be a string")


def check_log(path, args):
    events = []
    with open(path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            where = f"line {lineno}"
            try:
                event = json.loads(line)
            except json.JSONDecodeError as e:
                raise SchemaError(f"{where}: not valid JSON: {e}") from e
            check_event(event, where)
            events.append(event)
    require(len(events) >= args.min_lines,
            f"expected at least {args.min_lines} events, got {len(events)}")
    if args.expect_endpoint:
        require(any(e["endpoint"] == args.expect_endpoint for e in events),
                f"no event for endpoint '{args.expect_endpoint}'")
    if args.expect_phase:
        require(any(args.expect_phase in e["phases"] for e in events),
                f"no event carries phase '{args.expect_phase}'")
    if args.expect_request_id:
        require(any(e["request_id"] == args.expect_request_id
                    for e in events),
                f"no event with request_id '{args.expect_request_id}'")
    return len(events)


GOOD_LINE = json.dumps({
    "request_id": "f00dcafe-00000001", "method": "GET", "endpoint": "/topk",
    "status": 200, "start_unix_us": 1700000000000000, "total_us": 1234,
    "response_bytes": 512,
    "phases": {"parse": 10, "seed_gather": 200, "kernel_scan": 900,
               "merge": 40, "serialize": 30},
    "attrs": {"seed_count": "3", "kernel_isa": "avx2", "quant_mode": "none"},
})

BAD_LINES = [
    # Missing request_id.
    GOOD_LINE.replace('"request_id": "f00dcafe-00000001", ', ""),
    # Status out of range.
    GOOD_LINE.replace('"status": 200', '"status": 777'),
    # Phase longer than the request.
    GOOD_LINE.replace('"kernel_scan": 900', '"kernel_scan": 99999999'),
    # Not JSON at all.
    "this is not json",
]


def self_test():
    default = argparse.Namespace(min_lines=1, expect_endpoint="/topk",
                                 expect_phase="kernel_scan",
                                 expect_request_id="f00dcafe-00000001")
    with tempfile.NamedTemporaryFile("w", suffix=".jsonl") as f:
        f.write(GOOD_LINE + "\n" + GOOD_LINE + "\n")
        f.flush()
        check_log(f.name, default)
    for i, bad in enumerate(BAD_LINES):
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl") as f:
            f.write(bad + "\n")
            f.flush()
            try:
                check_log(f.name, argparse.Namespace(
                    min_lines=1, expect_endpoint=None, expect_phase=None,
                    expect_request_id=None))
            except SchemaError:
                continue
            print(f"check_access_log: FAIL: bad fixture {i} passed",
                  file=sys.stderr)
            return 1
    print("check_access_log: self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("log", nargs="?",
                        help="path to a --access-log JSONL file")
    parser.add_argument("--min-lines", type=int, default=1,
                        help="minimum number of events required (default 1)")
    parser.add_argument("--expect-endpoint",
                        help="require at least one event for this endpoint")
    parser.add_argument("--expect-phase",
                        help="require at least one event carrying this phase")
    parser.add_argument("--expect-request-id",
                        help="require an event with this exact request id")
    parser.add_argument("--self-test", action="store_true",
                        help="validate embedded fixtures and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.log:
        parser.error("LOG.jsonl is required unless --self-test")
    try:
        count = check_log(args.log, args)
    except (OSError, SchemaError) as e:
        print(f"check_access_log: FAIL: {e}", file=sys.stderr)
        return 1
    print(f"check_access_log: OK ({count} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
