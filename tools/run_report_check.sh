#!/usr/bin/env bash
# End-to-end observability check, run by ctest (label: obs).
#
#   run_report_check.sh <inf2vec_cli> <check_run_report.py> \
#                       <check_snapshot.py>
#
# Generates a tiny synthetic world, runs one train+eval with --metrics-out,
# --trace-out, and --metrics-snapshot-out, and schema-validates all three
# artifacts. Also checks that without --serve-port the CLI never starts the
# stats server.
set -euo pipefail

CLI="$1"
CHECKER="$2"
SNAPSHOT_CHECKER="$3"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT

"${CLI}" generate --profile digg --out "${WORKDIR}" \
    --users 200 --items 25 --seed 7

"${CLI}" train \
    --graph "${WORKDIR}/graph.tsv" --actions "${WORKDIR}/actions.tsv" \
    --model "${WORKDIR}/model.bin" \
    --epochs 3 --threads 2 --eval-task activation --progress \
    --metrics-out "${WORKDIR}/report.json" \
    --trace-out "${WORKDIR}/trace.json" \
    --profile-out "${WORKDIR}/profile.folded" \
    --heap-profile-out "${WORKDIR}/heap.folded" \
    --heap-profile-period 65536 \
    --metrics-snapshot-out "${WORKDIR}/snapshots.jsonl" \
    --metrics-snapshot-interval-ms 50 2> "${WORKDIR}/train.log"
cat "${WORKDIR}/train.log" >&2

# --profile-out must produce the folded-stack artifact (possibly empty on
# a run too short to be sampled) and a profile section in the report.
if [[ ! -f "${WORKDIR}/profile.folded" ]]; then
  echo "run_report_check: FAIL: --profile-out wrote no file" >&2
  exit 1
fi

# --heap-profile-out likewise: the folded live-heap artifact (possibly
# empty when everything sampled was freed by exit) plus a report section
# whose cumulative counters are validated below via --expect-heap-profile.
if [[ ! -f "${WORKDIR}/heap.folded" ]]; then
  echo "run_report_check: FAIL: --heap-profile-out wrote no file" >&2
  exit 1
fi

# The stats server is strictly opt-in: no --serve-port, no socket.
if grep -q "stats server" "${WORKDIR}/train.log"; then
  echo "run_report_check: FAIL: stats server started without --serve-port" >&2
  exit 1
fi

python3 "${CHECKER}" "${WORKDIR}/report.json" \
    --command train --expect-epochs 3 --expect-eval \
    --expect-environment --expect-profile --expect-memory \
    --expect-heap-profile \
    --trace "${WORKDIR}/trace.json"

# The snapshot series must parse, count up from seq 0, and contain at
# least the final flushed-on-stop line.
python3 "${SNAPSHOT_CHECKER}" "${WORKDIR}/snapshots.jsonl" --min-lines 1

# The standalone evaluate command must also produce a schema-valid report.
"${CLI}" evaluate \
    --graph "${WORKDIR}/graph.tsv" --actions "${WORKDIR}/actions.tsv" \
    --model "${WORKDIR}/model.bin" --task activation \
    --metrics-out "${WORKDIR}/eval_report.json" > /dev/null

python3 "${CHECKER}" "${WORKDIR}/eval_report.json" \
    --command evaluate --expect-epochs 0 --expect-eval
