#!/usr/bin/env bash
# End-to-end observability check, run by ctest (label: obs).
#
#   run_report_check.sh <inf2vec_cli> <check_run_report.py>
#
# Generates a tiny synthetic world, runs one train+eval with --metrics-out
# and --trace-out, and schema-validates both artifacts.
set -euo pipefail

CLI="$1"
CHECKER="$2"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT

"${CLI}" generate --profile digg --out "${WORKDIR}" \
    --users 200 --items 25 --seed 7

"${CLI}" train \
    --graph "${WORKDIR}/graph.tsv" --actions "${WORKDIR}/actions.tsv" \
    --model "${WORKDIR}/model.bin" \
    --epochs 3 --threads 2 --eval-task activation --progress \
    --metrics-out "${WORKDIR}/report.json" \
    --trace-out "${WORKDIR}/trace.json"

python3 "${CHECKER}" "${WORKDIR}/report.json" \
    --command train --expect-epochs 3 --expect-eval \
    --trace "${WORKDIR}/trace.json"

# The standalone evaluate command must also produce a schema-valid report.
"${CLI}" evaluate \
    --graph "${WORKDIR}/graph.tsv" --actions "${WORKDIR}/actions.tsv" \
    --model "${WORKDIR}/model.bin" --task activation \
    --metrics-out "${WORKDIR}/eval_report.json" > /dev/null

python3 "${CHECKER}" "${WORKDIR}/eval_report.json" \
    --command evaluate --expect-epochs 0 --expect-eval
