#!/usr/bin/env bash
# Forced-scalar kernel-suite check: configures a scratch build with the
# AVX2 backend compiled OUT (-DINF2VEC_ENABLE_AVX2=OFF), so runtime
# dispatch can only ever select the scalar reference, then runs the
# `kernels`-labeled ctest suite. scalar_reference_test pins that build
# to the pre-kernel-layer bits, so this is the regression check that the
# fallback path stays both alive and bit-identical.
#
# Usage: tools/scalar_kernel_check.sh [build-dir] [sanitizer]
#   build-dir  scratch build directory (default: build-scalar)
#   sanitizer  '', 'address', or 'thread' — forwarded to INF2VEC_SANITIZE
#              to run the suite sanitized as well
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-scalar}"
SANITIZE="${2:-}"

cmake -S . -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=Release \
  -DINF2VEC_ENABLE_AVX2=OFF -DINF2VEC_SANITIZE="${SANITIZE}" >/dev/null
cmake --build "${BUILD_DIR}" \
  --target kernels_test scalar_reference_test quantized_store_test \
  bench_kernels \
  -j "$(nproc)"
ctest --test-dir "${BUILD_DIR}" -L kernels --output-on-failure
