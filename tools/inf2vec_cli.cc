// inf2vec_cli: train, inspect, and evaluate social influence embeddings
// from the command line. See `inf2vec_cli` with no arguments for usage.

#include "cli_commands.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace inf2vec;  // NOLINT: thin entry point.
  Result<FlagParser> flags = FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    INF2VEC_LOG(Error) << flags.status().ToString();
    return 2;
  }
  const Status status = cli::Dispatch(flags.value());
  if (!status.ok()) {
    INF2VEC_LOG(Error) << status.ToString();
    return 1;
  }
  return 0;
}
