// inf2vec_cli: train, inspect, and evaluate social influence embeddings
// from the command line. See `inf2vec_cli` with no arguments for usage.

#include <cstdio>

#include "cli_commands.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace inf2vec;  // NOLINT: thin entry point.
  Result<FlagParser> flags = FlagParser::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n", flags.status().ToString().c_str());
    return 2;
  }
  const Status status = cli::Dispatch(flags.value());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
