#!/usr/bin/env bash
# Bench-regression gate over the unified BENCH_*.json schema.
#
#   bench_gate.sh BASELINE.json CANDIDATE.json [THRESHOLD_PCT]
#       Diffs candidate against baseline with bench_compare.py; exits
#       nonzero when any row regresses by more than THRESHOLD_PCT
#       (default 5).
#
#   bench_gate.sh --self-test
#       Proves the gate trips: synthesizes a baseline, checks that an
#       identical candidate passes (exit 0) and that a candidate with an
#       injected >=5% regression fails (exit nonzero). Run by ctest
#       (label: bench_gate).
set -euo pipefail

TOOLS_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
COMPARE="${TOOLS_DIR}/bench_compare.py"

if [[ "${1:-}" == "--self-test" ]]; then
  WORKDIR="$(mktemp -d)"
  trap 'rm -rf "${WORKDIR}"' EXIT

  cat > "${WORKDIR}/baseline.json" <<'EOF'
{
  "schema_version": 1,
  "bench": "self_test",
  "config": {"epochs": 4},
  "results": [
    {"name": "sgd", "wall_ms": 1000.0, "throughput": 50000.0,
     "repetitions": 4},
    {"name": "corpus", "wall_ms": 400.0, "repetitions": 1}
  ]
}
EOF

  # Identical files must pass.
  if ! python3 "${COMPARE}" "${WORKDIR}/baseline.json" \
      "${WORKDIR}/baseline.json" --threshold 5; then
    echo "bench_gate self-test: FAIL (identical files rejected)" >&2
    exit 1
  fi

  # A 10% throughput drop plus a 10% wall_ms increase must fail.
  sed -e 's/50000\.0/45000.0/' -e 's/"wall_ms": 400\.0/"wall_ms": 440.0/' \
      "${WORKDIR}/baseline.json" > "${WORKDIR}/regressed.json"
  if python3 "${COMPARE}" "${WORKDIR}/baseline.json" \
      "${WORKDIR}/regressed.json" --threshold 5; then
    echo "bench_gate self-test: FAIL (injected regression passed)" >&2
    exit 1
  fi

  echo "bench_gate self-test: OK (pass path and fail path both verified)"
  exit 0
fi

if [[ $# -lt 2 ]]; then
  echo "usage: bench_gate.sh BASELINE.json CANDIDATE.json [THRESHOLD_PCT]" >&2
  echo "       bench_gate.sh --self-test" >&2
  exit 2
fi

exec python3 "${COMPARE}" "$1" "$2" --threshold "${3:-5}"
