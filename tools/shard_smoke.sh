#!/usr/bin/env bash
# End-to-end smoke test for range-sharded serving, run by ctest
# (label: shard).
#
#   shard_smoke.sh <inf2vec_cli>
#
# Generates a tiny synthetic world, trains a small model, splits it into
# 3 shard artifacts with `shard-split`, serves each slice with
# `serve --shard`, fronts them with `serve --coordinator`, and proves the
# coordinator's scatter-gather /topk and routed /score are BIT-IDENTICAL
# to a single-node `serve` of the whole model. Then SIGKILLs one shard
# and asserts the degradation contract: /topk over live-shard seeds
# answers HTTP 206 with degraded:true + shards_missing, a seed owned by
# the dead shard answers 503 SHARDS_UNAVAILABLE with a Retry-After hint,
# and the coordinator's /metrics shows the shard_errors/degraded
# counters moving. Everything is killed by saved PID (never by pattern)
# and --max-seconds bounds every server's lifetime.
set -euo pipefail

CLI="$1"
WORKDIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    if [[ -n "${pid}" ]] && kill -0 "${pid}" 2>/dev/null; then
      kill "${pid}" 2>/dev/null || true
      wait "${pid}" 2>/dev/null || true
    fi
  done
  rm -rf "${WORKDIR}"
}
trap cleanup EXIT

"${CLI}" generate --profile digg --out "${WORKDIR}" \
    --users 200 --items 25 --seed 7

"${CLI}" train \
    --graph "${WORKDIR}/graph.tsv" --actions "${WORKDIR}/actions.tsv" \
    --model "${WORKDIR}/model.bin" --dim 8 --epochs 1 2> /dev/null

# 200 users / 3 shards tiles as [0,67) [67,134) [134,200).
mkdir -p "${WORKDIR}/shards"
"${CLI}" shard-split --model "${WORKDIR}/model.bin" \
    --out-dir "${WORKDIR}/shards" --shards 3
for i in 0 1 2; do
  [[ -f "${WORKDIR}/shards/shard-${i}-of-3.i2v" ]] || {
    echo "shard_smoke: FAIL: shard-split did not write shard ${i}" >&2
    exit 1
  }
done

# wait_port <logfile> <pid> -> echoes the bound port
wait_port() {
  local port=""
  for _ in $(seq 1 200); do
    port="$(grep -oE 'serving on http://127\.0\.0\.1:[0-9]+' "$1" \
        2>/dev/null | grep -oE '[0-9]+$' || true)"
    [[ -n "${port}" ]] && break
    if ! kill -0 "$2" 2>/dev/null; then
      echo "shard_smoke: FAIL: server exited before binding ($1)" >&2
      cat "$1" >&2
      exit 1
    fi
    sleep 0.05
  done
  if [[ -z "${port}" ]]; then
    echo "shard_smoke: FAIL: server never reported its port ($1)" >&2
    cat "$1" >&2
    exit 1
  fi
  echo "${port}"
}

# Start the three shard servers; remember each PID for the SIGKILL leg.
SHARD_PORTS=()
SHARD_PIDS=()
for i in 0 1 2; do
  "${CLI}" serve --shard --model "${WORKDIR}/shards/shard-${i}-of-3.i2v" \
      --port 0 --max-seconds 300 > "${WORKDIR}/shard${i}.log" 2>&1 &
  pid=$!
  PIDS+=("${pid}")
  SHARD_PIDS+=("${pid}")
done
for i in 0 1 2; do
  SHARD_PORTS+=("$(wait_port "${WORKDIR}/shard${i}.log" \
      "${SHARD_PIDS[$i]}")")
done

BACKENDS="127.0.0.1:${SHARD_PORTS[0]},127.0.0.1:${SHARD_PORTS[1]},127.0.0.1:${SHARD_PORTS[2]}"
"${CLI}" serve --coordinator --backends "${BACKENDS}" --port 0 \
    --shard-deadline-ms 2000 --max-seconds 300 \
    > "${WORKDIR}/coord.log" 2>&1 &
COORD_PID=$!
PIDS+=("${COORD_PID}")
COORD_PORT="$(wait_port "${WORKDIR}/coord.log" "${COORD_PID}")"
COORD="http://127.0.0.1:${COORD_PORT}"

# Single-node reference over the SAME whole model.
"${CLI}" serve --model "${WORKDIR}/model.bin" --port 0 --max-seconds 300 \
    > "${WORKDIR}/single.log" 2>&1 &
SINGLE_PID=$!
PIDS+=("${SINGLE_PID}")
SINGLE_PORT="$(wait_port "${WORKDIR}/single.log" "${SINGLE_PID}")"
SINGLE="http://127.0.0.1:${SINGLE_PORT}"

# fetch <url> <expected_http_code> <body_out>
fetch() {
  local code
  code="$(curl -s -o "$3" -w '%{http_code}' --max-time 10 "$1")"
  if [[ "${code}" != "$2" ]]; then
    echo "shard_smoke: FAIL: GET $1 returned HTTP ${code}, want $2" >&2
    cat "$3" >&2
    exit 1
  fi
}

# The coordinator's topology view: 3 shards tiling all 200 users, every
# backend carrying the same whole-model content hash.
fetch "${COORD}/shardz" 200 "${WORKDIR}/shardz.json"
python3 - "${WORKDIR}/shardz.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["role"] == "coordinator", doc
assert doc["num_shards"] == 3, doc
assert doc["total_users"] == 200, doc
rows = doc["backends"]
assert [r["begin_user"] for r in rows] == [0, 67, 134], rows
assert [r["end_user"] for r in rows] == [67, 134, 200], rows
EOF

# Merge equality: for several seed sets and k, the coordinator's merged
# ranking must equal the single node's answer BIT FOR BIT — same users,
# same %.17g-serialized scores, same tie order, same scanned count.
for q in "seeds=2,3&k=5" "seeds=0&k=1" "seeds=66,67,199&k=10" \
         "seeds=100&k=200" "seeds=5,5,6&k=7"; do
  fetch "${COORD}/topk?${q}" 200 "${WORKDIR}/coord_topk.json"
  fetch "${SINGLE}/topk?${q}" 200 "${WORKDIR}/single_topk.json"
  python3 - "${WORKDIR}/coord_topk.json" "${WORKDIR}/single_topk.json" \
      "${q}" <<'EOF'
import json, sys
coord = json.load(open(sys.argv[1]))
single = json.load(open(sys.argv[2]))
assert coord["degraded"] is False, (sys.argv[3], coord)
assert coord["shards_missing"] == [], (sys.argv[3], coord)
assert coord["scanned"] == single["scanned"], (sys.argv[3], coord, single)
merged = [(r["user"], r["score"]) for r in coord["results"]]
expected = [(r["user"], r["score"]) for r in single["results"]]
assert merged == expected, (sys.argv[3], merged, expected)
EOF
done

# Routed /score agrees bitwise too (candidate on each shard's range).
for c in 1 100 199; do
  fetch "${COORD}/score?candidate=${c}&seeds=2,3" 200 \
      "${WORKDIR}/coord_score.json"
  fetch "${SINGLE}/score?candidate=${c}&seeds=2,3" 200 \
      "${WORKDIR}/single_score.json"
  python3 - "${WORKDIR}/coord_score.json" "${WORKDIR}/single_score.json" \
      <<'EOF'
import json, sys
coord = json.load(open(sys.argv[1]))
single = json.load(open(sys.argv[2]))
assert coord["score"] == single["score"], (coord, single)
EOF
done

# A whole-model artifact must refuse to load in --shard mode, and a
# shard slice must refuse to load in plain serve (exercised in-process by
# shard_test; here we just prove the coordinator rejects a dead fleet
# below rather than hanging).

# ---- Degradation: SIGKILL the middle shard (owns users [67,134)). ----
kill -9 "${SHARD_PIDS[1]}"
wait "${SHARD_PIDS[1]}" 2>/dev/null || true

# Seeds on live shards: partial ranking, HTTP 206, degraded:true,
# shards_missing names shard 1, and no result comes from the dead range.
DEGRADED_CODE="$(curl -s -o "${WORKDIR}/degraded.json" -w '%{http_code}' \
    --max-time 30 "${COORD}/topk?seeds=2,199&k=10")"
if [[ "${DEGRADED_CODE}" != "206" ]]; then
  echo "shard_smoke: FAIL: degraded /topk returned HTTP ${DEGRADED_CODE}, want 206" >&2
  cat "${WORKDIR}/degraded.json" >&2
  exit 1
fi
python3 - "${WORKDIR}/degraded.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["degraded"] is True, doc
assert doc["shards_missing"] == [1], doc
assert doc["results"], doc
for r in doc["results"]:
    assert not (67 <= r["user"] < 134), ("dead-range user served", r)
EOF

# A seed owned by the dead shard cannot be gathered: typed 503 with the
# same Retry-After backoff hint the admission/memory sheds send.
UNAVAILABLE_CODE="$(curl -s -D "${WORKDIR}/unavail_headers" \
    -o "${WORKDIR}/unavail.json" -w '%{http_code}' --max-time 30 \
    "${COORD}/topk?seeds=100&k=5")"
if [[ "${UNAVAILABLE_CODE}" != "503" ]]; then
  echo "shard_smoke: FAIL: dead-owner /topk returned HTTP ${UNAVAILABLE_CODE}, want 503" >&2
  cat "${WORKDIR}/unavail.json" >&2
  exit 1
fi
python3 - "${WORKDIR}/unavail.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["code"] == "SHARDS_UNAVAILABLE", doc
assert doc["degraded"] is True, doc
assert 1 in doc["shards_missing"], doc
EOF
grep -qi "^retry-after: 1" "${WORKDIR}/unavail_headers" || {
  echo "shard_smoke: FAIL: 503 SHARDS_UNAVAILABLE missing Retry-After" >&2
  cat "${WORKDIR}/unavail_headers" >&2
  exit 1
}

# The coordinator's own metrics recorded the failures.
fetch "${COORD}/metrics" 200 "${WORKDIR}/coord_metrics.txt"
python3 - "${WORKDIR}/coord_metrics.txt" <<'EOF'
import sys
text = open(sys.argv[1]).read()
def counter(name):
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    return 0.0
errors = counter("inf2vec_serve_shard_errors_total")
timeouts = counter("inf2vec_serve_shard_timeouts_total")
degraded = counter("inf2vec_serve_degraded_responses_total")
assert errors + timeouts >= 1, (errors, timeouts)
assert degraded >= 2, degraded
EOF

# Still no hang: the healthy part of the fleet keeps answering instantly.
fetch "${COORD}/healthz" 200 "${WORKDIR}/healthz"
grep -q "ok" "${WORKDIR}/healthz"

# Graceful shutdown for everything still alive, by saved PID.
for pid in "${COORD_PID}" "${SINGLE_PID}" "${SHARD_PIDS[0]}" \
           "${SHARD_PIDS[2]}"; do
  kill -TERM "${pid}" 2>/dev/null || true
done
for pid in "${COORD_PID}" "${SINGLE_PID}" "${SHARD_PIDS[0]}" \
           "${SHARD_PIDS[2]}"; do
  wait "${pid}" 2>/dev/null || true
done
PIDS=()

echo "shard_smoke: OK"
