#!/usr/bin/env bash
# LeakSanitizer check over the suites that own the big allocations: the
# serving stack (embedding tables, seed cache, hot-swap double residency),
# the checkpoint subsystem (writer buffers), and the memory-plane tests
# themselves (gauges, heap-profiler sample maps). A leak in any of these
# is exactly the bug the byte-accounting plane exists to surface, so the
# accounting code must itself be leak-clean under the reference tool.
#
# Uses the repo's existing -DINF2VEC_SANITIZE=address mechanism; LSan
# rides along with ASan and is forced on explicitly below.
#
# Usage: tools/lsan_leak_check.sh [build-dir]
#        tools/lsan_leak_check.sh --use-build <configured-asan-build-dir>
#
#   build-dir    scratch directory to configure with ASan (default:
#                build-lsan); the slow-but-standalone mode.
#   --use-build  run against an ALREADY configured ASan build tree — the
#                mode the `lsan_leak_check` ctest entry uses so an
#                -DINF2VEC_SANITIZE=address build checks itself without a
#                nested configure.
set -euo pipefail
cd "$(dirname "$0")/.."

SUITE_LABELS="serve|ckpt|mem"
TARGETS=(serve_test model_swapper_test memory_obs_test heap_profiler_test
         checkpoint_test incremental_test obs_http_test quantized_store_test)

if [[ "${1:-}" == "--use-build" ]]; then
  BUILD_DIR="${2:?--use-build needs a directory}"
else
  BUILD_DIR="${1:-build-lsan}"
  cmake -S . -B "${BUILD_DIR}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DINF2VEC_SANITIZE=address >/dev/null
  cmake --build "${BUILD_DIR}" --target "${TARGETS[@]}" -j "$(nproc)"
fi

# detect_leaks is on by default on linux/x86-64 but forced here so the
# check cannot silently degrade; exitcode=23 keeps leak reports fatal.
export ASAN_OPTIONS="detect_leaks=1:exitcode=23:${ASAN_OPTIONS:-}"

status=0
for target in "${TARGETS[@]}"; do
  binary="${BUILD_DIR}/tests/${target}"
  if [[ ! -x "${binary}" ]]; then
    echo "lsan_leak_check: FAIL: ${binary} not built" >&2
    exit 1
  fi
  echo "lsan_leak_check: ${target}"
  if ! "${binary}" --gtest_brief=1; then
    echo "lsan_leak_check: FAIL: ${target} (test failure or leak)" >&2
    status=1
  fi
done

if [[ "${status}" -ne 0 ]]; then
  echo "lsan_leak_check: FAIL (suites: ${SUITE_LABELS})" >&2
  exit 1
fi
echo "lsan_leak_check: OK (${#TARGETS[@]} suites leak-clean)"
