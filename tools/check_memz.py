#!/usr/bin/env python3
"""Schema validator for GET /memz payloads (the memory observability
plane).

Usage: check_memz.py MEMZ.json [--expect-gauge NAME]...
                     [--min-coverage X] [--expect-budget]

The payload is one JSON object:
  {"schema_version": 1,
   "accounted": {"total_bytes": N,
                 "gauges": {name: {"bytes": N, "high_water_bytes": N,
                                   "provider": true?}}},
   "process": {"sampled": bool, "rss_bytes": N, "peak_rss_bytes": N,
               "vm_size_bytes": N, "anon_bytes": N, "file_bytes": N,
               "shmem_bytes": N},
   "coverage": {"accounted_over_rss": X},
   "budget": {"budget_bytes": N, "headroom_bytes": N,
              "accounted_bytes": N, "over_budget": bool},   # optional
   "heap_profiler": {"running": bool, "sample_period_bytes": N,
                     "samples": N, "live_samples": N,
                     "sampled_alloc_bytes": N, "sampled_live_bytes": N}}
Cross-field invariants checked: gauge bytes sum to accounted.total_bytes,
high-water marks never sit below current bytes, and a sampled process has
peak_rss >= rss > 0. Exits 0 on success, 1 with a diagnostic otherwise.
Dependency-free (stdlib json only) so it runs in any CI image.

`--self-test` exercises the validator against embedded good/bad fixtures
and is wired up as the `memz_schema_self_test` ctest entry.
"""

import argparse
import copy
import json
import sys
import tempfile


class SchemaError(Exception):
    pass


def require(cond, message):
    if not cond:
        raise SchemaError(message)


def check_nonneg_int(obj, key, where):
    require(key in obj, f"{where}: missing key '{key}'")
    value = obj[key]
    require(isinstance(value, int) and not isinstance(value, bool),
            f"{where}: '{key}' must be an integer, "
            f"got {type(value).__name__}")
    require(value >= 0, f"{where}: '{key}'={value} is negative")


def check_bool(obj, key, where):
    require(key in obj, f"{where}: missing key '{key}'")
    require(isinstance(obj[key], bool),
            f"{where}: '{key}' must be a boolean, got {obj[key]!r}")


def check_accounted(accounted, where):
    require(isinstance(accounted, dict), f"{where}: must be an object")
    check_nonneg_int(accounted, "total_bytes", where)
    gauges = accounted.get("gauges")
    require(isinstance(gauges, dict), f"{where}: 'gauges' must be an object")
    total = 0
    for name, gauge in gauges.items():
        gwhere = f"{where}: gauges['{name}']"
        require(isinstance(gauge, dict), f"{gwhere}: must be an object")
        check_nonneg_int(gauge, "bytes", gwhere)
        check_nonneg_int(gauge, "high_water_bytes", gwhere)
        require(gauge["high_water_bytes"] >= gauge["bytes"],
                f"{gwhere}: high_water_bytes={gauge['high_water_bytes']} "
                f"below bytes={gauge['bytes']}")
        if "provider" in gauge:
            check_bool(gauge, "provider", gwhere)
        total += gauge["bytes"]
    require(total == accounted["total_bytes"],
            f"{where}: gauges sum to {total}, "
            f"total_bytes says {accounted['total_bytes']}")


def check_process(process, where):
    require(isinstance(process, dict), f"{where}: must be an object")
    check_bool(process, "sampled", where)
    for key in ("rss_bytes", "peak_rss_bytes", "vm_size_bytes",
                "anon_bytes", "file_bytes", "shmem_bytes"):
        check_nonneg_int(process, key, where)
    if process["sampled"]:
        require(process["rss_bytes"] > 0,
                f"{where}: sampled process must have rss_bytes > 0")
        require(process["peak_rss_bytes"] >= process["rss_bytes"],
                f"{where}: peak_rss_bytes={process['peak_rss_bytes']} "
                f"below rss_bytes={process['rss_bytes']}")


def check_budget(budget, where):
    require(isinstance(budget, dict), f"{where}: must be an object")
    for key in ("budget_bytes", "headroom_bytes", "accounted_bytes"):
        check_nonneg_int(budget, key, where)
    check_bool(budget, "over_budget", where)
    require(budget["budget_bytes"] > 0,
            f"{where}: a present budget block must have budget_bytes > 0")


def check_heap_profiler(heap, where):
    require(isinstance(heap, dict), f"{where}: must be an object")
    check_bool(heap, "running", where)
    for key in ("sample_period_bytes", "samples", "live_samples",
                "sampled_alloc_bytes", "sampled_live_bytes"):
        check_nonneg_int(heap, key, where)
    require(heap["sampled_alloc_bytes"] >= heap["sampled_live_bytes"],
            f"{where}: sampled_alloc_bytes below sampled_live_bytes")
    require(heap["samples"] >= heap["live_samples"],
            f"{where}: samples below live_samples")


def check_memz(doc, where, args):
    require(isinstance(doc, dict), f"{where}: must be a JSON object")
    require(doc.get("schema_version") == 1,
            f"{where}: schema_version must be 1, "
            f"got {doc.get('schema_version')!r}")
    for key in ("accounted", "process", "coverage", "heap_profiler"):
        require(key in doc, f"{where}: missing key '{key}'")
    check_accounted(doc["accounted"], f"{where}: accounted")
    check_process(doc["process"], f"{where}: process")
    coverage = doc["coverage"]
    require(isinstance(coverage, dict),
            f"{where}: 'coverage' must be an object")
    ratio = coverage.get("accounted_over_rss")
    require(isinstance(ratio, (int, float)) and not isinstance(ratio, bool)
            and ratio >= 0,
            f"{where}: coverage.accounted_over_rss must be a non-negative "
            f"number, got {ratio!r}")
    if "budget" in doc:
        check_budget(doc["budget"], f"{where}: budget")
    elif args.expect_budget:
        raise SchemaError(f"{where}: --expect-budget but no budget block")
    check_heap_profiler(doc["heap_profiler"], f"{where}: heap_profiler")

    gauges = doc["accounted"]["gauges"]
    for name in args.expect_gauge or ():
        require(name in gauges, f"{where}: no gauge named '{name}' "
                f"(have: {', '.join(sorted(gauges)) or 'none'})")
    if args.min_coverage is not None:
        require(ratio >= args.min_coverage,
                f"{where}: coverage {ratio:.3f} below "
                f"--min-coverage {args.min_coverage}")


def check_file(path, args):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            raise SchemaError(f"{path}: not valid JSON: {e}") from e
    check_memz(doc, path, args)


GOOD_DOC = {
    "schema_version": 1,
    "accounted": {
        "total_bytes": 1300,
        "gauges": {
            "serve.embedding_table": {"bytes": 1000,
                                      "high_water_bytes": 1000},
            "serve.seed_cache": {"bytes": 200, "high_water_bytes": 250},
            "obs.trace_ring": {"bytes": 100, "high_water_bytes": 100,
                               "provider": True},
        },
    },
    "process": {"sampled": True, "rss_bytes": 2000, "peak_rss_bytes": 2100,
                "vm_size_bytes": 4000, "anon_bytes": 1800,
                "file_bytes": 150, "shmem_bytes": 50},
    "coverage": {"accounted_over_rss": 0.65},
    "budget": {"budget_bytes": 4096, "headroom_bytes": 128,
               "accounted_bytes": 1200, "over_budget": False},
    "heap_profiler": {"running": True, "sample_period_bytes": 524288,
                      "samples": 42, "live_samples": 40,
                      "sampled_alloc_bytes": 900, "sampled_live_bytes": 800},
}


def bad_fixtures():
    """Yields (description, mutated-doc) pairs that must all be rejected."""
    bad = copy.deepcopy(GOOD_DOC)
    del bad["process"]
    yield "missing process block", bad

    bad = copy.deepcopy(GOOD_DOC)
    bad["accounted"]["total_bytes"] = 9999
    yield "gauge sum != total_bytes", bad

    bad = copy.deepcopy(GOOD_DOC)
    bad["accounted"]["gauges"]["serve.seed_cache"]["high_water_bytes"] = 10
    yield "high water below current bytes", bad

    bad = copy.deepcopy(GOOD_DOC)
    bad["process"]["rss_bytes"] = -5
    yield "negative rss", bad

    bad = copy.deepcopy(GOOD_DOC)
    bad["coverage"]["accounted_over_rss"] = "lots"
    yield "coverage not a number", bad

    bad = copy.deepcopy(GOOD_DOC)
    bad["heap_profiler"]["sampled_live_bytes"] = 10**9
    yield "live bytes exceed cumulative bytes", bad

    bad = copy.deepcopy(GOOD_DOC)
    bad["schema_version"] = 2
    yield "wrong schema version", bad


def self_test():
    strict = argparse.Namespace(
        expect_gauge=["serve.embedding_table", "obs.trace_ring"],
        min_coverage=0.5, expect_budget=True)
    lax = argparse.Namespace(expect_gauge=[], min_coverage=None,
                             expect_budget=False)
    with tempfile.NamedTemporaryFile("w", suffix=".json") as f:
        json.dump(GOOD_DOC, f)
        f.flush()
        check_file(f.name, strict)
        check_file(f.name, lax)
    for description, doc in bad_fixtures():
        with tempfile.NamedTemporaryFile("w", suffix=".json") as f:
            json.dump(doc, f)
            f.flush()
            try:
                check_file(f.name, lax)
            except SchemaError:
                continue
            print(f"check_memz: FAIL: bad fixture passed: {description}",
                  file=sys.stderr)
            return 1
    # The optional gates must also trip on a doc that is merely valid.
    no_budget = copy.deepcopy(GOOD_DOC)
    del no_budget["budget"]
    for args, doc, description in (
            (strict, no_budget, "--expect-budget with no budget block"),
            (argparse.Namespace(expect_gauge=["no.such.gauge"],
                                min_coverage=None, expect_budget=False),
             GOOD_DOC, "--expect-gauge for an absent gauge"),
            (argparse.Namespace(expect_gauge=[], min_coverage=0.99,
                                expect_budget=False),
             GOOD_DOC, "--min-coverage above the doc's coverage")):
        with tempfile.NamedTemporaryFile("w", suffix=".json") as f:
            json.dump(doc, f)
            f.flush()
            try:
                check_file(f.name, args)
            except SchemaError:
                continue
            print(f"check_memz: FAIL: gate did not trip: {description}",
                  file=sys.stderr)
            return 1
    print("check_memz: self-test OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("memz", nargs="?", help="path to a /memz JSON dump")
    parser.add_argument("--expect-gauge", action="append", default=[],
                        help="require this accounted gauge (repeatable)")
    parser.add_argument("--min-coverage", type=float, default=None,
                        help="require coverage.accounted_over_rss >= X")
    parser.add_argument("--expect-budget", action="store_true",
                        help="require the budget block to be present")
    parser.add_argument("--self-test", action="store_true",
                        help="validate embedded fixtures and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.memz:
        parser.error("MEMZ.json is required unless --self-test")
    try:
        check_file(args.memz, args)
    except (OSError, SchemaError) as e:
        print(f"check_memz: FAIL: {e}", file=sys.stderr)
        return 1
    print("check_memz: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
