#ifndef INF2VEC_TOOLS_CLI_COMMANDS_H_
#define INF2VEC_TOOLS_CLI_COMMANDS_H_

#include <functional>
#include <string>

#include "util/flags.h"
#include "util/status.h"

namespace inf2vec {
namespace cli {

/// The `inf2vec_cli` subcommands, each taking its parsed flags. All output
/// goes to stdout; errors come back as Status so main() owns the exit code.
///
///   generate     --profile digg|flickr --out DIR [--users N --items N --seed S]
///   train        --graph F --actions F --model OUT
///                [--dim K --alpha A --length L --epochs E --lr G
///                 --negatives N --seed S --local-only --bfs-context]
///                [--checkpoint-dir D --checkpoint-every N --keep-last N
///                 --resume]
///   update       --model IN --graph F --delta F --out OUT
///                [--epochs 3 --lr-scale 0.2 --seed 1 --threads 1]
///   score        --model F --source U --target V
///   top          --model F --source U [--k 10]
///   evaluate     --graph F --actions F --model F [--task activation|diffusion]
///                [--seed-fraction 0.05 --aggregation Ave|Sum|Max|Latest]
///   export-text  --model F --out F
///   quantize     --model IN --out OUT   (append an int8 serving section)
///   shard-split  --model IN --out-dir D --shards N   (range-partition an
///                artifact into N shard slices with I2VSHRD1 sections)
///   serve        --model F [--port P --topk-cache N --threads N
///                 --aggregation Ave|Sum|Max|Latest --max-seconds S
///                 --watch-model --watch-interval-ms 500 --quantize int8]
///                --shard: serve one shard slice (/gather /topk /score over
///                the local user range); --coordinator --backends H:P,...:
///                scatter-gather front-end merging shard rankings
Status RunGenerate(const FlagParser& flags);
Status RunTrain(const FlagParser& flags);
Status RunUpdate(const FlagParser& flags);
Status RunScore(const FlagParser& flags);
Status RunTop(const FlagParser& flags);
Status RunEvaluate(const FlagParser& flags);
Status RunExportText(const FlagParser& flags);
Status RunQuantize(const FlagParser& flags);
Status RunShardSplit(const FlagParser& flags);
Status RunServe(const FlagParser& flags);

/// Test hooks for the serve lifecycle. RequestServeStop() flips the same
/// flag the SIGINT/SIGTERM handler sets, so tests can stop a serve loop
/// without signals; SetServeStartupHookForTest installs a callback RunServe
/// invokes right after the model load finishes (and before it decides
/// whether to start the server), letting the shutdown-during-load race be
/// driven deterministically. Pass nullptr to clear.
void RequestServeStop();
void SetServeStartupHookForTest(std::function<void()> hook);

/// Dispatches on the first positional argument; returns InvalidArgument
/// with the usage text for unknown commands.
Status Dispatch(const FlagParser& flags);

/// The usage/help text.
std::string UsageText();

}  // namespace cli
}  // namespace inf2vec

#endif  // INF2VEC_TOOLS_CLI_COMMANDS_H_
