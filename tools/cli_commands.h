#ifndef INF2VEC_TOOLS_CLI_COMMANDS_H_
#define INF2VEC_TOOLS_CLI_COMMANDS_H_

#include <string>

#include "util/flags.h"
#include "util/status.h"

namespace inf2vec {
namespace cli {

/// The `inf2vec_cli` subcommands, each taking its parsed flags. All output
/// goes to stdout; errors come back as Status so main() owns the exit code.
///
///   generate     --profile digg|flickr --out DIR [--users N --items N --seed S]
///   train        --graph F --actions F --model OUT
///                [--dim K --alpha A --length L --epochs E --lr G
///                 --negatives N --seed S --local-only --bfs-context]
///   score        --model F --source U --target V
///   top          --model F --source U [--k 10]
///   evaluate     --graph F --actions F --model F [--task activation|diffusion]
///                [--seed-fraction 0.05 --aggregation Ave|Sum|Max|Latest]
///   export-text  --model F --out F
///   serve        --model F [--port P --topk-cache N --threads N
///                 --aggregation Ave|Sum|Max|Latest --max-seconds S]
Status RunGenerate(const FlagParser& flags);
Status RunTrain(const FlagParser& flags);
Status RunScore(const FlagParser& flags);
Status RunTop(const FlagParser& flags);
Status RunEvaluate(const FlagParser& flags);
Status RunExportText(const FlagParser& flags);
Status RunServe(const FlagParser& flags);

/// Dispatches on the first positional argument; returns InvalidArgument
/// with the usage text for unknown commands.
Status Dispatch(const FlagParser& flags);

/// The usage/help text.
std::string UsageText();

}  // namespace cli
}  // namespace inf2vec

#endif  // INF2VEC_TOOLS_CLI_COMMANDS_H_
