#!/usr/bin/env python3
"""Schema validator for inf2vec --metrics-out run reports.

Usage: check_run_report.py REPORT.json [--command train] [--expect-epochs N]
                           [--expect-eval] [--expect-profile]
                           [--trace TRACE.json]

Exits 0 when the report (and optional trace) match the schema documented in
docs/OBSERVABILITY.md, 1 with a diagnostic otherwise. Kept dependency-free
(stdlib json only) so it runs in any CI image.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1


class SchemaError(Exception):
    pass


def require(cond, message):
    if not cond:
        raise SchemaError(message)


def check_number(obj, key, where):
    require(key in obj, f"{where}: missing key '{key}'")
    require(isinstance(obj[key], (int, float)) and not isinstance(obj[key], bool),
            f"{where}: '{key}' must be a number, got {type(obj[key]).__name__}")


def check_fraction(obj, key, where):
    check_number(obj, key, where)
    require(0.0 <= obj[key] <= 1.0, f"{where}: '{key}'={obj[key]} not in [0, 1]")


def check_report(report, args):
    require(isinstance(report, dict), "report root must be a JSON object")
    require(report.get("schema_version") == SCHEMA_VERSION,
            f"schema_version must be {SCHEMA_VERSION}, "
            f"got {report.get('schema_version')!r}")
    require(isinstance(report.get("command"), str) and report["command"],
            "command must be a non-empty string")
    if args.command:
        require(report["command"] == args.command,
                f"command is '{report['command']}', expected '{args.command}'")
    require(isinstance(report.get("config"), dict), "config must be an object")

    phases = report.get("phases")
    require(isinstance(phases, list), "phases must be an array")
    for i, phase in enumerate(phases):
        where = f"phases[{i}]"
        require(isinstance(phase, dict), f"{where}: must be an object")
        require(isinstance(phase.get("name"), str) and phase["name"],
                f"{where}: needs a non-empty name")
        check_number(phase, "seconds", where)
        require(phase["seconds"] >= 0, f"{where}: negative seconds")

    epochs = report.get("epochs")
    require(isinstance(epochs, list), "epochs must be an array")
    for i, epoch in enumerate(epochs):
        where = f"epochs[{i}]"
        require(isinstance(epoch, dict), f"{where}: must be an object")
        for key in ("epoch", "objective", "learning_rate", "pairs", "seconds",
                    "pairs_per_second"):
            check_number(epoch, key, where)
        require(epoch["epoch"] == i, f"{where}: epoch index {epoch['epoch']} "
                f"out of order (expected {i})")
        require(epoch["pairs"] >= 0 and epoch["seconds"] >= 0,
                f"{where}: negative pairs/seconds")
    if args.expect_epochs is not None:
        require(len(epochs) == args.expect_epochs,
                f"expected {args.expect_epochs} epoch rows, got {len(epochs)}")

    context = report.get("context")
    require(isinstance(context, dict), "context section must be an object")
    for key in ("contexts", "local_nodes", "global_nodes", "walk_steps",
                "restarts", "mean_walk_length"):
        check_number(context, key, "context")
    check_fraction(context, "local_fraction", "context")
    check_fraction(context, "global_fraction", "context")
    total = context["local_nodes"] + context["global_nodes"]
    if total > 0:
        got = context["local_fraction"] + context["global_fraction"]
        require(abs(got - 1.0) < 1e-9,
                f"context fractions sum to {got}, expected 1")

    sampler = report.get("negative_sampler")
    require(isinstance(sampler, dict), "negative_sampler must be an object")
    check_number(sampler, "draws", "negative_sampler")
    check_number(sampler, "rejected", "negative_sampler")
    check_fraction(sampler, "rejection_rate", "negative_sampler")

    metrics = report.get("metrics")
    require(isinstance(metrics, dict), "metrics section must be an object")
    for section in ("counters", "gauges", "histograms"):
        require(isinstance(metrics.get(section), dict),
                f"metrics.{section} must be an object")
    for name, value in metrics["counters"].items():
        require(isinstance(value, int) and value >= 0,
                f"counter '{name}' must be a non-negative integer")
    for name, summary in metrics["histograms"].items():
        for key in ("count", "mean", "max", "p50", "p90", "p99"):
            check_number(summary, key, f"histogram '{name}'")

    if args.expect_eval:
        ev = report.get("eval")
        require(isinstance(ev, dict), "eval section missing or not an object")
        for key in ("auc", "map", "p10", "p50", "p100", "num_queries"):
            check_number(ev, key, "eval")
        require(0.0 <= ev["auc"] <= 1.0, f"eval.auc={ev['auc']} not in [0, 1]")

    if args.expect_environment:
        env = report.get("environment")
        require(isinstance(env, dict),
                "environment section missing or not an object")
        require(isinstance(env.get("hostname"), str),
                "environment.hostname must be a string")
        for key in ("pid", "hardware_concurrency", "peak_rss_bytes"):
            check_number(env, key, "environment")
        require(env["peak_rss_bytes"] > 0,
                "environment.peak_rss_bytes must be positive")
        build = env.get("build")
        require(isinstance(build, dict),
                "environment.build must be an object")
        for key in ("git_sha", "compiler", "build_type", "build_flags",
                    "cxx_standard"):
            require(isinstance(build.get(key), str) and build[key],
                    f"environment.build.{key} must be a non-empty string")
        trace = env.get("trace")
        require(isinstance(trace, dict),
                "environment.trace must be an object")
        require(isinstance(trace.get("enabled"), bool),
                "environment.trace.enabled must be a boolean")
        for key in ("events", "capacity", "dropped"):
            check_number(trace, key, "environment.trace")
            require(trace[key] >= 0,
                    f"environment.trace.{key} must be non-negative")
        require(trace["events"] <= trace["capacity"],
                f"environment.trace holds {trace['events']} events but "
                f"claims capacity {trace['capacity']}")

    # The memory block is written unconditionally since the memory plane
    # landed; validate whenever present, require under --expect-memory.
    memory = report.get("memory")
    if args.expect_memory:
        require(isinstance(memory, dict),
                "memory section missing or not an object")
    if isinstance(memory, dict):
        accounted = memory.get("accounted")
        require(isinstance(accounted, dict),
                "memory.accounted must be an object")
        check_number(accounted, "total_bytes", "memory.accounted")
        require(accounted["total_bytes"] >= 0,
                "memory.accounted.total_bytes must be non-negative")
        gauges = accounted.get("gauges")
        require(isinstance(gauges, dict),
                "memory.accounted.gauges must be an object")
        for name, gauge in gauges.items():
            where = f"memory.accounted.gauges['{name}']"
            require(isinstance(gauge, dict), f"{where} must be an object")
            for key in ("bytes", "high_water_bytes"):
                check_number(gauge, key, where)
            require(gauge["high_water_bytes"] >= gauge["bytes"],
                    f"{where}: high water below current bytes")
        process = memory.get("process")
        require(isinstance(process, dict),
                "memory.process must be an object")
        require(isinstance(process.get("sampled"), bool),
                "memory.process.sampled must be a boolean")
        for key in ("rss_bytes", "peak_rss_bytes", "vm_size_bytes"):
            check_number(process, key, "memory.process")

    if args.expect_profile:
        profile = report.get("profile")
        require(isinstance(profile, dict),
                "profile section missing or not an object")
        require(isinstance(profile.get("running"), bool)
                and not profile["running"],
                "profile.running must be false in a finished report")
        for key in ("hz", "samples", "truncated"):
            check_number(profile, key, "profile")
        require(profile["hz"] > 0, "profile.hz must be positive")
        require(profile["samples"] >= 0 and profile["truncated"] >= 0,
                "profile sample counts must be non-negative")
        require(isinstance(profile.get("path"), str) and profile["path"],
                "profile.path must be a non-empty string")

    if args.expect_heap_profile:
        heap = report.get("heap_profile")
        require(isinstance(heap, dict),
                "heap_profile section missing or not an object")
        require(isinstance(heap.get("running"), bool)
                and not heap["running"],
                "heap_profile.running must be false in a finished report")
        for key in ("sample_period_bytes", "samples", "sampled_alloc_bytes",
                    "sampled_live_bytes"):
            check_number(heap, key, "heap_profile")
        require(heap["sample_period_bytes"] > 0,
                "heap_profile.sample_period_bytes must be positive")
        require(isinstance(heap.get("path"), str) and heap["path"],
                "heap_profile.path must be a non-empty string")


def check_trace(trace):
    require(isinstance(trace, dict), "trace root must be a JSON object")
    require(trace.get("displayTimeUnit") == "ms",
            "trace displayTimeUnit must be 'ms'")
    events = trace.get("traceEvents")
    require(isinstance(events, list) and events,
            "traceEvents must be a non-empty array")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        require(isinstance(event, dict), f"{where}: must be an object")
        require(event.get("ph") == "X", f"{where}: ph must be 'X'")
        require(isinstance(event.get("name"), str) and event["name"],
                f"{where}: needs a name")
        for key in ("ts", "dur", "pid", "tid"):
            require(isinstance(event.get(key), int) and event[key] >= 0,
                    f"{where}: '{key}' must be a non-negative integer")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="path to a --metrics-out JSON report")
    parser.add_argument("--command", help="expected command name")
    parser.add_argument("--expect-epochs", type=int,
                        help="exact number of epoch rows required")
    parser.add_argument("--expect-eval", action="store_true",
                        help="require a valid eval section")
    parser.add_argument("--expect-environment", action="store_true",
                        help="require a valid environment provenance section "
                             "(including the trace collector stats)")
    parser.add_argument("--expect-profile", action="store_true",
                        help="require a valid --profile-out profile section")
    parser.add_argument("--expect-memory", action="store_true",
                        help="require the memory accounting section")
    parser.add_argument("--expect-heap-profile", action="store_true",
                        help="require a valid --heap-profile-out section")
    parser.add_argument("--trace", help="also validate a --trace-out file")
    args = parser.parse_args()

    try:
        with open(args.report, "r", encoding="utf-8") as f:
            report = json.load(f)
        check_report(report, args)
        if args.trace:
            with open(args.trace, "r", encoding="utf-8") as f:
                check_trace(json.load(f))
    except (OSError, json.JSONDecodeError, SchemaError) as e:
        print(f"check_run_report: FAIL: {e}", file=sys.stderr)
        return 1
    print("check_run_report: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
