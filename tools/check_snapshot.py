#!/usr/bin/env python3
"""Schema validator for --metrics-snapshot-out JSONL time series.

Usage: check_snapshot.py SNAPSHOT.jsonl [--min-lines N]

Each line must be a self-contained JSON object:
  {"schema_version": 1, "seq": N, "uptime_ms": T,
   "counters": {name: cumulative_int}, "deltas": {name: int_since_prev},
   "gauges": {name: number},
   "memory": {"accounted_bytes": N, "rss_bytes": N, "gauges": {name: N}}}
with seq counting up from 0, uptime_ms non-decreasing, and every counter
non-negative and non-decreasing across lines. The per-tick memory series
(present on every line since the memory plane landed; tolerated absent for
older captures) must carry non-negative byte figures. Exits 0 on success,
1 with a diagnostic otherwise. Dependency-free (stdlib json only).
"""

import argparse
import json
import sys


class SchemaError(Exception):
    pass


def require(cond, message):
    if not cond:
        raise SchemaError(message)


def check_counter_map(obj, key, where):
    require(isinstance(obj.get(key), dict), f"{where}: '{key}' must be "
            "an object")
    for name, value in obj[key].items():
        require(isinstance(value, int) and not isinstance(value, bool)
                and value >= 0,
                f"{where}: {key}['{name}'] must be a non-negative integer, "
                f"got {value!r}")


def check_lines(lines, path):
    prev_uptime = -1
    prev_counters = {}
    for i, raw in enumerate(lines):
        where = f"{path}:{i + 1}"
        try:
            snap = json.loads(raw)
        except json.JSONDecodeError as e:
            raise SchemaError(f"{where}: not valid JSON: {e}") from e
        require(isinstance(snap, dict), f"{where}: must be a JSON object")
        require(snap.get("schema_version") == 1,
                f"{where}: schema_version must be 1, "
                f"got {snap.get('schema_version')!r}")
        require(snap.get("seq") == i,
                f"{where}: seq must be {i}, got {snap.get('seq')!r}")
        uptime = snap.get("uptime_ms")
        require(isinstance(uptime, int) and uptime >= 0,
                f"{where}: uptime_ms must be a non-negative integer")
        require(uptime >= prev_uptime, f"{where}: uptime_ms went backwards "
                f"({prev_uptime} -> {uptime})")
        prev_uptime = uptime

        check_counter_map(snap, "counters", where)
        check_counter_map(snap, "deltas", where)
        require(isinstance(snap.get("gauges"), dict),
                f"{where}: 'gauges' must be an object")
        for name, value in snap["gauges"].items():
            require(isinstance(value, (int, float)) and not
                    isinstance(value, bool),
                    f"{where}: gauges['{name}'] must be a number")

        if "memory" in snap:
            memory = snap["memory"]
            require(isinstance(memory, dict),
                    f"{where}: 'memory' must be an object")
            for key in ("accounted_bytes", "rss_bytes"):
                value = memory.get(key)
                require(isinstance(value, int)
                        and not isinstance(value, bool) and value >= 0,
                        f"{where}: memory['{key}'] must be a non-negative "
                        f"integer, got {value!r}")
            require(isinstance(memory.get("gauges"), dict),
                    f"{where}: memory.gauges must be an object")
            for name, value in memory["gauges"].items():
                require(isinstance(value, int)
                        and not isinstance(value, bool) and value >= 0,
                        f"{where}: memory.gauges['{name}'] must be a "
                        f"non-negative integer, got {value!r}")

        for name, value in snap["counters"].items():
            prev = prev_counters.get(name, 0)
            require(value >= prev, f"{where}: counter '{name}' went "
                    f"backwards ({prev} -> {value})")
        prev_counters = dict(snap["counters"])


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("snapshot", help="path to a JSONL snapshot file")
    parser.add_argument("--min-lines", type=int, default=1,
                        help="minimum number of snapshot lines required")
    args = parser.parse_args()

    try:
        with open(args.snapshot, "r", encoding="utf-8") as f:
            lines = [line for line in f.read().splitlines() if line.strip()]
        if len(lines) < args.min_lines:
            raise SchemaError(f"expected >= {args.min_lines} lines, "
                              f"got {len(lines)}")
        check_lines(lines, args.snapshot)
    except (OSError, SchemaError) as e:
        print(f"check_snapshot: FAIL: {e}", file=sys.stderr)
        return 1
    print(f"check_snapshot: OK ({len(lines)} snapshots)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
