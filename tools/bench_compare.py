#!/usr/bin/env python3
"""Regression diff for two unified BENCH_*.json files.

Usage: bench_compare.py BASELINE.json CANDIDATE.json [--threshold PCT]
                        [--fail-on-missing]

Both files must follow the bench_common.BenchReport schema (schema_version
1: {"bench", "config", "results": [{"name", "wall_ms", "throughput"?,
"repetitions"}]}). Rows are joined by their unique "name". Rows carrying a
positive "throughput" compare on throughput (higher is better); all other
rows fall back to "wall_ms" (lower is better). A row regresses when the
candidate is worse than the baseline by more than --threshold percent.

Exits 0 when no row regresses, 1 on any regression or schema problem.
Dependency-free (stdlib json only) so it runs in any CI image.
"""

import argparse
import json
import sys


class BenchError(Exception):
    pass


def require(cond, message):
    if not cond:
        raise BenchError(message)


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise BenchError(f"{path}: {e}") from e
    require(isinstance(report, dict), f"{path}: root must be a JSON object")
    require(report.get("schema_version") == 1,
            f"{path}: schema_version must be 1, "
            f"got {report.get('schema_version')!r}")
    require(isinstance(report.get("bench"), str) and report["bench"],
            f"{path}: 'bench' must be a non-empty string")
    require(isinstance(report.get("config"), dict),
            f"{path}: 'config' must be an object")
    results = report.get("results")
    require(isinstance(results, list) and results,
            f"{path}: 'results' must be a non-empty array")
    rows = {}
    for i, row in enumerate(results):
        where = f"{path}: results[{i}]"
        require(isinstance(row, dict), f"{where}: must be an object")
        name = row.get("name")
        require(isinstance(name, str) and name,
                f"{where}: needs a non-empty 'name'")
        require(name not in rows, f"{where}: duplicate row name '{name}'")
        wall = row.get("wall_ms")
        require(isinstance(wall, (int, float)) and not isinstance(wall, bool)
                and wall >= 0, f"{where}: 'wall_ms' must be a number >= 0")
        thr = row.get("throughput")
        if thr is not None:
            require(isinstance(thr, (int, float)) and not
                    isinstance(thr, bool) and thr > 0,
                    f"{where}: 'throughput', when present, must be > 0")
        rows[name] = row
    return report, rows


def compare_row(name, base, cand, threshold_pct):
    """Returns (metric, base_value, cand_value, delta_pct, regressed)."""
    if base.get("throughput") is not None and \
            cand.get("throughput") is not None:
        b, c = base["throughput"], cand["throughput"]
        delta = 100.0 * (c - b) / b
        return ("throughput", b, c, delta, delta < -threshold_pct)
    b, c = base["wall_ms"], cand["wall_ms"]
    if b <= 0:
        return ("wall_ms", b, c, 0.0, False)
    delta = 100.0 * (c - b) / b
    return ("wall_ms", b, c, delta, delta > threshold_pct)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=5.0,
                        help="regression threshold in percent (default 5)")
    parser.add_argument("--fail-on-missing", action="store_true",
                        help="also fail when a baseline row is absent "
                             "from the candidate")
    args = parser.parse_args()

    try:
        base_report, base_rows = load_report(args.baseline)
        cand_report, cand_rows = load_report(args.candidate)
        require(base_report["bench"] == cand_report["bench"],
                f"bench mismatch: '{base_report['bench']}' vs "
                f"'{cand_report['bench']}'")
    except BenchError as e:
        print(f"bench_compare: FAIL: {e}", file=sys.stderr)
        return 1

    regressions = []
    missing = [n for n in base_rows if n not in cand_rows]
    for name, base in base_rows.items():
        cand = cand_rows.get(name)
        if cand is None:
            continue
        metric, b, c, delta, regressed = compare_row(
            name, base, cand, args.threshold)
        tag = "REGRESSION" if regressed else "ok"
        print(f"  {tag:10s} {name}: {metric} {b:.4g} -> {c:.4g} "
              f"({delta:+.2f}%)")
        if regressed:
            regressions.append(name)
    for name in missing:
        print(f"  MISSING    {name}: present in baseline only")
    new_rows = [n for n in cand_rows if n not in base_rows]
    for name in new_rows:
        print(f"  NEW        {name}: present in candidate only")

    failed = bool(regressions) or (args.fail_on_missing and missing)
    verdict = "FAIL" if failed else "OK"
    print(f"bench_compare: {verdict}: {len(regressions)} regression(s), "
          f"{len(missing)} missing, {len(new_rows)} new "
          f"(threshold {args.threshold:.1f}%)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
