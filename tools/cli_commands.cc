#include "cli_commands.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "action/action_log_io.h"
#include "core/inf2vec_model.h"
#include "embedding/model_io.h"
#include "eval/activation_task.h"
#include "eval/diffusion_task.h"
#include "eval/harness.h"
#include "graph/graph_io.h"
#include "synth/world_generator.h"

namespace inf2vec {
namespace cli {
namespace {

/// Loads the graph + action log named by --graph / --actions.
Status LoadWorldInputs(const FlagParser& flags, SocialGraph* graph,
                       ActionLog* log) {
  const std::string graph_path = flags.GetString("graph", "");
  const std::string actions_path = flags.GetString("actions", "");
  if (graph_path.empty() || actions_path.empty()) {
    return Status::InvalidArgument("--graph and --actions are required");
  }
  Result<SocialGraph> g = LoadEdgeListAutoSize(graph_path);
  INF2VEC_RETURN_IF_ERROR(g.status());
  Result<ActionLog> a = LoadActionLog(actions_path);
  INF2VEC_RETURN_IF_ERROR(a.status());
  *graph = std::move(g).value();
  *log = std::move(a).value();
  // Action ids must fit the graph's user space.
  for (const DiffusionEpisode& e : log->episodes()) {
    for (const Adoption& adoption : e.adoptions()) {
      if (adoption.user >= graph->num_users()) {
        return Status::InvalidArgument(
            "action log references user beyond the graph's id space");
      }
    }
  }
  return Status::OK();
}

Result<Inf2vecConfig> ConfigFromFlags(const FlagParser& flags) {
  Inf2vecConfig config;
  Result<int64_t> dim = flags.GetInt("dim", config.dim);
  INF2VEC_RETURN_IF_ERROR(dim.status());
  config.dim = static_cast<uint32_t>(dim.value());
  Result<double> alpha = flags.GetDouble("alpha", config.context.alpha);
  INF2VEC_RETURN_IF_ERROR(alpha.status());
  config.context.alpha = alpha.value();
  Result<int64_t> length = flags.GetInt("length", config.context.length);
  INF2VEC_RETURN_IF_ERROR(length.status());
  config.context.length = static_cast<uint32_t>(length.value());
  Result<int64_t> epochs = flags.GetInt("epochs", config.epochs);
  INF2VEC_RETURN_IF_ERROR(epochs.status());
  config.epochs = static_cast<uint32_t>(epochs.value());
  Result<double> lr = flags.GetDouble("lr", config.sgd.learning_rate);
  INF2VEC_RETURN_IF_ERROR(lr.status());
  config.sgd.learning_rate = lr.value();
  Result<int64_t> negatives =
      flags.GetInt("negatives", config.sgd.num_negatives);
  INF2VEC_RETURN_IF_ERROR(negatives.status());
  config.sgd.num_negatives = static_cast<uint32_t>(negatives.value());
  Result<int64_t> seed = flags.GetInt("seed", config.seed);
  INF2VEC_RETURN_IF_ERROR(seed.status());
  config.seed = static_cast<uint64_t>(seed.value());
  Result<int64_t> threads = flags.GetInt("threads", config.num_threads);
  INF2VEC_RETURN_IF_ERROR(threads.status());
  if (threads.value() < 0) {
    return Status::InvalidArgument(
        "--threads must be >= 0 (0 = all hardware threads)");
  }
  config.num_threads = static_cast<uint32_t>(threads.value());
  if (flags.GetBool("local-only", false)) config.context.alpha = 1.0;
  if (flags.GetBool("bfs-context", false)) {
    config.context.strategy = LocalContextStrategy::kForwardBfs;
  }
  if (config.dim == 0 || config.context.length == 0 || config.epochs == 0) {
    return Status::InvalidArgument("dim, length and epochs must be positive");
  }
  return config;
}

}  // namespace

Status RunGenerate(const FlagParser& flags) {
  const std::string out_dir = flags.GetString("out", "");
  if (out_dir.empty()) return Status::InvalidArgument("--out is required");
  const std::string profile_name = flags.GetString("profile", "digg");

  synth::WorldProfile profile;
  if (profile_name == "digg") {
    profile = synth::WorldProfile::DiggLike();
  } else if (profile_name == "flickr") {
    profile = synth::WorldProfile::FlickrLike();
  } else {
    return Status::InvalidArgument("--profile must be digg or flickr");
  }
  Result<int64_t> users = flags.GetInt("users", profile.num_users);
  INF2VEC_RETURN_IF_ERROR(users.status());
  profile.num_users = static_cast<uint32_t>(users.value());
  Result<int64_t> items = flags.GetInt("items", profile.num_items);
  INF2VEC_RETURN_IF_ERROR(items.status());
  profile.num_items = static_cast<uint32_t>(items.value());
  Result<int64_t> seed = flags.GetInt("seed", 42);
  INF2VEC_RETURN_IF_ERROR(seed.status());

  Rng rng(static_cast<uint64_t>(seed.value()));
  Result<synth::World> world = synth::GenerateWorld(profile, rng);
  INF2VEC_RETURN_IF_ERROR(world.status());

  const std::string graph_path = out_dir + "/graph.tsv";
  const std::string actions_path = out_dir + "/actions.tsv";
  INF2VEC_RETURN_IF_ERROR(SaveEdgeList(world.value().graph, graph_path));
  INF2VEC_RETURN_IF_ERROR(SaveActionLog(world.value().log, actions_path));
  std::printf("wrote %s (%u users, %llu edges)\n", graph_path.c_str(),
              world.value().graph.num_users(),
              static_cast<unsigned long long>(
                  world.value().graph.num_edges()));
  std::printf("wrote %s (%zu episodes, %llu actions)\n",
              actions_path.c_str(), world.value().log.num_episodes(),
              static_cast<unsigned long long>(
                  world.value().log.num_actions()));
  return Status::OK();
}

Status RunTrain(const FlagParser& flags) {
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) return Status::InvalidArgument("--model is required");
  SocialGraph graph;
  ActionLog log;
  INF2VEC_RETURN_IF_ERROR(LoadWorldInputs(flags, &graph, &log));
  Result<Inf2vecConfig> config = ConfigFromFlags(flags);
  INF2VEC_RETURN_IF_ERROR(config.status());

  Result<Inf2vecModel> model =
      Inf2vecModel::Train(graph, log, config.value());
  INF2VEC_RETURN_IF_ERROR(model.status());
  INF2VEC_RETURN_IF_ERROR(
      SaveEmbeddings(model.value().embeddings(), model_path));
  std::printf("trained K=%u on %zu episodes; model -> %s\n",
              config.value().dim, log.num_episodes(), model_path.c_str());
  return Status::OK();
}

Status RunScore(const FlagParser& flags) {
  Result<EmbeddingStore> store =
      LoadEmbeddings(flags.GetString("model", ""));
  INF2VEC_RETURN_IF_ERROR(store.status());
  Result<int64_t> source = flags.GetInt("source", -1);
  INF2VEC_RETURN_IF_ERROR(source.status());
  Result<int64_t> target = flags.GetInt("target", -1);
  INF2VEC_RETURN_IF_ERROR(target.status());
  if (source.value() < 0 || target.value() < 0 ||
      source.value() >= store.value().num_users() ||
      target.value() >= store.value().num_users()) {
    return Status::InvalidArgument("--source/--target out of range");
  }
  std::printf("x(%lld -> %lld) = %+.6f\n",
              static_cast<long long>(source.value()),
              static_cast<long long>(target.value()),
              store.value().Score(static_cast<UserId>(source.value()),
                                  static_cast<UserId>(target.value())));
  return Status::OK();
}

Status RunTop(const FlagParser& flags) {
  Result<EmbeddingStore> store =
      LoadEmbeddings(flags.GetString("model", ""));
  INF2VEC_RETURN_IF_ERROR(store.status());
  Result<int64_t> source = flags.GetInt("source", -1);
  INF2VEC_RETURN_IF_ERROR(source.status());
  Result<int64_t> k = flags.GetInt("k", 10);
  INF2VEC_RETURN_IF_ERROR(k.status());
  if (source.value() < 0 || source.value() >= store.value().num_users()) {
    return Status::InvalidArgument("--source out of range");
  }
  const UserId u = static_cast<UserId>(source.value());

  std::vector<UserId> order(store.value().num_users());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    return store.value().Score(u, a) > store.value().Score(u, b);
  });
  std::printf("top-%lld users most influenced by %u:\n",
              static_cast<long long>(k.value()), u);
  int64_t printed = 0;
  for (UserId v : order) {
    if (v == u) continue;
    std::printf("  %-8u %+.6f\n", v, store.value().Score(u, v));
    if (++printed >= k.value()) break;
  }
  return Status::OK();
}

Status RunEvaluate(const FlagParser& flags) {
  SocialGraph graph;
  ActionLog log;
  INF2VEC_RETURN_IF_ERROR(LoadWorldInputs(flags, &graph, &log));
  Result<EmbeddingStore> store =
      LoadEmbeddings(flags.GetString("model", ""));
  INF2VEC_RETURN_IF_ERROR(store.status());
  if (store.value().num_users() < graph.num_users()) {
    return Status::InvalidArgument("model smaller than graph user space");
  }
  Result<Aggregation> aggregation =
      ParseAggregation(flags.GetString("aggregation", "Ave"));
  INF2VEC_RETURN_IF_ERROR(aggregation.status());
  const EmbeddingPredictor predictor("model", &store.value(),
                                     aggregation.value());

  const std::string task = flags.GetString("task", "activation");
  RankingMetrics metrics;
  if (task == "activation") {
    metrics = EvaluateActivation(predictor, graph, log);
  } else if (task == "diffusion") {
    DiffusionTaskOptions options;
    Result<double> fraction =
        flags.GetDouble("seed-fraction", options.seed_fraction);
    INF2VEC_RETURN_IF_ERROR(fraction.status());
    options.seed_fraction = fraction.value();
    Rng rng(1);
    metrics = EvaluateDiffusion(predictor, graph.num_users(), log, options,
                                rng);
  } else {
    return Status::InvalidArgument("--task must be activation or diffusion");
  }
  ResultTable table(task + " evaluation");
  table.AddRow("model", metrics);
  table.Print();
  std::printf("episodes evaluated: %zu\n", metrics.num_queries);
  return Status::OK();
}

Status RunExportText(const FlagParser& flags) {
  Result<EmbeddingStore> store =
      LoadEmbeddings(flags.GetString("model", ""));
  INF2VEC_RETURN_IF_ERROR(store.status());
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return Status::InvalidArgument("--out is required");
  INF2VEC_RETURN_IF_ERROR(ExportEmbeddingsText(store.value(), out));
  std::printf("exported %u x %u embeddings -> %s\n",
              store.value().num_users(), store.value().dim(), out.c_str());
  return Status::OK();
}

std::string UsageText() {
  return
      "inf2vec_cli <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate     synthesize a digg/flickr-like dataset to TSV files\n"
      "               --profile digg|flickr --out DIR [--users N --items N"
      " --seed S]\n"
      "  train        train Inf2vec on TSV inputs, save a binary model\n"
      "               --graph F --actions F --model OUT [--dim --alpha"
      " --length --epochs --lr --negatives --seed --threads --local-only"
      " --bfs-context]\n"
      "               --threads N: parallel (Hogwild) training; 1 = serial"
      " (default), 0 = all cores\n"
      "  score        print x(u -> v)\n"
      "               --model F --source U --target V\n"
      "  top          print the k users most influenced by a user\n"
      "               --model F --source U [--k 10]\n"
      "  evaluate     run a paper evaluation task against a model\n"
      "               --graph F --actions F --model F [--task"
      " activation|diffusion --aggregation Ave|Sum|Max|Latest]\n"
      "  export-text  dump a model to a text matrix\n"
      "               --model F --out F\n";
}

Status Dispatch(const FlagParser& flags) {
  if (flags.positional().empty()) {
    return Status::InvalidArgument("missing command\n" + UsageText());
  }
  const std::string& command = flags.positional()[0];
  if (command == "generate") return RunGenerate(flags);
  if (command == "train") return RunTrain(flags);
  if (command == "score") return RunScore(flags);
  if (command == "top") return RunTop(flags);
  if (command == "evaluate") return RunEvaluate(flags);
  if (command == "export-text") return RunExportText(flags);
  return Status::InvalidArgument("unknown command '" + command + "'\n" +
                                 UsageText());
}

}  // namespace cli
}  // namespace inf2vec
