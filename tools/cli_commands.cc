#include "cli_commands.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <numeric>
#include <thread>

#include "action/action_log_io.h"
#include "ckpt/checkpoint.h"
#include "ckpt/incremental.h"
#include "core/inf2vec_model.h"
#include "embedding/model_io.h"
#include "eval/activation_task.h"
#include "eval/diffusion_task.h"
#include "eval/harness.h"
#include "graph/graph_io.h"
#include "kernels/kernels.h"
#include "obs/access_log.h"
#include "obs/build_info.h"
#include "obs/heap_profiler.h"
#include "obs/http_server.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/request_obs.h"
#include "obs/run_report.h"
#include "obs/run_status.h"
#include "obs/snapshotter.h"
#include "obs/trace.h"
#include "serve/influence_service.h"
#include "serve/model_swapper.h"
#include "serve/serve_endpoints.h"
#include "shard/coordinator.h"
#include "shard/shard_service.h"
#include "shard/shard_split.h"
#include "synth/world_generator.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace inf2vec {
namespace cli {
namespace {

/// Run report for the in-flight command; non-null only while Dispatch is
/// executing with --metrics-out, so the Run* commands can contribute
/// config echo, phases, and epoch rows.
obs::RunReport* g_active_report = nullptr;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Applies the global observability flags (--log-level, --metrics-out,
/// --trace-out, --serve-port, --metrics-snapshot-out) before the command
/// runs. Any of --metrics-out / --serve-port / --metrics-snapshot-out
/// turns metric recording on; the registry is reset once so every sink
/// sees the same run-scoped counts.
Status SetupObservability(const FlagParser& flags) {
  // Pin the SIMD backend before any kernel call dispatches. "auto" is the
  // CPUID-selected default made explicit.
  const std::string kernel_name = flags.GetString("kernel", "");
  if (!kernel_name.empty()) {
    kernels::Isa isa;
    if (!kernels::ParseIsaName(kernel_name, &isa)) {
      return Status::InvalidArgument(
          "--kernel must be one of scalar, avx2, auto");
    }
    if (!kernels::SetActiveIsa(isa)) {
      return Status::InvalidArgument(
          std::string("--kernel ") + kernels::IsaName(isa) +
          " requested but that backend is not available in this "
          "binary/CPU");
    }
    INF2VEC_LOG(Info) << "kernel backend pinned to "
                      << kernels::IsaName(kernels::ActiveIsa());
  }
  const std::string level_name = flags.GetString("log-level", "");
  if (!level_name.empty()) {
    LogLevel level;
    if (!ParseLogLevel(level_name, &level)) {
      return Status::InvalidArgument(
          "--log-level must be one of debug, info, warning, error, fatal");
    }
    SetMinLogLevel(level);
  }
  const bool want_metrics =
      !flags.GetString("metrics-out", "").empty() || flags.Has("serve-port") ||
      !flags.GetString("metrics-snapshot-out", "").empty();
  if (want_metrics) {
    obs::MetricsRegistry::Default().Reset();
    obs::EnableMetrics(true);
    obs::InstallThreadPoolMetrics();
  }
  if (!flags.GetString("trace-out", "").empty()) {
    obs::TraceCollector::Default().Clear();
    obs::TraceCollector::Default().set_enabled(true);
  }
  // Whole-run CPU profile: armed before the command body, disarmed (and
  // written as folded stacks) by Dispatch after it returns.
  if (!flags.GetString("profile-out", "").empty()) {
    INF2VEC_RETURN_IF_ERROR(obs::CpuProfiler::Default().Start());
  }
  // Whole-run sampling heap profile, same lifecycle as --profile-out.
  if (!flags.GetString("heap-profile-out", "").empty()) {
    obs::HeapProfiler::Options options;
    Result<int64_t> period = flags.GetInt(
        "heap-profile-period", static_cast<int64_t>(options.sample_period_bytes));
    INF2VEC_RETURN_IF_ERROR(period.status());
    if (period.value() <= 0) {
      return Status::InvalidArgument("--heap-profile-period must be positive");
    }
    options.sample_period_bytes = static_cast<uint64_t>(period.value());
    INF2VEC_RETURN_IF_ERROR(obs::HeapProfiler::Default().Start(options));
  }
  return Status::OK();
}

/// RankingMetrics as the report's "eval" payload.
obs::JsonValue EvalSection(const std::string& task,
                           const RankingMetrics& metrics) {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("task", task);
  out.Set("auc", metrics.auc);
  out.Set("map", metrics.map);
  out.Set("p10", metrics.p10);
  out.Set("p50", metrics.p50);
  out.Set("p100", metrics.p100);
  out.Set("num_queries", metrics.num_queries);
  return out;
}


/// Loads the graph + action log named by --graph / --actions.
Status LoadWorldInputs(const FlagParser& flags, SocialGraph* graph,
                       ActionLog* log) {
  const std::string graph_path = flags.GetString("graph", "");
  const std::string actions_path = flags.GetString("actions", "");
  if (graph_path.empty() || actions_path.empty()) {
    return Status::InvalidArgument("--graph and --actions are required");
  }
  Result<SocialGraph> g = LoadEdgeListAutoSize(graph_path);
  INF2VEC_RETURN_IF_ERROR(g.status());
  Result<ActionLog> a = LoadActionLog(actions_path);
  INF2VEC_RETURN_IF_ERROR(a.status());
  *graph = std::move(g).value();
  *log = std::move(a).value();
  // Action ids must fit the graph's user space.
  for (const DiffusionEpisode& e : log->episodes()) {
    for (const Adoption& adoption : e.adoptions()) {
      if (adoption.user >= graph->num_users()) {
        return Status::InvalidArgument(
            "action log references user beyond the graph's id space");
      }
    }
  }
  return Status::OK();
}

Result<Inf2vecConfig> ConfigFromFlags(const FlagParser& flags) {
  Inf2vecConfig config;
  Result<int64_t> dim = flags.GetInt("dim", config.dim);
  INF2VEC_RETURN_IF_ERROR(dim.status());
  config.dim = static_cast<uint32_t>(dim.value());
  Result<double> alpha = flags.GetDouble("alpha", config.context.alpha);
  INF2VEC_RETURN_IF_ERROR(alpha.status());
  config.context.alpha = alpha.value();
  Result<int64_t> length = flags.GetInt("length", config.context.length);
  INF2VEC_RETURN_IF_ERROR(length.status());
  config.context.length = static_cast<uint32_t>(length.value());
  Result<int64_t> epochs = flags.GetInt("epochs", config.epochs);
  INF2VEC_RETURN_IF_ERROR(epochs.status());
  config.epochs = static_cast<uint32_t>(epochs.value());
  Result<double> lr = flags.GetDouble("lr", config.sgd.learning_rate);
  INF2VEC_RETURN_IF_ERROR(lr.status());
  config.sgd.learning_rate = lr.value();
  Result<int64_t> negatives =
      flags.GetInt("negatives", config.sgd.num_negatives);
  INF2VEC_RETURN_IF_ERROR(negatives.status());
  config.sgd.num_negatives = static_cast<uint32_t>(negatives.value());
  Result<int64_t> seed = flags.GetInt("seed", config.seed);
  INF2VEC_RETURN_IF_ERROR(seed.status());
  config.seed = static_cast<uint64_t>(seed.value());
  Result<int64_t> threads = flags.GetInt("threads", config.num_threads);
  INF2VEC_RETURN_IF_ERROR(threads.status());
  if (threads.value() < 0) {
    return Status::InvalidArgument(
        "--threads must be >= 0 (0 = all hardware threads)");
  }
  config.num_threads = static_cast<uint32_t>(threads.value());
  if (flags.GetBool("local-only", false)) config.context.alpha = 1.0;
  if (flags.GetBool("bfs-context", false)) {
    config.context.strategy = LocalContextStrategy::kForwardBfs;
  }
  if (config.dim == 0 || config.context.length == 0 || config.epochs == 0) {
    return Status::InvalidArgument("dim, length and epochs must be positive");
  }
  return config;
}

}  // namespace

Status RunGenerate(const FlagParser& flags) {
  const std::string out_dir = flags.GetString("out", "");
  if (out_dir.empty()) return Status::InvalidArgument("--out is required");
  const std::string profile_name = flags.GetString("profile", "digg");

  synth::WorldProfile profile;
  if (profile_name == "digg") {
    profile = synth::WorldProfile::DiggLike();
  } else if (profile_name == "flickr") {
    profile = synth::WorldProfile::FlickrLike();
  } else {
    return Status::InvalidArgument("--profile must be digg or flickr");
  }
  Result<int64_t> users = flags.GetInt("users", profile.num_users);
  INF2VEC_RETURN_IF_ERROR(users.status());
  profile.num_users = static_cast<uint32_t>(users.value());
  Result<int64_t> items = flags.GetInt("items", profile.num_items);
  INF2VEC_RETURN_IF_ERROR(items.status());
  profile.num_items = static_cast<uint32_t>(items.value());
  Result<int64_t> seed = flags.GetInt("seed", 42);
  INF2VEC_RETURN_IF_ERROR(seed.status());

  Rng rng(static_cast<uint64_t>(seed.value()));
  Result<synth::World> world = synth::GenerateWorld(profile, rng);
  INF2VEC_RETURN_IF_ERROR(world.status());

  const std::string graph_path = out_dir + "/graph.tsv";
  const std::string actions_path = out_dir + "/actions.tsv";
  INF2VEC_RETURN_IF_ERROR(SaveEdgeList(world.value().graph, graph_path));
  INF2VEC_RETURN_IF_ERROR(SaveActionLog(world.value().log, actions_path));
  INF2VEC_LOG(Info) << "wrote " << graph_path << " ("
                    << world.value().graph.num_users() << " users, "
                    << world.value().graph.num_edges() << " edges)";
  INF2VEC_LOG(Info) << "wrote " << actions_path << " ("
                    << world.value().log.num_episodes() << " episodes, "
                    << world.value().log.num_actions() << " actions)";
  return Status::OK();
}

Status RunTrain(const FlagParser& flags) {
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) return Status::InvalidArgument("--model is required");
  const std::string eval_task = flags.GetString("eval-task", "");
  if (!eval_task.empty() && eval_task != "activation" &&
      eval_task != "diffusion") {
    return Status::InvalidArgument(
        "--eval-task must be activation or diffusion");
  }
  const std::string checkpoint_dir = flags.GetString("checkpoint-dir", "");
  const bool resume = flags.GetBool("resume", false);
  if (resume && checkpoint_dir.empty()) {
    return Status::InvalidArgument("--resume requires --checkpoint-dir");
  }

  // A resumed run needs no corpus inputs — the checkpoint carries the
  // flattened pairs (in their exact shuffled order) and frequencies —
  // unless --eval-task asks for a post-train evaluation over them.
  const auto load_start = std::chrono::steady_clock::now();
  SocialGraph graph;
  ActionLog log;
  if (!resume || !eval_task.empty()) {
    INF2VEC_RETURN_IF_ERROR(LoadWorldInputs(flags, &graph, &log));
  }
  const double load_seconds = SecondsSince(load_start);
  Result<Inf2vecConfig> config_result = ConfigFromFlags(flags);
  INF2VEC_RETURN_IF_ERROR(config_result.status());
  Inf2vecConfig config = config_result.value();

  obs::RunReport* report = g_active_report;
  if (report != nullptr) {
    report->SetConfig("dim", config.dim);
    report->SetConfig("alpha", config.context.alpha);
    report->SetConfig("length", config.context.length);
    report->SetConfig("epochs", config.epochs);
    report->SetConfig("learning_rate", config.sgd.learning_rate);
    report->SetConfig("num_negatives", config.sgd.num_negatives);
    report->SetConfig("seed", config.seed);
    report->SetConfig("num_threads", config.num_threads);
    report->SetConfig("shuffle_pairs", config.shuffle_pairs);
    report->SetConfig(
        "local_context",
        config.context.strategy == LocalContextStrategy::kForwardBfs
            ? "forward_bfs"
            : "random_walk_restart");
    report->AddPhase("load", load_seconds);
  }

  // Per-epoch progress/report hook. Either sink turns on objective
  // accumulation; leave both off for maximum-throughput runs.
  const bool progress = flags.GetBool("progress", false);
  if (progress || report != nullptr) {
    config.epoch_callback = [report, progress](const EpochStats& stats) {
      if (report != nullptr) {
        report->AddEpoch({stats.epoch, stats.objective, stats.learning_rate,
                          stats.pairs, stats.seconds,
                          stats.pairs_per_second});
      }
      if (progress) {
        const double eta_seconds =
            stats.seconds *
            static_cast<double>(stats.total_epochs - stats.epoch - 1);
        std::fprintf(stderr,
                     "epoch %u/%u objective=%.6f pairs/s=%.0f eta=%.1fs\n",
                     stats.epoch + 1, stats.total_epochs, stats.objective,
                     stats.pairs_per_second, eta_seconds);
      }
    };
  }

  // Durable checkpoints: the writer persists the full resumable training
  // state every --checkpoint-every epochs (and prunes beyond --keep-last);
  // --resume restarts from the newest checkpoint instead of epoch 0.
  std::unique_ptr<ckpt::CheckpointWriter> writer;
  uint64_t config_hash = 0;
  if (!checkpoint_dir.empty()) {
    ckpt::CheckpointOptions ckpt_options;
    ckpt_options.dir = checkpoint_dir;
    Result<int64_t> every = flags.GetInt("checkpoint-every", 1);
    INF2VEC_RETURN_IF_ERROR(every.status());
    if (every.value() <= 0) {
      return Status::InvalidArgument("--checkpoint-every must be positive");
    }
    ckpt_options.every = static_cast<uint32_t>(every.value());
    Result<int64_t> keep = flags.GetInt("keep-last", 3);
    INF2VEC_RETURN_IF_ERROR(keep.status());
    if (keep.value() < 0) {
      return Status::InvalidArgument(
          "--keep-last must be >= 0 (0 keeps every checkpoint)");
    }
    ckpt_options.keep_last_n = static_cast<uint32_t>(keep.value());
    config_hash = ckpt::HashTrainingConfig(config);
    writer =
        std::make_unique<ckpt::CheckpointWriter>(ckpt_options, config_hash);
    config.checkpoint_callback = writer->AsCallback();
    if (report != nullptr) {
      report->SetConfig("checkpoint_dir", checkpoint_dir);
      report->SetConfig("checkpoint_every", ckpt_options.every);
      report->SetConfig("resume", resume);
    }
  }

  const auto train_start = std::chrono::steady_clock::now();
  Result<Inf2vecModel> model = [&]() -> Result<Inf2vecModel> {
    if (!resume) return Inf2vecModel::Train(graph, log, config);
    Result<ckpt::CheckpointState> state =
        ckpt::ReadLatestCheckpoint(checkpoint_dir, config_hash);
    if (!state.ok()) return state.status();
    INF2VEC_LOG(Info) << "resuming from checkpoint at epoch "
                      << state.value().epochs_completed << "/"
                      << config.epochs << " (" << checkpoint_dir << ")";
    return Inf2vecModel::ResumeFromState(
        ckpt::ToResumeState(std::move(state).value()), config);
  }();
  INF2VEC_RETURN_IF_ERROR(model.status());
  const double train_seconds = SecondsSince(train_start);
  if (report != nullptr) {
    // Phase split measured inside Train() (corpus build vs SGD epochs).
    const obs::MetricsRegistry::Snapshot snapshot =
        obs::MetricsRegistry::Default().Scrape();
    report->AddPhase("corpus",
                     snapshot.GaugeOr("train.corpus_seconds", 0.0));
    report->AddPhase("sgd", snapshot.GaugeOr("train.sgd_seconds", 0.0));
    report->AddPhase("train", train_seconds);
  }

  // The saved artifact carries its own provenance (served back at /modelz
  // when the model is loaded by `serve`).
  ModelMetadata metadata;
  metadata.aggregation = AggregationName(config.aggregation);
  metadata.dim = config.dim;
  metadata.context_length = config.context.length;
  metadata.alpha = config.context.alpha;
  metadata.epochs = config.epochs;
  metadata.learning_rate = config.sgd.learning_rate;
  metadata.num_negatives = config.sgd.num_negatives;
  metadata.seed = config.seed;
  metadata.num_threads = config.num_threads;
  metadata.git_sha = obs::GetBuildInfo().git_sha;
  INF2VEC_RETURN_IF_ERROR(
      SaveModelArtifact(model.value().embeddings(), metadata, model_path));
  if (resume) {
    INF2VEC_LOG(Info) << "resumed training to epoch " << config.epochs
                      << "; model -> " << model_path;
  } else {
    INF2VEC_LOG(Info) << "trained K=" << config.dim << " on "
                      << log.num_episodes() << " episodes; model -> "
                      << model_path;
  }

  // Optional single-run train+eval: score the fresh model on the training
  // world and attach the result to the report.
  if (!eval_task.empty()) {
    const auto eval_start = std::chrono::steady_clock::now();
    const EmbeddingPredictor predictor = model.value().Predictor();
    RankingMetrics metrics;
    if (eval_task == "activation") {
      metrics = EvaluateActivation(predictor, graph, log);
    } else {
      DiffusionTaskOptions options;
      Result<double> fraction =
          flags.GetDouble("seed-fraction", options.seed_fraction);
      INF2VEC_RETURN_IF_ERROR(fraction.status());
      options.seed_fraction = fraction.value();
      Rng rng(1);
      metrics = EvaluateDiffusion(predictor, graph.num_users(), log, options,
                                  rng);
    }
    if (report != nullptr) {
      report->AddPhase("eval", SecondsSince(eval_start));
      report->SetSection("eval", EvalSection(eval_task, metrics));
    }
    ResultTable table(eval_task + " evaluation");
    table.AddRow("model", metrics);
    table.Print();
  }
  return Status::OK();
}

Status RunUpdate(const FlagParser& flags) {
  const std::string model_in = flags.GetString("model", "");
  const std::string out = flags.GetString("out", "");
  const std::string graph_path = flags.GetString("graph", "");
  const std::string delta_path = flags.GetString("delta", "");
  if (model_in.empty() || out.empty() || graph_path.empty() ||
      delta_path.empty()) {
    return Status::InvalidArgument(
        "update requires --model, --graph, --delta and --out");
  }

  Result<ModelArtifact> artifact = LoadModelArtifact(model_in);
  INF2VEC_RETURN_IF_ERROR(artifact.status());
  Result<SocialGraph> graph = LoadEdgeListAutoSize(graph_path);
  INF2VEC_RETURN_IF_ERROR(graph.status());
  Result<ActionLog> delta = LoadActionLog(delta_path);
  INF2VEC_RETURN_IF_ERROR(delta.status());
  for (const DiffusionEpisode& e : delta.value().episodes()) {
    for (const Adoption& adoption : e.adoptions()) {
      if (adoption.user >= graph.value().num_users()) {
        return Status::InvalidArgument(
            "delta log references user beyond the graph's id space");
      }
    }
  }

  // The base training config is reconstructed from the artifact's
  // provenance metadata so the delta pass trains the same model family
  // (legacy zero fields fall back to the paper defaults).
  const ModelMetadata& meta = artifact.value().metadata;
  Inf2vecConfig base_config;
  base_config.dim = artifact.value().store.dim();
  if (meta.context_length > 0) base_config.context.length = meta.context_length;
  if (meta.alpha > 0.0) base_config.context.alpha = meta.alpha;
  if (meta.learning_rate > 0.0) base_config.sgd.learning_rate =
      meta.learning_rate;
  if (meta.num_negatives > 0) base_config.sgd.num_negatives =
      meta.num_negatives;
  Result<Aggregation> aggregation = ParseAggregation(meta.aggregation);
  if (aggregation.ok()) base_config.aggregation = aggregation.value();
  Result<int64_t> threads = flags.GetInt("threads", 1);
  INF2VEC_RETURN_IF_ERROR(threads.status());
  if (threads.value() < 0) {
    return Status::InvalidArgument(
        "--threads must be >= 0 (0 = all hardware threads)");
  }
  base_config.num_threads = static_cast<uint32_t>(threads.value());

  ckpt::IncrementalOptions options;
  Result<int64_t> epochs = flags.GetInt("epochs", options.epochs);
  INF2VEC_RETURN_IF_ERROR(epochs.status());
  if (epochs.value() <= 0) {
    return Status::InvalidArgument("--epochs must be positive");
  }
  options.epochs = static_cast<uint32_t>(epochs.value());
  Result<double> lr_scale = flags.GetDouble("lr-scale", options.lr_scale);
  INF2VEC_RETURN_IF_ERROR(lr_scale.status());
  options.lr_scale = lr_scale.value();
  Result<int64_t> seed = flags.GetInt("seed", options.seed);
  INF2VEC_RETURN_IF_ERROR(seed.status());
  options.seed = static_cast<uint64_t>(seed.value());

  const uint32_t base_users = artifact.value().store.num_users();
  const auto update_start = std::chrono::steady_clock::now();
  Result<Inf2vecModel> updated = ckpt::IncrementalUpdate(
      std::move(artifact.value().store), graph.value(), delta.value(),
      base_config, options);
  INF2VEC_RETURN_IF_ERROR(updated.status());
  if (g_active_report != nullptr) {
    g_active_report->SetConfig("delta_episodes",
                               delta.value().num_episodes());
    g_active_report->SetConfig("epochs", options.epochs);
    g_active_report->SetConfig("lr_scale", options.lr_scale);
    g_active_report->AddPhase("update", SecondsSince(update_start));
  }

  ModelMetadata out_meta = meta;
  out_meta.dim = base_config.dim;
  out_meta.epochs = options.epochs;
  out_meta.learning_rate = base_config.sgd.learning_rate * options.lr_scale;
  out_meta.seed = options.seed;
  out_meta.num_threads = base_config.num_threads;
  out_meta.git_sha = obs::GetBuildInfo().git_sha;
  INF2VEC_RETURN_IF_ERROR(SaveModelArtifact(updated.value().embeddings(),
                                            out_meta, out));
  INF2VEC_LOG(Info) << "incrementally updated " << base_users << " -> "
                    << updated.value().embeddings().num_users()
                    << " users over " << delta.value().num_episodes()
                    << " delta episodes; model -> " << out;
  return Status::OK();
}

Status RunScore(const FlagParser& flags) {
  Result<EmbeddingStore> store =
      LoadEmbeddings(flags.GetString("model", ""));
  INF2VEC_RETURN_IF_ERROR(store.status());
  Result<int64_t> source = flags.GetInt("source", -1);
  INF2VEC_RETURN_IF_ERROR(source.status());
  Result<int64_t> target = flags.GetInt("target", -1);
  INF2VEC_RETURN_IF_ERROR(target.status());
  if (source.value() < 0 || target.value() < 0 ||
      source.value() >= store.value().num_users() ||
      target.value() >= store.value().num_users()) {
    return Status::InvalidArgument("--source/--target out of range");
  }
  std::printf("x(%lld -> %lld) = %+.6f\n",
              static_cast<long long>(source.value()),
              static_cast<long long>(target.value()),
              store.value().Score(static_cast<UserId>(source.value()),
                                  static_cast<UserId>(target.value())));
  return Status::OK();
}

Status RunTop(const FlagParser& flags) {
  Result<EmbeddingStore> store =
      LoadEmbeddings(flags.GetString("model", ""));
  INF2VEC_RETURN_IF_ERROR(store.status());
  Result<int64_t> source = flags.GetInt("source", -1);
  INF2VEC_RETURN_IF_ERROR(source.status());
  Result<int64_t> k = flags.GetInt("k", 10);
  INF2VEC_RETURN_IF_ERROR(k.status());
  if (source.value() < 0 || source.value() >= store.value().num_users()) {
    return Status::InvalidArgument("--source out of range");
  }
  const UserId u = static_cast<UserId>(source.value());

  std::vector<UserId> order(store.value().num_users());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    return store.value().Score(u, a) > store.value().Score(u, b);
  });
  std::printf("top-%lld users most influenced by %u:\n",
              static_cast<long long>(k.value()), u);
  int64_t printed = 0;
  for (UserId v : order) {
    if (v == u) continue;
    std::printf("  %-8u %+.6f\n", v, store.value().Score(u, v));
    if (++printed >= k.value()) break;
  }
  return Status::OK();
}

Status RunEvaluate(const FlagParser& flags) {
  SocialGraph graph;
  ActionLog log;
  INF2VEC_RETURN_IF_ERROR(LoadWorldInputs(flags, &graph, &log));
  Result<EmbeddingStore> store =
      LoadEmbeddings(flags.GetString("model", ""));
  INF2VEC_RETURN_IF_ERROR(store.status());
  if (store.value().num_users() < graph.num_users()) {
    return Status::InvalidArgument("model smaller than graph user space");
  }
  Result<Aggregation> aggregation =
      ParseAggregation(flags.GetString("aggregation", "Ave"));
  INF2VEC_RETURN_IF_ERROR(aggregation.status());
  const EmbeddingPredictor predictor("model", &store.value(),
                                     aggregation.value());

  const std::string task = flags.GetString("task", "activation");
  const auto eval_start = std::chrono::steady_clock::now();
  RankingMetrics metrics;
  if (task == "activation") {
    metrics = EvaluateActivation(predictor, graph, log);
  } else if (task == "diffusion") {
    DiffusionTaskOptions options;
    Result<double> fraction =
        flags.GetDouble("seed-fraction", options.seed_fraction);
    INF2VEC_RETURN_IF_ERROR(fraction.status());
    options.seed_fraction = fraction.value();
    Rng rng(1);
    metrics = EvaluateDiffusion(predictor, graph.num_users(), log, options,
                                rng);
  } else {
    return Status::InvalidArgument("--task must be activation or diffusion");
  }
  if (g_active_report != nullptr) {
    g_active_report->SetConfig("task", task);
    g_active_report->SetConfig("aggregation",
                               flags.GetString("aggregation", "Ave"));
    g_active_report->AddPhase("eval", SecondsSince(eval_start));
    g_active_report->SetSection("eval", EvalSection(task, metrics));
  }
  ResultTable table(task + " evaluation");
  table.AddRow("model", metrics);
  table.Print();
  std::printf("episodes evaluated: %zu\n", metrics.num_queries);
  return Status::OK();
}

Status RunExportText(const FlagParser& flags) {
  Result<EmbeddingStore> store =
      LoadEmbeddings(flags.GetString("model", ""));
  INF2VEC_RETURN_IF_ERROR(store.status());
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return Status::InvalidArgument("--out is required");
  INF2VEC_RETURN_IF_ERROR(ExportEmbeddingsText(store.value(), out));
  INF2VEC_LOG(Info) << "exported " << store.value().num_users() << " x "
                    << store.value().dim() << " embeddings -> " << out;
  return Status::OK();
}

Status RunQuantize(const FlagParser& flags) {
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) return Status::InvalidArgument("--model is required");
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return Status::InvalidArgument("--out is required");

  const auto start = std::chrono::steady_clock::now();
  Result<ModelArtifact> artifact = LoadModelArtifact(model_path);
  INF2VEC_RETURN_IF_ERROR(artifact.status());
  const EmbeddingStore& store = artifact.value().store;
  const QuantizedEmbeddingStore quantized =
      QuantizedEmbeddingStore::FromStore(store);
  INF2VEC_RETURN_IF_ERROR(SaveModelArtifact(store, artifact.value().metadata,
                                            out, &quantized));

  const size_t fp64_bytes =
      sizeof(double) * (2 * static_cast<size_t>(store.num_users()) *
                            store.dim() +
                        2 * static_cast<size_t>(store.num_users()));
  INF2VEC_LOG(Info) << "quantized " << store.num_users() << " x "
                    << store.dim() << " model -> " << out << " (fp64 table "
                    << fp64_bytes << " B, int8 table "
                    << quantized.TableBytes() << " B) in "
                    << SecondsSince(start) << "s";
  if (g_active_report != nullptr) {
    g_active_report->AddPhase("quantize", SecondsSince(start));
    obs::JsonValue section = obs::JsonValue::Object();
    section.Set("num_users", store.num_users());
    section.Set("dim", store.dim());
    section.Set("fp64_table_bytes", static_cast<uint64_t>(fp64_bytes));
    section.Set("int8_table_bytes",
                static_cast<uint64_t>(quantized.TableBytes()));
    g_active_report->SetSection("quantize", std::move(section));
  }
  return Status::OK();
}

Status RunShardSplit(const FlagParser& flags) {
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) return Status::InvalidArgument("--model is required");
  const std::string out_dir = flags.GetString("out-dir", "");
  if (out_dir.empty()) return Status::InvalidArgument("--out-dir is required");
  Result<int64_t> shards = flags.GetInt("shards", 0);
  INF2VEC_RETURN_IF_ERROR(shards.status());
  if (shards.value() <= 0 || shards.value() > 4096) {
    return Status::InvalidArgument("--shards must be in [1, 4096]");
  }

  const auto start = std::chrono::steady_clock::now();
  Result<std::vector<std::string>> paths = shard::SplitModelArtifact(
      model_path, out_dir, static_cast<uint32_t>(shards.value()));
  INF2VEC_RETURN_IF_ERROR(paths.status());
  for (const std::string& path : paths.value()) {
    INF2VEC_LOG(Info) << "wrote shard " << path;
  }
  INF2VEC_LOG(Info) << "split " << model_path << " into "
                    << paths.value().size() << " shard artifacts in "
                    << SecondsSince(start) << "s";
  if (g_active_report != nullptr) {
    g_active_report->SetConfig("shards", shards.value());
    g_active_report->AddPhase("shard_split", SecondsSince(start));
  }
  return Status::OK();
}

namespace {

/// Set by the signal handler installed in RunServe; checked by its wait
/// loop. A lock-free std::atomic<int> is async-signal-safe AND visible to
/// non-handler threads (RequestServeStop), which sig_atomic_t is not.
std::atomic<int> g_serve_stop{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free stop flag");

void ServeSignalHandler(int /*signum*/) {
  g_serve_stop.store(1, std::memory_order_relaxed);
}

/// Test-only: invoked right after RunServe finishes loading the model.
std::function<void()>& ServeStartupHook() {
  static std::function<void()> hook;
  return hook;
}

/// RAII: handlers must be live for the WHOLE serve lifetime — including
/// the model load, which can take seconds on big tables. A SIGINT landing
/// mid-load used to hit the default handler and kill the process without
/// unwinding; now it just marks the stop flag and RunServe exits cleanly
/// as soon as the load finishes.
class ScopedServeSignalHandlers {
 public:
  ScopedServeSignalHandlers() {
    g_serve_stop = 0;
    std::signal(SIGINT, ServeSignalHandler);
    std::signal(SIGTERM, ServeSignalHandler);
  }
  ~ScopedServeSignalHandlers() {
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
  }
};

}  // namespace

void RequestServeStop() { g_serve_stop = 1; }

void SetServeStartupHookForTest(std::function<void()> hook) {
  ServeStartupHook() = std::move(hook);
}

namespace {

/// HTTP-plane flags shared by every serving mode (plain, shard,
/// coordinator).
struct ServeHttpFlags {
  uint16_t port = 0;
  int64_t max_seconds = 0;
  uint32_t serve_threads = 4;
  uint32_t max_inflight = 256;
  std::string access_log_path;
  uint64_t slow_trace_us = 0;
  size_t tracez_capacity = 32;
};

Status ParseServeHttpFlags(const FlagParser& flags, ServeHttpFlags* out) {
  Result<int64_t> port = flags.GetInt("port", 0);
  INF2VEC_RETURN_IF_ERROR(port.status());
  if (port.value() < 0 || port.value() > 65535) {
    return Status::InvalidArgument("--port must be in [0, 65535]");
  }
  out->port = static_cast<uint16_t>(port.value());
  Result<int64_t> max_seconds = flags.GetInt("max-seconds", 0);
  INF2VEC_RETURN_IF_ERROR(max_seconds.status());
  out->max_seconds = max_seconds.value();
  Result<int64_t> serve_threads = flags.GetInt("serve-threads", 4);
  INF2VEC_RETURN_IF_ERROR(serve_threads.status());
  if (serve_threads.value() <= 0) {
    return Status::InvalidArgument("--serve-threads must be positive");
  }
  out->serve_threads = static_cast<uint32_t>(serve_threads.value());
  Result<int64_t> max_inflight = flags.GetInt("max-inflight", 256);
  INF2VEC_RETURN_IF_ERROR(max_inflight.status());
  if (max_inflight.value() <= 0) {
    return Status::InvalidArgument("--max-inflight must be positive");
  }
  out->max_inflight = static_cast<uint32_t>(max_inflight.value());
  out->access_log_path = flags.GetString("access-log", "");
  Result<int64_t> slow_trace_us = flags.GetInt("slow-trace-us", 0);
  INF2VEC_RETURN_IF_ERROR(slow_trace_us.status());
  if (slow_trace_us.value() < 0) {
    return Status::InvalidArgument("--slow-trace-us must be >= 0");
  }
  out->slow_trace_us = static_cast<uint64_t>(slow_trace_us.value());
  Result<int64_t> tracez_capacity = flags.GetInt("tracez-capacity", 32);
  INF2VEC_RETURN_IF_ERROR(tracez_capacity.status());
  if (tracez_capacity.value() <= 0) {
    return Status::InvalidArgument("--tracez-capacity must be positive");
  }
  out->tracez_capacity = static_cast<size_t>(tracez_capacity.value());
  return Status::OK();
}

/// Blocks until SIGINT/SIGTERM/RequestServeStop() or the --max-seconds
/// cap expires.
void ServeWaitLoop(int64_t max_seconds) {
  const auto start = std::chrono::steady_clock::now();
  while (g_serve_stop == 0) {
    if (max_seconds > 0 &&
        SecondsSince(start) >= static_cast<double>(max_seconds)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

/// `serve --shard`: serve one shard slice. The query surface is the
/// coordinator-facing /gather + /topk + /score over the shard's local
/// user range, plus /shardz for topology discovery.
Status RunServeShard(const FlagParser& flags) {
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) return Status::InvalidArgument("--model is required");

  serve::ServiceOptions options;
  Result<int64_t> threads = flags.GetInt("threads", 1);
  INF2VEC_RETURN_IF_ERROR(threads.status());
  if (threads.value() < 0) {
    return Status::InvalidArgument(
        "--threads must be >= 0 (0 = all hardware threads)");
  }
  options.num_threads = static_cast<uint32_t>(threads.value());
  Result<int64_t> deadline = flags.GetInt("deadline-us", 0);
  INF2VEC_RETURN_IF_ERROR(deadline.status());
  if (deadline.value() < 0) {
    return Status::InvalidArgument("--deadline-us must be >= 0");
  }
  options.default_deadline_us = static_cast<uint64_t>(deadline.value());
  const std::string aggregation_name = flags.GetString("aggregation", "");
  if (!aggregation_name.empty()) {
    Result<Aggregation> aggregation = ParseAggregation(aggregation_name);
    INF2VEC_RETURN_IF_ERROR(aggregation.status());
    options.aggregation = aggregation.value();
  }
  const std::string quant_name = flags.GetString("quantize", "none");
  if (!serve::ParseQuantModeName(quant_name, &options.quantize)) {
    return Status::InvalidArgument("--quantize must be none or int8");
  }
  obs::SetServingQuantMode(serve::QuantModeName(options.quantize));
  ServeHttpFlags http;
  INF2VEC_RETURN_IF_ERROR(ParseServeHttpFlags(flags, &http));

  obs::EnableMetrics(true);
  ScopedServeSignalHandlers signal_guard;

  const auto load_start = std::chrono::steady_clock::now();
  Result<shard::ShardService> service = shard::ShardService::Load(
      model_path, std::move(options), &obs::MetricsRegistry::Default());
  INF2VEC_RETURN_IF_ERROR(service.status());
  if (g_serve_stop != 0) {
    INF2VEC_LOG(Info) << "stop requested during shard load; exiting";
    return Status::OK();
  }
  const ShardSliceInfo& info = service.value().info();
  INF2VEC_LOG(Info) << "loaded shard " << info.shard_index << "/"
                    << info.num_shards << " of " << model_path << " (users ["
                    << info.begin_user << "," << info.end_user << ") of "
                    << info.total_users << ", dim "
                    << service.value().service().store().dim()
                    << ", quantize "
                    << serve::QuantModeName(
                           service.value().service().quant_mode())
                    << ") in " << SecondsSince(load_start) << "s";

  obs::RpczRegistry rpcz;
  obs::TracezBuffer tracez(http.tracez_capacity, http.tracez_capacity,
                           http.slow_trace_us);
  obs::AccessLog access_log;
  if (!http.access_log_path.empty()) {
    INF2VEC_RETURN_IF_ERROR(access_log.Open(http.access_log_path));
    INF2VEC_LOG(Info) << "access log -> " << http.access_log_path;
  }
  obs::RequestObservability request_obs;
  request_obs.rpcz = &rpcz;
  request_obs.tracez = &tracez;
  request_obs.access_log = access_log.is_open() ? &access_log : nullptr;

  obs::StatsServerOptions server_options;
  server_options.port = http.port;
  server_options.num_workers = http.serve_threads;
  server_options.max_inflight = http.max_inflight;
  obs::StatsServer server(server_options);
  server.SetRequestObservability(request_obs);
  shard::RegisterShardEndpoints(&server, &service.value());
  obs::RegisterRequestObsEndpoints(&server, &rpcz, &tracez);
  INF2VEC_RETURN_IF_ERROR(server.Start());

  // stdout, unbuffered: the smoke script greps this line for the port.
  std::printf("serving on http://127.0.0.1:%u (shard %u/%u users [%u,%u)"
              " /gather /topk /score /shardz /modelz /metrics /healthz)\n",
              server.port(), info.shard_index, info.num_shards,
              info.begin_user, info.end_user);
  std::fflush(stdout);
  ServeWaitLoop(http.max_seconds);
  server.Stop();
  return Status::OK();
}

/// `serve --coordinator`: the scatter-gather front-end. Connects to every
/// --backends shard at startup, then serves merged /topk and routed
/// /score in the global id space.
Status RunServeCoordinator(const FlagParser& flags) {
  const std::string backends_raw = flags.GetString("backends", "");
  shard::CoordinatorOptions options;
  for (std::string_view field : SplitString(backends_raw, ',')) {
    const std::string address(TrimString(field));
    if (!address.empty()) options.backends.push_back(address);
  }
  if (options.backends.empty()) {
    return Status::InvalidArgument(
        "--coordinator requires --backends host:port[,host:port...]");
  }
  Result<int64_t> shard_deadline = flags.GetInt("shard-deadline-ms", 250);
  INF2VEC_RETURN_IF_ERROR(shard_deadline.status());
  if (shard_deadline.value() <= 0) {
    return Status::InvalidArgument("--shard-deadline-ms must be positive");
  }
  options.shard_deadline_ms = static_cast<uint64_t>(shard_deadline.value());
  Result<int64_t> connect_deadline = flags.GetInt("connect-deadline-ms", 2000);
  INF2VEC_RETURN_IF_ERROR(connect_deadline.status());
  if (connect_deadline.value() <= 0) {
    return Status::InvalidArgument("--connect-deadline-ms must be positive");
  }
  options.connect_deadline_ms =
      static_cast<uint64_t>(connect_deadline.value());
  ServeHttpFlags http;
  INF2VEC_RETURN_IF_ERROR(ParseServeHttpFlags(flags, &http));

  obs::EnableMetrics(true);
  ScopedServeSignalHandlers signal_guard;

  // Declared before the coordinator: it keeps a pointer to rpcz for the
  // per-backend call rows.
  obs::RpczRegistry rpcz;
  obs::TracezBuffer tracez(http.tracez_capacity, http.tracez_capacity,
                           http.slow_trace_us);
  obs::AccessLog access_log;
  if (!http.access_log_path.empty()) {
    INF2VEC_RETURN_IF_ERROR(access_log.Open(http.access_log_path));
    INF2VEC_LOG(Info) << "access log -> " << http.access_log_path;
  }
  options.rpcz = &rpcz;
  options.registry = &obs::MetricsRegistry::Default();

  const auto connect_start = std::chrono::steady_clock::now();
  Result<shard::ShardCoordinator> coordinator =
      shard::ShardCoordinator::Connect(std::move(options));
  INF2VEC_RETURN_IF_ERROR(coordinator.status());
  INF2VEC_LOG(Info) << "connected to " << coordinator.value().num_shards()
                    << " shard backends (" << coordinator.value().total_users()
                    << " users, dim " << coordinator.value().dim()
                    << ", quantize "
                    << (coordinator.value().quantized() ? "int8" : "none")
                    << ", model " << coordinator.value().model_hash()
                    << ") in " << SecondsSince(connect_start) << "s";

  obs::RequestObservability request_obs;
  request_obs.rpcz = &rpcz;
  request_obs.tracez = &tracez;
  request_obs.access_log = access_log.is_open() ? &access_log : nullptr;

  obs::StatsServerOptions server_options;
  server_options.port = http.port;
  server_options.num_workers = http.serve_threads;
  server_options.max_inflight = http.max_inflight;
  obs::StatsServer server(server_options);
  server.SetRequestObservability(request_obs);
  shard::RegisterCoordinatorEndpoints(&server, &coordinator.value());
  obs::RegisterRequestObsEndpoints(&server, &rpcz, &tracez);
  INF2VEC_RETURN_IF_ERROR(server.Start());

  // stdout, unbuffered: the smoke script greps this line for the port.
  std::printf("serving on http://127.0.0.1:%u (coordinator over %u shards"
              " /topk /score /shardz /metrics /healthz /rpcz /tracez)\n",
              server.port(), coordinator.value().num_shards());
  std::fflush(stdout);
  ServeWaitLoop(http.max_seconds);
  server.Stop();
  return Status::OK();
}

}  // namespace

Status RunServe(const FlagParser& flags) {
  if (flags.GetBool("shard", false)) return RunServeShard(flags);
  if (flags.GetBool("coordinator", false)) return RunServeCoordinator(flags);
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) return Status::InvalidArgument("--model is required");

  serve::ServiceOptions options;
  Result<int64_t> cache = flags.GetInt("topk-cache", 256);
  INF2VEC_RETURN_IF_ERROR(cache.status());
  if (cache.value() < 0) {
    return Status::InvalidArgument("--topk-cache must be >= 0 (0 disables)");
  }
  options.seed_cache_capacity = static_cast<uint32_t>(cache.value());
  Result<int64_t> threads = flags.GetInt("threads", 1);
  INF2VEC_RETURN_IF_ERROR(threads.status());
  if (threads.value() < 0) {
    return Status::InvalidArgument(
        "--threads must be >= 0 (0 = all hardware threads)");
  }
  options.num_threads = static_cast<uint32_t>(threads.value());
  Result<int64_t> deadline = flags.GetInt("deadline-us", 0);
  INF2VEC_RETURN_IF_ERROR(deadline.status());
  if (deadline.value() < 0) {
    return Status::InvalidArgument("--deadline-us must be >= 0");
  }
  options.default_deadline_us = static_cast<uint64_t>(deadline.value());
  const std::string aggregation_name = flags.GetString("aggregation", "");
  if (!aggregation_name.empty()) {
    Result<Aggregation> aggregation = ParseAggregation(aggregation_name);
    INF2VEC_RETURN_IF_ERROR(aggregation.status());
    options.aggregation = aggregation.value();
  }
  const std::string quant_name = flags.GetString("quantize", "none");
  if (!serve::ParseQuantModeName(quant_name, &options.quantize)) {
    return Status::InvalidArgument("--quantize must be none or int8");
  }
  obs::SetServingQuantMode(serve::QuantModeName(options.quantize));
  Result<int64_t> port_flag = flags.GetInt("port", 0);
  INF2VEC_RETURN_IF_ERROR(port_flag.status());
  if (port_flag.value() < 0 || port_flag.value() > 65535) {
    return Status::InvalidArgument("--port must be in [0, 65535]");
  }
  Result<int64_t> max_seconds = flags.GetInt("max-seconds", 0);
  INF2VEC_RETURN_IF_ERROR(max_seconds.status());
  const bool watch_model = flags.GetBool("watch-model", false);
  Result<int64_t> watch_interval =
      flags.GetInt("watch-interval-ms", 500);
  INF2VEC_RETURN_IF_ERROR(watch_interval.status());
  if (watch_interval.value() <= 0) {
    return Status::InvalidArgument("--watch-interval-ms must be positive");
  }
  const std::string access_log_path = flags.GetString("access-log", "");
  Result<int64_t> slow_trace_us = flags.GetInt("slow-trace-us", 0);
  INF2VEC_RETURN_IF_ERROR(slow_trace_us.status());
  if (slow_trace_us.value() < 0) {
    return Status::InvalidArgument("--slow-trace-us must be >= 0");
  }
  Result<int64_t> tracez_capacity = flags.GetInt("tracez-capacity", 32);
  INF2VEC_RETURN_IF_ERROR(tracez_capacity.status());
  if (tracez_capacity.value() <= 0) {
    return Status::InvalidArgument("--tracez-capacity must be positive");
  }
  Result<int64_t> mem_budget = flags.GetInt("mem-budget-bytes", 0);
  INF2VEC_RETURN_IF_ERROR(mem_budget.status());
  if (mem_budget.value() < 0) {
    return Status::InvalidArgument(
        "--mem-budget-bytes must be >= 0 (0 = unlimited)");
  }
  Result<int64_t> mem_headroom = flags.GetInt("mem-headroom-bytes", 0);
  INF2VEC_RETURN_IF_ERROR(mem_headroom.status());
  if (mem_headroom.value() < 0) {
    return Status::InvalidArgument("--mem-headroom-bytes must be >= 0");
  }
  {
    // Soft serving budget: /score and /topk shed with 503 while accounted
    // bytes + headroom sit over the budget, and hot-swaps preflight the
    // double-resident peak against it. Set (or cleared) before the load
    // so a model too large for the budget sheds from the first request.
    obs::MemoryBudget budget;
    budget.budget_bytes = static_cast<uint64_t>(mem_budget.value());
    budget.headroom_bytes = static_cast<uint64_t>(mem_headroom.value());
    obs::SetMemoryBudget(budget);
  }

  // Serving is the one command whose metrics matter even without
  // --metrics-out: the serve counters/histograms back /metrics.
  obs::EnableMetrics(true);

  // Stop signals are catchable from here on — before the load, so a
  // SIGINT racing a slow model load exits cleanly instead of killing the
  // process via the default handler.
  ScopedServeSignalHandlers signal_guard;

  const auto load_start = std::chrono::steady_clock::now();
  serve::ModelSwapper swapper(model_path, std::move(options));
  const Status initial_load = swapper.Reload();
  if (ServeStartupHook()) ServeStartupHook()();
  INF2VEC_RETURN_IF_ERROR(initial_load);
  if (g_serve_stop != 0) {
    INF2VEC_LOG(Info) << "stop requested during model load; exiting";
    return Status::OK();
  }
  {
    const auto model = swapper.Acquire();
    INF2VEC_LOG(Info) << "loaded + warmed " << model_path << " ("
                      << model->service.store().num_users() << " users, dim "
                      << model->service.store().dim() << ", aggregation "
                      << AggregationName(
                             model->service.default_aggregation())
                      << ", quantize "
                      << serve::QuantModeName(model->service.quant_mode())
                      << ", kernel "
                      << kernels::IsaName(kernels::ActiveIsa()) << ") in "
                      << SecondsSince(load_start) << "s";
  }

  // Request-level observability. /rpcz and /tracez are always live for
  // serve (their cost is one map lookup + a ring write per request); the
  // access log only writes when --access-log names a file. Declared
  // before the server so they outlive every in-flight request.
  obs::RpczRegistry rpcz;
  obs::TracezBuffer tracez(
      static_cast<size_t>(tracez_capacity.value()),
      static_cast<size_t>(tracez_capacity.value()),
      static_cast<uint64_t>(slow_trace_us.value()));
  obs::AccessLog access_log;
  if (!access_log_path.empty()) {
    INF2VEC_RETURN_IF_ERROR(access_log.Open(access_log_path));
    INF2VEC_LOG(Info) << "access log -> " << access_log_path;
  }
  obs::RequestObservability request_obs;
  request_obs.rpcz = &rpcz;
  request_obs.tracez = &tracez;
  request_obs.access_log = access_log.is_open() ? &access_log : nullptr;

  Result<int64_t> serve_threads = flags.GetInt("serve-threads", 4);
  INF2VEC_RETURN_IF_ERROR(serve_threads.status());
  if (serve_threads.value() <= 0) {
    return Status::InvalidArgument("--serve-threads must be positive");
  }
  Result<int64_t> max_inflight = flags.GetInt("max-inflight", 256);
  INF2VEC_RETURN_IF_ERROR(max_inflight.status());
  if (max_inflight.value() <= 0) {
    return Status::InvalidArgument("--max-inflight must be positive");
  }

  obs::StatsServerOptions server_options;
  server_options.port = static_cast<uint16_t>(port_flag.value());
  server_options.num_workers = static_cast<uint32_t>(serve_threads.value());
  server_options.max_inflight = static_cast<uint32_t>(max_inflight.value());
  obs::StatsServer server(server_options);
  server.SetRequestObservability(request_obs);
  serve::RegisterServeEndpoints(&server, &swapper);
  obs::RegisterRequestObsEndpoints(&server, &rpcz, &tracez);
  obs::RegisterProfilerEndpoint(&server, &obs::CpuProfiler::Default());
  INF2VEC_RETURN_IF_ERROR(server.Start());
  if (watch_model) {
    swapper.StartWatching(static_cast<uint64_t>(watch_interval.value()));
    INF2VEC_LOG(Info) << "watching " << model_path << " for changes every "
                      << watch_interval.value() << "ms";
  }

  // stdout, unbuffered: the smoke script greps this line for the port.
  std::printf("serving on http://127.0.0.1:%u (/score /topk /modelz "
              "/reloadz /metrics /healthz /rpcz /tracez /pprofz /memz "
              "/heapz)\n",
              server.port());
  std::fflush(stdout);

  const auto serve_start = std::chrono::steady_clock::now();
  while (g_serve_stop == 0) {
    if (max_seconds.value() > 0 &&
        SecondsSince(serve_start) >= static_cast<double>(max_seconds.value())) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  swapper.StopWatching();
  server.Stop();
  INF2VEC_LOG(Info) << "serve loop exited after "
                    << SecondsSince(serve_start) << "s";
  return Status::OK();
}

std::string UsageText() {
  return
      "inf2vec_cli <command> [flags]\n"
      "\n"
      "commands:\n"
      "  generate     synthesize a digg/flickr-like dataset to TSV files\n"
      "               --profile digg|flickr --out DIR [--users N --items N"
      " --seed S]\n"
      "  train        train Inf2vec on TSV inputs, save a binary model\n"
      "               --graph F --actions F --model OUT [--dim --alpha"
      " --length --epochs --lr --negatives --seed --threads --local-only"
      " --bfs-context]\n"
      "               --threads N: parallel (Hogwild) training; 1 = serial"
      " (default), 0 = all cores\n"
      "               --progress: per-epoch status lines (objective,"
      " pairs/s, ETA) on stderr\n"
      "               --eval-task activation|diffusion: evaluate the fresh"
      " model in the same run\n"
      "               --checkpoint-dir D: durable per-epoch checkpoints"
      " [--checkpoint-every 1 --keep-last 3]\n"
      "               --resume: continue from the latest checkpoint in"
      " --checkpoint-dir (only --epochs may change)\n"
      "  update       incrementally train a saved model on delta episodes\n"
      "               --model IN --graph F --delta F --out OUT [--epochs 3"
      " --lr-scale 0.2 --seed 1 --threads 1]\n"
      "  score        print x(u -> v)\n"
      "               --model F --source U --target V\n"
      "  top          print the k users most influenced by a user\n"
      "               --model F --source U [--k 10]\n"
      "  evaluate     run a paper evaluation task against a model\n"
      "               --graph F --actions F --model F [--task"
      " activation|diffusion --aggregation Ave|Sum|Max|Latest]\n"
      "  export-text  dump a model to a text matrix\n"
      "               --model F --out F\n"
      "  quantize     append an int8 serving section to a model artifact\n"
      "               --model IN --out OUT (per-row symmetric int8 codes +\n"
      "               fp32 scales/biases; `serve --quantize int8` loads it\n"
      "               instead of re-quantizing at startup)\n"
      "  shard-split  range-partition a model artifact into N shard\n"
      "               artifacts, each stamped with an I2VSHRD1 identity\n"
      "               section (shard index, user range, whole-model\n"
      "               content hash; rejected at load on mismatch)\n"
      "               --model IN --out-dir D --shards N\n"
      "  serve        online influence-query server over a saved model:\n"
      "               /score /topk /modelz /reloadz plus the stats +\n"
      "               observability endpoints (/rpcz /tracez /pprofz)\n"
      "               --model F [--port 0 --topk-cache 256 --threads 1\n"
      "                --deadline-us 0 --aggregation Ave|Sum|Max|Latest\n"
      "                --max-seconds 0 --watch-model"
      " --watch-interval-ms 500\n"
      "                --quantize none|int8 --access-log F"
      " --slow-trace-us 0\n"
      "                --tracez-capacity 32 --mem-budget-bytes 0\n"
      "                --mem-headroom-bytes 0 --serve-threads 4\n"
      "                --max-inflight 256]\n"
      "               --serve-threads N: HTTP worker threads running the\n"
      "               handlers (the epoll event loop itself is one more)\n"
      "               --max-inflight N: bounded admission — requests over\n"
      "               N queued+executing shed with 429 OVERLOADED\n"
      "               --mem-budget-bytes N: soft serving budget; /score\n"
      "               and /topk answer 503 while accounted bytes (+ the\n"
      "               --mem-headroom-bytes slack) exceed N, and /reloadz\n"
      "               refuses swaps whose double-resident peak would blow\n"
      "               the budget (0 = unlimited; see GET /memz)\n"
      "               --access-log F: one wide JSONL event per request\n"
      "               (id, endpoint, status, per-phase micros)\n"
      "               --slow-trace-us N: /tracez slow buffer only keeps\n"
      "               requests at or above N microseconds (0 = rank all)\n"
      "               --quantize int8 serves from the int8 table (8x\n"
      "               smaller scans; uses the artifact's quantized section\n"
      "               when present, else quantizes at load)\n"
      "               --port 0 picks a free port (printed on stdout);\n"
      "               --max-seconds bounds the run, 0 = until SIGINT\n"
      "               --watch-model hot-swaps the model when the file on\n"
      "               disk changes (zero downtime; also via GET /reloadz)\n"
      "               --shard: serve one shard-split slice; answers\n"
      "               /gather /topk /score over its local user range plus\n"
      "               /shardz (plain serve refuses shard artifacts)\n"
      "               --coordinator --backends host:port,...: scatter-\n"
      "               gather front-end; fans /topk to every shard, merges\n"
      "               rankings bit-identically to a single node, answers\n"
      "               206 + degraded:true + shards_missing when a shard\n"
      "               misses its --shard-deadline-ms (default 250) or is\n"
      "               down (see docs/SHARDING.md)\n"
      "\n"
      "global flags (any command):\n"
      "  --kernel scalar|avx2|auto   pin the SIMD kernel backend (default:\n"
      "                    best supported by this CPU; scalar is the\n"
      "                    bit-exact reference path)\n"
      "  --log-level debug|info|warning|error   log threshold (default"
      " info)\n"
      "  --metrics-out F   write a structured JSON run report\n"
      "  --trace-out F     write a chrome://tracing / Perfetto trace\n"
      "  --profile-out F   sample the whole run with the SIGPROF CPU\n"
      "                    profiler, write folded stacks (flamegraph.pl /\n"
      "                    speedscope input) to F on exit\n"
      "  --heap-profile-out F   sample allocations for the whole run\n"
      "                    (operator new interposition), write folded\n"
      "                    stacks weighted by live bytes to F on exit;\n"
      "                    --heap-profile-period N sets the sampling\n"
      "                    period in bytes (default 524288)\n"
      "  --serve-port P    embedded stats server on 127.0.0.1:P for the\n"
      "                    run: /metrics (Prometheus), /statusz, /varz,\n"
      "                    /healthz; 0 = kernel-picked port\n"
      "  --metrics-snapshot-out F           append periodic registry\n"
      "                    snapshots as JSONL time series\n"
      "  --metrics-snapshot-interval-ms N   snapshot spacing (default"
      " 1000)\n";
}

Status Dispatch(const FlagParser& flags) {
  if (flags.positional().empty()) {
    return Status::InvalidArgument("missing command\n" + UsageText());
  }
  const std::string& command = flags.positional()[0];
  Status (*run)(const FlagParser&) = nullptr;
  if (command == "generate") run = RunGenerate;
  if (command == "train") run = RunTrain;
  if (command == "update") run = RunUpdate;
  if (command == "score") run = RunScore;
  if (command == "top") run = RunTop;
  if (command == "evaluate") run = RunEvaluate;
  if (command == "export-text") run = RunExportText;
  if (command == "quantize") run = RunQuantize;
  if (command == "shard-split") run = RunShardSplit;
  if (command == "serve") run = RunServe;
  if (run == nullptr) {
    return Status::InvalidArgument("unknown command '" + command + "'\n" +
                                   UsageText());
  }

  INF2VEC_RETURN_IF_ERROR(SetupObservability(flags));
  const std::string metrics_out = flags.GetString("metrics-out", "");
  const std::string trace_out = flags.GetString("trace-out", "");
  obs::RunStatus::Default().StartCommand(command);

  // Live telemetry plane: --serve-port exposes /metrics, /statusz, /varz
  // and /healthz for the lifetime of the command (port 0 = kernel-picked).
  std::unique_ptr<obs::StatsServer> server;
  if (flags.Has("serve-port")) {
    Result<int64_t> port = flags.GetInt("serve-port", 0);
    INF2VEC_RETURN_IF_ERROR(port.status());
    if (port.value() < 0 || port.value() > 65535) {
      return Status::InvalidArgument("--serve-port must be in [0, 65535]");
    }
    obs::StatsServerOptions options;
    options.port = static_cast<uint16_t>(port.value());
    server = std::make_unique<obs::StatsServer>(options);
    obs::RegisterProfilerEndpoint(server.get(), &obs::CpuProfiler::Default());
    INF2VEC_RETURN_IF_ERROR(server->Start());
    INF2VEC_LOG(Info) << "stats server on http://127.0.0.1:"
                      << server->port()
                      << " (/metrics /statusz /varz /healthz /pprofz /memz"
                      << " /heapz)";
  }

  // Periodic metrics time series: one JSONL line per interval.
  std::unique_ptr<obs::MetricsSnapshotter> snapshotter;
  const std::string snapshot_out = flags.GetString("metrics-snapshot-out", "");
  if (!snapshot_out.empty()) {
    Result<int64_t> interval =
        flags.GetInt("metrics-snapshot-interval-ms", 1000);
    INF2VEC_RETURN_IF_ERROR(interval.status());
    if (interval.value() <= 0) {
      return Status::InvalidArgument(
          "--metrics-snapshot-interval-ms must be positive");
    }
    obs::SnapshotterOptions options;
    options.path = snapshot_out;
    options.interval_ms = static_cast<uint32_t>(interval.value());
    snapshotter = std::make_unique<obs::MetricsSnapshotter>(options);
    INF2VEC_RETURN_IF_ERROR(snapshotter->Start());
  }

  obs::RunReport report(command);
  if (!metrics_out.empty()) g_active_report = &report;
  Status status;
  {
    obs::TraceSpan span(command, "cli");
    status = run(flags);
  }
  g_active_report = nullptr;
  obs::RunStatus::Default().SetPhase(status.ok() ? "done" : "failed");

  if (snapshotter != nullptr) {
    snapshotter->Stop();  // Final snapshot line + deterministic join.
    INF2VEC_LOG(Info) << "wrote " << snapshotter->lines_written()
                      << " metric snapshots -> " << snapshot_out;
  }
  if (server != nullptr) server->Stop();

  // Disarm the whole-run profiler BEFORE writing reports so its own
  // serialization work never shows up in the profile, then persist the
  // folded stacks and describe the session in the run report.
  const std::string profile_out = flags.GetString("profile-out", "");
  if (!profile_out.empty()) {
    obs::CpuProfiler& profiler = obs::CpuProfiler::Default();
    INF2VEC_RETURN_IF_ERROR(profiler.Stop());
    obs::JsonValue profile = profiler.DescribeJson();
    profile.Set("path", profile_out);
    report.SetSection("profile", std::move(profile));
    if (status.ok()) {
      INF2VEC_RETURN_IF_ERROR(profiler.WriteFolded(profile_out));
      INF2VEC_LOG(Info) << "wrote cpu profile (" << profiler.sample_count()
                        << " samples) -> " << profile_out;
    }
  }
  const std::string heap_profile_out = flags.GetString("heap-profile-out", "");
  if (!heap_profile_out.empty()) {
    obs::HeapProfiler& heap = obs::HeapProfiler::Default();
    INF2VEC_RETURN_IF_ERROR(heap.Stop());
    obs::JsonValue profile = heap.DescribeJson();
    profile.Set("path", heap_profile_out);
    report.SetSection("heap_profile", std::move(profile));
    if (status.ok()) {
      INF2VEC_RETURN_IF_ERROR(heap.WriteFolded(heap_profile_out));
      INF2VEC_LOG(Info) << "wrote heap profile (" << heap.total_samples()
                        << " samples, " << heap.sampled_live_bytes()
                        << " live sampled bytes) -> " << heap_profile_out;
    }
  }

  if (status.ok() && !metrics_out.empty()) {
    report.SetSection("environment", obs::EnvironmentJson());
    report.SetSection("memory", obs::MemoryReportJson());
    report.FinalizeFromRegistry(obs::MetricsRegistry::Default());
    INF2VEC_RETURN_IF_ERROR(report.WriteJson(metrics_out));
    INF2VEC_LOG(Info) << "wrote run report -> " << metrics_out;
  }
  if (status.ok() && !trace_out.empty()) {
    INF2VEC_RETURN_IF_ERROR(
        obs::TraceCollector::Default().WriteChromeTrace(trace_out));
    INF2VEC_LOG(Info) << "wrote trace ("
                      << obs::TraceCollector::Default().size()
                      << " spans) -> " << trace_out;
  }
  return status;
}

}  // namespace cli
}  // namespace inf2vec
