#include "graph/social_graph.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace inf2vec {

bool SocialGraph::HasEdge(UserId u, UserId v) const {
  const auto nbrs = OutNeighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

int64_t SocialGraph::EdgeId(UserId u, UserId v) const {
  const auto nbrs = OutNeighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return -1;
  return static_cast<int64_t>(out_offsets_[u] + (it - nbrs.begin()));
}

UserId SocialGraph::EdgeSrc(uint64_t e) const {
  INF2VEC_CHECK(e < out_adj_.size());
  // Offsets are non-decreasing; find the src bucket containing position e.
  const auto it = std::upper_bound(out_offsets_.begin(), out_offsets_.end(), e);
  return static_cast<UserId>((it - out_offsets_.begin()) - 1);
}

std::vector<Edge> SocialGraph::Edges() const {
  std::vector<Edge> edges;
  edges.reserve(out_adj_.size());
  for (UserId u = 0; u < num_users_; ++u) {
    for (UserId v : OutNeighbors(u)) edges.push_back({u, v});
  }
  return edges;
}

Result<SocialGraph> GraphBuilder::Build() const {
  for (const Edge& e : edges_) {
    if (e.src >= num_users_ || e.dst >= num_users_) {
      return Status::InvalidArgument(StrFormat(
          "edge (%u, %u) out of range for %u users", e.src, e.dst,
          num_users_));
    }
    if (e.src == e.dst) {
      return Status::InvalidArgument(
          StrFormat("self-loop on user %u is not allowed", e.src));
    }
  }

  std::vector<Edge> edges = edges_;
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  SocialGraph graph;
  graph.num_users_ = num_users_;
  graph.out_offsets_.assign(num_users_ + 1, 0);
  graph.in_offsets_.assign(num_users_ + 1, 0);
  graph.out_adj_.reserve(edges.size());

  for (const Edge& e : edges) {
    ++graph.out_offsets_[e.src + 1];
    ++graph.in_offsets_[e.dst + 1];
  }
  for (uint32_t i = 0; i < num_users_; ++i) {
    graph.out_offsets_[i + 1] += graph.out_offsets_[i];
    graph.in_offsets_[i + 1] += graph.in_offsets_[i];
  }

  for (const Edge& e : edges) graph.out_adj_.push_back(e.dst);

  // In-adjacency: counting sort by dst, preserving sorted src order by
  // iterating edges sorted by (src, dst) and appending per-dst.
  graph.in_adj_.assign(edges.size(), 0);
  std::vector<uint64_t> cursor(graph.in_offsets_.begin(),
                               graph.in_offsets_.end() - 1);
  for (const Edge& e : edges) {
    graph.in_adj_[cursor[e.dst]++] = e.src;
  }
  // Sources arrive in ascending order per dst because `edges` is sorted by
  // src first, so each in-neighbor list is already sorted.
  return graph;
}

}  // namespace inf2vec
