#ifndef INF2VEC_GRAPH_SOCIAL_GRAPH_H_
#define INF2VEC_GRAPH_SOCIAL_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace inf2vec {

/// Dense user identifier. Users are numbered 0..num_users-1; loaders remap
/// external ids to this dense space.
using UserId = uint32_t;

/// A directed edge (u, v): "u is a friend of v" / v follows u, so activity
/// flows u -> v (the paper's influence direction).
struct Edge {
  UserId src;
  UserId dst;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable directed social graph in compressed-sparse-row form, with both
/// out-adjacency (influence fan-out) and in-adjacency (a user's potential
/// influencers). Neighbor lists are sorted, enabling O(log d) HasEdge.
///
/// Built via GraphBuilder; copy is allowed (it is a value type) but large
/// graphs should be passed by const reference.
class SocialGraph {
 public:
  SocialGraph() = default;

  uint32_t num_users() const { return num_users_; }
  uint64_t num_edges() const { return static_cast<uint64_t>(out_adj_.size()); }

  /// Sorted out-neighbors of `u` (users that u can influence).
  std::span<const UserId> OutNeighbors(UserId u) const {
    return {out_adj_.data() + out_offsets_[u],
            out_adj_.data() + out_offsets_[u + 1]};
  }

  /// Sorted in-neighbors of `v` (users that can influence v).
  std::span<const UserId> InNeighbors(UserId v) const {
    return {in_adj_.data() + in_offsets_[v],
            in_adj_.data() + in_offsets_[v + 1]};
  }

  uint32_t OutDegree(UserId u) const {
    return static_cast<uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }

  uint32_t InDegree(UserId v) const {
    return static_cast<uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// True iff the directed edge (u, v) exists. O(log OutDegree(u)).
  bool HasEdge(UserId u, UserId v) const;

  /// Index of edge (u, v) in the edge-id space [0, num_edges), or -1 if the
  /// edge does not exist. Edge ids are stable and dense, so per-edge
  /// parameter learners (ST/EM/DE) can store probabilities in flat arrays.
  int64_t EdgeId(UserId u, UserId v) const;

  /// Source endpoint of edge id `e` (dense id space).
  UserId EdgeSrc(uint64_t e) const;
  /// Destination endpoint of edge id `e`.
  UserId EdgeDst(uint64_t e) const { return out_adj_[e]; }

  /// All edges, materialized (test/IO convenience; O(|E|)).
  std::vector<Edge> Edges() const;

 private:
  friend class GraphBuilder;

  uint32_t num_users_ = 0;
  std::vector<uint64_t> out_offsets_;  // size num_users_+1
  std::vector<UserId> out_adj_;        // grouped by src, sorted per group
  std::vector<uint64_t> in_offsets_;   // size num_users_+1
  std::vector<UserId> in_adj_;         // grouped by dst, sorted per group
};

/// Accumulates edges then freezes them into a SocialGraph. Duplicate edges
/// are collapsed; self-loops are rejected at Build time.
class GraphBuilder {
 public:
  /// `num_users` fixes the id space; edges must stay within it.
  explicit GraphBuilder(uint32_t num_users) : num_users_(num_users) {}

  /// Queues a directed edge u -> v. Out-of-range endpoints fail at Build.
  void AddEdge(UserId u, UserId v) { edges_.push_back({u, v}); }

  /// Queues both directions (for undirected source data).
  void AddUndirectedEdge(UserId u, UserId v) {
    AddEdge(u, v);
    AddEdge(v, u);
  }

  size_t pending_edges() const { return edges_.size(); }

  /// Validates and freezes into CSR form. The builder can be reused after.
  Result<SocialGraph> Build() const;

 private:
  uint32_t num_users_;
  std::vector<Edge> edges_;
};

}  // namespace inf2vec

#endif  // INF2VEC_GRAPH_SOCIAL_GRAPH_H_
