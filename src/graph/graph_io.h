#ifndef INF2VEC_GRAPH_GRAPH_IO_H_
#define INF2VEC_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/social_graph.h"
#include "util/status.h"

namespace inf2vec {

/// Loads a directed graph from edge-list text: one "src<TAB>dst" (or
/// space-separated) pair per line; '#'-prefixed lines and blank lines are
/// ignored. `num_users` must upper-bound every id in the file.
Result<SocialGraph> LoadEdgeList(const std::string& path, uint32_t num_users);

/// Like LoadEdgeList but infers num_users = 1 + max id seen.
Result<SocialGraph> LoadEdgeListAutoSize(const std::string& path);

/// Writes "src<TAB>dst" lines (sorted by src then dst).
Status SaveEdgeList(const SocialGraph& graph, const std::string& path);

}  // namespace inf2vec

#endif  // INF2VEC_GRAPH_GRAPH_IO_H_
