#ifndef INF2VEC_GRAPH_GRAPH_GENERATORS_H_
#define INF2VEC_GRAPH_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/social_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {

/// Parameters for the directed preferential-attachment generator, the
/// workhorse behind the synthetic Digg-like / Flickr-like social graphs.
/// Produces heavy-tailed in- AND out-degree distributions, as observed on
/// real follower graphs.
struct PreferentialAttachmentOptions {
  uint32_t num_users = 1000;
  /// Average number of outgoing follow edges created per arriving user.
  double mean_out_degree = 10.0;
  /// Probability a new edge targets a node by in-degree preference (the
  /// remainder picks uniformly), controlling tail heaviness.
  double preference_ratio = 0.85;
  /// Probability of also adding the reciprocal edge, modelling mutual
  /// friendships (Digg/Flickr contact links are frequently reciprocated).
  double reciprocity = 0.3;
};

/// Builds a directed scale-free graph. Ids 0..num_users-1; no self loops.
Result<SocialGraph> GeneratePreferentialAttachment(
    const PreferentialAttachmentOptions& options, Rng& rng);

/// Erdos-Renyi G(n, p) directed graph; used by tests as a null model.
Result<SocialGraph> GenerateErdosRenyi(uint32_t num_users, double edge_prob,
                                       Rng& rng);

}  // namespace inf2vec

#endif  // INF2VEC_GRAPH_GRAPH_GENERATORS_H_
