#include "graph/graph_io.h"

#include <algorithm>
#include <vector>

#include "util/io.h"
#include "util/string_util.h"

namespace inf2vec {
namespace {

Status ParseEdgeLines(const std::vector<std::string>& lines,
                      std::vector<Edge>* edges) {
  edges->clear();
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string_view trimmed = TrimString(lines[i]);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    // Accept tab or single-space separation.
    const char delim =
        trimmed.find('\t') != std::string_view::npos ? '\t' : ' ';
    const std::vector<std::string_view> fields = SplitString(trimmed, delim);
    if (fields.size() < 2) {
      return Status::InvalidArgument(
          StrFormat("line %zu: expected 'src dst'", i + 1));
    }
    uint32_t src = 0;
    uint32_t dst = 0;
    INF2VEC_RETURN_IF_ERROR(ParseUint32(fields[0], &src));
    INF2VEC_RETURN_IF_ERROR(ParseUint32(fields[1], &dst));
    edges->push_back({src, dst});
  }
  return Status::OK();
}

}  // namespace

Result<SocialGraph> LoadEdgeList(const std::string& path, uint32_t num_users) {
  std::vector<std::string> lines;
  INF2VEC_RETURN_IF_ERROR(ReadLines(path, &lines));
  std::vector<Edge> edges;
  INF2VEC_RETURN_IF_ERROR(ParseEdgeLines(lines, &edges));
  GraphBuilder builder(num_users);
  for (const Edge& e : edges) builder.AddEdge(e.src, e.dst);
  return builder.Build();
}

Result<SocialGraph> LoadEdgeListAutoSize(const std::string& path) {
  std::vector<std::string> lines;
  INF2VEC_RETURN_IF_ERROR(ReadLines(path, &lines));
  std::vector<Edge> edges;
  INF2VEC_RETURN_IF_ERROR(ParseEdgeLines(lines, &edges));
  uint32_t num_users = 0;
  for (const Edge& e : edges) {
    num_users = std::max(num_users, std::max(e.src, e.dst) + 1);
  }
  GraphBuilder builder(num_users);
  for (const Edge& e : edges) builder.AddEdge(e.src, e.dst);
  return builder.Build();
}

Status SaveEdgeList(const SocialGraph& graph, const std::string& path) {
  std::vector<std::string> lines;
  lines.reserve(graph.num_edges());
  for (UserId u = 0; u < graph.num_users(); ++u) {
    for (UserId v : graph.OutNeighbors(u)) {
      lines.push_back(StrFormat("%u\t%u", u, v));
    }
  }
  return WriteLines(path, lines);
}

}  // namespace inf2vec
