#include "graph/graph_generators.h"

#include <algorithm>
#include <vector>

namespace inf2vec {

Result<SocialGraph> GeneratePreferentialAttachment(
    const PreferentialAttachmentOptions& options, Rng& rng) {
  if (options.num_users < 2) {
    return Status::InvalidArgument(
        "preferential attachment needs at least 2 users");
  }
  if (options.mean_out_degree <= 0.0) {
    return Status::InvalidArgument("mean_out_degree must be positive");
  }

  const uint32_t n = options.num_users;
  GraphBuilder builder(n);

  // `targets` is a repeated-node urn: nodes appear once per received edge
  // plus once unconditionally, so drawing uniformly from it implements
  // "preference by in-degree (+1 smoothing)".
  std::vector<UserId> urn;
  urn.reserve(static_cast<size_t>(n * options.mean_out_degree * 1.5) + n);
  urn.push_back(0);

  for (UserId u = 1; u < n; ++u) {
    // Number of outgoing edges for the newcomer: 1 + Poisson-ish around the
    // mean, implemented as a geometric-free simple rounding with jitter to
    // avoid every node having identical degree.
    const double jitter = rng.UniformDouble(0.5, 1.5);
    uint32_t out_edges = static_cast<uint32_t>(
        std::max(1.0, options.mean_out_degree * jitter + 0.5));
    out_edges = std::min(out_edges, u);  // Cannot exceed existing nodes.

    std::vector<UserId> chosen;
    chosen.reserve(out_edges);
    uint32_t attempts = 0;
    while (chosen.size() < out_edges && attempts < out_edges * 20) {
      ++attempts;
      UserId target;
      if (rng.Bernoulli(options.preference_ratio) && !urn.empty()) {
        target = urn[rng.UniformU64(urn.size())];
      } else {
        target = static_cast<UserId>(rng.UniformU64(u));
      }
      if (target == u) continue;
      if (std::find(chosen.begin(), chosen.end(), target) != chosen.end()) {
        continue;
      }
      chosen.push_back(target);
    }

    for (UserId v : chosen) {
      builder.AddEdge(u, v);
      urn.push_back(v);
      if (rng.Bernoulli(options.reciprocity)) {
        builder.AddEdge(v, u);
        urn.push_back(u);
      }
    }
    urn.push_back(u);
  }

  return builder.Build();
}

Result<SocialGraph> GenerateErdosRenyi(uint32_t num_users, double edge_prob,
                                       Rng& rng) {
  if (edge_prob < 0.0 || edge_prob > 1.0) {
    return Status::InvalidArgument("edge_prob must be in [0, 1]");
  }
  GraphBuilder builder(num_users);
  for (UserId u = 0; u < num_users; ++u) {
    for (UserId v = 0; v < num_users; ++v) {
      if (u == v) continue;
      if (rng.Bernoulli(edge_prob)) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

}  // namespace inf2vec
