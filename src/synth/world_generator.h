#ifndef INF2VEC_SYNTH_WORLD_GENERATOR_H_
#define INF2VEC_SYNTH_WORLD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "action/action_log.h"
#include "diffusion/ic_model.h"
#include "graph/social_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {
namespace synth {

/// Knobs of the planted-truth generator. Two presets mirror the paper's
/// datasets at laptop scale; every statistic the paper's data analysis
/// reports (Table I, Fig. 1-3) is reproduced in shape by construction:
///
///  * the graph is scale-free (preferential attachment), giving power-law
///    influence-pair source/target frequencies;
///  * per-user influence power and conformity are heavy-tailed;
///  * cascades mix genuine edge propagation (IC with the planted
///    probabilities) with interest-driven spontaneous adoption, so a
///    tunable share of adoptions happens with zero active friends
///    (Fig. 3's 0.7 for Digg, 0.5 for Flickr).
struct WorldProfile {
  std::string name = "digg-like";
  uint32_t num_users = 2000;
  double mean_out_degree = 10.0;
  double preference_ratio = 0.85;
  double reciprocity = 0.3;
  uint32_t num_items = 240;

  // --- planted influence process ---
  uint32_t num_topics = 8;
  /// Pareto tail exponent for per-user influence power (smaller = heavier).
  double influence_tail = 1.6;
  /// Baseline scale of planted edge probabilities.
  double influence_scale = 0.06;
  /// Cap on any planted edge probability.
  double max_edge_prob = 0.8;
  /// Weight of topic similarity inside the planted edge probability.
  double topic_affinity_weight = 0.25;
  /// Fraction of edges that are idiosyncratic "strong ties" (close
  /// friendships whose influence is far above what the endpoints' global
  /// traits predict). This pairwise structure is what influence-aware
  /// models can learn and pure interest/similarity models cannot.
  double strong_tie_prob = 0.15;
  /// Probability multiplier on strong-tie edges.
  double strong_tie_boost = 10.0;

  // --- spontaneous (interest-driven) adoption ---
  /// Expected number of spontaneous adopters per item as a fraction of the
  /// user base; drives the zero-active-friend share of Fig. 3.
  double spontaneous_rate = 0.012;
  /// Sharpness of user topic interests (1 topic dominant vs flat).
  double interest_concentration = 6.0;

  /// Cascade horizon in rounds; spontaneous adopters arrive uniformly over
  /// it, propagation advances one round per hop.
  uint32_t horizon = 12;

  /// Spread model of the planted process. The paper's method is
  /// "data-driven ... without any prior assumption of spread models"
  /// (Section II); generating cascades under Linear Threshold instead of
  /// Independent Cascade lets tests verify that claim: Inf2vec never sees
  /// which model produced the data.
  enum class SpreadModel { kIndependentCascade, kLinearThreshold };
  SpreadModel spread_model = SpreadModel::kIndependentCascade;
  /// LT only: per-node incoming weights are the planted probabilities
  /// scaled by this factor, then capped to sum <= 1.
  double lt_weight_scale = 1.5;

  /// Digg-like preset: sparser graph, strong influence component, ~70% of
  /// adoptions spontaneous.
  static WorldProfile DiggLike();
  /// Flickr-like preset: denser graph, weaker per-edge influence, ~50%
  /// spontaneous share.
  static WorldProfile FlickrLike();
};

/// A fully materialized synthetic world: the observable data (graph +
/// action log) plus the hidden truth (edge probabilities, topic vectors)
/// that tests use to verify learners recover the planted structure.
struct World {
  WorldProfile profile;
  SocialGraph graph;
  EdgeProbabilities true_probs{SocialGraph()};
  /// Row-major num_users x num_topics, rows L1-normalized.
  std::vector<double> user_topics;
  /// Row-major num_items x num_topics, rows L1-normalized.
  std::vector<double> item_topics;
  ActionLog log;

  double UserTopic(UserId u, uint32_t t) const {
    return user_topics[static_cast<size_t>(u) * profile.num_topics + t];
  }
  double ItemTopic(ItemId i, uint32_t t) const {
    return item_topics[static_cast<size_t>(i) * profile.num_topics + t];
  }
  /// Interest of user u in item i: dot of their topic mixtures.
  double Interest(UserId u, ItemId i) const;
};

/// Generates the world. Deterministic given (profile, rng seed).
Result<World> GenerateWorld(const WorldProfile& profile, Rng& rng);

}  // namespace synth
}  // namespace inf2vec

#endif  // INF2VEC_SYNTH_WORLD_GENERATOR_H_
