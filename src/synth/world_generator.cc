#include "synth/world_generator.h"

#include <algorithm>
#include <cmath>

#include "diffusion/lt_model.h"
#include "graph/graph_generators.h"
#include "util/logging.h"

namespace inf2vec {
namespace synth {
namespace {

/// Draws a Pareto(1, tail) deviate: heavy-tailed, >= 1.
double ParetoDeviate(double tail, Rng& rng) {
  double u;
  do {
    u = rng.UniformDouble();
  } while (u <= 1e-12);
  return std::pow(u, -1.0 / tail);
}

/// Sharp topic mixture: one dominant topic, softmax-shaped tail.
void FillTopicMixture(uint32_t num_topics, double concentration, Rng& rng,
                      double* row) {
  const uint32_t main_topic =
      static_cast<uint32_t>(rng.UniformU64(num_topics));
  double total = 0.0;
  for (uint32_t t = 0; t < num_topics; ++t) {
    const double logit = (t == main_topic ? concentration : 0.0) +
                         0.25 * rng.Gaussian();
    row[t] = std::exp(logit);
    total += row[t];
  }
  for (uint32_t t = 0; t < num_topics; ++t) row[t] /= total;
}

double Dot(const double* a, const double* b, uint32_t n) {
  double sum = 0.0;
  for (uint32_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

WorldProfile WorldProfile::DiggLike() {
  // Calibrated so the cascade branching factor R = E[out-degree] * E[p] is
  // ~0.3 (subcritical): ~30% of adoptions are influence-driven, matching
  // Fig. 3's CDF(0) ~ 0.7 for Digg.
  WorldProfile p;
  p.name = "digg-like";
  p.num_users = 2000;
  p.mean_out_degree = 10.0;
  p.reciprocity = 0.3;
  p.num_items = 400;
  p.influence_scale = 0.0018;
  p.spontaneous_rate = 0.025;
  return p;
}

WorldProfile WorldProfile::FlickrLike() {
  // Denser graph, branching factor ~0.45: about half of the adoptions are
  // influence-driven, matching Fig. 3's CDF(0) ~ 0.5 for Flickr.
  WorldProfile p;
  p.name = "flickr-like";
  p.num_users = 2400;
  p.mean_out_degree = 24.0;
  p.reciprocity = 0.45;
  p.num_items = 320;
  p.influence_scale = 0.0011;
  p.spontaneous_rate = 0.02;
  p.interest_concentration = 5.0;
  return p;
}

double World::Interest(UserId u, ItemId i) const {
  return Dot(user_topics.data() + static_cast<size_t>(u) * profile.num_topics,
             item_topics.data() + static_cast<size_t>(i) * profile.num_topics,
             profile.num_topics);
}

Result<World> GenerateWorld(const WorldProfile& profile, Rng& rng) {
  if (profile.num_users < 10) {
    return Status::InvalidArgument("world needs at least 10 users");
  }
  if (profile.num_topics == 0 || profile.num_items == 0) {
    return Status::InvalidArgument("world needs topics and items");
  }

  World world;
  world.profile = profile;

  // 1. Scale-free social graph.
  PreferentialAttachmentOptions graph_opts;
  graph_opts.num_users = profile.num_users;
  graph_opts.mean_out_degree = profile.mean_out_degree;
  graph_opts.preference_ratio = profile.preference_ratio;
  graph_opts.reciprocity = profile.reciprocity;
  Result<SocialGraph> graph = GeneratePreferentialAttachment(graph_opts, rng);
  if (!graph.ok()) return graph.status();
  world.graph = std::move(graph).value();

  // 2. Hidden per-user traits: heavy-tailed influence power, milder
  // conformity, sharp topic interests.
  const uint32_t n = profile.num_users;
  const uint32_t num_topics = profile.num_topics;
  std::vector<double> power(n);
  std::vector<double> conformity(n);
  for (UserId u = 0; u < n; ++u) {
    power[u] = ParetoDeviate(profile.influence_tail, rng);
    conformity[u] = ParetoDeviate(profile.influence_tail + 1.5, rng);
  }
  world.user_topics.resize(static_cast<size_t>(n) * num_topics);
  for (UserId u = 0; u < n; ++u) {
    FillTopicMixture(num_topics, profile.interest_concentration, rng,
                     world.user_topics.data() +
                         static_cast<size_t>(u) * num_topics);
  }
  world.item_topics.resize(static_cast<size_t>(profile.num_items) *
                           num_topics);
  for (ItemId i = 0; i < profile.num_items; ++i) {
    FillTopicMixture(num_topics, profile.interest_concentration, rng,
                     world.item_topics.data() +
                         static_cast<size_t>(i) * num_topics);
  }

  // 3. Planted edge probabilities.
  world.true_probs = EdgeProbabilities(world.graph);
  for (UserId u = 0; u < n; ++u) {
    const auto nbrs = world.graph.OutNeighbors(u);
    if (nbrs.empty()) continue;
    const uint64_t first_edge =
        static_cast<uint64_t>(world.graph.EdgeId(u, nbrs[0]));
    const double* theta_u =
        world.user_topics.data() + static_cast<size_t>(u) * num_topics;
    for (size_t k = 0; k < nbrs.size(); ++k) {
      const UserId v = nbrs[k];
      const double* theta_v =
          world.user_topics.data() + static_cast<size_t>(v) * num_topics;
      const double topic_sim = Dot(theta_u, theta_v, num_topics);
      double p = profile.influence_scale * power[u] * conformity[v] *
                 (1.0 + profile.topic_affinity_weight * topic_sim);
      if (rng.Bernoulli(profile.strong_tie_prob)) {
        p *= profile.strong_tie_boost;
      }
      world.true_probs.Set(first_edge + k,
                           std::min(profile.max_edge_prob, p));
    }
  }

  // 4. Cascades: spontaneous (interest-driven) arrivals plus timed
  // propagation over the planted parameters (IC by default, LT when the
  // profile asks for it — the learners never see which).
  const bool use_lt =
      profile.spread_model == WorldProfile::SpreadModel::kLinearThreshold;
  LtWeights lt_weights(world.graph);
  if (use_lt) {
    for (uint64_t e = 0; e < world.graph.num_edges(); ++e) {
      lt_weights.Set(e, profile.lt_weight_scale * world.true_probs.Get(e));
    }
    lt_weights.NormalizeInWeights(world.graph);
  }

  const uint32_t horizon = std::max<uint32_t>(profile.horizon, 2);
  for (ItemId item = 0; item < profile.num_items; ++item) {
    // Round at which each user activates; UINT32_MAX = never.
    constexpr uint32_t kNever = 0xffffffffu;
    std::vector<uint32_t> active_round(n, kNever);
    std::vector<std::vector<UserId>> rounds(horizon + n + 2);
    uint32_t last_round = 0;
    // LT state, reset per episode; thresholds drawn lazily (< 0 = unset).
    std::vector<double> pressure;
    std::vector<double> threshold;
    if (use_lt) {
      pressure.assign(n, 0.0);
      threshold.assign(n, -1.0);
    }

    for (UserId u = 0; u < n; ++u) {
      const double interest = world.Interest(u, item);
      const double p = std::min(
          0.6, profile.spontaneous_rate * num_topics * interest);
      if (rng.Bernoulli(p)) {
        const uint32_t t = static_cast<uint32_t>(rng.UniformU64(horizon));
        active_round[u] = t;
        rounds[t].push_back(u);
        last_round = std::max(last_round, t);
      }
    }

    for (uint32_t t = 0; t <= last_round; ++t) {
      for (UserId u : rounds[t]) {
        if (active_round[u] != t) continue;  // Activated earlier elsewhere.
        const auto nbrs = world.graph.OutNeighbors(u);
        if (nbrs.empty()) continue;
        const uint64_t first_edge =
            static_cast<uint64_t>(world.graph.EdgeId(u, nbrs[0]));
        for (size_t k = 0; k < nbrs.size(); ++k) {
          const UserId v = nbrs[k];
          if (active_round[v] <= t + 1) continue;  // Already active sooner.
          bool fires;
          if (use_lt) {
            pressure[v] += lt_weights.Get(first_edge + k);
            if (threshold[v] < 0.0) threshold[v] = rng.UniformDouble();
            fires = pressure[v] >= threshold[v];
          } else {
            fires = rng.Bernoulli(world.true_probs.Get(first_edge + k));
          }
          if (fires) {
            active_round[v] = t + 1;
            rounds[t + 1].push_back(v);
            last_round = std::max(last_round, t + 1);
          }
        }
      }
    }

    // Materialize the episode with strictly ordered jittered timestamps:
    // time = round * 1000 + jitter, jitter in [0, 1000).
    DiffusionEpisode episode(item);
    uint32_t adopters = 0;
    for (UserId u = 0; u < n; ++u) {
      if (active_round[u] == kNever) continue;
      const Timestamp time =
          static_cast<Timestamp>(active_round[u]) * 1000 +
          static_cast<Timestamp>(rng.UniformU64(1000));
      episode.Add(u, time);
      ++adopters;
    }
    if (adopters < 3) continue;  // Too small to carry any signal.
    INF2VEC_CHECK_OK(episode.Finalize());
    world.log.AddEpisode(std::move(episode));
  }

  if (world.log.num_episodes() < 2) {
    return Status::Internal(
        "synthetic world produced too few episodes; raise spontaneous_rate");
  }
  return world;
}

}  // namespace synth
}  // namespace inf2vec
