#ifndef INF2VEC_CKPT_INCREMENTAL_H_
#define INF2VEC_CKPT_INCREMENTAL_H_

#include <cstdint>

#include "action/action_log.h"
#include "core/inf2vec_model.h"
#include "embedding/embedding_store.h"
#include "graph/social_graph.h"
#include "util/status.h"

namespace inf2vec {
namespace ckpt {

/// Knobs of the warm-start delta pass.
struct IncrementalOptions {
  /// SGD epochs over the delta corpus; small by design — the base model
  /// already converged, the delta only nudges it.
  uint32_t epochs = 3;
  /// Multiplier on base_config.sgd.learning_rate for the delta pass.
  /// Reduced so fresh episodes refine rather than overwrite the converged
  /// parameters (the fine-tuning convention).
  double lr_scale = 0.2;
  /// Seed of the delta pass (corpus build, new-user init, SGD stream);
  /// independent of the base run's seed.
  uint64_t seed = 1;
};

/// Incremental training: folds a delta action log (new episodes observed
/// since the base model was trained) into an already-trained
/// EmbeddingStore without a full retrain.
///
///  1. Grows the store to graph.num_users() — users unseen at base
///     training time get the paper's cold-start init (S, T ~ U[-1/K, 1/K],
///     biases 0) from Rng(options.seed).
///  2. Builds an influence corpus from ONLY the delta episodes via the
///     standard CorpusBuildOptions path (serial or pooled per
///     base_config.num_threads).
///  3. Runs options.epochs warm-start SGD epochs over that corpus at
///     learning rate base_config.sgd.learning_rate * options.lr_scale,
///     reusing Inf2vecModel::ResumeFromState as the warm-start engine.
///
/// `base_config` must be the config the base model was trained with (dim
/// must match the store); the returned model's config reflects the delta
/// pass (scaled LR, delta epochs).
Result<Inf2vecModel> IncrementalUpdate(EmbeddingStore store,
                                       const SocialGraph& graph,
                                       const ActionLog& delta,
                                       const Inf2vecConfig& base_config,
                                       const IncrementalOptions& options);

}  // namespace ckpt
}  // namespace inf2vec

#endif  // INF2VEC_CKPT_INCREMENTAL_H_
