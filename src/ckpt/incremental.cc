#include "ckpt/incremental.h"

#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace inf2vec {
namespace ckpt {

Result<Inf2vecModel> IncrementalUpdate(EmbeddingStore store,
                                       const SocialGraph& graph,
                                       const ActionLog& delta,
                                       const Inf2vecConfig& base_config,
                                       const IncrementalOptions& options) {
  if (store.num_users() == 0 || store.dim() == 0) {
    return Status::InvalidArgument("incremental update needs a trained base "
                                   "embedding store");
  }
  if (store.dim() != base_config.dim) {
    return Status::FailedPrecondition(
        "base model dim " + std::to_string(store.dim()) +
        " != base_config.dim " + std::to_string(base_config.dim));
  }
  if (delta.num_episodes() == 0) {
    return Status::InvalidArgument("delta action log has no episodes");
  }
  if (graph.num_users() < store.num_users()) {
    return Status::InvalidArgument(
        "graph covers " + std::to_string(graph.num_users()) +
        " users but the base model embeds " +
        std::to_string(store.num_users()) +
        "; the delta graph must be a superset of the base id space");
  }
  if (options.lr_scale <= 0.0) {
    return Status::InvalidArgument("lr_scale must be positive");
  }

  const uint32_t num_users = graph.num_users();
  const uint32_t new_users = num_users - store.num_users();
  Rng init_rng(options.seed);
  store.GrowTo(num_users, init_rng);

  const uint32_t num_threads =
      ThreadPool::ResolveThreadCount(base_config.num_threads);
  CorpusBuildOptions build;
  build.seed = options.seed;
  InfluenceCorpus corpus;
  if (num_threads <= 1) {
    corpus = BuildInfluenceCorpus(graph, delta, base_config.context,
                                  num_users, build);
  } else {
    ThreadPool pool(num_threads);
    build.pool = &pool;
    corpus = BuildInfluenceCorpus(graph, delta, base_config.context,
                                  num_users, build);
  }
  if (corpus.pairs.empty()) {
    return Status::InvalidArgument(
        "delta episodes produced no influence pairs");
  }

  Inf2vecConfig config = base_config;
  config.epochs = options.epochs;
  config.sgd.learning_rate *= options.lr_scale;
  // Decorrelate the delta SGD stream from both the base run and this
  // call's corpus/init stream (same convention as Train()'s phase split).
  config.seed = options.seed ^ 0x5deece66dULL;

  TrainResumeState state;
  state.epochs_completed = 0;
  state.store = std::move(store);
  state.corpus = std::move(corpus);
  Rng sgd_rng(config.seed);
  state.master_rng = sgd_rng.state();
  if (num_threads > 1) {
    state.shard_rngs.reserve(num_threads);
    for (uint32_t s = 0; s < num_threads; ++s) {
      state.shard_rngs.push_back(
          Rng(ThreadPool::ShardSeed(config.seed, s)).state());
    }
  }

  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("ckpt.incremental_updates")->Increment();
    registry.GetCounter("ckpt.incremental_new_users")->Increment(new_users);
    registry.GetCounter("ckpt.incremental_pairs")
        ->Increment(state.corpus.pairs.size());
  }
  return Inf2vecModel::ResumeFromState(std::move(state), config);
}

}  // namespace ckpt
}  // namespace inf2vec
