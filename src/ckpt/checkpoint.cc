#include "ckpt/checkpoint.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/io.h"
#include "util/thread_pool.h"

namespace inf2vec {
namespace ckpt {
namespace {

// Binary layout (host-endian; checkpoints are machine-local artifacts):
//   magic "I2VCKPT1" | u32 section_count |
//   per section: u32 tag | u64 payload_len | payload | u32 crc32(payload)
constexpr char kMagic[8] = {'I', '2', 'V', 'C', 'K', 'P', 'T', '1'};
constexpr uint32_t kSecMeta = 1;  // JSON identity/shape metadata.
constexpr uint32_t kSecEmb = 2;   // EmbeddingStore parameters.
constexpr uint32_t kSecFreq = 3;  // target_frequencies.
constexpr uint32_t kSecRng = 4;   // Master + shard RNG streams.
constexpr uint32_t kSecPair = 5;  // Pairs in checkpoint-time order.
constexpr uint32_t kFormatVersion = 1;
constexpr char kManifestName[] = "MANIFEST.json";

template <typename T>
void AppendScalar(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendDoubles(std::string* out, const double* data, size_t count) {
  out->append(reinterpret_cast<const char*>(data), count * sizeof(double));
}

/// Bounds-checked sequential reader over a section payload.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadDoubles(double* out, size_t count) {
    const size_t bytes = count * sizeof(double);
    if (size_ - pos_ < bytes) return false;
    std::memcpy(out, data_ + pos_, bytes);
    pos_ += bytes;
    return true;
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

void AppendSection(std::string* out, uint32_t tag,
                   const std::string& payload) {
  AppendScalar(out, tag);
  AppendScalar(out, static_cast<uint64_t>(payload.size()));
  out->append(payload);
  AppendScalar(out, Crc32(payload.data(), payload.size()));
}

void AppendRngState(std::string* out, const RngState& state) {
  for (uint64_t lane : state.lanes) AppendScalar(out, lane);
  AppendScalar(out, state.spare_gaussian);
  AppendScalar(out, static_cast<uint8_t>(state.has_spare_gaussian ? 1 : 0));
}

bool ReadRngState(Cursor* cursor, RngState* state) {
  for (uint64_t& lane : state->lanes) {
    if (!cursor->Read(&lane)) return false;
  }
  if (!cursor->Read(&state->spare_gaussian)) return false;
  uint8_t has = 0;
  if (!cursor->Read(&has)) return false;
  state->has_spare_gaussian = has != 0;
  return true;
}

std::string SerializeSections(
    uint64_t config_hash, uint32_t epochs_completed, uint32_t total_epochs,
    const EmbeddingStore& store,
    const std::vector<std::pair<UserId, UserId>>& pairs,
    const std::vector<uint64_t>& target_frequencies,
    const RngState& master_rng, const std::vector<RngState>& shard_rngs) {
  const uint32_t num_users = store.num_users();
  const uint32_t dim = store.dim();

  obs::JsonValue meta = obs::JsonValue::Object();
  meta.Set("version", kFormatVersion);
  meta.Set("config_hash", FormatConfigHash(config_hash));
  meta.Set("epochs_completed", epochs_completed);
  meta.Set("total_epochs", total_epochs);
  meta.Set("num_users", num_users);
  meta.Set("dim", dim);
  meta.Set("num_pairs", pairs.size());
  meta.Set("num_shards", shard_rngs.size());

  std::string emb;
  emb.reserve(8 + sizeof(double) * (2 * static_cast<size_t>(num_users) * dim +
                                    2 * static_cast<size_t>(num_users)));
  AppendScalar(&emb, num_users);
  AppendScalar(&emb, dim);
  for (uint32_t u = 0; u < num_users; ++u) {
    AppendDoubles(&emb, store.Source(u).data(), dim);
  }
  for (uint32_t u = 0; u < num_users; ++u) {
    AppendDoubles(&emb, store.Target(u).data(), dim);
  }
  for (uint32_t u = 0; u < num_users; ++u) {
    AppendScalar(&emb, store.source_bias(u));
  }
  for (uint32_t u = 0; u < num_users; ++u) {
    AppendScalar(&emb, store.target_bias(u));
  }

  std::string freq;
  freq.reserve(8 + target_frequencies.size() * sizeof(uint64_t));
  AppendScalar(&freq, static_cast<uint64_t>(target_frequencies.size()));
  for (uint64_t f : target_frequencies) AppendScalar(&freq, f);

  std::string rng;
  AppendRngState(&rng, master_rng);
  AppendScalar(&rng, static_cast<uint32_t>(shard_rngs.size()));
  for (const RngState& shard : shard_rngs) AppendRngState(&rng, shard);

  std::string pair;
  pair.reserve(8 + pairs.size() * 2 * sizeof(UserId));
  AppendScalar(&pair, static_cast<uint64_t>(pairs.size()));
  for (const auto& [u, v] : pairs) {
    AppendScalar(&pair, u);
    AppendScalar(&pair, v);
  }

  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendScalar(&out, static_cast<uint32_t>(5));
  AppendSection(&out, kSecMeta, meta.Dump(0));
  AppendSection(&out, kSecEmb, emb);
  AppendSection(&out, kSecFreq, freq);
  AppendSection(&out, kSecRng, rng);
  AppendSection(&out, kSecPair, pair);
  return out;
}

Result<uint64_t> ParseConfigHash(const std::string& text) {
  std::string digits = text;
  if (digits.rfind("0x", 0) == 0) digits = digits.substr(2);
  if (digits.empty() || digits.size() > 16) {
    return Status::InvalidArgument("malformed config_hash: " + text);
  }
  uint64_t value = 0;
  for (char c : digits) {
    int nibble;
    if (c >= '0' && c <= '9') {
      nibble = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      nibble = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      nibble = c - 'A' + 10;
    } else {
      return Status::InvalidArgument("malformed config_hash: " + text);
    }
    value = (value << 4) | static_cast<uint64_t>(nibble);
  }
  return value;
}

Status ParseMetaSection(const std::string& payload, CheckpointState* state) {
  Result<obs::JsonValue> parsed = obs::ParseJson(payload);
  if (!parsed.ok()) {
    return Status::InvalidArgument("checkpoint META section is not JSON: " +
                                   parsed.status().message());
  }
  const obs::JsonValue& meta = parsed.value();
  const obs::JsonValue* version = meta.Find("version");
  if (version == nullptr || !version->is_number()) {
    return Status::InvalidArgument("checkpoint META missing version");
  }
  if (version->AsInt() != kFormatVersion) {
    return Status::InvalidArgument(
        "unsupported checkpoint format version " +
        std::to_string(version->AsInt()));
  }
  const obs::JsonValue* hash = meta.Find("config_hash");
  if (hash == nullptr || hash->kind() != obs::JsonValue::Kind::kString) {
    return Status::InvalidArgument("checkpoint META missing config_hash");
  }
  Result<uint64_t> hash_value = ParseConfigHash(hash->AsString());
  if (!hash_value.ok()) return hash_value.status();
  state->config_hash = hash_value.value();
  const obs::JsonValue* epochs = meta.Find("epochs_completed");
  const obs::JsonValue* total = meta.Find("total_epochs");
  if (epochs == nullptr || !epochs->is_number() || total == nullptr ||
      !total->is_number()) {
    return Status::InvalidArgument("checkpoint META missing epoch counters");
  }
  state->epochs_completed = static_cast<uint32_t>(epochs->AsInt());
  state->total_epochs = static_cast<uint32_t>(total->AsInt());
  return Status::OK();
}

Status ParseEmbSection(const std::string& payload, CheckpointState* state) {
  Cursor cursor(payload.data(), payload.size());
  uint32_t num_users = 0;
  uint32_t dim = 0;
  if (!cursor.Read(&num_users) || !cursor.Read(&dim)) {
    return Status::InvalidArgument("truncated checkpoint EMB header");
  }
  if (num_users == 0 || dim == 0) {
    return Status::InvalidArgument("checkpoint EMB has empty dimensions");
  }
  const size_t values = static_cast<size_t>(num_users) * dim;
  const size_t expected = sizeof(double) * (2 * values + 2 * num_users);
  if (cursor.remaining() != expected) {
    return Status::InvalidArgument(
        "truncated checkpoint EMB section: want " + std::to_string(expected) +
        " parameter bytes, have " + std::to_string(cursor.remaining()));
  }
  EmbeddingStore store(num_users, dim);
  for (uint32_t u = 0; u < num_users; ++u) {
    cursor.ReadDoubles(store.Source(u).data(), dim);
  }
  for (uint32_t u = 0; u < num_users; ++u) {
    cursor.ReadDoubles(store.Target(u).data(), dim);
  }
  for (uint32_t u = 0; u < num_users; ++u) {
    cursor.Read(&store.mutable_source_bias(u));
  }
  for (uint32_t u = 0; u < num_users; ++u) {
    cursor.Read(&store.mutable_target_bias(u));
  }
  state->store = std::move(store);
  return Status::OK();
}

Status ParseFreqSection(const std::string& payload, CheckpointState* state) {
  Cursor cursor(payload.data(), payload.size());
  uint64_t count = 0;
  if (!cursor.Read(&count) ||
      cursor.remaining() != count * sizeof(uint64_t)) {
    return Status::InvalidArgument("truncated checkpoint FREQ section");
  }
  state->target_frequencies.resize(count);
  for (uint64_t& f : state->target_frequencies) cursor.Read(&f);
  return Status::OK();
}

Status ParseRngSection(const std::string& payload, CheckpointState* state) {
  Cursor cursor(payload.data(), payload.size());
  uint32_t num_shards = 0;
  if (!ReadRngState(&cursor, &state->master_rng) ||
      !cursor.Read(&num_shards)) {
    return Status::InvalidArgument("truncated checkpoint RNG section");
  }
  state->shard_rngs.resize(num_shards);
  for (RngState& shard : state->shard_rngs) {
    if (!ReadRngState(&cursor, &shard)) {
      return Status::InvalidArgument("truncated checkpoint RNG section");
    }
  }
  return Status::OK();
}

Status ParsePairSection(const std::string& payload, CheckpointState* state) {
  Cursor cursor(payload.data(), payload.size());
  uint64_t count = 0;
  if (!cursor.Read(&count) ||
      cursor.remaining() != count * 2 * sizeof(UserId)) {
    return Status::InvalidArgument("truncated checkpoint PAIR section");
  }
  state->pairs.resize(count);
  for (auto& [u, v] : state->pairs) {
    cursor.Read(&u);
    cursor.Read(&v);
  }
  return Status::OK();
}

void HashCombine(uint64_t* hash, const std::string& field,
                 const std::string& value) {
  constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
  for (char c : field) {
    *hash = (*hash ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  *hash = (*hash ^ '=') * kFnvPrime;
  for (char c : value) {
    *hash = (*hash ^ static_cast<unsigned char>(c)) * kFnvPrime;
  }
  *hash = (*hash ^ ';') * kFnvPrime;
}

std::string DoubleKey(double value) {
  // Exact round-trip representation so the hash never depends on printf
  // rounding defaults.
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

}  // namespace

uint64_t HashTrainingConfig(const Inf2vecConfig& config) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
  HashCombine(&hash, "dim", std::to_string(config.dim));
  HashCombine(&hash, "context.length", std::to_string(config.context.length));
  HashCombine(&hash, "context.alpha", DoubleKey(config.context.alpha));
  HashCombine(&hash, "context.global_with_replacement",
              std::to_string(config.context.global_with_replacement ? 1 : 0));
  HashCombine(&hash, "context.strategy",
              std::to_string(static_cast<int>(config.context.strategy)));
  HashCombine(&hash, "context.bfs_max_depth",
              std::to_string(config.context.bfs_max_depth));
  HashCombine(&hash, "context.walk.restart_prob",
              DoubleKey(config.context.walk.restart_prob));
  HashCombine(&hash, "context.walk.max_step_factor",
              std::to_string(config.context.walk.max_step_factor));
  HashCombine(&hash, "sgd.learning_rate",
              DoubleKey(config.sgd.learning_rate));
  HashCombine(&hash, "sgd.num_negatives",
              std::to_string(config.sgd.num_negatives));
  HashCombine(&hash, "sgd.use_biases",
              std::to_string(config.sgd.use_biases ? 1 : 0));
  HashCombine(&hash, "sgd.use_sigmoid_table",
              std::to_string(config.sgd.use_sigmoid_table ? 1 : 0));
  HashCombine(&hash, "negative_kind",
              std::to_string(static_cast<int>(config.negative_kind)));
  HashCombine(&hash, "shuffle_pairs",
              std::to_string(config.shuffle_pairs ? 1 : 0));
  HashCombine(&hash, "aggregation",
              std::to_string(static_cast<int>(config.aggregation)));
  HashCombine(&hash, "seed", std::to_string(config.seed));
  HashCombine(&hash, "num_threads",
              std::to_string(
                  ThreadPool::ResolveThreadCount(config.num_threads)));
  return hash;
}

std::string FormatConfigHash(uint64_t config_hash) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(config_hash));
  return buffer;
}

std::string SerializeCheckpoint(const CheckpointState& state) {
  return SerializeSections(state.config_hash, state.epochs_completed,
                           state.total_epochs, state.store, state.pairs,
                           state.target_frequencies, state.master_rng,
                           state.shard_rngs);
}

Result<CheckpointState> DeserializeCheckpoint(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) + sizeof(uint32_t) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "not an inf2vec checkpoint (bad magic or too short)");
  }
  uint32_t section_count = 0;
  std::memcpy(&section_count, bytes.data() + sizeof(kMagic),
              sizeof(uint32_t));
  size_t pos = sizeof(kMagic) + sizeof(uint32_t);

  CheckpointState state;
  bool have[6] = {false, false, false, false, false, false};
  for (uint32_t i = 0; i < section_count; ++i) {
    if (bytes.size() - pos < sizeof(uint32_t) + sizeof(uint64_t)) {
      return Status::InvalidArgument(
          "truncated checkpoint: section header cut short");
    }
    uint32_t tag = 0;
    uint64_t len = 0;
    std::memcpy(&tag, bytes.data() + pos, sizeof(uint32_t));
    pos += sizeof(uint32_t);
    std::memcpy(&len, bytes.data() + pos, sizeof(uint64_t));
    pos += sizeof(uint64_t);
    if (bytes.size() - pos < len + sizeof(uint32_t)) {
      return Status::InvalidArgument(
          "truncated checkpoint: section " + std::to_string(tag) +
          " payload cut short");
    }
    const std::string payload = bytes.substr(pos, len);
    pos += len;
    uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + pos, sizeof(uint32_t));
    pos += sizeof(uint32_t);
    const uint32_t actual_crc = Crc32(payload.data(), payload.size());
    if (stored_crc != actual_crc) {
      return Status::InvalidArgument(
          "checkpoint section " + std::to_string(tag) +
          " CRC mismatch: stored " + std::to_string(stored_crc) +
          ", computed " + std::to_string(actual_crc));
    }
    Status parsed = Status::OK();
    switch (tag) {
      case kSecMeta:
        parsed = ParseMetaSection(payload, &state);
        break;
      case kSecEmb:
        parsed = ParseEmbSection(payload, &state);
        break;
      case kSecFreq:
        parsed = ParseFreqSection(payload, &state);
        break;
      case kSecRng:
        parsed = ParseRngSection(payload, &state);
        break;
      case kSecPair:
        parsed = ParsePairSection(payload, &state);
        break;
      default:
        // Unknown sections are skipped for forward compatibility; the CRC
        // already vouched for their integrity.
        continue;
    }
    if (!parsed.ok()) return parsed;
    if (tag <= 5) have[tag] = true;
  }
  for (uint32_t tag = 1; tag <= 5; ++tag) {
    if (!have[tag]) {
      return Status::InvalidArgument(
          "checkpoint is missing required section " + std::to_string(tag));
    }
  }
  return state;
}

Status WriteCheckpointFile(const std::string& path,
                           const CheckpointState& state) {
  return WriteFileAtomic(path, SerializeCheckpoint(state));
}

Result<CheckpointState> ReadCheckpointFile(const std::string& path) {
  std::string bytes;
  INF2VEC_RETURN_IF_ERROR(ReadFile(path, &bytes));
  Result<CheckpointState> state = DeserializeCheckpoint(bytes);
  if (state.ok() && obs::MetricsEnabled()) {
    obs::MetricsRegistry::Default().GetCounter("ckpt.loads")->Increment();
  }
  return state;
}

Result<std::string> LatestCheckpointFile(const std::string& dir) {
  const std::string manifest_path = dir + "/" + kManifestName;
  std::string text;
  if (!ReadFile(manifest_path, &text).ok()) {
    return Status::NotFound("no checkpoint manifest in " + dir);
  }
  Result<obs::JsonValue> parsed = obs::ParseJson(text);
  if (!parsed.ok()) {
    return Status::InvalidArgument("corrupt checkpoint manifest " +
                                   manifest_path + ": " +
                                   parsed.status().message());
  }
  const obs::JsonValue* checkpoints = parsed.value().Find("checkpoints");
  if (checkpoints == nullptr ||
      checkpoints->kind() != obs::JsonValue::Kind::kArray ||
      checkpoints->size() == 0) {
    return Status::NotFound("checkpoint manifest lists no checkpoints: " +
                            manifest_path);
  }
  const obs::JsonValue& last = checkpoints->items().back();
  const obs::JsonValue* file = last.Find("file");
  if (file == nullptr || file->kind() != obs::JsonValue::Kind::kString) {
    return Status::InvalidArgument(
        "corrupt checkpoint manifest entry (no file): " + manifest_path);
  }
  return dir + "/" + file->AsString();
}

Result<CheckpointState> ReadLatestCheckpoint(const std::string& dir,
                                             uint64_t expected_config_hash) {
  Result<std::string> path = LatestCheckpointFile(dir);
  if (!path.ok()) return path.status();
  Result<CheckpointState> state = ReadCheckpointFile(path.value());
  if (!state.ok()) return state.status();
  if (state.value().config_hash != expected_config_hash) {
    return Status::FailedPrecondition(
        "checkpoint " + path.value() + " was written under config hash " +
        FormatConfigHash(state.value().config_hash) +
        " but the current config hashes to " +
        FormatConfigHash(expected_config_hash) +
        "; only --epochs may change across a resume");
  }
  return state;
}

TrainResumeState ToResumeState(CheckpointState&& state) {
  TrainResumeState resume;
  resume.epochs_completed = state.epochs_completed;
  resume.store = std::move(state.store);
  resume.corpus.pairs = std::move(state.pairs);
  resume.corpus.target_frequencies = std::move(state.target_frequencies);
  resume.master_rng = state.master_rng;
  resume.shard_rngs = std::move(state.shard_rngs);
  return resume;
}

CheckpointWriter::CheckpointWriter(CheckpointOptions options,
                                   uint64_t config_hash)
    : options_(std::move(options)), config_hash_(config_hash) {
  if (options_.every == 0) options_.every = 1;
}

Status CheckpointWriter::EnsureDirAndManifest() {
  if (initialized_) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  if (ec) {
    return Status::IOError("cannot create checkpoint dir " + options_.dir +
                           ": " + ec.message());
  }
  const std::string manifest_path = options_.dir + "/" + kManifestName;
  std::string text;
  if (ReadFile(manifest_path, &text).ok()) {
    Result<obs::JsonValue> parsed = obs::ParseJson(text);
    if (!parsed.ok()) {
      return Status::InvalidArgument("corrupt checkpoint manifest " +
                                     manifest_path + ": " +
                                     parsed.status().message());
    }
    const obs::JsonValue* hash = parsed.value().Find("config_hash");
    if (hash == nullptr ||
        hash->kind() != obs::JsonValue::Kind::kString ||
        hash->AsString() != FormatConfigHash(config_hash_)) {
      return Status::FailedPrecondition(
          "checkpoint dir " + options_.dir +
          " holds checkpoints of a different training config; point "
          "--checkpoint-dir elsewhere or clear it");
    }
    const obs::JsonValue* checkpoints = parsed.value().Find("checkpoints");
    if (checkpoints != nullptr &&
        checkpoints->kind() == obs::JsonValue::Kind::kArray) {
      for (const obs::JsonValue& item : checkpoints->items()) {
        const obs::JsonValue* file = item.Find("file");
        const obs::JsonValue* epochs = item.Find("epochs_completed");
        const obs::JsonValue* size = item.Find("bytes");
        if (file == nullptr || epochs == nullptr) continue;
        Entry entry;
        entry.file = file->AsString();
        entry.epochs_completed = static_cast<uint32_t>(epochs->AsInt());
        entry.bytes =
            size != nullptr ? static_cast<uint64_t>(size->AsInt()) : 0;
        entries_.push_back(std::move(entry));
      }
    }
  }
  initialized_ = true;
  return Status::OK();
}

Status CheckpointWriter::WriteManifestAndPrune() {
  // Trim to retention BEFORE emitting the manifest so it never references
  // a file this call is about to delete; the orphan files from a crash
  // between manifest write and unlink are harmless.
  std::vector<std::string> doomed;
  if (options_.keep_last_n > 0) {
    while (entries_.size() > options_.keep_last_n) {
      doomed.push_back(entries_.front().file);
      entries_.erase(entries_.begin());
    }
  }
  obs::JsonValue manifest = obs::JsonValue::Object();
  manifest.Set("version", kFormatVersion);
  manifest.Set("config_hash", FormatConfigHash(config_hash_));
  obs::JsonValue checkpoints = obs::JsonValue::Array();
  for (const Entry& entry : entries_) {
    obs::JsonValue item = obs::JsonValue::Object();
    item.Set("file", entry.file);
    item.Set("epochs_completed", entry.epochs_completed);
    item.Set("bytes", entry.bytes);
    checkpoints.Append(std::move(item));
  }
  manifest.Set("checkpoints", std::move(checkpoints));
  INF2VEC_RETURN_IF_ERROR(WriteFileAtomic(
      options_.dir + "/" + kManifestName, manifest.Dump(2) + "\n"));
  for (const std::string& file : doomed) {
    std::error_code ec;
    std::filesystem::remove(options_.dir + "/" + file, ec);
    if (obs::MetricsEnabled()) {
      obs::MetricsRegistry::Default().GetCounter("ckpt.prunes")->Increment();
    }
  }
  return Status::OK();
}

Status CheckpointWriter::MaybeWrite(const TrainCheckpointView& view) {
  if (view.epochs_completed % options_.every != 0) return Status::OK();
  return Write(view);
}

Status CheckpointWriter::Write(const TrainCheckpointView& view) {
  INF2VEC_RETURN_IF_ERROR(EnsureDirAndManifest());
  const auto start = std::chrono::steady_clock::now();
  const std::string bytes = SerializeSections(
      config_hash_, view.epochs_completed, view.total_epochs, *view.store,
      *view.pairs, *view.target_frequencies, view.master_rng,
      view.shard_rngs);
  // The serialized image is a full copy of the training state; charge it
  // for the serialize->fsync window so /memz shows the checkpoint spike.
  obs::ScopedBytes buffer_bytes(
      obs::MemoryRegistry::Default().GetGauge("ckpt.writer_buffer"),
      bytes.capacity());
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%06u.bin", view.epochs_completed);
  INF2VEC_RETURN_IF_ERROR(
      WriteFileAtomic(options_.dir + "/" + name, bytes));

  Entry entry;
  entry.epochs_completed = view.epochs_completed;
  entry.file = name;
  entry.bytes = bytes.size();
  // Re-checkpointing an epoch (e.g. a rerun into the same dir) replaces
  // the stale manifest row instead of duplicating it.
  bool replaced = false;
  for (Entry& existing : entries_) {
    if (existing.file == entry.file) {
      existing = entry;
      replaced = true;
      break;
    }
  }
  if (!replaced) entries_.push_back(std::move(entry));
  INF2VEC_RETURN_IF_ERROR(WriteManifestAndPrune());

  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("ckpt.writes")->Increment();
    registry.GetCounter("ckpt.bytes")->Increment(bytes.size());
    registry.GetGauge("ckpt.write_seconds")
        ->Set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count());
  }
  return Status::OK();
}

std::function<Status(const TrainCheckpointView&)>
CheckpointWriter::AsCallback() {
  return [this](const TrainCheckpointView& view) { return MaybeWrite(view); };
}

}  // namespace ckpt
}  // namespace inf2vec
