#ifndef INF2VEC_CKPT_CHECKPOINT_H_
#define INF2VEC_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/inf2vec_model.h"
#include "embedding/embedding_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {
namespace ckpt {

/// Where and how often CheckpointWriter persists training state.
struct CheckpointOptions {
  /// Directory for checkpoint files + MANIFEST.json; created if missing.
  std::string dir;
  /// Write a checkpoint after every N completed epochs (1 = every epoch).
  uint32_t every = 1;
  /// Retention: prune oldest checkpoint files beyond the newest N.
  /// 0 keeps everything.
  uint32_t keep_last_n = 3;
};

/// Everything a checkpoint file carries — the full resumable training
/// state of Algorithm 2's SGD phase (see TrainCheckpointView for why the
/// pair order and RNG streams are part of it) plus identity metadata.
struct CheckpointState {
  /// HashTrainingConfig of the run that wrote the checkpoint. Resume
  /// refuses to continue under a config with a different hash.
  uint64_t config_hash = 0;
  uint32_t epochs_completed = 0;
  /// config.epochs at write time; informational (resume may extend it).
  uint32_t total_epochs = 0;
  EmbeddingStore store;
  /// Flattened (source, context-member) pairs in checkpoint-time shuffled
  /// order.
  std::vector<std::pair<UserId, UserId>> pairs;
  std::vector<uint64_t> target_frequencies;
  RngState master_rng;
  std::vector<RngState> shard_rngs;  // Empty for serial runs.
};

/// FNV-1a hash over every training-relevant Inf2vecConfig field EXCEPT
/// `epochs` — a resumed run may raise --epochs to extend training, but any
/// other divergence (dim, context shape, SGD knobs, seed, thread count...)
/// would silently produce a model inconsistent with the checkpoint, so
/// resume rejects it with FailedPrecondition. num_threads enters resolved
/// (ResolveThreadCount), because the Hogwild RNG sharding depends on the
/// resolved count, not the configured one.
uint64_t HashTrainingConfig(const Inf2vecConfig& config);

/// `config_hash` rendered the way MANIFEST.json stores it (hex, "0x..."),
/// so 64-bit hashes never squeeze through a JSON double.
std::string FormatConfigHash(uint64_t config_hash);

/// Binary round trip. The format is sectioned and integrity-checked:
/// magic "I2VCKPT1", a section count, then per section a tag, payload
/// length, payload, and CRC32 of the payload (docs/CHECKPOINTING.md has
/// the full layout). Deserialize returns typed errors instead of
/// crashing on damaged input: truncation and structural damage are
/// InvalidArgument, payload corruption is InvalidArgument with a CRC
/// message.
std::string SerializeCheckpoint(const CheckpointState& state);
Result<CheckpointState> DeserializeCheckpoint(const std::string& bytes);

/// File round trip; WriteCheckpointFile commits atomically (tmp + rename)
/// so a crash mid-write never leaves a torn checkpoint behind.
Status WriteCheckpointFile(const std::string& path,
                           const CheckpointState& state);
Result<CheckpointState> ReadCheckpointFile(const std::string& path);

/// Resolves the newest checkpoint recorded in `dir`'s MANIFEST.json to a
/// full path. NotFound when the directory has no manifest or the manifest
/// lists no checkpoints.
Result<std::string> LatestCheckpointFile(const std::string& dir);

/// LatestCheckpointFile + ReadCheckpointFile + config guard: fails with
/// FailedPrecondition when the checkpoint was written under a config whose
/// hash differs from `expected_config_hash`.
Result<CheckpointState> ReadLatestCheckpoint(const std::string& dir,
                                             uint64_t expected_config_hash);

/// Adapts a loaded checkpoint to Inf2vecModel::ResumeFromState input
/// (moves the heavy members; the CheckpointState is consumed).
TrainResumeState ToResumeState(CheckpointState&& state);

/// Writes checkpoints during training. Bind MaybeWrite as the config's
/// checkpoint_callback:
///
///   ckpt::CheckpointWriter writer(options, ckpt::HashTrainingConfig(cfg));
///   cfg.checkpoint_callback = writer.AsCallback();
///
/// Each write commits the checkpoint file atomically, then updates
/// MANIFEST.json (also atomically) and prunes files beyond keep_last_n.
/// An existing manifest in the directory is continued when its
/// config_hash matches (the --resume flow) and rejected with
/// FailedPrecondition when it does not — mixing checkpoints of different
/// configs in one directory is always a mistake.
///
/// Not thread-safe; training invokes the callback from one thread between
/// epochs.
class CheckpointWriter {
 public:
  CheckpointWriter(CheckpointOptions options, uint64_t config_hash);

  /// Writes iff view.epochs_completed is a multiple of options.every;
  /// OK-no-op otherwise.
  Status MaybeWrite(const TrainCheckpointView& view);

  /// Unconditional write (the final checkpoint at end of training).
  Status Write(const TrainCheckpointView& view);

  /// MaybeWrite bound for Inf2vecConfig::checkpoint_callback. The writer
  /// must outlive the training run.
  std::function<Status(const TrainCheckpointView&)> AsCallback();

  const CheckpointOptions& options() const { return options_; }

 private:
  Status EnsureDirAndManifest();
  Status WriteManifestAndPrune();

  CheckpointOptions options_;
  uint64_t config_hash_;
  bool initialized_ = false;
  /// (epochs_completed, filename, bytes) per retained checkpoint, oldest
  /// first; mirrors the manifest's "checkpoints" array.
  struct Entry {
    uint32_t epochs_completed = 0;
    std::string file;
    uint64_t bytes = 0;
  };
  std::vector<Entry> entries_;
};

}  // namespace ckpt
}  // namespace inf2vec

#endif  // INF2VEC_CKPT_CHECKPOINT_H_
