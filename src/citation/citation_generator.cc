#include "citation/citation_generator.h"

#include <algorithm>

namespace inf2vec {
namespace citation {
namespace {

struct Paper {
  uint32_t community;
  std::vector<UserId> authors;
};

}  // namespace

Result<CitationData> GenerateCitationNetwork(const CitationProfile& profile,
                                             Rng& rng) {
  if (profile.num_authors < profile.num_communities ||
      profile.num_communities == 0) {
    return Status::InvalidArgument(
        "need at least one author per community");
  }
  if (profile.num_papers < 10) {
    return Status::InvalidArgument("need at least 10 papers");
  }

  CitationData data;
  data.num_authors = profile.num_authors;
  data.author_community.resize(profile.num_authors);
  // Authors partitioned into communities; heavier-weight authors (earlier
  // ids inside each community) publish more, giving the hub structure a
  // citation network has.
  std::vector<std::vector<UserId>> community_authors(profile.num_communities);
  for (UserId a = 0; a < profile.num_authors; ++a) {
    const uint32_t c =
        static_cast<uint32_t>(rng.UniformU64(profile.num_communities));
    data.author_community[a] = c;
    community_authors[c].push_back(a);
  }
  for (auto& members : community_authors) {
    if (members.empty()) {
      // Re-home an arbitrary author so sampling never sees an empty
      // community.
      const UserId a = static_cast<UserId>(rng.UniformU64(data.num_authors));
      members.push_back(a);
    }
  }

  auto sample_author = [&](uint32_t community) -> UserId {
    const std::vector<UserId>& members = community_authors[community];
    // Zipf-ish pick: squaring the uniform skews toward low indices (the
    // community's prolific authors).
    const double u = rng.UniformDouble();
    const size_t idx = static_cast<size_t>(u * u * members.size());
    return members[std::min(idx, members.size() - 1)];
  };

  std::vector<Paper> papers;
  papers.reserve(profile.num_papers);
  // Citation-count urn per community for preferential attachment.
  std::vector<std::vector<uint32_t>> community_urn(profile.num_communities);
  std::vector<std::vector<uint32_t>> community_papers(
      profile.num_communities);
  std::vector<uint32_t> global_urn;

  for (uint32_t pid = 0; pid < profile.num_papers; ++pid) {
    Paper paper;
    paper.community =
        static_cast<uint32_t>(rng.UniformU64(profile.num_communities));
    const uint32_t num_authors = static_cast<uint32_t>(
        1 + rng.UniformU64(profile.max_authors_per_paper));
    for (uint32_t k = 0; k < num_authors; ++k) {
      const UserId a = sample_author(paper.community);
      if (std::find(paper.authors.begin(), paper.authors.end(), a) ==
          paper.authors.end()) {
        paper.authors.push_back(a);
      }
    }

    // References to earlier papers.
    if (pid > 0) {
      const double jitter = rng.UniformDouble(0.5, 1.5);
      const uint32_t num_refs = std::min<uint32_t>(
          pid, static_cast<uint32_t>(
                   std::max(1.0, profile.mean_refs_per_paper * jitter)));
      std::vector<uint32_t> cited;
      uint32_t attempts = 0;
      while (cited.size() < num_refs && attempts < num_refs * 20) {
        ++attempts;
        uint32_t target = 0;
        const bool same_community =
            rng.Bernoulli(profile.intra_community_bias) &&
            !community_papers[paper.community].empty();
        const std::vector<uint32_t>& urn =
            same_community ? community_urn[paper.community] : global_urn;
        const std::vector<uint32_t>& pool =
            community_papers[paper.community];
        if (rng.Bernoulli(profile.preferential_ratio) && !urn.empty()) {
          target = urn[rng.UniformU64(urn.size())];
        } else if (same_community && !pool.empty()) {
          target = pool[rng.UniformU64(pool.size())];
        } else {
          target = static_cast<uint32_t>(rng.UniformU64(pid));
        }
        if (std::find(cited.begin(), cited.end(), target) != cited.end()) {
          continue;
        }
        cited.push_back(target);
      }

      for (uint32_t target : cited) {
        const Paper& ref = papers[target];
        for (UserId src : ref.authors) {
          for (UserId dst : paper.authors) {
            if (src != dst) data.influence_pairs.push_back({src, dst});
          }
        }
        community_urn[ref.community].push_back(target);
        global_urn.push_back(target);
      }
    }

    community_papers[paper.community].push_back(pid);
    global_urn.push_back(pid);
    papers.push_back(std::move(paper));
  }

  if (data.influence_pairs.empty()) {
    return Status::Internal("citation generator produced no influence pairs");
  }
  return data;
}

}  // namespace citation
}  // namespace inf2vec
