#ifndef INF2VEC_CITATION_CASE_STUDY_H_
#define INF2VEC_CITATION_CASE_STUDY_H_

#include <cstdint>
#include <vector>

#include "citation/citation_generator.h"
#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {
namespace citation {

/// Options of the Section V-D case study: embedding model (skip-gram on
/// first-order influence pairs only, per the paper's "fair comparison"
/// setup) versus the conventional ST model scored by Monte-Carlo.
struct CaseStudyOptions {
  double train_fraction = 0.8;
  uint32_t top_k = 10;
  /// Embedding side.
  uint32_t dim = 50;
  uint32_t epochs = 8;
  double learning_rate = 0.025;
  uint32_t num_negatives = 5;
  /// Conventional side: Monte-Carlo simulations per test author (the paper
  /// runs 5,000; scaled by default).
  uint32_t mc_simulations = 1000;
  /// Authors need at least this many held-out followers to be test cases.
  uint32_t min_test_followers = 3;
  uint64_t seed = 99;
};

/// Result of the case study: the paper's quantitative comparison (average
/// top-k precision 0.1863 embedding vs 0.0616 conventional) plus per-author
/// examples for the Table VI style listing.
struct CaseStudyResult {
  double embedding_avg_precision = 0.0;
  double conventional_avg_precision = 0.0;
  size_t num_test_authors = 0;

  struct AuthorExample {
    UserId author;
    uint32_t embedding_hits;     // Of top_k predictions.
    uint32_t conventional_hits;  // Of top_k predictions.
  };
  /// The most prolific test authors (paper examines the top 3).
  std::vector<AuthorExample> examples;
};

/// Runs the full study: split pairs, train both models, predict top-k
/// followers of each test author, score precision against held-out pairs.
Result<CaseStudyResult> RunCitationCaseStudy(const CitationData& data,
                                             const CaseStudyOptions& options,
                                             Rng& rng);

}  // namespace citation
}  // namespace inf2vec

#endif  // INF2VEC_CITATION_CASE_STUDY_H_
