#include "citation/case_study.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "diffusion/ic_model.h"
#include "embedding/embedding_store.h"
#include "embedding/negative_sampler.h"
#include "embedding/sgd_trainer.h"
#include "graph/social_graph.h"

namespace inf2vec {
namespace citation {
namespace {

/// Top-k users by score, excluding `exclude` and anyone in `known`.
std::vector<UserId> TopK(const std::vector<double>& scores, uint32_t k,
                         UserId exclude,
                         const std::unordered_set<UserId>& known) {
  std::vector<UserId> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<UserId>(i);
  std::sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    return scores[a] > scores[b];
  });
  std::vector<UserId> top;
  for (UserId u : order) {
    if (u == exclude || known.contains(u)) continue;
    top.push_back(u);
    if (top.size() >= k) break;
  }
  return top;
}

uint32_t CountHits(const std::vector<UserId>& predictions,
                   const std::unordered_set<UserId>& truth) {
  uint32_t hits = 0;
  for (UserId u : predictions) hits += truth.contains(u) ? 1 : 0;
  return hits;
}

}  // namespace

Result<CaseStudyResult> RunCitationCaseStudy(const CitationData& data,
                                             const CaseStudyOptions& options,
                                             Rng& rng) {
  if (data.influence_pairs.empty()) {
    return Status::InvalidArgument("no influence pairs");
  }

  // 1. Random pair-level split (the paper splits the 138K relationships
  // 80/20).
  std::vector<InfluencePair> pairs = data.influence_pairs;
  rng.Shuffle(pairs);
  const size_t n_train =
      static_cast<size_t>(options.train_fraction * pairs.size());
  const std::vector<InfluencePair> train(pairs.begin(),
                                         pairs.begin() + n_train);
  const std::vector<InfluencePair> test(pairs.begin() + n_train, pairs.end());
  if (train.empty() || test.empty()) {
    return Status::InvalidArgument("degenerate train/test split");
  }

  // Known (train) and held-out (test) follower sets per author.
  std::vector<std::unordered_set<UserId>> known(data.num_authors);
  std::vector<std::unordered_set<UserId>> held_out(data.num_authors);
  std::vector<uint64_t> source_freq(data.num_authors, 0);
  std::vector<uint64_t> target_freq(data.num_authors, 0);
  for (const InfluencePair& p : train) {
    known[p.source].insert(p.target);
    ++source_freq[p.source];
    ++target_freq[p.target];
  }
  for (const InfluencePair& p : test) held_out[p.source].insert(p.target);

  // 2. Embedding model: skip-gram over the raw first-order pairs.
  EmbeddingStore store(data.num_authors, options.dim);
  Rng train_rng = rng.Fork();
  store.InitPaperDefault(train_rng);
  Result<NegativeSampler> sampler = NegativeSampler::Create(
      NegativeSamplerKind::kUnigram075, data.num_authors, target_freq);
  if (!sampler.ok()) return sampler.status();
  SgdOptions sgd;
  sgd.learning_rate = options.learning_rate;
  sgd.num_negatives = options.num_negatives;
  SgdTrainer trainer(&store, &sampler.value(), sgd);
  std::vector<InfluencePair> stream = train;
  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    train_rng.Shuffle(stream);
    for (const InfluencePair& p : stream) {
      trainer.TrainPair(p.source, p.target, train_rng);
    }
  }

  // 3. Conventional model: ST probabilities over the distinct train-pair
  // graph, scored by Monte-Carlo from each test author.
  GraphBuilder builder(data.num_authors);
  std::unordered_map<uint64_t, uint64_t> pair_multiplicity;
  for (const InfluencePair& p : train) {
    builder.AddEdge(p.source, p.target);
    ++pair_multiplicity[(static_cast<uint64_t>(p.source) << 32) | p.target];
  }
  Result<SocialGraph> graph_result = builder.Build();
  if (!graph_result.ok()) return graph_result.status();
  const SocialGraph& graph = graph_result.value();

  EdgeProbabilities st_probs(graph);
  for (UserId u = 0; u < graph.num_users(); ++u) {
    if (source_freq[u] == 0) continue;
    const auto nbrs = graph.OutNeighbors(u);
    if (nbrs.empty()) continue;
    const uint64_t first = static_cast<uint64_t>(graph.EdgeId(u, nbrs[0]));
    for (size_t k = 0; k < nbrs.size(); ++k) {
      const uint64_t key = (static_cast<uint64_t>(u) << 32) | nbrs[k];
      const double p = static_cast<double>(pair_multiplicity[key]) /
                       static_cast<double>(source_freq[u]);
      st_probs.Set(first + k, std::min(1.0, p));
    }
  }

  // 4. Test authors: enough held-out followers; examples = most prolific.
  std::vector<UserId> test_authors;
  for (UserId a = 0; a < data.num_authors; ++a) {
    if (held_out[a].size() >= options.min_test_followers) {
      test_authors.push_back(a);
    }
  }
  if (test_authors.empty()) {
    return Status::InvalidArgument(
        "no test authors with enough held-out followers");
  }

  CaseStudyResult result;
  result.num_test_authors = test_authors.size();
  double emb_precision_sum = 0.0;
  double conv_precision_sum = 0.0;
  std::vector<CaseStudyResult::AuthorExample> examples;

  for (UserId author : test_authors) {
    // Embedding prediction: rank everyone by x(author, v).
    std::vector<double> emb_scores(data.num_authors, 0.0);
    for (UserId v = 0; v < data.num_authors; ++v) {
      emb_scores[v] = v == author ? -1e30 : store.Score(author, v);
    }
    const std::vector<UserId> emb_top =
        TopK(emb_scores, options.top_k, author, known[author]);

    // Conventional prediction: Monte-Carlo activation frequency from the
    // single-seed cascade.
    const std::vector<double> conv_scores = EstimateActivationProbabilities(
        graph, st_probs, {author}, options.mc_simulations, rng);
    const std::vector<UserId> conv_top =
        TopK(conv_scores, options.top_k, author, known[author]);

    const uint32_t emb_hits = CountHits(emb_top, held_out[author]);
    const uint32_t conv_hits = CountHits(conv_top, held_out[author]);
    emb_precision_sum +=
        static_cast<double>(emb_hits) / static_cast<double>(options.top_k);
    conv_precision_sum +=
        static_cast<double>(conv_hits) / static_cast<double>(options.top_k);
    examples.push_back({author, emb_hits, conv_hits});
  }

  result.embedding_avg_precision =
      emb_precision_sum / static_cast<double>(test_authors.size());
  result.conventional_avg_precision =
      conv_precision_sum / static_cast<double>(test_authors.size());

  // Keep the 3 authors with the most held-out followers as the Table VI
  // style examples.
  std::sort(examples.begin(), examples.end(),
            [&](const auto& a, const auto& b) {
              return held_out[a.author].size() > held_out[b.author].size();
            });
  if (examples.size() > 3) examples.resize(3);
  result.examples = std::move(examples);
  return result;
}

}  // namespace citation
}  // namespace inf2vec
