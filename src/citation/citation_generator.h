#ifndef INF2VEC_CITATION_CITATION_GENERATOR_H_
#define INF2VEC_CITATION_CITATION_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "diffusion/influence_pairs.h"
#include "graph/social_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {
namespace citation {

/// Synthetic stand-in for the paper's "DBLP-Citation-network-V9" case
/// study (Section V-D): a preferential-attachment citation DAG over
/// community-structured authors. Papers cite earlier papers, biased toward
/// the same research community and toward already-well-cited papers; a
/// citation makes every author of the cited paper influence every author
/// of the citing paper — exactly the paper's extraction rule.
struct CitationProfile {
  uint32_t num_authors = 800;
  uint32_t num_papers = 1600;
  uint32_t num_communities = 12;
  /// Probability a citation stays inside the citing paper's community.
  double intra_community_bias = 0.8;
  /// Probability a citation target is chosen by citation-count preference
  /// (vs uniformly among eligible papers).
  double preferential_ratio = 0.7;
  double mean_refs_per_paper = 8.0;
  uint32_t max_authors_per_paper = 3;
};

/// The generated author-influence data: pairs carry multiplicity (one entry
/// per citation event), like the 138K relationships of the real dataset.
struct CitationData {
  uint32_t num_authors = 0;
  std::vector<InfluencePair> influence_pairs;
  /// Community of each author (hidden truth; used by tests).
  std::vector<uint32_t> author_community;
};

/// Generates the citation world. Deterministic given (profile, rng state).
Result<CitationData> GenerateCitationNetwork(const CitationProfile& profile,
                                             Rng& rng);

}  // namespace citation
}  // namespace inf2vec

#endif  // INF2VEC_CITATION_CITATION_GENERATOR_H_
