#ifndef INF2VEC_VIZ_TSNE_H_
#define INF2VEC_VIZ_TSNE_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {

/// Options for exact t-SNE (van der Maaten & Hinton, JMLR 2008) — the
/// dimension-reduction tool the paper uses for Fig. 6. Exact O(n^2) is the
/// reference algorithm and comfortably handles the 524 points of the
/// paper's figure.
struct TsneOptions {
  uint32_t output_dim = 2;
  double perplexity = 30.0;
  uint32_t iterations = 400;
  double learning_rate = 100.0;
  /// P-value multiplier during the first `exaggeration_iters` iterations.
  double early_exaggeration = 4.0;
  uint32_t exaggeration_iters = 80;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  uint32_t momentum_switch_iter = 200;
  uint64_t seed = 3;
};

/// Embeds `n` points of dimension `input_dim` (row-major `data`, size
/// n*input_dim) into options.output_dim dimensions. Returns row-major
/// coordinates of size n*output_dim.
Result<std::vector<double>> RunTsne(const std::vector<double>& data, size_t n,
                                    size_t input_dim,
                                    const TsneOptions& options);

/// Fig. 6's quantitative proxy: how close the two endpoints of highlighted
/// pairs sit in an embedding, relative to the typical inter-point distance.
/// Values well below 1 mean the pairs are tightly co-located (what the
/// paper shows for Inf2vec); ~1 means no better than random placement.
double MeanPairDistanceRatio(
    const std::vector<double>& coords, size_t n, size_t dim,
    const std::vector<std::pair<size_t, size_t>>& pairs);

/// Scale-invariant co-location measure: for each pair (a, b), the
/// percentile rank of b among all points ordered by distance from a
/// (0 = nearest neighbor, ~0.5 = random placement), averaged over both
/// directions of every pair. Unlike the distance ratio this is immune to
/// an embedding globally collapsing or stretching.
double MeanPairNeighborRank(
    const std::vector<double>& coords, size_t n, size_t dim,
    const std::vector<std::pair<size_t, size_t>>& pairs);

}  // namespace inf2vec

#endif  // INF2VEC_VIZ_TSNE_H_
