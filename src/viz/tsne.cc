#include "viz/tsne.h"

#include <algorithm>
#include <cmath>

namespace inf2vec {
namespace {

/// Pairwise squared Euclidean distances, row-major n x n.
std::vector<double> SquaredDistances(const std::vector<double>& data,
                                     size_t n, size_t dim) {
  std::vector<double> d2(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double sum = 0.0;
      for (size_t k = 0; k < dim; ++k) {
        const double diff = data[i * dim + k] - data[j * dim + k];
        sum += diff * diff;
      }
      d2[i * n + j] = sum;
      d2[j * n + i] = sum;
    }
  }
  return d2;
}

/// Row-conditional probabilities p_{j|i} with the precision (beta) found by
/// binary search to match log(perplexity) entropy.
void ConditionalProbabilities(const std::vector<double>& d2, size_t n,
                              double perplexity, std::vector<double>* p) {
  const double target_entropy = std::log(perplexity);
  p->assign(n * n, 0.0);
  std::vector<double> row(n);
  for (size_t i = 0; i < n; ++i) {
    double beta_lo = 0.0;
    double beta_hi = 1e18;
    double beta = 1.0;
    for (int iter = 0; iter < 64; ++iter) {
      double sum = 0.0;
      for (size_t j = 0; j < n; ++j) {
        row[j] = j == i ? 0.0 : std::exp(-beta * d2[i * n + j]);
        sum += row[j];
      }
      if (sum <= 1e-300) {
        beta_hi = beta;
        beta = (beta_lo + beta_hi) / 2.0;
        continue;
      }
      // Shannon entropy H = log(sum) + beta * E[d2].
      double weighted = 0.0;
      for (size_t j = 0; j < n; ++j) weighted += row[j] * d2[i * n + j];
      const double entropy = std::log(sum) + beta * weighted / sum;
      const double diff = entropy - target_entropy;
      if (std::abs(diff) < 1e-5) break;
      if (diff > 0) {  // Entropy too high -> tighten kernel.
        beta_lo = beta;
        beta = beta_hi >= 1e18 ? beta * 2.0 : (beta_lo + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta_lo + beta_hi) / 2.0;
      }
    }
    double sum = 0.0;
    for (size_t j = 0; j < n; ++j) {
      row[j] = j == i ? 0.0 : std::exp(-beta * d2[i * n + j]);
      sum += row[j];
    }
    if (sum <= 1e-300) sum = 1.0;
    for (size_t j = 0; j < n; ++j) (*p)[i * n + j] = row[j] / sum;
  }
}

}  // namespace

Result<std::vector<double>> RunTsne(const std::vector<double>& data, size_t n,
                                    size_t input_dim,
                                    const TsneOptions& options) {
  if (n == 0 || input_dim == 0) {
    return Status::InvalidArgument("t-SNE needs non-empty input");
  }
  if (data.size() != n * input_dim) {
    return Status::InvalidArgument("t-SNE data size mismatch");
  }
  if (options.output_dim == 0) {
    return Status::InvalidArgument("output_dim must be positive");
  }
  if (n < 4) {
    return Status::InvalidArgument("t-SNE needs at least 4 points");
  }
  // Perplexity must leave room: effective neighbors < n.
  const double perplexity =
      std::min(options.perplexity, static_cast<double>(n - 1) / 3.0);

  const std::vector<double> d2 = SquaredDistances(data, n, input_dim);
  std::vector<double> cond;
  ConditionalProbabilities(d2, n, perplexity, &cond);

  // Symmetrized joint probabilities.
  std::vector<double> p(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      p[i * n + j] =
          std::max(1e-12, (cond[i * n + j] + cond[j * n + i]) / (2.0 * n));
    }
  }

  const size_t out_dim = options.output_dim;
  Rng rng(options.seed);
  std::vector<double> y(n * out_dim);
  for (double& v : y) v = 1e-2 * rng.Gaussian();
  std::vector<double> velocity(n * out_dim, 0.0);
  std::vector<double> grad(n * out_dim, 0.0);
  std::vector<double> q(n * n, 0.0);

  for (uint32_t iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.early_exaggeration : 1.0;
    const double momentum = iter < options.momentum_switch_iter
                                ? options.initial_momentum
                                : options.final_momentum;

    // Student-t kernel numerators and normalizer.
    double q_sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        double dist = 0.0;
        for (size_t k = 0; k < out_dim; ++k) {
          const double diff = y[i * out_dim + k] - y[j * out_dim + k];
          dist += diff * diff;
        }
        const double num = 1.0 / (1.0 + dist);
        q[i * n + j] = num;
        q[j * n + i] = num;
        q_sum += 2.0 * num;
      }
    }
    if (q_sum <= 1e-300) q_sum = 1e-300;

    std::fill(grad.begin(), grad.end(), 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double num = q[i * n + j];
        const double q_ij = std::max(1e-12, num / q_sum);
        const double coeff =
            4.0 * (exaggeration * p[i * n + j] - q_ij) * num;
        for (size_t k = 0; k < out_dim; ++k) {
          grad[i * out_dim + k] +=
              coeff * (y[i * out_dim + k] - y[j * out_dim + k]);
        }
      }
    }

    for (size_t idx = 0; idx < n * out_dim; ++idx) {
      velocity[idx] =
          momentum * velocity[idx] - options.learning_rate * grad[idx];
      y[idx] += velocity[idx];
    }

    // Re-center to keep coordinates bounded.
    for (size_t k = 0; k < out_dim; ++k) {
      double mean = 0.0;
      for (size_t i = 0; i < n; ++i) mean += y[i * out_dim + k];
      mean /= static_cast<double>(n);
      for (size_t i = 0; i < n; ++i) y[i * out_dim + k] -= mean;
    }
  }
  return y;
}

double MeanPairDistanceRatio(
    const std::vector<double>& coords, size_t n, size_t dim,
    const std::vector<std::pair<size_t, size_t>>& pairs) {
  if (pairs.empty() || n < 2) return 1.0;
  auto distance = [&](size_t a, size_t b) {
    double sum = 0.0;
    for (size_t k = 0; k < dim; ++k) {
      const double diff = coords[a * dim + k] - coords[b * dim + k];
      sum += diff * diff;
    }
    return std::sqrt(sum);
  };

  double pair_mean = 0.0;
  for (const auto& [a, b] : pairs) pair_mean += distance(a, b);
  pair_mean /= static_cast<double>(pairs.size());

  // Mean over all distinct pairs (O(n^2), fine at figure scale).
  double all_mean = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      all_mean += distance(i, j);
      ++count;
    }
  }
  all_mean /= static_cast<double>(count);
  return all_mean > 0.0 ? pair_mean / all_mean : 1.0;
}

double MeanPairNeighborRank(
    const std::vector<double>& coords, size_t n, size_t dim,
    const std::vector<std::pair<size_t, size_t>>& pairs) {
  if (pairs.empty() || n < 3) return 0.5;
  auto squared_distance = [&](size_t a, size_t b) {
    double sum = 0.0;
    for (size_t k = 0; k < dim; ++k) {
      const double diff = coords[a * dim + k] - coords[b * dim + k];
      sum += diff * diff;
    }
    return sum;
  };
  auto rank_of = [&](size_t anchor, size_t partner) {
    const double d = squared_distance(anchor, partner);
    size_t closer = 0;
    for (size_t j = 0; j < n; ++j) {
      if (j == anchor || j == partner) continue;
      if (squared_distance(anchor, j) < d) ++closer;
    }
    return static_cast<double>(closer) / static_cast<double>(n - 2);
  };
  double total = 0.0;
  for (const auto& [a, b] : pairs) {
    total += rank_of(a, b) + rank_of(b, a);
  }
  return total / (2.0 * static_cast<double>(pairs.size()));
}

}  // namespace inf2vec
