#ifndef INF2VEC_EMBEDDING_MODEL_IO_H_
#define INF2VEC_EMBEDDING_MODEL_IO_H_

#include <string>

#include "embedding/embedding_store.h"
#include "util/status.h"

namespace inf2vec {

/// Persists an EmbeddingStore as a little-endian binary blob:
///   magic "I2VEMB1\n", uint32 num_users, uint32 dim,
///   then S, T, b, b~ as contiguous float64 arrays.
Status SaveEmbeddings(const EmbeddingStore& store, const std::string& path);

/// Loads a store written by SaveEmbeddings; validates magic and sizes.
Result<EmbeddingStore> LoadEmbeddings(const std::string& path);

/// word2vec-style text export: header "num_users dim", then per user
/// "u b_u b~_u S_u... T_u...". Intended for external analysis tools, not
/// round-tripping (text loses low-order bits).
Status ExportEmbeddingsText(const EmbeddingStore& store,
                            const std::string& path);

}  // namespace inf2vec

#endif  // INF2VEC_EMBEDDING_MODEL_IO_H_
