#ifndef INF2VEC_EMBEDDING_MODEL_IO_H_
#define INF2VEC_EMBEDDING_MODEL_IO_H_

#include <cstdint>
#include <optional>
#include <string>

#include "embedding/embedding_store.h"
#include "embedding/quantized_store.h"
#include "obs/json.h"
#include "util/status.h"

namespace inf2vec {

/// Self-describing header of a saved model artifact (format I2VEMB2): the
/// aggregation rule the embeddings were trained for, a training-config
/// echo, and the git sha of the producing binary, so a served model can
/// report its own provenance (/modelz). Aggregation travels as its table
/// label ("Ave"/"Sum"/"Max"/"Latest") rather than the core enum — the
/// embedding layer stays below core in the dependency order.
struct ModelMetadata {
  uint32_t format_version = 2;
  std::string aggregation = "Ave";
  /// Training-config echo (K, L, alpha, epochs, seed and friends). Zeroes
  /// mean "unknown" — a legacy I2VEMB1 file or an untracked save path.
  uint32_t dim = 0;
  uint32_t context_length = 0;
  double alpha = 0.0;
  uint32_t epochs = 0;
  double learning_rate = 0.0;
  uint32_t num_negatives = 0;
  uint64_t seed = 0;
  uint32_t num_threads = 0;
  /// Git sha of the binary that trained the model ("unknown" outside a
  /// checkout), from obs::GetBuildInfo at save time.
  std::string git_sha;

  /// JSON form embedded in the artifact and served at /modelz.
  obs::JsonValue ToJson() const;
  /// Inverse of ToJson; unknown keys are ignored, missing keys keep their
  /// defaults (forward compatibility within version 2).
  static Result<ModelMetadata> FromJson(const obs::JsonValue& json);
};

/// Identity of one range-partitioned shard artifact (section I2VSHRD1,
/// written by the `shard-split` CLI subcommand). The artifact's store
/// holds users [begin_user, end_user) of a whole model with total_users
/// rows; `model_hash` is the content hash of the *whole* fp64 payload
/// (ComputeModelContentHash), stamped identically into every shard of a
/// split so a coordinator can reject shards cut from different models.
struct ShardSliceInfo {
  uint32_t shard_index = 0;
  uint32_t num_shards = 0;
  uint32_t begin_user = 0;  // inclusive global user id
  uint32_t end_user = 0;    // exclusive global user id
  uint32_t total_users = 0;
  uint64_t model_hash = 0;
};

/// FNV-1a 64 over (num_users, dim, then the exact fp64 payload bytes S,
/// T, b, b~ in artifact order). Cheap (one linear pass), stable across
/// platforms (explicit little-endian field hashing would be needed for
/// big-endian targets; every supported target is little-endian, matching
/// the artifact format itself).
uint64_t ComputeModelContentHash(const EmbeddingStore& store);

/// A loaded model: the embedding table plus its self-description. Legacy
/// I2VEMB1 files load with metadata.format_version == 1 and defaults
/// elsewhere. `quantized` is populated when the artifact carries an int8
/// serving section (written by the `quantize` CLI subcommand); `shard`
/// when it carries a shard-identity section (written by `shard-split`).
struct ModelArtifact {
  EmbeddingStore store;
  ModelMetadata metadata;
  std::optional<QuantizedEmbeddingStore> quantized;
  std::optional<ShardSliceInfo> shard;
};

/// Persists an EmbeddingStore as a little-endian binary blob, format
/// I2VEMB2:
///   magic "I2VEMB2\n", uint32 metadata byte length, metadata JSON,
///   uint32 num_users, uint32 dim, then S, T, b, b~ as contiguous
///   float64 arrays.
/// When `quantized` is non-null an int8 serving section follows the fp64
/// payload (see docs/SERVING.md, "Quantized section"):
///   magic "I2VQNT1\n", uint32 num_users, uint32 dim (both must match the
///   artifact header), Sq and Tq as int8 rows (unpadded, row-major), then
///   S scales, T scales, S biases, T biases as contiguous float32 arrays.
/// When `shard` is non-null a fixed-size shard-identity section follows
/// (after the quantized section when both are present):
///   magic "I2VSHRD1", uint32 shard_index, uint32 num_shards,
///   uint32 begin_user, uint32 end_user, uint32 total_users,
///   uint64 model_hash, uint32 crc32 over the preceding six fields.
/// Readers unaware of either section (pre-section binaries) reject such a
/// file by size check rather than misreading it; the fp64 payload itself
/// is byte-identical with or without the sections.
Status SaveModelArtifact(const EmbeddingStore& store,
                         const ModelMetadata& metadata,
                         const std::string& path,
                         const QuantizedEmbeddingStore* quantized = nullptr,
                         const ShardSliceInfo* shard = nullptr);

/// SaveModelArtifact with default (unknown-provenance) metadata; kept so
/// existing save call sites produce valid v2 artifacts unchanged.
Status SaveEmbeddings(const EmbeddingStore& store, const std::string& path);

/// Writes the legacy I2VEMB1 layout (no metadata block). Retained for
/// downgrade tooling and the backward-compatibility tests; new code saves
/// v2 via SaveModelArtifact.
Status SaveEmbeddingsV1(const EmbeddingStore& store, const std::string& path);

/// Loads either format; validates magic and sizes.
Result<ModelArtifact> LoadModelArtifact(const std::string& path);

/// Loads a store written by any SaveEmbeddings version, dropping the
/// metadata; validates magic and sizes.
Result<EmbeddingStore> LoadEmbeddings(const std::string& path);

/// word2vec-style text export: header "num_users dim", then per user
/// "u b_u b~_u S_u... T_u...". Intended for external analysis tools, not
/// round-tripping (text loses low-order bits).
Status ExportEmbeddingsText(const EmbeddingStore& store,
                            const std::string& path);

}  // namespace inf2vec

#endif  // INF2VEC_EMBEDDING_MODEL_IO_H_
