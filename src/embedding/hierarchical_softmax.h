#ifndef INF2VEC_EMBEDDING_HIERARCHICAL_SOFTMAX_H_
#define INF2VEC_EMBEDDING_HIERARCHICAL_SOFTMAX_H_

#include <cstdint>
#include <vector>

#include "embedding/embedding_store.h"
#include "graph/social_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {

/// Huffman-coded hierarchical softmax — the alternative to negative
/// sampling used by DeepWalk (Morin & Bengio [23] via Perozzi et al. [11],
/// both cited by the paper). Targets are leaves of a Huffman tree built
/// from their corpus frequencies; P(v | u) decomposes into the product of
/// binary decisions along v's root-to-leaf path, so one update costs
/// O(log |V| * K) instead of O(|N| * K).
///
/// Provided as a drop-in alternative trainer over the same EmbeddingStore
/// source vectors: the tree's internal nodes own the "output" parameters
/// (the role T plays under negative sampling).
class HuffmanTree {
 public:
  /// Builds the tree from per-user target frequencies (+1 smoothing keeps
  /// zero-frequency users encodable). Fails on an empty vector.
  static Result<HuffmanTree> Build(const std::vector<uint64_t>& frequencies);

  uint32_t num_leaves() const { return num_leaves_; }
  uint32_t num_internal() const { return num_leaves_ - 1; }

  /// Root-to-leaf path of user `v`: the internal-node ids visited.
  const std::vector<uint32_t>& PathOf(UserId v) const { return paths_[v]; }
  /// Branch taken at each path step: true = right child (code bit 1).
  const std::vector<bool>& CodeOf(UserId v) const { return codes_[v]; }

  /// Maximum code length (diagnostics; O(log n) for balanced counts).
  size_t MaxCodeLength() const;

 private:
  HuffmanTree() = default;

  uint32_t num_leaves_ = 0;
  std::vector<std::vector<uint32_t>> paths_;
  std::vector<std::vector<bool>> codes_;
};

/// Skip-gram trainer with hierarchical softmax. Updates the store's Source
/// vectors and its own internal-node parameter matrix.
class HierarchicalSoftmaxTrainer {
 public:
  /// `store` supplies/receives the source vectors; internal-node vectors
  /// are zero-initialized (the word2vec convention).
  HierarchicalSoftmaxTrainer(EmbeddingStore* store, const HuffmanTree* tree,
                             double learning_rate);

  /// One positive (u -> v) update. Returns log P(v | u) under the entering
  /// parameters (exact, since HS normalizes by construction).
  double TrainPair(UserId u, UserId v);

  /// Exact log P(v | u) without updating.
  double LogProbability(UserId u, UserId v) const;

  double learning_rate() const { return learning_rate_; }

 private:
  std::span<double> InternalVector(uint32_t node) {
    return {internal_.data() + static_cast<size_t>(node) * dim_, dim_};
  }
  std::span<const double> InternalVector(uint32_t node) const {
    return {internal_.data() + static_cast<size_t>(node) * dim_, dim_};
  }

  EmbeddingStore* store_;
  const HuffmanTree* tree_;
  double learning_rate_;
  uint32_t dim_;
  std::vector<double> internal_;  // num_internal x dim.
  std::vector<double> grad_buffer_;
};

}  // namespace inf2vec

#endif  // INF2VEC_EMBEDDING_HIERARCHICAL_SOFTMAX_H_
