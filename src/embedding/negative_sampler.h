#ifndef INF2VEC_EMBEDDING_NEGATIVE_SAMPLER_H_
#define INF2VEC_EMBEDDING_NEGATIVE_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "util/alias_sampler.h"
#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {

/// Distribution the negatives are drawn from. The paper says "randomly
/// sample"; kUnigram075 is the word2vec convention (frequency^0.75) and the
/// library default; kUniform matches the literal reading. Both are
/// benchmarked in the ablation.
enum class NegativeSamplerKind {
  kUniform,
  kUnigram075,
};

/// Draws negative instances w for skip-gram training, avoiding the current
/// positive pair's endpoints.
///
/// A `const NegativeSampler` is shareable across threads: Sample() and
/// SampleMany() are const, mutate only the caller-supplied Rng/output, and
/// read only state frozen at construction — which is why the Hogwild
/// training workers all draw from one shared instance (each with its own
/// Rng stream).
class NegativeSampler {
 public:
  /// `target_frequencies[u]` = how often u appears as a context/target in
  /// the training corpus; only used by kUnigram075 (users with frequency 0
  /// get a +1 smoothing so every user remains sampleable).
  static Result<NegativeSampler> Create(
      NegativeSamplerKind kind, uint32_t num_users,
      const std::vector<uint64_t>& target_frequencies);

  /// Uniform sampler that needs no frequency table.
  static NegativeSampler CreateUniform(uint32_t num_users);

  NegativeSamplerKind kind() const { return kind_; }
  uint32_t num_users() const { return num_users_; }

  /// One negative, != exclude_a and != exclude_b (retry loop; falls back to
  /// any user after a bounded number of rejections, which only matters for
  /// pathological 1-2 user universes).
  UserId Sample(Rng& rng, UserId exclude_a, UserId exclude_b) const;

  /// `count` negatives into `out` (cleared first).
  void SampleMany(Rng& rng, UserId exclude_a, UserId exclude_b,
                  uint32_t count, std::vector<UserId>* out) const;

 private:
  NegativeSampler(NegativeSamplerKind kind, uint32_t num_users)
      : kind_(kind), num_users_(num_users) {}

  /// Sample() plus an out-param rejection tally so SampleMany can batch the
  /// metric update to one striped add per call instead of one per draw.
  UserId SampleCounted(Rng& rng, UserId exclude_a, UserId exclude_b,
                       uint64_t* rejected) const;

  NegativeSamplerKind kind_;
  uint32_t num_users_;
  AliasSampler alias_;  // Only built for kUnigram075.
};

}  // namespace inf2vec

#endif  // INF2VEC_EMBEDDING_NEGATIVE_SAMPLER_H_
