#include "embedding/embedding_store.h"

#include "kernels/kernels.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace inf2vec {

EmbeddingStore::EmbeddingStore(uint32_t num_users, uint32_t dim)
    : num_users_(num_users),
      dim_(dim),
      stride_(static_cast<uint32_t>(
          kernels::PaddedStride(dim, sizeof(double)))),
      source_(static_cast<size_t>(num_users) * stride_, 0.0),
      target_(static_cast<size_t>(num_users) * stride_, 0.0),
      source_bias_(num_users, 0.0),
      target_bias_(num_users, 0.0) {
  INF2VEC_CHECK(dim > 0) << "embedding dimension must be positive";
  INF2VEC_DASSERT_ALIGNED(source_.data());
  INF2VEC_DASSERT_ALIGNED(target_.data());
}

void EmbeddingStore::InitPaperDefault(Rng& rng) {
  const double bound = 1.0 / static_cast<double>(dim_);
  InitUniform(-bound, bound, rng);
}

void EmbeddingStore::InitUniform(double lo, double hi, Rng& rng) {
  // Iterate rows through the spans, not the raw padded buffers: the RNG
  // draw sequence (S rows then T rows, dim draws each, user-id order) is
  // pinned by the reproducibility contract and must not consume draws for
  // padding lanes.
  for (UserId u = 0; u < num_users_; ++u) {
    for (double& x : Source(u)) x = rng.UniformDouble(lo, hi);
  }
  for (UserId u = 0; u < num_users_; ++u) {
    for (double& x : Target(u)) x = rng.UniformDouble(lo, hi);
  }
  for (double& b : source_bias_) b = 0.0;
  for (double& b : target_bias_) b = 0.0;
}

void EmbeddingStore::GrowTo(uint32_t new_num_users, Rng& rng) {
  if (new_num_users <= num_users_) return;
  const uint32_t old_num_users = num_users_;
  const double bound = 1.0 / static_cast<double>(dim_);
  source_.resize(static_cast<size_t>(new_num_users) * stride_, 0.0);
  target_.resize(static_cast<size_t>(new_num_users) * stride_, 0.0);
  source_bias_.resize(new_num_users, 0.0);
  target_bias_.resize(new_num_users, 0.0);
  num_users_ = new_num_users;
  for (UserId u = old_num_users; u < new_num_users; ++u) {
    for (double& x : Source(u)) x = rng.UniformDouble(-bound, bound);
  }
  for (UserId u = old_num_users; u < new_num_users; ++u) {
    for (double& x : Target(u)) x = rng.UniformDouble(-bound, bound);
  }
}

INF2VEC_NO_SANITIZE_THREAD
double EmbeddingStore::Score(UserId u, UserId v) const {
  const std::span<const double> s = Source(u);
  const std::span<const double> t = Target(v);
  const double dot = kernels::Dot(s.data(), t.data(), dim_);
  return dot + source_bias_[u] + target_bias_[v];
}

std::vector<double> EmbeddingStore::ConcatenatedVector(UserId u) const {
  std::vector<double> out;
  out.reserve(2 * dim_);
  const auto s = Source(u);
  const auto t = Target(u);
  out.insert(out.end(), s.begin(), s.end());
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

}  // namespace inf2vec
