#include "embedding/embedding_store.h"

#include "util/logging.h"
#include "util/thread_pool.h"

namespace inf2vec {

EmbeddingStore::EmbeddingStore(uint32_t num_users, uint32_t dim)
    : num_users_(num_users),
      dim_(dim),
      source_(static_cast<size_t>(num_users) * dim, 0.0),
      target_(static_cast<size_t>(num_users) * dim, 0.0),
      source_bias_(num_users, 0.0),
      target_bias_(num_users, 0.0) {
  INF2VEC_CHECK(dim > 0) << "embedding dimension must be positive";
}

void EmbeddingStore::InitPaperDefault(Rng& rng) {
  const double bound = 1.0 / static_cast<double>(dim_);
  InitUniform(-bound, bound, rng);
}

void EmbeddingStore::InitUniform(double lo, double hi, Rng& rng) {
  for (double& x : source_) x = rng.UniformDouble(lo, hi);
  for (double& x : target_) x = rng.UniformDouble(lo, hi);
  for (double& b : source_bias_) b = 0.0;
  for (double& b : target_bias_) b = 0.0;
}

INF2VEC_NO_SANITIZE_THREAD
double EmbeddingStore::Score(UserId u, UserId v) const {
  const std::span<const double> s = Source(u);
  const std::span<const double> t = Target(v);
  double dot = 0.0;
  for (uint32_t k = 0; k < dim_; ++k) dot += s[k] * t[k];
  return dot + source_bias_[u] + target_bias_[v];
}

std::vector<double> EmbeddingStore::ConcatenatedVector(UserId u) const {
  std::vector<double> out;
  out.reserve(2 * dim_);
  const auto s = Source(u);
  const auto t = Target(u);
  out.insert(out.end(), s.begin(), s.end());
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

}  // namespace inf2vec
