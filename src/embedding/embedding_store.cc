#include "embedding/embedding_store.h"

#include "util/logging.h"
#include "util/thread_pool.h"

namespace inf2vec {

EmbeddingStore::EmbeddingStore(uint32_t num_users, uint32_t dim)
    : num_users_(num_users),
      dim_(dim),
      source_(static_cast<size_t>(num_users) * dim, 0.0),
      target_(static_cast<size_t>(num_users) * dim, 0.0),
      source_bias_(num_users, 0.0),
      target_bias_(num_users, 0.0) {
  INF2VEC_CHECK(dim > 0) << "embedding dimension must be positive";
}

void EmbeddingStore::InitPaperDefault(Rng& rng) {
  const double bound = 1.0 / static_cast<double>(dim_);
  InitUniform(-bound, bound, rng);
}

void EmbeddingStore::InitUniform(double lo, double hi, Rng& rng) {
  for (double& x : source_) x = rng.UniformDouble(lo, hi);
  for (double& x : target_) x = rng.UniformDouble(lo, hi);
  for (double& b : source_bias_) b = 0.0;
  for (double& b : target_bias_) b = 0.0;
}

void EmbeddingStore::GrowTo(uint32_t new_num_users, Rng& rng) {
  if (new_num_users <= num_users_) return;
  const size_t old_values = static_cast<size_t>(num_users_) * dim_;
  const size_t new_values = static_cast<size_t>(new_num_users) * dim_;
  const double bound = 1.0 / static_cast<double>(dim_);
  source_.resize(new_values);
  for (size_t i = old_values; i < new_values; ++i) {
    source_[i] = rng.UniformDouble(-bound, bound);
  }
  target_.resize(new_values);
  for (size_t i = old_values; i < new_values; ++i) {
    target_[i] = rng.UniformDouble(-bound, bound);
  }
  source_bias_.resize(new_num_users, 0.0);
  target_bias_.resize(new_num_users, 0.0);
  num_users_ = new_num_users;
}

INF2VEC_NO_SANITIZE_THREAD
double EmbeddingStore::Score(UserId u, UserId v) const {
  const std::span<const double> s = Source(u);
  const std::span<const double> t = Target(v);
  double dot = 0.0;
  for (uint32_t k = 0; k < dim_; ++k) dot += s[k] * t[k];
  return dot + source_bias_[u] + target_bias_[v];
}

std::vector<double> EmbeddingStore::ConcatenatedVector(UserId u) const {
  std::vector<double> out;
  out.reserve(2 * dim_);
  const auto s = Source(u);
  const auto t = Target(u);
  out.insert(out.end(), s.begin(), s.end());
  out.insert(out.end(), t.begin(), t.end());
  return out;
}

}  // namespace inf2vec
