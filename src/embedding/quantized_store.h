#ifndef INF2VEC_EMBEDDING_QUANTIZED_STORE_H_
#define INF2VEC_EMBEDDING_QUANTIZED_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "embedding/embedding_store.h"
#include "graph/social_graph.h"
#include "kernels/aligned.h"

namespace inf2vec {

/// Read-only int8 serving table derived from a trained EmbeddingStore.
///
/// Each S/T row is quantized symmetrically: scale_r = maxabs(row)/127 and
/// q[k] = round(x[k]/scale_r) clamped to [-127, 127] (scale_r = 0 for an
/// all-zero row; its codes are all zero). Biases are kept as fp32 — they
/// are O(num_users) scalars, not worth quantizing. The approximate
/// influence score is
///
///   x~(u, v) = (scale_u * scale_v) * <Sq_u, Tq_v>_int32 + b_u + b~_v
///
/// where the int8 dot product is exact integer arithmetic on every kernel
/// backend, so a quantized score is bitwise reproducible across scalar and
/// AVX2 — the only approximation is the quantization itself.
///
/// Rows live in 64-byte-aligned buffers with the pitch padded to a whole
/// cache line (row_stride() >= dim()); padding codes are zero and drop out
/// of the integer dot. An int8 row is 8x smaller than the fp64 row it
/// replaces, so the candidate scan of InfluenceService::TopK touches 1/8th
/// the memory per block.
///
/// The table is immutable after construction/loading: all scoring methods
/// are const and safe to share across serving threads without locks.
class QuantizedEmbeddingStore {
 public:
  /// Empty (0 x 0) placeholder, e.g. before LoadQuantized fills it in.
  QuantizedEmbeddingStore() : num_users_(0), dim_(0), stride_(0) {}

  /// Allocates a zeroed table; used by FromStore and the artifact loader,
  /// which then fill rows through the mutable accessors.
  QuantizedEmbeddingStore(uint32_t num_users, uint32_t dim);

  /// Quantizes every row and bias of a trained fp64 store.
  static QuantizedEmbeddingStore FromStore(const EmbeddingStore& store);

  uint32_t num_users() const { return num_users_; }
  uint32_t dim() const { return dim_; }
  /// Row pitch of the int8 S/T buffers in bytes (dim rounded up to a
  /// 64-byte multiple); padding codes are zero.
  uint32_t row_stride() const { return stride_; }

  std::span<const int8_t> Source(UserId u) const {
    return {source_.data() + static_cast<size_t>(u) * stride_, dim_};
  }
  std::span<const int8_t> Target(UserId u) const {
    return {target_.data() + static_cast<size_t>(u) * stride_, dim_};
  }
  std::span<int8_t> MutableSource(UserId u) {
    return {source_.data() + static_cast<size_t>(u) * stride_, dim_};
  }
  std::span<int8_t> MutableTarget(UserId u) {
    return {target_.data() + static_cast<size_t>(u) * stride_, dim_};
  }

  float source_scale(UserId u) const { return source_scale_[u]; }
  float target_scale(UserId u) const { return target_scale_[u]; }
  float source_bias(UserId u) const { return source_bias_[u]; }
  float target_bias(UserId u) const { return target_bias_[u]; }
  float& mutable_source_scale(UserId u) { return source_scale_[u]; }
  float& mutable_target_scale(UserId u) { return target_scale_[u]; }
  float& mutable_source_bias(UserId u) { return source_bias_[u]; }
  float& mutable_target_bias(UserId u) { return target_bias_[u]; }

  /// Dequantized score for one int32 integer dot. Every scoring path
  /// (Score below, the blocked scan in InfluenceService) MUST combine
  /// through this one expression so a candidate's score is bitwise
  /// identical no matter which path produced it.
  static double DequantScore(float scale_u, float scale_v, int32_t idot,
                             float bias_u, float bias_v) {
    const double prod =
        static_cast<double>(scale_u) * static_cast<double>(scale_v);
    return (prod * static_cast<double>(idot) + static_cast<double>(bias_u)) +
           static_cast<double>(bias_v);
  }

  /// Approximate influence score x~(u, v); see class comment.
  double Score(UserId u, UserId v) const;

  /// Bytes held by the S/T code tables plus scales and biases (the
  /// serving-footprint number reported by bench_serve and /varz).
  size_t TableBytes() const;

 private:
  uint32_t num_users_;
  uint32_t dim_;
  uint32_t stride_;  // Bytes per row; kernels::PaddedStride(dim, 1).
  kernels::AlignedVector<int8_t> source_;  // num_users * stride
  kernels::AlignedVector<int8_t> target_;  // num_users * stride
  std::vector<float> source_scale_;        // num_users
  std::vector<float> target_scale_;        // num_users
  std::vector<float> source_bias_;         // num_users
  std::vector<float> target_bias_;         // num_users
};

}  // namespace inf2vec

#endif  // INF2VEC_EMBEDDING_QUANTIZED_STORE_H_
