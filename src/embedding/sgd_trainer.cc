#include "embedding/sgd_trainer.h"

#include <cmath>

#include "kernels/kernels.h"
#include "util/logging.h"
#include "util/sigmoid_table.h"
#include "util/thread_pool.h"

namespace inf2vec {

SgdTrainer::SgdTrainer(EmbeddingStore* store, const NegativeSampler* sampler,
                       const SgdOptions& options)
    : store_(store), sampler_(sampler), options_(options) {
  INF2VEC_CHECK(store_ != nullptr);
  INF2VEC_CHECK(sampler_ != nullptr);
  source_grad_.resize(store_->dim(), 0.0);
  INF2VEC_DASSERT_ALIGNED(source_grad_.data());
}

double SgdTrainer::SigmoidOf(double z) const {
  return options_.use_sigmoid_table ? GlobalSigmoidTable().Sigmoid(z)
                                    : SigmoidTable::Exact(z);
}

INF2VEC_NO_SANITIZE_THREAD
double SgdTrainer::TrainPair(UserId u, UserId v, Rng& rng,
                             bool want_objective) {
  const uint32_t dim = store_->dim();
  const double lr = options_.learning_rate;

  sampler_->SampleMany(rng, u, v, options_.num_negatives, &negatives_);

  // Accumulate dL/dS_u across the positive and all negatives, applying it
  // once at the end (Eq. 6 evaluates every term at the current S_u). Each
  // score z is computed once and feeds both the gradient coefficient and
  // (when requested) the objective term; skipping the objective keeps the
  // hot path free of std::log entirely.
  double objective = 0.0;
  std::fill(source_grad_.begin(), source_grad_.end(), 0.0);
  const std::span<double> s_u = store_->Source(u);
  double bias_u_grad = 0.0;

  {  // Positive term: coefficient (1 - sigma(z_v)).
    const double z = store_->Score(u, v);
    if (want_objective) objective += std::log(SigmoidTable::Exact(z));
    const double coeff = 1.0 - SigmoidOf(z);
    const std::span<double> t_v = store_->Target(v);
    kernels::GradStep(coeff, lr * coeff, s_u.data(), t_v.data(),
                      source_grad_.data(), dim);
    if (options_.use_biases) {
      bias_u_grad += coeff;
      store_->mutable_target_bias(v) += lr * coeff;
    }
  }

  for (UserId w : negatives_) {  // Negative terms: coefficient -sigma(z_w).
    const double z = store_->Score(u, w);
    if (want_objective) objective += std::log(SigmoidTable::Exact(-z));
    const double coeff = -SigmoidOf(z);
    const std::span<double> t_w = store_->Target(w);
    kernels::GradStep(coeff, lr * coeff, s_u.data(), t_w.data(),
                      source_grad_.data(), dim);
    if (options_.use_biases) {
      bias_u_grad += coeff;
      store_->mutable_target_bias(w) += lr * coeff;
    }
  }

  kernels::Axpy(lr, source_grad_.data(), s_u.data(), dim);
  if (options_.use_biases) store_->mutable_source_bias(u) += lr * bias_u_grad;

  return objective;
}

double SgdTrainer::PairObjective(UserId u, UserId v,
                                 const std::vector<UserId>& negatives) const {
  double obj = std::log(SigmoidTable::Exact(store_->Score(u, v)));
  for (UserId w : negatives) {
    obj += std::log(SigmoidTable::Exact(-store_->Score(u, w)));
  }
  return obj;
}

}  // namespace inf2vec
