#include "embedding/model_io.h"

#include <cstring>

#include "util/io.h"
#include "util/string_util.h"

namespace inf2vec {
namespace {

constexpr char kMagic[] = "I2VEMB1\n";
constexpr size_t kMagicLen = 8;

void AppendRaw(std::string* out, const void* data, size_t bytes) {
  out->append(static_cast<const char*>(data), bytes);
}

template <typename T>
bool ReadRaw(const std::string& buf, size_t* offset, T* out, size_t count) {
  const size_t bytes = sizeof(T) * count;
  if (*offset + bytes > buf.size()) return false;
  std::memcpy(out, buf.data() + *offset, bytes);
  *offset += bytes;
  return true;
}

}  // namespace

Status SaveEmbeddings(const EmbeddingStore& store, const std::string& path) {
  std::string blob;
  const uint32_t n = store.num_users();
  const uint32_t dim = store.dim();
  blob.reserve(kMagicLen + 8 +
               sizeof(double) * (2 * static_cast<size_t>(n) * dim + 2 * n));
  AppendRaw(&blob, kMagic, kMagicLen);
  AppendRaw(&blob, &n, sizeof(n));
  AppendRaw(&blob, &dim, sizeof(dim));
  for (UserId u = 0; u < n; ++u) {
    AppendRaw(&blob, store.Source(u).data(), sizeof(double) * dim);
  }
  for (UserId u = 0; u < n; ++u) {
    AppendRaw(&blob, store.Target(u).data(), sizeof(double) * dim);
  }
  for (UserId u = 0; u < n; ++u) {
    const double b = store.source_bias(u);
    AppendRaw(&blob, &b, sizeof(b));
  }
  for (UserId u = 0; u < n; ++u) {
    const double b = store.target_bias(u);
    AppendRaw(&blob, &b, sizeof(b));
  }
  return WriteFile(path, blob);
}

Result<EmbeddingStore> LoadEmbeddings(const std::string& path) {
  std::string blob;
  INF2VEC_RETURN_IF_ERROR(ReadFile(path, &blob));
  if (blob.size() < kMagicLen + 8 ||
      std::memcmp(blob.data(), kMagic, kMagicLen) != 0) {
    return Status::InvalidArgument("not an Inf2vec embedding file: " + path);
  }
  size_t offset = kMagicLen;
  uint32_t n = 0;
  uint32_t dim = 0;
  if (!ReadRaw(blob, &offset, &n, 1) || !ReadRaw(blob, &offset, &dim, 1) ||
      n == 0 || dim == 0) {
    return Status::InvalidArgument("corrupt embedding header: " + path);
  }
  const size_t expected = kMagicLen + 8 +
                          sizeof(double) * (2 * static_cast<size_t>(n) * dim +
                                            2 * static_cast<size_t>(n));
  if (blob.size() != expected) {
    return Status::InvalidArgument(
        StrFormat("embedding file size mismatch: got %zu want %zu",
                  blob.size(), expected));
  }

  EmbeddingStore store(n, dim);
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, store.Source(u).data(), dim)) {
      return Status::Internal("truncated source block");
    }
  }
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, store.Target(u).data(), dim)) {
      return Status::Internal("truncated target block");
    }
  }
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, &store.mutable_source_bias(u), 1)) {
      return Status::Internal("truncated source-bias block");
    }
  }
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, &store.mutable_target_bias(u), 1)) {
      return Status::Internal("truncated target-bias block");
    }
  }
  return store;
}

Status ExportEmbeddingsText(const EmbeddingStore& store,
                            const std::string& path) {
  std::vector<std::string> lines;
  lines.reserve(store.num_users() + 1);
  lines.push_back(StrFormat("%u %u", store.num_users(), store.dim()));
  for (UserId u = 0; u < store.num_users(); ++u) {
    std::string line = StrFormat("%u %.17g %.17g", u, store.source_bias(u),
                                 store.target_bias(u));
    for (double x : store.Source(u)) line += StrFormat(" %.17g", x);
    for (double x : store.Target(u)) line += StrFormat(" %.17g", x);
    lines.push_back(std::move(line));
  }
  return WriteLines(path, lines);
}

}  // namespace inf2vec
