#include "embedding/model_io.h"

#include <cstring>

#include "util/crc32.h"
#include "util/io.h"
#include "util/string_util.h"

namespace inf2vec {
namespace {

constexpr char kMagicV1[] = "I2VEMB1\n";
constexpr char kMagicV2[] = "I2VEMB2\n";
constexpr char kMagicQuant[] = "I2VQNT1\n";
constexpr char kMagicShard[] = "I2VSHRD1";
constexpr size_t kMagicLen = 8;
/// Shard section after its magic: six identity fields + crc32.
constexpr size_t kShardSectionBytes = 5 * sizeof(uint32_t) +
                                      sizeof(uint64_t) + sizeof(uint32_t);
/// Sanity cap for the metadata block: real headers are a few hundred
/// bytes, so anything larger is a corrupt length field.
constexpr uint32_t kMaxMetadataBytes = 1 << 20;

void AppendRaw(std::string* out, const void* data, size_t bytes) {
  out->append(static_cast<const char*>(data), bytes);
}

template <typename T>
bool ReadRaw(const std::string& buf, size_t* offset, T* out, size_t count) {
  const size_t bytes = sizeof(T) * count;
  if (*offset + bytes > buf.size()) return false;
  std::memcpy(out, buf.data() + *offset, bytes);
  *offset += bytes;
  return true;
}

/// The shared float64 payload: S, T, b, b~ blocks in that order.
void AppendPayload(const EmbeddingStore& store, std::string* blob) {
  const uint32_t n = store.num_users();
  const uint32_t dim = store.dim();
  for (UserId u = 0; u < n; ++u) {
    AppendRaw(blob, store.Source(u).data(), sizeof(double) * dim);
  }
  for (UserId u = 0; u < n; ++u) {
    AppendRaw(blob, store.Target(u).data(), sizeof(double) * dim);
  }
  for (UserId u = 0; u < n; ++u) {
    const double b = store.source_bias(u);
    AppendRaw(blob, &b, sizeof(b));
  }
  for (UserId u = 0; u < n; ++u) {
    const double b = store.target_bias(u);
    AppendRaw(blob, &b, sizeof(b));
  }
}

/// Bytes of the int8 serving section (excluding its magic): codes for S
/// and T plus four float32 per-user arrays (scales and biases).
size_t QuantSectionBytes(uint32_t n, uint32_t dim) {
  return 2 * sizeof(uint32_t) + 2 * static_cast<size_t>(n) * dim +
         4 * sizeof(float) * static_cast<size_t>(n);
}

/// The fp64 payload; `offset` must point just past the (n, dim) header.
/// The blob must end exactly where the payload does unless
/// `allow_trailing` (a v2 artifact possibly carrying a quantized
/// section), in which case trailing bytes are left for the caller.
Result<EmbeddingStore> ReadPayload(const std::string& blob, size_t offset,
                                   uint32_t n, uint32_t dim,
                                   const std::string& path,
                                   bool allow_trailing = false) {
  const size_t expected = offset +
                          sizeof(double) * (2 * static_cast<size_t>(n) * dim +
                                            2 * static_cast<size_t>(n));
  const bool size_ok =
      allow_trailing ? blob.size() >= expected : blob.size() == expected;
  if (!size_ok) {
    return Status::InvalidArgument(
        StrFormat("embedding file size mismatch: got %zu want %zu (%s)",
                  blob.size(), expected, path.c_str()));
  }

  EmbeddingStore store(n, dim);
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, store.Source(u).data(), dim)) {
      return Status::Internal("truncated source block");
    }
  }
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, store.Target(u).data(), dim)) {
      return Status::Internal("truncated target block");
    }
  }
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, &store.mutable_source_bias(u), 1)) {
      return Status::Internal("truncated source-bias block");
    }
  }
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, &store.mutable_target_bias(u), 1)) {
      return Status::Internal("truncated target-bias block");
    }
  }
  return store;
}

void AppendQuantSection(const QuantizedEmbeddingStore& q, std::string* blob) {
  const uint32_t n = q.num_users();
  const uint32_t dim = q.dim();
  AppendRaw(blob, kMagicQuant, kMagicLen);
  AppendRaw(blob, &n, sizeof(n));
  AppendRaw(blob, &dim, sizeof(dim));
  for (UserId u = 0; u < n; ++u) AppendRaw(blob, q.Source(u).data(), dim);
  for (UserId u = 0; u < n; ++u) AppendRaw(blob, q.Target(u).data(), dim);
  for (UserId u = 0; u < n; ++u) {
    const float s = q.source_scale(u);
    AppendRaw(blob, &s, sizeof(s));
  }
  for (UserId u = 0; u < n; ++u) {
    const float s = q.target_scale(u);
    AppendRaw(blob, &s, sizeof(s));
  }
  for (UserId u = 0; u < n; ++u) {
    const float b = q.source_bias(u);
    AppendRaw(blob, &b, sizeof(b));
  }
  for (UserId u = 0; u < n; ++u) {
    const float b = q.target_bias(u);
    AppendRaw(blob, &b, sizeof(b));
  }
}

/// Parses the int8 serving section whose magic sits at `*offset`,
/// advancing `*offset` past the section (further trailing sections — the
/// shard identity — may follow). (n, dim) must match the artifact header.
Result<QuantizedEmbeddingStore> ReadQuantSection(const std::string& blob,
                                                 size_t* offset_in, uint32_t n,
                                                 uint32_t dim,
                                                 const std::string& path) {
  size_t offset = *offset_in + kMagicLen;
  if (blob.size() - offset < QuantSectionBytes(n, dim)) {
    return Status::InvalidArgument(
        StrFormat("quantized section size mismatch: got %zu want %zu (%s)",
                  blob.size() - offset, QuantSectionBytes(n, dim),
                  path.c_str()));
  }
  uint32_t qn = 0;
  uint32_t qdim = 0;
  if (!ReadRaw(blob, &offset, &qn, 1) || !ReadRaw(blob, &offset, &qdim, 1) ||
      qn != n || qdim != dim) {
    return Status::InvalidArgument(
        "quantized section shape disagrees with artifact header: " + path);
  }
  QuantizedEmbeddingStore q(n, dim);
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, q.MutableSource(u).data(), dim)) {
      return Status::Internal("truncated quantized source block");
    }
  }
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, q.MutableTarget(u).data(), dim)) {
      return Status::Internal("truncated quantized target block");
    }
  }
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, &q.mutable_source_scale(u), 1)) {
      return Status::Internal("truncated quantized source-scale block");
    }
  }
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, &q.mutable_target_scale(u), 1)) {
      return Status::Internal("truncated quantized target-scale block");
    }
  }
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, &q.mutable_source_bias(u), 1)) {
      return Status::Internal("truncated quantized source-bias block");
    }
  }
  for (UserId u = 0; u < n; ++u) {
    if (!ReadRaw(blob, &offset, &q.mutable_target_bias(u), 1)) {
      return Status::Internal("truncated quantized target-bias block");
    }
  }
  *offset_in = offset;
  return q;
}

void AppendShardSection(const ShardSliceInfo& shard, std::string* blob) {
  std::string fields;
  AppendRaw(&fields, &shard.shard_index, sizeof(uint32_t));
  AppendRaw(&fields, &shard.num_shards, sizeof(uint32_t));
  AppendRaw(&fields, &shard.begin_user, sizeof(uint32_t));
  AppendRaw(&fields, &shard.end_user, sizeof(uint32_t));
  AppendRaw(&fields, &shard.total_users, sizeof(uint32_t));
  AppendRaw(&fields, &shard.model_hash, sizeof(uint64_t));
  const uint32_t crc = Crc32(fields.data(), fields.size());
  AppendRaw(blob, kMagicShard, kMagicLen);
  *blob += fields;
  AppendRaw(blob, &crc, sizeof(crc));
}

/// Parses the shard-identity section whose magic sits at `*offset`,
/// advancing `*offset` past it. The crc makes a flipped bit in the tiny
/// identity block (which the fp64 size checks cannot see) a load error
/// instead of a silently wrong shard range.
Result<ShardSliceInfo> ReadShardSection(const std::string& blob,
                                        size_t* offset_in, uint32_t n,
                                        const std::string& path) {
  size_t offset = *offset_in + kMagicLen;
  if (blob.size() - offset < kShardSectionBytes) {
    return Status::InvalidArgument("truncated shard section: " + path);
  }
  const char* fields = blob.data() + offset;
  const size_t fields_bytes = kShardSectionBytes - sizeof(uint32_t);
  ShardSliceInfo shard;
  uint32_t crc = 0;
  if (!ReadRaw(blob, &offset, &shard.shard_index, 1) ||
      !ReadRaw(blob, &offset, &shard.num_shards, 1) ||
      !ReadRaw(blob, &offset, &shard.begin_user, 1) ||
      !ReadRaw(blob, &offset, &shard.end_user, 1) ||
      !ReadRaw(blob, &offset, &shard.total_users, 1) ||
      !ReadRaw(blob, &offset, &shard.model_hash, 1) ||
      !ReadRaw(blob, &offset, &crc, 1)) {
    return Status::Internal("truncated shard section: " + path);
  }
  if (crc != Crc32(fields, fields_bytes)) {
    return Status::InvalidArgument("shard section crc mismatch: " + path);
  }
  if (shard.num_shards == 0 || shard.shard_index >= shard.num_shards ||
      shard.begin_user >= shard.end_user ||
      shard.end_user > shard.total_users ||
      shard.end_user - shard.begin_user != n) {
    return Status::InvalidArgument(
        StrFormat("shard section inconsistent with artifact: shard %u/%u "
                  "range [%u,%u) of %u users, store holds %u (%s)",
                  shard.shard_index, shard.num_shards, shard.begin_user,
                  shard.end_user, shard.total_users, n, path.c_str()));
  }
  *offset_in = offset;
  return shard;
}

}  // namespace

uint64_t ComputeModelContentHash(const EmbeddingStore& store) {
  constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
  constexpr uint64_t kFnvPrime = 1099511628211ULL;
  uint64_t hash = kFnvOffset;
  const auto mix = [&hash](const void* data, size_t bytes) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < bytes; ++i) {
      hash ^= p[i];
      hash *= kFnvPrime;
    }
  };
  const uint32_t n = store.num_users();
  const uint32_t dim = store.dim();
  mix(&n, sizeof(n));
  mix(&dim, sizeof(dim));
  // Exactly the AppendPayload byte order: S rows, T rows, b, b~.
  for (UserId u = 0; u < n; ++u) {
    mix(store.Source(u).data(), sizeof(double) * dim);
  }
  for (UserId u = 0; u < n; ++u) {
    mix(store.Target(u).data(), sizeof(double) * dim);
  }
  for (UserId u = 0; u < n; ++u) {
    const double b = store.source_bias(u);
    mix(&b, sizeof(b));
  }
  for (UserId u = 0; u < n; ++u) {
    const double b = store.target_bias(u);
    mix(&b, sizeof(b));
  }
  return hash;
}

obs::JsonValue ModelMetadata::ToJson() const {
  obs::JsonValue json = obs::JsonValue::Object();
  json.Set("format_version", format_version);
  json.Set("aggregation", aggregation);
  obs::JsonValue config = obs::JsonValue::Object();
  config.Set("dim", dim);
  config.Set("length", context_length);
  config.Set("alpha", alpha);
  config.Set("epochs", epochs);
  config.Set("learning_rate", learning_rate);
  config.Set("num_negatives", num_negatives);
  config.Set("seed", seed);
  config.Set("num_threads", num_threads);
  json.Set("config", std::move(config));
  json.Set("git_sha", git_sha);
  return json;
}

Result<ModelMetadata> ModelMetadata::FromJson(const obs::JsonValue& json) {
  if (json.kind() != obs::JsonValue::Kind::kObject) {
    return Status::InvalidArgument("model metadata must be a JSON object");
  }
  ModelMetadata metadata;
  if (const obs::JsonValue* v = json.Find("format_version")) {
    metadata.format_version = static_cast<uint32_t>(v->AsInt());
  }
  if (const obs::JsonValue* v = json.Find("aggregation")) {
    metadata.aggregation = v->AsString();
  }
  if (const obs::JsonValue* v = json.Find("git_sha")) {
    metadata.git_sha = v->AsString();
  }
  if (const obs::JsonValue* config = json.Find("config")) {
    if (config->kind() != obs::JsonValue::Kind::kObject) {
      return Status::InvalidArgument("model metadata 'config' must be an object");
    }
    if (const obs::JsonValue* v = config->Find("dim")) {
      metadata.dim = static_cast<uint32_t>(v->AsInt());
    }
    if (const obs::JsonValue* v = config->Find("length")) {
      metadata.context_length = static_cast<uint32_t>(v->AsInt());
    }
    if (const obs::JsonValue* v = config->Find("alpha")) {
      metadata.alpha = v->AsDouble();
    }
    if (const obs::JsonValue* v = config->Find("epochs")) {
      metadata.epochs = static_cast<uint32_t>(v->AsInt());
    }
    if (const obs::JsonValue* v = config->Find("learning_rate")) {
      metadata.learning_rate = v->AsDouble();
    }
    if (const obs::JsonValue* v = config->Find("num_negatives")) {
      metadata.num_negatives = static_cast<uint32_t>(v->AsInt());
    }
    if (const obs::JsonValue* v = config->Find("seed")) {
      metadata.seed = static_cast<uint64_t>(v->AsInt());
    }
    if (const obs::JsonValue* v = config->Find("num_threads")) {
      metadata.num_threads = static_cast<uint32_t>(v->AsInt());
    }
  }
  return metadata;
}

Status SaveModelArtifact(const EmbeddingStore& store,
                         const ModelMetadata& metadata,
                         const std::string& path,
                         const QuantizedEmbeddingStore* quantized,
                         const ShardSliceInfo* shard) {
  if (quantized != nullptr && (quantized->num_users() != store.num_users() ||
                               quantized->dim() != store.dim())) {
    return Status::InvalidArgument(
        "quantized table shape disagrees with the fp64 store");
  }
  if (shard != nullptr &&
      (shard->num_shards == 0 || shard->shard_index >= shard->num_shards ||
       shard->begin_user >= shard->end_user ||
       shard->end_user > shard->total_users ||
       shard->end_user - shard->begin_user != store.num_users())) {
    return Status::InvalidArgument(
        "shard identity disagrees with the store being saved");
  }
  ModelMetadata stamped = metadata;
  stamped.format_version = 2;
  const std::string meta_json = stamped.ToJson().Dump(0);
  if (meta_json.size() > kMaxMetadataBytes) {
    return Status::InvalidArgument("model metadata block too large");
  }

  std::string blob;
  const uint32_t n = store.num_users();
  const uint32_t dim = store.dim();
  const uint32_t meta_len = static_cast<uint32_t>(meta_json.size());
  blob.reserve(kMagicLen + 4 + meta_json.size() + 8 +
               sizeof(double) * (2 * static_cast<size_t>(n) * dim + 2 * n));
  AppendRaw(&blob, kMagicV2, kMagicLen);
  AppendRaw(&blob, &meta_len, sizeof(meta_len));
  blob += meta_json;
  AppendRaw(&blob, &n, sizeof(n));
  AppendRaw(&blob, &dim, sizeof(dim));
  AppendPayload(store, &blob);
  if (quantized != nullptr) AppendQuantSection(*quantized, &blob);
  if (shard != nullptr) AppendShardSection(*shard, &blob);
  return WriteFile(path, blob);
}

Status SaveEmbeddings(const EmbeddingStore& store, const std::string& path) {
  return SaveModelArtifact(store, ModelMetadata(), path);
}

Status SaveEmbeddingsV1(const EmbeddingStore& store, const std::string& path) {
  std::string blob;
  const uint32_t n = store.num_users();
  const uint32_t dim = store.dim();
  blob.reserve(kMagicLen + 8 +
               sizeof(double) * (2 * static_cast<size_t>(n) * dim + 2 * n));
  AppendRaw(&blob, kMagicV1, kMagicLen);
  AppendRaw(&blob, &n, sizeof(n));
  AppendRaw(&blob, &dim, sizeof(dim));
  AppendPayload(store, &blob);
  return WriteFile(path, blob);
}

Result<ModelArtifact> LoadModelArtifact(const std::string& path) {
  std::string blob;
  INF2VEC_RETURN_IF_ERROR(ReadFile(path, &blob));
  if (blob.size() < kMagicLen + 8) {
    return Status::InvalidArgument("not an Inf2vec embedding file: " + path);
  }

  size_t offset = kMagicLen;
  ModelMetadata metadata;
  if (std::memcmp(blob.data(), kMagicV2, kMagicLen) == 0) {
    uint32_t meta_len = 0;
    if (!ReadRaw(blob, &offset, &meta_len, 1) ||
        meta_len > kMaxMetadataBytes ||
        offset + meta_len > blob.size()) {
      return Status::InvalidArgument("corrupt model metadata header: " + path);
    }
    const std::string meta_json = blob.substr(offset, meta_len);
    offset += meta_len;
    Result<obs::JsonValue> parsed = obs::ParseJson(meta_json);
    if (!parsed.ok()) {
      return Status::InvalidArgument("corrupt model metadata JSON: " +
                                     parsed.status().message());
    }
    Result<ModelMetadata> from_json = ModelMetadata::FromJson(parsed.value());
    INF2VEC_RETURN_IF_ERROR(from_json.status());
    metadata = std::move(from_json).value();
    metadata.format_version = 2;
  } else if (std::memcmp(blob.data(), kMagicV1, kMagicLen) == 0) {
    // Legacy artifact: no self-description; defaults + version marker.
    metadata.format_version = 1;
  } else {
    return Status::InvalidArgument("not an Inf2vec embedding file: " + path);
  }

  uint32_t n = 0;
  uint32_t dim = 0;
  if (!ReadRaw(blob, &offset, &n, 1) || !ReadRaw(blob, &offset, &dim, 1) ||
      n == 0 || dim == 0) {
    return Status::InvalidArgument("corrupt embedding header: " + path);
  }
  const bool is_v2 = metadata.format_version == 2;
  Result<EmbeddingStore> store =
      ReadPayload(blob, offset, n, dim, path, /*allow_trailing=*/is_v2);
  INF2VEC_RETURN_IF_ERROR(store.status());

  ModelArtifact artifact{std::move(store).value(), std::move(metadata), {}, {}};
  size_t cursor =
      offset + sizeof(double) * (2 * static_cast<size_t>(n) * dim +
                                 2 * static_cast<size_t>(n));
  // Optional trailing sections, each at most once, in any order:
  // quantized table (I2VQNT1) and shard identity (I2VSHRD1).
  while (is_v2 && cursor < blob.size()) {
    if (blob.size() - cursor >= kMagicLen &&
        std::memcmp(blob.data() + cursor, kMagicQuant, kMagicLen) == 0 &&
        !artifact.quantized.has_value()) {
      Result<QuantizedEmbeddingStore> q =
          ReadQuantSection(blob, &cursor, n, dim, path);
      INF2VEC_RETURN_IF_ERROR(q.status());
      artifact.quantized = std::move(q).value();
      continue;
    }
    if (blob.size() - cursor >= kMagicLen &&
        std::memcmp(blob.data() + cursor, kMagicShard, kMagicLen) == 0 &&
        !artifact.shard.has_value()) {
      Result<ShardSliceInfo> shard = ReadShardSection(blob, &cursor, n, path);
      INF2VEC_RETURN_IF_ERROR(shard.status());
      artifact.shard = std::move(shard).value();
      continue;
    }
    return Status::InvalidArgument(
        "unrecognized trailing bytes after embedding payload: " + path);
  }
  return artifact;
}

Result<EmbeddingStore> LoadEmbeddings(const std::string& path) {
  Result<ModelArtifact> artifact = LoadModelArtifact(path);
  INF2VEC_RETURN_IF_ERROR(artifact.status());
  return std::move(artifact).value().store;
}

Status ExportEmbeddingsText(const EmbeddingStore& store,
                            const std::string& path) {
  std::vector<std::string> lines;
  lines.reserve(store.num_users() + 1);
  lines.push_back(StrFormat("%u %u", store.num_users(), store.dim()));
  for (UserId u = 0; u < store.num_users(); ++u) {
    std::string line = StrFormat("%u %.17g %.17g", u, store.source_bias(u),
                                 store.target_bias(u));
    for (double x : store.Source(u)) line += StrFormat(" %.17g", x);
    for (double x : store.Target(u)) line += StrFormat(" %.17g", x);
    lines.push_back(std::move(line));
  }
  return WriteLines(path, lines);
}

}  // namespace inf2vec
