#include "embedding/hierarchical_softmax.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/logging.h"
#include "util/sigmoid_table.h"

namespace inf2vec {

Result<HuffmanTree> HuffmanTree::Build(
    const std::vector<uint64_t>& frequencies) {
  if (frequencies.empty()) {
    return Status::InvalidArgument("cannot build a Huffman tree of nothing");
  }
  const uint32_t n = static_cast<uint32_t>(frequencies.size());

  HuffmanTree tree;
  tree.num_leaves_ = n;
  tree.paths_.resize(n);
  tree.codes_.resize(n);
  if (n == 1) return tree;  // Single leaf: empty path, P(v|u) = 1.

  // Standard two-queue Huffman construction over node ids:
  // ids [0, n) are leaves, [n, 2n-1) are internal nodes in creation order.
  struct Node {
    uint64_t weight;
    uint32_t id;
    bool operator>(const Node& other) const {
      return weight != other.weight ? weight > other.weight
                                    : id > other.id;
    }
  };
  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> heap;
  for (uint32_t i = 0; i < n; ++i) heap.push({frequencies[i] + 1, i});

  std::vector<uint32_t> parent(2 * n - 1, 0);
  std::vector<bool> is_right(2 * n - 1, false);
  uint32_t next_internal = n;
  while (heap.size() > 1) {
    const Node left = heap.top();
    heap.pop();
    const Node right = heap.top();
    heap.pop();
    parent[left.id] = next_internal;
    parent[right.id] = next_internal;
    is_right[right.id] = true;
    heap.push({left.weight + right.weight, next_internal});
    ++next_internal;
  }
  const uint32_t root = next_internal - 1;

  // Extract root-to-leaf paths. Internal ids are remapped to [0, n-1) by
  // subtracting n.
  for (uint32_t leaf = 0; leaf < n; ++leaf) {
    std::vector<uint32_t> path;
    std::vector<bool> code;
    uint32_t node = leaf;
    while (node != root) {
      code.push_back(is_right[node]);
      node = parent[node];
      path.push_back(node - n);
    }
    std::reverse(path.begin(), path.end());
    std::reverse(code.begin(), code.end());
    tree.paths_[leaf] = std::move(path);
    tree.codes_[leaf] = std::move(code);
  }
  return tree;
}

size_t HuffmanTree::MaxCodeLength() const {
  size_t max_len = 0;
  for (const auto& code : codes_) max_len = std::max(max_len, code.size());
  return max_len;
}

HierarchicalSoftmaxTrainer::HierarchicalSoftmaxTrainer(
    EmbeddingStore* store, const HuffmanTree* tree, double learning_rate)
    : store_(store),
      tree_(tree),
      learning_rate_(learning_rate),
      dim_(store->dim()),
      internal_(static_cast<size_t>(tree->num_internal()) * store->dim(),
                0.0),
      grad_buffer_(store->dim(), 0.0) {
  INF2VEC_CHECK(store_ != nullptr);
  INF2VEC_CHECK(tree_ != nullptr);
  INF2VEC_CHECK(tree_->num_leaves() == store_->num_users())
      << "tree and store disagree on the user count";
}

double HierarchicalSoftmaxTrainer::LogProbability(UserId u, UserId v) const {
  const std::span<const double> s_u = store_->Source(u);
  const std::vector<uint32_t>& path = tree_->PathOf(v);
  const std::vector<bool>& code = tree_->CodeOf(v);
  double log_prob = 0.0;
  for (size_t step = 0; step < path.size(); ++step) {
    const std::span<const double> w = InternalVector(path[step]);
    double z = 0.0;
    for (uint32_t k = 0; k < dim_; ++k) z += s_u[k] * w[k];
    // P(branch) = sigma(z) for the right child, sigma(-z) for the left.
    const double p = SigmoidTable::Exact(code[step] ? z : -z);
    log_prob += std::log(std::max(p, 1e-15));
  }
  return log_prob;
}

double HierarchicalSoftmaxTrainer::TrainPair(UserId u, UserId v) {
  const double objective = LogProbability(u, v);

  const std::span<double> s_u = store_->Source(u);
  const std::vector<uint32_t>& path = tree_->PathOf(v);
  const std::vector<bool>& code = tree_->CodeOf(v);
  std::fill(grad_buffer_.begin(), grad_buffer_.end(), 0.0);

  for (size_t step = 0; step < path.size(); ++step) {
    const std::span<double> w = InternalVector(path[step]);
    double z = 0.0;
    for (uint32_t k = 0; k < dim_; ++k) z += s_u[k] * w[k];
    // d/dz log sigma(code ? z : -z) = target - sigma(z), with target = 1
    // for the right branch and 0 for the left.
    const double coeff =
        (code[step] ? 1.0 : 0.0) - GlobalSigmoidTable().Sigmoid(z);
    for (uint32_t k = 0; k < dim_; ++k) {
      grad_buffer_[k] += coeff * w[k];
      w[k] += learning_rate_ * coeff * s_u[k];
    }
  }
  for (uint32_t k = 0; k < dim_; ++k) {
    s_u[k] += learning_rate_ * grad_buffer_[k];
  }
  return objective;
}

}  // namespace inf2vec
