#include "embedding/quantized_store.h"

#include <algorithm>
#include <cmath>

#include "kernels/kernels.h"
#include "util/logging.h"

namespace inf2vec {

namespace {

// Symmetric per-row quantization: scale = maxabs/127, codes clamped to
// [-127, 127]. An all-zero row gets scale 0 and all-zero codes.
float QuantizeRow(std::span<const double> row, std::span<int8_t> out) {
  double maxabs = 0.0;
  for (double x : row) maxabs = std::max(maxabs, std::abs(x));
  if (maxabs == 0.0) {
    std::fill(out.begin(), out.end(), int8_t{0});
    return 0.0f;
  }
  const float scale = static_cast<float>(maxabs / 127.0);
  const double inv = 127.0 / maxabs;
  for (size_t k = 0; k < row.size(); ++k) {
    const long code = std::lround(row[k] * inv);
    out[k] = static_cast<int8_t>(std::clamp(code, -127L, 127L));
  }
  return scale;
}

}  // namespace

QuantizedEmbeddingStore::QuantizedEmbeddingStore(uint32_t num_users,
                                                 uint32_t dim)
    : num_users_(num_users),
      dim_(dim),
      stride_(static_cast<uint32_t>(kernels::PaddedStride(dim, 1))),
      source_(static_cast<size_t>(num_users) * stride_, 0),
      target_(static_cast<size_t>(num_users) * stride_, 0),
      source_scale_(num_users, 0.0f),
      target_scale_(num_users, 0.0f),
      source_bias_(num_users, 0.0f),
      target_bias_(num_users, 0.0f) {
  INF2VEC_CHECK(dim > 0) << "embedding dimension must be positive";
  INF2VEC_DASSERT_ALIGNED(source_.data());
  INF2VEC_DASSERT_ALIGNED(target_.data());
}

QuantizedEmbeddingStore QuantizedEmbeddingStore::FromStore(
    const EmbeddingStore& store) {
  QuantizedEmbeddingStore q(store.num_users(), store.dim());
  for (UserId u = 0; u < store.num_users(); ++u) {
    q.source_scale_[u] = QuantizeRow(store.Source(u), q.MutableSource(u));
    q.target_scale_[u] = QuantizeRow(store.Target(u), q.MutableTarget(u));
    q.source_bias_[u] = static_cast<float>(store.source_bias(u));
    q.target_bias_[u] = static_cast<float>(store.target_bias(u));
  }
  return q;
}

double QuantizedEmbeddingStore::Score(UserId u, UserId v) const {
  const int32_t idot =
      kernels::DotI8(Source(u).data(), Target(v).data(), dim_);
  return DequantScore(source_scale_[u], target_scale_[v], idot,
                      source_bias_[u], target_bias_[v]);
}

size_t QuantizedEmbeddingStore::TableBytes() const {
  return source_.size() + target_.size() +
         sizeof(float) * (source_scale_.size() + target_scale_.size() +
                          source_bias_.size() + target_bias_.size());
}

}  // namespace inf2vec
