#ifndef INF2VEC_EMBEDDING_EMBEDDING_STORE_H_
#define INF2VEC_EMBEDDING_EMBEDDING_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/social_graph.h"
#include "kernels/aligned.h"
#include "util/rng.h"

namespace inf2vec {

/// The learned parameters of a social-influence embedding (Definition 2):
/// per user u a source vector S_u, a target vector T_u, an influence-ability
/// bias b_u and a conformity bias b~_u. Stored as flat row-major buffers so
/// the SGD inner loop is cache-friendly.
///
/// Row layout: the S and T matrices live in 64-byte-aligned buffers with
/// the row pitch padded up to a whole number of cache lines
/// (row_stride() >= dim()), so every row starts cache-line aligned for
/// the SIMD kernel layer (src/kernels). Padding lanes are always zero and
/// invisible through the span accessors; persisted formats store rows
/// unpadded.
///
/// Also reused by the latent-factor baselines (MF treats S as the "affects"
/// factor and T as the "affected" factor; Node2vec uses S as node vectors
/// and T as context vectors).
///
/// Concurrency contract (Hogwild training): the store performs NO internal
/// synchronization. During lock-free parallel SGD, worker threads read and
/// write the spans returned by Source()/Target() and the bias slots while
/// other workers do the same, and Score() may read rows that are being
/// written concurrently — i.e. Score() is "ScoreUnsafe" under parallel
/// training: it can observe a torn mix of pre- and post-update
/// coordinates. This is the standard Hogwild trade (Niu et al. 2011):
/// updates are sparse, collisions are rare, and the perturbation behaves
/// like bounded gradient noise. Outside training (no concurrent writers)
/// every const method is safely shareable across threads.
class EmbeddingStore {
 public:
  EmbeddingStore(uint32_t num_users, uint32_t dim);
  /// Empty (0 x 0) store; a placeholder until a real table is assigned
  /// (e.g. ModelArtifact before load). Bypasses the positive-dim check
  /// the sized constructor enforces.
  EmbeddingStore() : num_users_(0), dim_(0), stride_(0) {}

  uint32_t num_users() const { return num_users_; }
  uint32_t dim() const { return dim_; }
  /// Row pitch of the S/T buffers in doubles (dim rounded up to a
  /// 64-byte multiple); the padding tail of every row is zero.
  uint32_t row_stride() const { return stride_; }

  /// Paper initialization: S, T ~ U[-1/K, 1/K], biases 0 (Algorithm 2
  /// line 1).
  void InitPaperDefault(Rng& rng);

  /// Uniform init over [lo, hi) for vectors; biases reset to 0. Values
  /// are drawn in user-id order, S rows before T rows, dim draws per row
  /// — the draw sequence is part of the reproducibility contract and is
  /// independent of the padded row pitch.
  void InitUniform(double lo, double hi, Rng& rng);

  /// Grows the user space to `new_num_users`, preserving every existing
  /// parameter bit-for-bit. New users get the paper's cold-start
  /// initialization — S, T ~ U[-1/K, 1/K], biases 0 (Algorithm 2 line 1)
  /// — drawn from `rng` in user-id order (all S rows, then all T rows).
  /// No-op when new_num_users <= num_users(). Used by the incremental
  /// trainer when a delta episode stream introduces unseen users.
  void GrowTo(uint32_t new_num_users, Rng& rng);

  std::span<double> Source(UserId u) {
    return {source_.data() + static_cast<size_t>(u) * stride_, dim_};
  }
  std::span<const double> Source(UserId u) const {
    return {source_.data() + static_cast<size_t>(u) * stride_, dim_};
  }
  std::span<double> Target(UserId u) {
    return {target_.data() + static_cast<size_t>(u) * stride_, dim_};
  }
  std::span<const double> Target(UserId u) const {
    return {target_.data() + static_cast<size_t>(u) * stride_, dim_};
  }

  double source_bias(UserId u) const { return source_bias_[u]; }
  double& mutable_source_bias(UserId u) { return source_bias_[u]; }
  double target_bias(UserId u) const { return target_bias_[u]; }
  double& mutable_target_bias(UserId u) { return target_bias_[u]; }

  /// The influence score x(u, v) = S_u . T_v + b_u + b~_v (Section IV-C),
  /// with the dot product dispatched through the active SIMD kernel
  /// (kernels::Dot; scalar backend is bit-identical to the historical
  /// plain loop). Unsynchronized: under concurrent Hogwild writers this
  /// reads whatever coordinate values are in memory at the moment (see
  /// the class-level concurrency contract); with no concurrent writers it
  /// is exact.
  double Score(UserId u, UserId v) const;

  /// Concatenation [S_u ; T_u] used by the visualization experiment.
  std::vector<double> ConcatenatedVector(UserId u) const;

  /// Heap bytes held by the parameter buffers (S/T tables at their padded
  /// stride plus the bias vectors). Capacity-based, so it matches what the
  /// allocator actually handed out.
  uint64_t ApproxBytes() const {
    return (source_.capacity() + target_.capacity() + source_bias_.capacity() +
            target_bias_.capacity()) *
           sizeof(double);
  }

  friend bool operator==(const EmbeddingStore&, const EmbeddingStore&) =
      default;

 private:
  uint32_t num_users_;
  uint32_t dim_;
  uint32_t stride_;  // Doubles per row; kernels::PaddedStride(dim, 8).
  kernels::AlignedVector<double> source_;  // num_users * stride
  kernels::AlignedVector<double> target_;  // num_users * stride
  std::vector<double> source_bias_;        // num_users
  std::vector<double> target_bias_;        // num_users
};

}  // namespace inf2vec

#endif  // INF2VEC_EMBEDDING_EMBEDDING_STORE_H_
