#ifndef INF2VEC_EMBEDDING_SGD_TRAINER_H_
#define INF2VEC_EMBEDDING_SGD_TRAINER_H_

#include <cstdint>
#include <vector>

#include "embedding/embedding_store.h"
#include "embedding/negative_sampler.h"
#include "kernels/aligned.h"
#include "util/rng.h"

namespace inf2vec {

/// Hyper-parameters of the skip-gram-with-negative-sampling SGD step
/// (Eq. 4-6 of the paper). Defaults follow Section V-A-2.
struct SgdOptions {
  /// Learning rate gamma; paper default 0.005.
  double learning_rate = 0.005;
  /// |N|, the number of negative instances per positive; paper: 5-10.
  uint32_t num_negatives = 5;
  /// Whether bias terms b_u / b~_v participate (Inf2vec: yes; the plain
  /// Node2vec baseline trains without biases).
  bool use_biases = true;
  /// Use the fast lookup-table sigmoid; exact sigmoid when false (tests).
  bool use_sigmoid_table = true;
};

/// Applies single (u, v) skip-gram updates against an EmbeddingStore.
/// Stateless besides the option set and per-instance scratch buffers;
/// safe to share across corpora that target the same store.
///
/// Threading: a single SgdTrainer is NOT thread-safe (it owns scratch
/// buffers), but multiple SgdTrainer instances MAY train against the same
/// EmbeddingStore concurrently without locks — that is the Hogwild
/// execution model the parallel training pipeline uses. The resulting
/// races on store parameters are intentional and benign for sparse
/// updates; see EmbeddingStore's concurrency contract and
/// docs/ALGORITHMS.md ("Parallel training").
class SgdTrainer {
 public:
  SgdTrainer(EmbeddingStore* store, const NegativeSampler* sampler,
             const SgdOptions& options);

  /// One positive pair (u influences v): updates S_u, T_v, b_u, b~_v, then
  /// draws options.num_negatives negatives w and updates S_u, T_w, b_u,
  /// b~_w per Eq. 6. Returns the negative-sampling objective value of the
  /// pair (log sigma(z_v) + sum log sigma(-z_w)), a convergence signal the
  /// caller may ignore — pass want_objective = false to skip its log()
  /// evaluations entirely (returns 0.0; the updates are identical either
  /// way). Each term's z is evaluated just before that term's update, so
  /// when a negative is drawn more than once in the same call the later
  /// objective term sees the earlier micro-update.
  double TrainPair(UserId u, UserId v, Rng& rng, bool want_objective = true);

  /// Objective of Eq. 4 for a pair without updating (used by tests and
  /// convergence monitors); negatives supplied by the caller.
  double PairObjective(UserId u, UserId v,
                       const std::vector<UserId>& negatives) const;

  const SgdOptions& options() const { return options_; }
  void set_learning_rate(double lr) { options_.learning_rate = lr; }

 private:
  double SigmoidOf(double z) const;

  EmbeddingStore* store_;
  const NegativeSampler* sampler_;
  SgdOptions options_;
  // Scratch buffers reused across TrainPair calls to avoid reallocations in
  // the hot loop. The gradient accumulator is 64-byte aligned to match the
  // store rows the SIMD kernels stream alongside it.
  std::vector<UserId> negatives_;
  kernels::AlignedVector<double> source_grad_;
};

}  // namespace inf2vec

#endif  // INF2VEC_EMBEDDING_SGD_TRAINER_H_
