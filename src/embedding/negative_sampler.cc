#include "embedding/negative_sampler.h"

#include <cmath>

#include "obs/metrics.h"
#include "util/logging.h"

namespace inf2vec {

Result<NegativeSampler> NegativeSampler::Create(
    NegativeSamplerKind kind, uint32_t num_users,
    const std::vector<uint64_t>& target_frequencies) {
  if (num_users == 0) {
    return Status::InvalidArgument("sampler needs at least one user");
  }
  NegativeSampler sampler(kind, num_users);
  if (kind == NegativeSamplerKind::kUnigram075) {
    if (target_frequencies.size() != num_users) {
      return Status::InvalidArgument(
          "target_frequencies size must equal num_users");
    }
    std::vector<double> weights(num_users);
    for (uint32_t u = 0; u < num_users; ++u) {
      weights[u] =
          std::pow(static_cast<double>(target_frequencies[u] + 1), 0.75);
    }
    INF2VEC_RETURN_IF_ERROR(sampler.alias_.Build(weights));
  }
  return sampler;
}

NegativeSampler NegativeSampler::CreateUniform(uint32_t num_users) {
  INF2VEC_CHECK(num_users > 0);
  return NegativeSampler(NegativeSamplerKind::kUniform, num_users);
}

UserId NegativeSampler::SampleCounted(Rng& rng, UserId exclude_a,
                                      UserId exclude_b,
                                      uint64_t* rejected) const {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const UserId w =
        kind_ == NegativeSamplerKind::kUniform
            ? static_cast<UserId>(rng.UniformU64(num_users_))
            : static_cast<UserId>(alias_.Sample(rng));
    if (w != exclude_a && w != exclude_b) return w;
    ++*rejected;
  }
  // Degenerate universe; return anything valid.
  return static_cast<UserId>(rng.UniformU64(num_users_));
}

namespace {

void RecordDrawStats(uint64_t draws, uint64_t rejected) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  static obs::Counter* draws_counter =
      registry.GetCounter("negative_sampler.draws");
  static obs::Counter* rejected_counter =
      registry.GetCounter("negative_sampler.rejected");
  draws_counter->Increment(draws);
  if (rejected > 0) rejected_counter->Increment(rejected);
}

}  // namespace

UserId NegativeSampler::Sample(Rng& rng, UserId exclude_a,
                               UserId exclude_b) const {
  uint64_t rejected = 0;
  const UserId w = SampleCounted(rng, exclude_a, exclude_b, &rejected);
  RecordDrawStats(/*draws=*/1, rejected);
  return w;
}

void NegativeSampler::SampleMany(Rng& rng, UserId exclude_a, UserId exclude_b,
                                 uint32_t count,
                                 std::vector<UserId>* out) const {
  out->clear();
  out->reserve(count);
  uint64_t rejected = 0;
  for (uint32_t i = 0; i < count; ++i) {
    out->push_back(SampleCounted(rng, exclude_a, exclude_b, &rejected));
  }
  RecordDrawStats(/*draws=*/count, rejected);
}

}  // namespace inf2vec
