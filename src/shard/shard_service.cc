#include "shard/shard_service.h"

#include <utility>
#include <vector>

#include "serve/seed_cache.h"
#include "serve/serve_endpoints.h"
#include "shard/wire.h"
#include "util/string_util.h"

namespace inf2vec {
namespace shard {
namespace {

using obs::HttpRequest;
using obs::HttpResponse;
using obs::JsonValue;

HttpResponse ErrorResponse(const Status& status) {
  return obs::ErrorJson(serve::HttpCodeFor(status),
                        StatusCodeName(status.code()), status.message());
}

Result<JsonValue> ParseBody(const HttpRequest& request) {
  if (request.body.empty()) {
    return Status::InvalidArgument("request body is empty");
  }
  Result<JsonValue> parsed = obs::ParseJson(request.body);
  if (!parsed.ok()) {
    return Status::InvalidArgument("malformed JSON body: " +
                                   parsed.status().message());
  }
  return parsed;
}

}  // namespace

std::string FormatModelHash(uint64_t hash) {
  return StrFormat("%016llx", static_cast<unsigned long long>(hash));
}

ShardService::ShardService(serve::InfluenceService service,
                           ShardSliceInfo info)
    : service_(std::make_unique<serve::InfluenceService>(std::move(service))),
      info_(info) {}

Result<ShardService> ShardService::Load(const std::string& artifact_path,
                                        serve::ServiceOptions options,
                                        obs::MetricsRegistry* registry) {
  Result<ModelArtifact> artifact = LoadModelArtifact(artifact_path);
  INF2VEC_RETURN_IF_ERROR(artifact.status());
  if (!artifact.value().shard.has_value()) {
    return Status::FailedPrecondition(
        "not a shard artifact (no I2VSHRD1 section; run shard-split): " +
        artifact_path);
  }
  const ShardSliceInfo info = *artifact.value().shard;
  Result<serve::InfluenceService> service =
      serve::InfluenceService::FromArtifact(std::move(artifact).value(),
                                            std::move(options), registry,
                                            artifact_path);
  INF2VEC_RETURN_IF_ERROR(service.status());
  return ShardService(std::move(service).value(), info);
}

obs::JsonValue ShardService::ShardzJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("shard_index", info_.shard_index);
  json.Set("num_shards", info_.num_shards);
  json.Set("begin_user", info_.begin_user);
  json.Set("end_user", info_.end_user);
  json.Set("total_users", info_.total_users);
  json.Set("model_hash", FormatModelHash(info_.model_hash));
  json.Set("dim", service_->store().dim());
  json.Set("quantize", serve::QuantModeName(service_->quant_mode()));
  json.Set("aggregation", AggregationName(service_->default_aggregation()));
  return json;
}

void RegisterShardEndpoints(obs::StatsServer* server,
                            const ShardService* shard) {
  server->Route("GET", "/shardz", [shard](const HttpRequest&) {
    return HttpResponse::Json(200, shard->ShardzJson().Dump(2) + "\n");
  });

  server->Route("GET", "/modelz", [shard](const HttpRequest&) {
    JsonValue json = shard->service().DescribeJson();
    json.Set("shard", shard->ShardzJson());
    return HttpResponse::Json(200, json.Dump(2) + "\n");
  });

  // Phase 1 of a scatter-gather query: hand the coordinator the source
  // rows of the seed users this shard owns, bit-exact on the wire.
  server->Route("POST", "/gather", [shard](const HttpRequest& request) {
    Result<JsonValue> body = ParseBody(request);
    if (!body.ok()) return ErrorResponse(body.status());
    const JsonValue* seeds_v = body.value().Find("seeds");
    if (seeds_v == nullptr) {
      return ErrorResponse(
          Status::InvalidArgument("gather request missing 'seeds'"));
    }
    Result<std::vector<UserId>> seeds = UserIdsFromJson(*seeds_v, "seeds");
    if (!seeds.ok()) return ErrorResponse(seeds.status());
    if (seeds.value().empty()) {
      return ErrorResponse(Status::InvalidArgument("gather seed set empty"));
    }
    std::vector<UserId> local;
    local.reserve(seeds.value().size());
    for (UserId global : seeds.value()) {
      if (!shard->OwnsUser(global)) {
        return ErrorResponse(Status::NotFound(StrFormat(
            "seed user %u outside shard range [%u,%u)", global,
            shard->info().begin_user, shard->info().end_user)));
      }
      local.push_back(shard->ToLocal(global));
    }
    const serve::InfluenceService& service = shard->service();
    serve::SeedBlock block =
        service.quantized_store() != nullptr
            ? serve::GatherSeedBlock(*service.quantized_store(), local)
            : serve::GatherSeedBlock(service.store(), local);
    // The wire carries global ids; rows stay in request order.
    block.seeds = std::move(seeds).value();
    return HttpResponse::Json(200, SeedBlockToJson(block).Dump(0) + "\n");
  });

  // Phase 2: scan the local slice against the transported block.
  server->Route("POST", "/topk", [shard](const HttpRequest& request) {
    Result<JsonValue> body = ParseBody(request);
    if (!body.ok()) return ErrorResponse(body.status());
    Result<ShardTopKRequest> parsed = ShardTopKRequestFromJson(body.value());
    if (!parsed.ok()) return ErrorResponse(parsed.status());
    ShardTopKRequest& wire_request = parsed.value();

    serve::BlockTopKRequest scan;
    scan.k = wire_request.k;
    scan.aggregation = wire_request.aggregation;
    scan.deadline_us = wire_request.deadline_us;
    scan.exclude.reserve(wire_request.exclude.size());
    for (UserId global : wire_request.exclude) {
      if (shard->OwnsUser(global)) {
        scan.exclude.push_back(shard->ToLocal(global));
      }
    }
    Result<serve::TopKResult> result =
        shard->service().TopKWithBlock(wire_request.block, scan);
    if (!result.ok()) return ErrorResponse(result.status());

    ShardTopKResponse response;
    response.shard_index = shard->info().shard_index;
    response.scanned = result.value().scanned;
    response.entries = std::move(result.value().entries);
    for (serve::TopKEntry& entry : response.entries) {
      entry.user = shard->ToGlobal(entry.user);
    }
    return HttpResponse::Json(
        200, ShardTopKResponseToJson(response).Dump(0) + "\n");
  });

  server->Route("POST", "/score", [shard](const HttpRequest& request) {
    Result<JsonValue> body = ParseBody(request);
    if (!body.ok()) return ErrorResponse(body.status());
    const JsonValue* candidate_v = body.value().Find("candidate");
    if (candidate_v == nullptr || !candidate_v->is_number() ||
        candidate_v->AsInt() < 0) {
      return ErrorResponse(
          Status::InvalidArgument("score request missing 'candidate'"));
    }
    const UserId global = static_cast<UserId>(candidate_v->AsInt());
    if (!shard->OwnsUser(global)) {
      return ErrorResponse(Status::NotFound(StrFormat(
          "candidate %u outside shard range [%u,%u)", global,
          shard->info().begin_user, shard->info().end_user)));
    }
    std::optional<Aggregation> aggregation;
    if (const JsonValue* agg = body.value().Find("aggregation")) {
      Result<Aggregation> parsed_agg = ParseAggregation(agg->AsString());
      if (!parsed_agg.ok()) return ErrorResponse(parsed_agg.status());
      aggregation = parsed_agg.value();
    }
    const JsonValue* block_v = body.value().Find("block");
    if (block_v == nullptr) {
      return ErrorResponse(
          Status::InvalidArgument("score request missing 'block'"));
    }
    Result<serve::SeedBlock> block = SeedBlockFromJson(*block_v);
    if (!block.ok()) return ErrorResponse(block.status());
    Result<double> score = shard->service().ScoreWithBlock(
        block.value(), shard->ToLocal(global), aggregation);
    if (!score.ok()) return ErrorResponse(score.status());
    JsonValue json = JsonValue::Object();
    json.Set("candidate", global);
    json.Set("score", score.value());
    json.Set("shard", shard->info().shard_index);
    return HttpResponse::Json(200, json.Dump(0) + "\n");
  });
}

}  // namespace shard
}  // namespace inf2vec
