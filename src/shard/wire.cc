#include "shard/wire.h"

#include <cstring>

#include "kernels/aligned.h"

namespace inf2vec {
namespace shard {
namespace {

using obs::JsonValue;

bool IsArray(const JsonValue* v) {
  return v != nullptr && v->kind() == JsonValue::Kind::kArray;
}

}  // namespace

obs::JsonValue UserIdsToJson(const std::vector<UserId>& ids) {
  JsonValue array = JsonValue::Array();
  for (UserId id : ids) array.Append(id);
  return array;
}

Result<std::vector<UserId>> UserIdsFromJson(const obs::JsonValue& json,
                                            const std::string& what) {
  if (json.kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument(what + " must be a JSON array");
  }
  std::vector<UserId> ids;
  ids.reserve(json.size());
  for (const JsonValue& item : json.items()) {
    if (!item.is_number()) {
      return Status::InvalidArgument(what + " entries must be integers");
    }
    const int64_t id = item.AsInt();
    if (id < 0 || id > static_cast<int64_t>(UINT32_MAX)) {
      return Status::InvalidArgument(what + " entry out of user-id range");
    }
    ids.push_back(static_cast<UserId>(id));
  }
  return ids;
}

obs::JsonValue SeedBlockToJson(const serve::SeedBlock& block) {
  JsonValue json = JsonValue::Object();
  json.Set("dim", block.dim);
  json.Set("quantized", block.quantized);
  json.Set("seeds", UserIdsToJson(block.seeds));
  if (!block.quantized) {
    JsonValue rows = JsonValue::Array();
    JsonValue biases = JsonValue::Array();
    for (size_t i = 0; i < block.num_seeds(); ++i) {
      const double* row = block.source_row(i);
      JsonValue vec = JsonValue::Array();
      for (uint32_t d = 0; d < block.dim; ++d) vec.Append(row[d]);
      rows.Append(std::move(vec));
      biases.Append(block.source_biases[i]);
    }
    json.Set("rows", std::move(rows));
    json.Set("biases", std::move(biases));
  } else {
    JsonValue rows = JsonValue::Array();
    JsonValue scales = JsonValue::Array();
    JsonValue biases = JsonValue::Array();
    for (size_t i = 0; i < block.num_seeds(); ++i) {
      const int8_t* row = block.q_source_row(i);
      JsonValue vec = JsonValue::Array();
      for (uint32_t d = 0; d < block.dim; ++d) {
        vec.Append(static_cast<int64_t>(row[d]));
      }
      rows.Append(std::move(vec));
      // float -> double is exact, so fp32 scales/biases survive the trip.
      scales.Append(static_cast<double>(block.q_scales[i]));
      biases.Append(static_cast<double>(block.q_biases[i]));
    }
    json.Set("q_rows", std::move(rows));
    json.Set("q_scales", std::move(scales));
    json.Set("q_biases", std::move(biases));
  }
  return json;
}

Result<serve::SeedBlock> SeedBlockFromJson(const obs::JsonValue& json) {
  if (json.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("seed block must be a JSON object");
  }
  const JsonValue* dim_v = json.Find("dim");
  if (dim_v == nullptr || !dim_v->is_number() || dim_v->AsInt() <= 0) {
    return Status::InvalidArgument("seed block missing positive 'dim'");
  }
  const uint32_t dim = static_cast<uint32_t>(dim_v->AsInt());
  const JsonValue* quantized_v = json.Find("quantized");
  const bool quantized = quantized_v != nullptr && quantized_v->AsBool();

  const JsonValue* seeds_v = json.Find("seeds");
  if (seeds_v == nullptr) {
    return Status::InvalidArgument("seed block missing 'seeds'");
  }
  Result<std::vector<UserId>> seeds = UserIdsFromJson(*seeds_v, "seeds");
  INF2VEC_RETURN_IF_ERROR(seeds.status());
  const size_t num_seeds = seeds.value().size();

  serve::SeedBlock block;
  block.dim = dim;
  block.quantized = quantized;
  block.seeds = std::move(seeds).value();

  if (!quantized) {
    const JsonValue* rows = json.Find("rows");
    const JsonValue* biases = json.Find("biases");
    if (!IsArray(rows) || !IsArray(biases) || rows->size() != num_seeds ||
        biases->size() != num_seeds) {
      return Status::InvalidArgument(
          "seed block rows/biases disagree with seed count");
    }
    // Same layout GatherSeedBlock builds: kernel-aligned stride, zero
    // padding, dim doubles copied per row.
    block.stride =
        static_cast<uint32_t>(kernels::PaddedStride(dim, sizeof(double)));
    block.sources.resize(num_seeds * static_cast<size_t>(block.stride), 0.0);
    block.source_biases.resize(num_seeds);
    for (size_t i = 0; i < num_seeds; ++i) {
      const JsonValue& vec = rows->items()[i];
      if (vec.kind() != JsonValue::Kind::kArray || vec.size() != dim) {
        return Status::InvalidArgument("seed row length disagrees with dim");
      }
      double* out = block.sources.data() + i * block.stride;
      for (uint32_t d = 0; d < dim; ++d) {
        if (!vec.items()[d].is_number()) {
          return Status::InvalidArgument("seed row entries must be numbers");
        }
        out[d] = vec.items()[d].AsDouble();
      }
      if (!biases->items()[i].is_number()) {
        return Status::InvalidArgument("seed biases must be numbers");
      }
      block.source_biases[i] = biases->items()[i].AsDouble();
    }
    return block;
  }

  const JsonValue* rows = json.Find("q_rows");
  const JsonValue* scales = json.Find("q_scales");
  const JsonValue* biases = json.Find("q_biases");
  if (!IsArray(rows) || !IsArray(scales) || !IsArray(biases) ||
      rows->size() != num_seeds || scales->size() != num_seeds ||
      biases->size() != num_seeds) {
    return Status::InvalidArgument(
        "quantized seed block arrays disagree with seed count");
  }
  block.q_stride = static_cast<uint32_t>(kernels::PaddedStride(dim, 1));
  block.q_sources.resize(num_seeds * static_cast<size_t>(block.q_stride), 0);
  block.q_scales.resize(num_seeds);
  block.q_biases.resize(num_seeds);
  for (size_t i = 0; i < num_seeds; ++i) {
    const JsonValue& vec = rows->items()[i];
    if (vec.kind() != JsonValue::Kind::kArray || vec.size() != dim) {
      return Status::InvalidArgument("seed row length disagrees with dim");
    }
    int8_t* out = block.q_sources.data() + i * static_cast<size_t>(block.q_stride);
    for (uint32_t d = 0; d < dim; ++d) {
      const JsonValue& code = vec.items()[d];
      if (!code.is_number()) {
        return Status::InvalidArgument("int8 codes must be integers");
      }
      const int64_t value = code.AsInt();
      if (value < -128 || value > 127) {
        return Status::InvalidArgument("int8 code out of range");
      }
      out[d] = static_cast<int8_t>(value);
    }
    if (!scales->items()[i].is_number() || !biases->items()[i].is_number()) {
      return Status::InvalidArgument("q_scales/q_biases must be numbers");
    }
    block.q_scales[i] = static_cast<float>(scales->items()[i].AsDouble());
    block.q_biases[i] = static_cast<float>(biases->items()[i].AsDouble());
  }
  return block;
}

obs::JsonValue ShardTopKRequestToJson(const ShardTopKRequest& request) {
  JsonValue json = JsonValue::Object();
  json.Set("k", request.k);
  if (request.aggregation.has_value()) {
    json.Set("aggregation", AggregationName(*request.aggregation));
  }
  if (request.deadline_us != 0) json.Set("deadline_us", request.deadline_us);
  json.Set("exclude", UserIdsToJson(request.exclude));
  json.Set("block", SeedBlockToJson(request.block));
  return json;
}

Result<ShardTopKRequest> ShardTopKRequestFromJson(const obs::JsonValue& json) {
  if (json.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("shard topk request must be an object");
  }
  ShardTopKRequest request;
  const JsonValue* k = json.Find("k");
  if (k == nullptr || !k->is_number() || k->AsInt() <= 0 ||
      k->AsInt() > static_cast<int64_t>(UINT32_MAX)) {
    return Status::InvalidArgument("shard topk request needs positive 'k'");
  }
  request.k = static_cast<uint32_t>(k->AsInt());
  if (const JsonValue* agg = json.Find("aggregation")) {
    Result<Aggregation> parsed = ParseAggregation(agg->AsString());
    INF2VEC_RETURN_IF_ERROR(parsed.status());
    request.aggregation = parsed.value();
  }
  if (const JsonValue* deadline = json.Find("deadline_us")) {
    if (!deadline->is_number() || deadline->AsInt() < 0) {
      return Status::InvalidArgument("deadline_us must be non-negative");
    }
    request.deadline_us = static_cast<uint64_t>(deadline->AsInt());
  }
  if (const JsonValue* exclude = json.Find("exclude")) {
    Result<std::vector<UserId>> ids = UserIdsFromJson(*exclude, "exclude");
    INF2VEC_RETURN_IF_ERROR(ids.status());
    request.exclude = std::move(ids).value();
  }
  const JsonValue* block = json.Find("block");
  if (block == nullptr) {
    return Status::InvalidArgument("shard topk request missing 'block'");
  }
  Result<serve::SeedBlock> decoded = SeedBlockFromJson(*block);
  INF2VEC_RETURN_IF_ERROR(decoded.status());
  request.block = std::move(decoded).value();
  return request;
}

obs::JsonValue ShardTopKResponseToJson(const ShardTopKResponse& response) {
  JsonValue json = JsonValue::Object();
  json.Set("shard", response.shard_index);
  json.Set("scanned", response.scanned);
  JsonValue entries = JsonValue::Array();
  for (const serve::TopKEntry& entry : response.entries) {
    JsonValue row = JsonValue::Object();
    row.Set("user", entry.user);
    row.Set("score", entry.score);
    entries.Append(std::move(row));
  }
  json.Set("entries", std::move(entries));
  return json;
}

Result<ShardTopKResponse> ShardTopKResponseFromJson(
    const obs::JsonValue& json) {
  if (json.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("shard topk response must be an object");
  }
  ShardTopKResponse response;
  const JsonValue* shard = json.Find("shard");
  if (shard == nullptr || !shard->is_number() || shard->AsInt() < 0) {
    return Status::InvalidArgument("shard topk response missing 'shard'");
  }
  response.shard_index = static_cast<uint32_t>(shard->AsInt());
  const JsonValue* scanned = json.Find("scanned");
  if (scanned == nullptr || !scanned->is_number() || scanned->AsInt() < 0) {
    return Status::InvalidArgument("shard topk response missing 'scanned'");
  }
  response.scanned = static_cast<uint64_t>(scanned->AsInt());
  const JsonValue* entries = json.Find("entries");
  if (!IsArray(entries)) {
    return Status::InvalidArgument("shard topk response missing 'entries'");
  }
  response.entries.reserve(entries->size());
  for (const JsonValue& row : entries->items()) {
    const JsonValue* user = row.Find("user");
    const JsonValue* score = row.Find("score");
    if (user == nullptr || !user->is_number() || user->AsInt() < 0 ||
        score == nullptr || !score->is_number()) {
      return Status::InvalidArgument("malformed shard topk entry");
    }
    response.entries.push_back(
        {static_cast<UserId>(user->AsInt()), score->AsDouble()});
  }
  return response;
}

}  // namespace shard
}  // namespace inf2vec
