// Scatter-gather coordinator over N shard services (the root side of the
// distributed-llama-style root/worker split). A query runs two phases:
//
//   gather:  seed source rows are fetched from the shards that own them
//            (POST /gather, grouped per owner, fetched concurrently);
//   scatter: the assembled seed block is broadcast to every shard
//            (POST /topk), each shard scans its local slice, and the
//            coordinator merges the per-shard rankings.
//
// Merge equality: every shard runs the identical bounded-heap scan over
// its slice of the candidate space with the identical seed-block bytes,
// so each global top-k entry appears in its owner shard's local top-k
// (at most k-1 entries can beat it there). Merging the unions with the
// same comparator (descending score, ascending global id on ties —
// global ids are unique, so the order is total) and truncating to k
// therefore reproduces the single-node ranking bit for bit.
//
// Degradation: every backend call runs under a per-request deadline on a
// poll()-driven client, so a dead or wedged shard can never hang a
// request. Missing shards are reported in `shards_missing` and the
// response is marked degraded (HTTP 206 at the endpoint layer); a lost
// *gather* owner is fatal for the query (seed rows unavailable -> no
// shard could score correctly), reported as 503 with the same shape.
#ifndef INF2VEC_SHARD_COORDINATOR_H_
#define INF2VEC_SHARD_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/aggregation.h"
#include "obs/http_client.h"
#include "obs/http_server.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/request_obs.h"
#include "serve/influence_service.h"
#include "util/status.h"

namespace inf2vec {
namespace shard {

struct CoordinatorOptions {
  /// "host:port" of every shard service; order need not match shard
  /// index (Connect sorts by range).
  std::vector<std::string> backends;
  /// Per-backend call budget (connect + send + read) and the scan
  /// deadline forwarded to shards; the knob behind `--shard-deadline-ms`.
  uint64_t shard_deadline_ms = 250;
  /// Startup budget for the /shardz topology fetch, per backend.
  uint64_t connect_deadline_ms = 2000;
  uint32_t max_k = 1024;
  uint32_t max_seeds = 4096;
  /// Per-backend rpcz rows ("shard:<addr>/topk") land here when set.
  obs::RpczRegistry* rpcz = nullptr;
  obs::MetricsRegistry* registry = &obs::MetricsRegistry::Default();
};

/// Mirrors serve::TopKRequest for the coordinator's global id space.
struct CoordTopKRequest {
  std::vector<UserId> seeds;
  uint32_t k = 10;
  std::optional<Aggregation> aggregation;
  uint64_t deadline_us = 0;  // 0 = shard_deadline_ms per call.
  bool include_seeds = false;
};

struct CoordTopKResult {
  /// Merged ranking, bit-identical to single-node TopK when no shard is
  /// missing; the best available partial ranking otherwise.
  std::vector<serve::TopKEntry> entries;
  uint64_t scanned = 0;  // Summed over responding shards.
  bool degraded = false;
  std::vector<uint32_t> shards_missing;  // Shard indices, ascending.
  /// True when a gather owner was unreachable: no scan ran at all and
  /// `entries` is empty (the endpoint layer maps this to 503).
  bool gather_failed = false;
};

struct CoordScoreResult {
  double score = 0.0;
  uint32_t shard_index = 0;  // Shard that scored the candidate.
};

class ShardCoordinator {
 public:
  /// Fetches /shardz from every backend and validates the topology: one
  /// backend per shard index, identical model hash / total_users / dim /
  /// quantization everywhere, ranges tiling [0, total_users). Every
  /// backend must be reachable at startup; loss is tolerated (degraded)
  /// afterwards.
  static Result<ShardCoordinator> Connect(CoordinatorOptions options);

  ShardCoordinator(ShardCoordinator&&) = default;

  /// Scatter-gather top-k (see file header). Validation errors return a
  /// Status; shard loss returns ok() with degraded/shards_missing set.
  Result<CoordTopKResult> TopK(const CoordTopKRequest& request) const;

  /// Gathers seed rows, then scores `candidate` on its owner shard.
  Result<CoordScoreResult> Score(UserId candidate,
                                 const std::vector<UserId>& seeds,
                                 const std::optional<Aggregation>& aggregation,
                                 uint64_t deadline_us) const;

  uint32_t num_shards() const;
  uint32_t total_users() const { return total_users_; }
  uint32_t dim() const { return dim_; }
  bool quantized() const { return quantized_; }
  const std::string& model_hash() const { return model_hash_; }

  /// The coordinator /shardz payload: cluster topology.
  obs::JsonValue DescribeJson() const;

 private:
  /// One backend: address, owned range, and a small pool of keep-alive
  /// clients (one checked out per concurrent call; dropped, not
  /// returned, after a transport failure).
  struct Backend {
    std::string address;
    std::string host;
    uint16_t port = 0;
    uint32_t shard_index = 0;
    uint32_t begin_user = 0;
    uint32_t end_user = 0;
    mutable std::mutex pool_mu;
    mutable std::vector<std::unique_ptr<obs::HttpClient>> pool;
  };

  explicit ShardCoordinator(CoordinatorOptions options);

  std::unique_ptr<obs::HttpClient> AcquireClient(const Backend& backend) const;
  void ReleaseClient(const Backend& backend,
                     std::unique_ptr<obs::HttpClient> client) const;
  /// One deadline-bounded POST with rpcz + trace accounting. Returns the
  /// parsed JSON body on HTTP 200; a Status naming the failure otherwise.
  Result<obs::JsonValue> CallBackend(const Backend& backend,
                                     const std::string& target,
                                     const std::string& body,
                                     uint64_t deadline_ms) const;
  /// Owner of a global user id (ranges tile the id space).
  const Backend& OwnerOf(UserId user) const;
  Status ValidateSeeds(const std::vector<UserId>& seeds) const;
  /// Phase 1: fetch + assemble the transported seed block. On failure
  /// fills `missing` with the unreachable owners' shard indices.
  Result<serve::SeedBlock> GatherBlock(const std::vector<UserId>& seeds,
                                       uint64_t deadline_ms,
                                       std::vector<uint32_t>* missing) const;

  CoordinatorOptions options_;
  /// unique_ptr elements: Backend holds a mutex and handlers capture
  /// stable addresses.
  std::vector<std::unique_ptr<Backend>> backends_;  // Sorted by begin_user.
  uint32_t total_users_ = 0;
  uint32_t dim_ = 0;
  bool quantized_ = false;
  std::string model_hash_;

  // Metric handles (registry-owned).
  obs::Counter* shard_timeouts_ = nullptr;
  obs::Counter* shard_errors_ = nullptr;
  obs::Counter* degraded_responses_ = nullptr;
};

/// Registers the public query surface on `server`, mirroring the
/// single-node serve API in the global id space:
///
///   GET /topk?seeds=A,B[&k=10][&aggregation=Ave][&deadline_us=N]
///            [&include_seeds=1]
///   GET /score?candidate=U&seeds=A,B[&aggregation=Ave][&deadline_us=N]
///   GET /shardz
///
/// A degraded /topk answers 206 Partial Content with `degraded: true`
/// and the missing shard indices; a query no shard could answer (all
/// down, or a gather owner down) answers 503 with the same fields.
void RegisterCoordinatorEndpoints(obs::StatsServer* server,
                                  const ShardCoordinator* coordinator);

}  // namespace shard
}  // namespace inf2vec

#endif  // INF2VEC_SHARD_COORDINATOR_H_
