#include "shard/shard_split.h"

#include <cstring>

#include "util/string_util.h"

namespace inf2vec {
namespace shard {

std::vector<ShardRange> ComputeShardRanges(uint32_t total_users,
                                           uint32_t num_shards) {
  std::vector<ShardRange> ranges;
  ranges.reserve(num_shards);
  const uint32_t base = total_users / num_shards;
  const uint32_t extra = total_users % num_shards;
  uint32_t begin = 0;
  for (uint32_t i = 0; i < num_shards; ++i) {
    const uint32_t size = base + (i < extra ? 1 : 0);
    ranges.push_back({begin, begin + size});
    begin += size;
  }
  return ranges;
}

std::string ShardArtifactFileName(uint32_t shard_index, uint32_t num_shards) {
  return StrFormat("shard-%u-of-%u.i2v", shard_index, num_shards);
}

Result<ModelArtifact> BuildShardArtifact(const ModelArtifact& full,
                                         uint32_t shard_index,
                                         uint32_t num_shards,
                                         uint64_t model_hash) {
  const uint32_t total = full.store.num_users();
  const uint32_t dim = full.store.dim();
  if (num_shards == 0 || num_shards > total) {
    return Status::InvalidArgument(
        StrFormat("cannot split %u users into %u shards", total, num_shards));
  }
  if (shard_index >= num_shards) {
    return Status::InvalidArgument(
        StrFormat("shard index %u out of range (num_shards %u)", shard_index,
                  num_shards));
  }

  const ShardRange range = ComputeShardRanges(total, num_shards)[shard_index];
  const uint32_t size = range.end - range.begin;

  ModelArtifact slice;
  slice.metadata = full.metadata;
  slice.store = EmbeddingStore(size, dim);
  for (uint32_t local = 0; local < size; ++local) {
    const UserId global = range.begin + local;
    std::memcpy(slice.store.Source(local).data(),
                full.store.Source(global).data(), sizeof(double) * dim);
    std::memcpy(slice.store.Target(local).data(),
                full.store.Target(global).data(), sizeof(double) * dim);
    slice.store.mutable_source_bias(local) = full.store.source_bias(global);
    slice.store.mutable_target_bias(local) = full.store.target_bias(global);
  }

  if (full.quantized.has_value()) {
    QuantizedEmbeddingStore q(size, dim);
    for (uint32_t local = 0; local < size; ++local) {
      const UserId global = range.begin + local;
      std::memcpy(q.MutableSource(local).data(),
                  full.quantized->Source(global).data(), dim);
      std::memcpy(q.MutableTarget(local).data(),
                  full.quantized->Target(global).data(), dim);
      q.mutable_source_scale(local) = full.quantized->source_scale(global);
      q.mutable_target_scale(local) = full.quantized->target_scale(global);
      q.mutable_source_bias(local) = full.quantized->source_bias(global);
      q.mutable_target_bias(local) = full.quantized->target_bias(global);
    }
    slice.quantized = std::move(q);
  }

  ShardSliceInfo info;
  info.shard_index = shard_index;
  info.num_shards = num_shards;
  info.begin_user = range.begin;
  info.end_user = range.end;
  info.total_users = total;
  info.model_hash = model_hash;
  slice.shard = info;
  return slice;
}

Result<std::vector<std::string>> SplitModelArtifact(
    const std::string& model_path, const std::string& out_dir,
    uint32_t num_shards) {
  Result<ModelArtifact> full = LoadModelArtifact(model_path);
  INF2VEC_RETURN_IF_ERROR(full.status());
  if (full.value().shard.has_value()) {
    // Same code plain `serve` uses for the mirror-image refusal: the
    // artifact is valid, the operation just doesn't apply to a slice.
    return Status::FailedPrecondition(
        "refusing to split an artifact that is already a shard: " +
        model_path);
  }
  const uint64_t model_hash = ComputeModelContentHash(full.value().store);

  std::vector<std::string> paths;
  paths.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    Result<ModelArtifact> slice =
        BuildShardArtifact(full.value(), i, num_shards, model_hash);
    INF2VEC_RETURN_IF_ERROR(slice.status());
    const std::string path =
        out_dir + "/" + ShardArtifactFileName(i, num_shards);
    const ModelArtifact& artifact = slice.value();
    INF2VEC_RETURN_IF_ERROR(SaveModelArtifact(
        artifact.store, artifact.metadata, path,
        artifact.quantized.has_value() ? &*artifact.quantized : nullptr,
        &*artifact.shard));
    paths.push_back(path);
  }
  return paths;
}

}  // namespace shard
}  // namespace inf2vec
