// One shard server: an InfluenceService over a shard artifact's local
// slice plus the global-id bookkeeping and the shard-protocol HTTP
// endpoints the coordinator drives:
//
//   GET  /shardz   shard identity (index, range, model hash, quant mode)
//   POST /gather   {"seeds": [global ids in range]} -> SeedBlock JSON of
//                  their source rows (phase 1 of a scatter-gather query)
//   POST /topk     ShardTopKRequest JSON (transported seed block) ->
//                  local top-k with global ids (phase 2)
//   POST /score    {"candidate": global, "block": ...} -> {"score": ...}
//   GET  /modelz   the usual service description plus a "shard" block
//
// Scoring runs through InfluenceService::TopKWithBlock/ScoreWithBlock —
// the exact single-node scan over the local slice — so entries are
// bit-identical to the corresponding rows of a whole-model scan.
#ifndef INF2VEC_SHARD_SHARD_SERVICE_H_
#define INF2VEC_SHARD_SHARD_SERVICE_H_

#include <memory>
#include <string>

#include "embedding/model_io.h"
#include "obs/http_server.h"
#include "serve/influence_service.h"
#include "util/status.h"

namespace inf2vec {
namespace shard {

class ShardService {
 public:
  /// Loads a shard artifact (must carry an I2VSHRD1 section) and builds
  /// the serving engine over its slice. `options.quantize` selects fp64
  /// or int8 serving exactly as in single-node serve.
  static Result<ShardService> Load(
      const std::string& artifact_path, serve::ServiceOptions options,
      obs::MetricsRegistry* registry = &obs::MetricsRegistry::Default());

  ShardService(ShardService&&) = default;

  const ShardSliceInfo& info() const { return info_; }
  const serve::InfluenceService& service() const { return *service_; }

  bool OwnsUser(UserId global) const {
    return global >= info_.begin_user && global < info_.end_user;
  }
  UserId ToLocal(UserId global) const { return global - info_.begin_user; }
  UserId ToGlobal(UserId local) const { return local + info_.begin_user; }

  /// The /shardz payload.
  obs::JsonValue ShardzJson() const;

 private:
  ShardService(serve::InfluenceService service, ShardSliceInfo info);

  /// unique_ptr keeps the service address stable across moves (handlers
  /// capture it).
  std::unique_ptr<serve::InfluenceService> service_;
  ShardSliceInfo info_;
};

/// Formats a whole-model hash for the wire ("%016llx" hex — uint64 does
/// not fit a JSON int).
std::string FormatModelHash(uint64_t hash);

/// Registers the shard-protocol endpoints above on `server`. `shard`
/// must outlive the server.
void RegisterShardEndpoints(obs::StatsServer* server,
                            const ShardService* shard);

}  // namespace shard
}  // namespace inf2vec

#endif  // INF2VEC_SHARD_SHARD_SERVICE_H_
