// JSON wire encoding of the shard protocol (coordinator <-> shard):
// seed blocks, scatter top-k requests, and per-shard result entries.
//
// Numbers travel as JSON doubles rendered with %.17g (obs::JsonValue),
// which round-trips every finite double exactly through ParseJson — so a
// SeedBlock decoded on the shard side is bit-identical to the block the
// coordinator gathered, and transported scores compare with == against
// single-node scores. int8 codes and fp32 scales travel as JSON ints /
// doubles, both lossless for their ranges.
#ifndef INF2VEC_SHARD_WIRE_H_
#define INF2VEC_SHARD_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/aggregation.h"
#include "obs/json.h"
#include "serve/influence_service.h"
#include "serve/seed_cache.h"
#include "util/status.h"

namespace inf2vec {
namespace shard {

/// SeedBlock -> JSON. `seeds` carries the ids the rows were gathered for
/// (global ids on the shard wire). Row padding is not transported; the
/// decoder re-pads to the kernel stride with zeros, exactly like
/// GatherSeedBlock.
obs::JsonValue SeedBlockToJson(const serve::SeedBlock& block);

/// Inverse of SeedBlockToJson: rebuilds the block at the kernel-aligned
/// strides for its dim. Rejects shape mismatches (row length vs dim,
/// array length disagreements).
Result<serve::SeedBlock> SeedBlockFromJson(const obs::JsonValue& json);

/// POST /topk body sent by the coordinator to every shard.
struct ShardTopKRequest {
  uint32_t k = 10;
  std::optional<Aggregation> aggregation;
  uint64_t deadline_us = 0;
  /// Global ids to exclude from the ranking (the coordinator's seed set
  /// unless include_seeds was requested).
  std::vector<UserId> exclude;
  serve::SeedBlock block;
};

obs::JsonValue ShardTopKRequestToJson(const ShardTopKRequest& request);
Result<ShardTopKRequest> ShardTopKRequestFromJson(const obs::JsonValue& json);

/// One shard's POST /topk response payload.
struct ShardTopKResponse {
  uint32_t shard_index = 0;
  uint64_t scanned = 0;
  /// Global-id entries in the shard's local ranking order (descending
  /// score, ascending id on ties).
  std::vector<serve::TopKEntry> entries;
};

obs::JsonValue ShardTopKResponseToJson(const ShardTopKResponse& response);
Result<ShardTopKResponse> ShardTopKResponseFromJson(
    const obs::JsonValue& json);

/// Parses a JSON array of user ids (rejects negatives / non-ints).
Result<std::vector<UserId>> UserIdsFromJson(const obs::JsonValue& json,
                                            const std::string& what);
obs::JsonValue UserIdsToJson(const std::vector<UserId>& ids);

}  // namespace shard
}  // namespace inf2vec

#endif  // INF2VEC_SHARD_WIRE_H_
