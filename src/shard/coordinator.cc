#include "shard/coordinator.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <utility>

#include "kernels/aligned.h"
#include "obs/trace.h"
#include "serve/seed_cache.h"
#include "serve/serve_endpoints.h"
#include "shard/shard_service.h"
#include "shard/wire.h"
#include "util/string_util.h"

namespace inf2vec {
namespace shard {
namespace {

using obs::HttpRequest;
using obs::HttpResponse;
using obs::JsonValue;

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Same ranking order as InfluenceService's scan: descending score,
/// ascending (globally unique) user id on ties — a total order, so the
/// merged sort is deterministic and equal to the single-node ranking.
bool BetterThan(const serve::TopKEntry& a, const serve::TopKEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.user < b.user;
}

/// Collects spans completed on a fan-out thread so they can be forwarded
/// into the request thread's trace after join (RequestScope's sink is
/// not thread-safe, so fan-out threads must not write to it directly).
class SpanCapture : public obs::TraceSink {
 public:
  void OnSpanEnd(const obs::TraceEvent& event) override {
    events_.push_back(event);
  }

  /// Re-emits captured spans into `sink`, reparenting thread-root spans
  /// under `parent_id` so /tracez shows them as children of the request.
  void ForwardTo(obs::TraceSink* sink, uint64_t parent_id) {
    for (obs::TraceEvent event : events_) {
      if (event.parent_id == 0) event.parent_id = parent_id;
      sink->OnSpanEnd(event);
    }
  }

 private:
  std::vector<obs::TraceEvent> events_;
};

/// After all fan-out threads joined: forward their captured spans into
/// the current (request) thread's sink, as children of the active span.
void ForwardCaptures(std::vector<SpanCapture>& captures) {
  obs::TraceSink* sink = obs::ThreadTraceSink();
  if (sink == nullptr) return;
  obs::TraceSpan* current = obs::TraceSpan::Current();
  const uint64_t parent_id = current != nullptr ? current->span_id() : 0;
  for (SpanCapture& capture : captures) {
    capture.ForwardTo(sink, parent_id);
  }
}

Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return Status::InvalidArgument("backend address must be host:port: " +
                                   address);
  }
  uint32_t parsed = 0;
  const Status port_ok = ParseUint32(address.substr(colon + 1), &parsed);
  if (!port_ok.ok() || parsed == 0 || parsed > 65535) {
    return Status::InvalidArgument("bad backend port in: " + address);
  }
  *host = address.substr(0, colon);
  *port = static_cast<uint16_t>(parsed);
  return Status::OK();
}

}  // namespace

ShardCoordinator::ShardCoordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  obs::MetricsRegistry* registry = options_.registry;
  shard_timeouts_ = registry->GetCounter("serve.shard_timeouts");
  shard_errors_ = registry->GetCounter("serve.shard_errors");
  degraded_responses_ = registry->GetCounter("serve.degraded_responses");
}

uint32_t ShardCoordinator::num_shards() const {
  return static_cast<uint32_t>(backends_.size());
}

Result<ShardCoordinator> ShardCoordinator::Connect(
    CoordinatorOptions options) {
  if (options.backends.empty()) {
    return Status::InvalidArgument("coordinator needs at least one backend");
  }
  ShardCoordinator coordinator(std::move(options));
  const CoordinatorOptions& opts = coordinator.options_;

  for (const std::string& address : opts.backends) {
    auto backend = std::make_unique<Backend>();
    backend->address = address;
    INF2VEC_RETURN_IF_ERROR(
        ParseHostPort(address, &backend->host, &backend->port));

    obs::HttpClient client(backend->port, backend->host);
    obs::HttpClientResponse response;
    if (!client.Get("/shardz", &response, opts.connect_deadline_ms) ||
        response.status != 200) {
      return Status::FailedPrecondition(
          "shard backend unreachable at startup: " + address +
          (response.status != 0
               ? StrFormat(" (HTTP %d)", response.status)
               : ""));
    }
    Result<JsonValue> shardz = obs::ParseJson(response.body);
    if (!shardz.ok()) {
      return Status::Internal("malformed /shardz from " + address + ": " +
                              shardz.status().message());
    }
    const JsonValue& json = shardz.value();
    const JsonValue* index = json.Find("shard_index");
    const JsonValue* num = json.Find("num_shards");
    const JsonValue* begin = json.Find("begin_user");
    const JsonValue* end = json.Find("end_user");
    const JsonValue* total = json.Find("total_users");
    const JsonValue* hash = json.Find("model_hash");
    const JsonValue* dim = json.Find("dim");
    const JsonValue* quantize = json.Find("quantize");
    if (index == nullptr || num == nullptr || begin == nullptr ||
        end == nullptr || total == nullptr || hash == nullptr ||
        dim == nullptr || quantize == nullptr) {
      return Status::Internal("incomplete /shardz from " + address);
    }
    backend->shard_index = static_cast<uint32_t>(index->AsInt());
    backend->begin_user = static_cast<uint32_t>(begin->AsInt());
    backend->end_user = static_cast<uint32_t>(end->AsInt());

    const uint32_t backend_total = static_cast<uint32_t>(total->AsInt());
    const uint32_t backend_dim = static_cast<uint32_t>(dim->AsInt());
    const bool backend_quantized = quantize->AsString() == "int8";
    if (coordinator.backends_.empty()) {
      coordinator.total_users_ = backend_total;
      coordinator.dim_ = backend_dim;
      coordinator.quantized_ = backend_quantized;
      coordinator.model_hash_ = hash->AsString();
    } else if (coordinator.model_hash_ != hash->AsString()) {
      return Status::FailedPrecondition(StrFormat(
          "shard %s was split from a different model (hash %s != %s)",
          address.c_str(), hash->AsString().c_str(),
          coordinator.model_hash_.c_str()));
    } else if (coordinator.total_users_ != backend_total ||
               coordinator.dim_ != backend_dim ||
               coordinator.quantized_ != backend_quantized) {
      return Status::FailedPrecondition(
          "shard " + address +
          " disagrees on total_users/dim/quantize with its peers");
    }
    if (static_cast<size_t>(num->AsInt()) != opts.backends.size()) {
      return Status::FailedPrecondition(StrFormat(
          "shard %s expects %lld shards but %zu backends were configured",
          address.c_str(), static_cast<long long>(num->AsInt()),
          opts.backends.size()));
    }
    coordinator.backends_.push_back(std::move(backend));
  }

  std::sort(coordinator.backends_.begin(), coordinator.backends_.end(),
            [](const std::unique_ptr<Backend>& a,
               const std::unique_ptr<Backend>& b) {
              return a->begin_user < b->begin_user;
            });
  uint32_t expected_begin = 0;
  for (size_t i = 0; i < coordinator.backends_.size(); ++i) {
    const Backend& backend = *coordinator.backends_[i];
    if (backend.begin_user != expected_begin ||
        backend.end_user <= backend.begin_user) {
      return Status::FailedPrecondition(StrFormat(
          "shard ranges do not tile the user space: %s covers [%u,%u), "
          "expected begin %u",
          backend.address.c_str(), backend.begin_user, backend.end_user,
          expected_begin));
    }
    expected_begin = backend.end_user;
  }
  if (expected_begin != coordinator.total_users_) {
    return Status::FailedPrecondition(
        StrFormat("shard ranges stop at %u of %u users", expected_begin,
                  coordinator.total_users_));
  }
  return coordinator;
}

std::unique_ptr<obs::HttpClient> ShardCoordinator::AcquireClient(
    const Backend& backend) const {
  {
    std::lock_guard<std::mutex> lock(backend.pool_mu);
    if (!backend.pool.empty()) {
      std::unique_ptr<obs::HttpClient> client =
          std::move(backend.pool.back());
      backend.pool.pop_back();
      return client;
    }
  }
  return std::make_unique<obs::HttpClient>(backend.port, backend.host);
}

void ShardCoordinator::ReleaseClient(
    const Backend& backend, std::unique_ptr<obs::HttpClient> client) const {
  std::lock_guard<std::mutex> lock(backend.pool_mu);
  if (backend.pool.size() < 16) backend.pool.push_back(std::move(client));
}

Result<obs::JsonValue> ShardCoordinator::CallBackend(
    const Backend& backend, const std::string& target,
    const std::string& body, uint64_t deadline_ms) const {
  const uint64_t start_ms = NowMs();
  const std::string endpoint = "shard:" + backend.address + target;
  obs::RpczRegistry::Endpoint* rpcz =
      options_.rpcz != nullptr ? options_.rpcz->Begin(endpoint) : nullptr;

  obs::TraceSpan span("shard_call", "shard");
  span.SetAttr("backend", backend.address);
  span.SetAttr("target", target);
  span.SetAttr("shard_index", static_cast<uint64_t>(backend.shard_index));

  std::unique_ptr<obs::HttpClient> client = AcquireClient(backend);
  obs::HttpClientResponse response;
  const bool transported =
      client->Post(target, body, &response, deadline_ms);
  const uint64_t elapsed_ms = NowMs() - start_ms;

  const auto finish = [&](int status) {
    span.SetAttr("status", static_cast<uint64_t>(status));
    if (rpcz != nullptr) {
      options_.rpcz->End(rpcz, status, elapsed_ms * 1000);
    }
  };

  if (!transported) {
    finish(0);
    // A deadline-bounded client that failed after its budget elapsed
    // timed out; anything faster is a hard transport error (refused,
    // reset). The distinction drives separate alerting signals.
    const bool timed_out = elapsed_ms + 1 >= deadline_ms;
    if (obs::MetricsEnabled()) {
      (timed_out ? shard_timeouts_ : shard_errors_)->Increment();
    }
    return timed_out
               ? Status::DeadlineExceeded("shard " + backend.address +
                                          " missed its deadline")
               : Status::Internal("shard " + backend.address +
                                  " transport failure");
  }
  finish(response.status);
  if (response.status != 200) {
    if (obs::MetricsEnabled()) {
      (response.status == 504 ? shard_timeouts_ : shard_errors_)
          ->Increment();
    }
    return Status::Internal(StrFormat("shard %s answered HTTP %d",
                                      backend.address.c_str(),
                                      response.status));
  }
  ReleaseClient(backend, std::move(client));
  Result<JsonValue> parsed = obs::ParseJson(response.body);
  if (!parsed.ok()) {
    if (obs::MetricsEnabled()) shard_errors_->Increment();
    return Status::Internal("malformed response from " + backend.address +
                            ": " + parsed.status().message());
  }
  return parsed;
}

const ShardCoordinator::Backend& ShardCoordinator::OwnerOf(
    UserId user) const {
  // Ranges are sorted and tile the id space: first backend whose end is
  // past the id owns it.
  for (const std::unique_ptr<Backend>& backend : backends_) {
    if (user < backend->end_user) return *backend;
  }
  return *backends_.back();
}

Status ShardCoordinator::ValidateSeeds(
    const std::vector<UserId>& seeds) const {
  if (seeds.empty()) {
    return Status::InvalidArgument(
        "seed set is empty: at least one activated influencer is required");
  }
  if (seeds.size() > options_.max_seeds) {
    return Status::InvalidArgument(
        "seed set too large: " + std::to_string(seeds.size()) + " > max " +
        std::to_string(options_.max_seeds));
  }
  for (UserId u : seeds) {
    if (u >= total_users_) {
      return Status::NotFound("unknown seed user " + std::to_string(u) +
                              " (model has " + std::to_string(total_users_) +
                              " users)");
    }
  }
  return Status::OK();
}

Result<serve::SeedBlock> ShardCoordinator::GatherBlock(
    const std::vector<UserId>& seeds, uint64_t deadline_ms,
    std::vector<uint32_t>* missing) const {
  obs::TraceSpan span("gather", "shard");
  // Positions (not deduplicated ids): the transported block must keep
  // one row per seed occurrence in query order, exactly like
  // GatherSeedBlock on a single node.
  std::map<const Backend*, std::vector<size_t>> by_owner;
  for (size_t i = 0; i < seeds.size(); ++i) {
    by_owner[&OwnerOf(seeds[i])].push_back(i);
  }
  span.SetAttr("owners", static_cast<uint64_t>(by_owner.size()));

  struct OwnerFetch {
    const Backend* backend = nullptr;
    std::vector<size_t>* positions = nullptr;
    Result<JsonValue> response{Status::Internal("not run")};
  };
  std::vector<OwnerFetch> fetches(by_owner.size());
  {
    size_t i = 0;
    for (auto& [backend, positions] : by_owner) {
      fetches[i].backend = backend;
      fetches[i].positions = &positions;
      ++i;
    }
  }

  std::vector<SpanCapture> captures(fetches.size());
  {
    std::vector<std::thread> threads;
    threads.reserve(fetches.size());
    for (size_t i = 0; i < fetches.size(); ++i) {
      threads.emplace_back([this, &seeds, &fetches, &captures, deadline_ms,
                            i]() {
        obs::ScopedTraceSink sink_guard(&captures[i]);
        OwnerFetch& fetch = fetches[i];
        JsonValue body = JsonValue::Object();
        JsonValue ids = JsonValue::Array();
        for (size_t position : *fetch.positions) {
          ids.Append(seeds[position]);
        }
        body.Set("seeds", std::move(ids));
        fetch.response =
            CallBackend(*fetch.backend, "/gather", body.Dump(0), deadline_ms);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  ForwardCaptures(captures);

  // Assemble the full block at kernel strides, rows in seed order —
  // byte-identical to what GatherSeedBlock would build on one node.
  serve::SeedBlock block;
  block.dim = dim_;
  block.quantized = quantized_;
  block.seeds = seeds;
  if (!quantized_) {
    block.stride =
        static_cast<uint32_t>(kernels::PaddedStride(dim_, sizeof(double)));
    block.sources.resize(seeds.size() * static_cast<size_t>(block.stride),
                         0.0);
    block.source_biases.resize(seeds.size());
  } else {
    block.q_stride = static_cast<uint32_t>(kernels::PaddedStride(dim_, 1));
    block.q_sources.resize(seeds.size() * static_cast<size_t>(block.q_stride),
                           0);
    block.q_scales.resize(seeds.size());
    block.q_biases.resize(seeds.size());
  }

  for (OwnerFetch& fetch : fetches) {
    if (!fetch.response.ok()) {
      missing->push_back(fetch.backend->shard_index);
      continue;
    }
    Result<serve::SeedBlock> part = SeedBlockFromJson(fetch.response.value());
    if (!part.ok() || part.value().num_seeds() != fetch.positions->size() ||
        part.value().dim != dim_ || part.value().quantized != quantized_) {
      missing->push_back(fetch.backend->shard_index);
      if (obs::MetricsEnabled()) shard_errors_->Increment();
      continue;
    }
    const serve::SeedBlock& sub = part.value();
    for (size_t j = 0; j < fetch.positions->size(); ++j) {
      const size_t position = (*fetch.positions)[j];
      if (!quantized_) {
        std::memcpy(block.sources.data() +
                        position * static_cast<size_t>(block.stride),
                    sub.source_row(j), sizeof(double) * dim_);
        block.source_biases[position] = sub.source_biases[j];
      } else {
        std::memcpy(block.q_sources.data() +
                        position * static_cast<size_t>(block.q_stride),
                    sub.q_source_row(j), dim_);
        block.q_scales[position] = sub.q_scales[j];
        block.q_biases[position] = sub.q_biases[j];
      }
    }
  }
  if (!missing->empty()) {
    std::sort(missing->begin(), missing->end());
    return Status::FailedPrecondition(
        "seed rows unavailable: gather owner shard(s) unreachable");
  }
  return block;
}

Result<CoordTopKResult> ShardCoordinator::TopK(
    const CoordTopKRequest& request) const {
  if (request.k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  if (request.k > options_.max_k) {
    return Status::InvalidArgument(
        "k too large: " + std::to_string(request.k) + " > max " +
        std::to_string(options_.max_k));
  }
  INF2VEC_RETURN_IF_ERROR(ValidateSeeds(request.seeds));

  // Per-backend budget: the configured shard deadline, clipped to the
  // request's own budget when one was supplied.
  uint64_t call_deadline_ms = options_.shard_deadline_ms;
  if (request.deadline_us != 0) {
    call_deadline_ms =
        std::min<uint64_t>(call_deadline_ms,
                           std::max<uint64_t>(1, request.deadline_us / 1000));
  }

  CoordTopKResult result;
  Result<serve::SeedBlock> block =
      GatherBlock(request.seeds, call_deadline_ms, &result.shards_missing);
  if (!block.ok()) {
    result.degraded = true;
    result.gather_failed = true;
    if (obs::MetricsEnabled()) degraded_responses_->Increment();
    return result;
  }

  ShardTopKRequest scatter;
  scatter.k = request.k;
  scatter.aggregation = request.aggregation;
  // Forward the transport budget as the shard-side scan deadline so a
  // shard never keeps scanning for a response nobody is waiting for.
  scatter.deadline_us = call_deadline_ms * 1000;
  if (!request.include_seeds) scatter.exclude = request.seeds;
  scatter.block = std::move(block).value();
  const std::string scatter_body = ShardTopKRequestToJson(scatter).Dump(0);

  struct ShardCall {
    const Backend* backend = nullptr;
    Result<JsonValue> response{Status::Internal("not run")};
  };
  std::vector<ShardCall> calls(backends_.size());
  std::vector<SpanCapture> captures(backends_.size());
  {
    obs::TraceSpan span("scatter", "shard");
    span.SetAttr("backends", static_cast<uint64_t>(backends_.size()));
    std::vector<std::thread> threads;
    threads.reserve(backends_.size());
    for (size_t i = 0; i < backends_.size(); ++i) {
      calls[i].backend = backends_[i].get();
      threads.emplace_back([this, &calls, &captures, &scatter_body,
                            call_deadline_ms, i]() {
        obs::ScopedTraceSink sink_guard(&captures[i]);
        calls[i].response = CallBackend(*calls[i].backend, "/topk",
                                        scatter_body, call_deadline_ms);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  ForwardCaptures(captures);

  std::vector<serve::TopKEntry> merged;
  merged.reserve(backends_.size() * request.k);
  for (ShardCall& call : calls) {
    if (!call.response.ok()) {
      result.shards_missing.push_back(call.backend->shard_index);
      continue;
    }
    Result<ShardTopKResponse> parsed =
        ShardTopKResponseFromJson(call.response.value());
    if (!parsed.ok() ||
        parsed.value().shard_index != call.backend->shard_index) {
      result.shards_missing.push_back(call.backend->shard_index);
      if (obs::MetricsEnabled()) shard_errors_->Increment();
      continue;
    }
    result.scanned += parsed.value().scanned;
    for (const serve::TopKEntry& entry : parsed.value().entries) {
      merged.push_back(entry);
    }
  }

  {
    obs::TraceSpan span("merge", "shard");
    std::sort(merged.begin(), merged.end(), BetterThan);
    if (merged.size() > request.k) merged.resize(request.k);
    result.entries = std::move(merged);
  }
  std::sort(result.shards_missing.begin(), result.shards_missing.end());
  result.degraded = !result.shards_missing.empty();
  if (result.degraded && obs::MetricsEnabled()) {
    degraded_responses_->Increment();
  }
  return result;
}

Result<CoordScoreResult> ShardCoordinator::Score(
    UserId candidate, const std::vector<UserId>& seeds,
    const std::optional<Aggregation>& aggregation,
    uint64_t deadline_us) const {
  if (candidate >= total_users_) {
    return Status::NotFound("unknown candidate user " +
                            std::to_string(candidate));
  }
  INF2VEC_RETURN_IF_ERROR(ValidateSeeds(seeds));

  uint64_t call_deadline_ms = options_.shard_deadline_ms;
  if (deadline_us != 0) {
    call_deadline_ms = std::min<uint64_t>(
        call_deadline_ms, std::max<uint64_t>(1, deadline_us / 1000));
  }

  std::vector<uint32_t> missing;
  Result<serve::SeedBlock> block =
      GatherBlock(seeds, call_deadline_ms, &missing);
  if (!block.ok()) {
    return Status::FailedPrecondition(
        StrFormat("cannot score: %zu gather owner shard(s) unreachable",
                  missing.size()));
  }

  const Backend& owner = OwnerOf(candidate);
  JsonValue body = JsonValue::Object();
  body.Set("candidate", candidate);
  if (aggregation.has_value()) {
    body.Set("aggregation", AggregationName(*aggregation));
  }
  body.Set("block", SeedBlockToJson(block.value()));
  Result<JsonValue> response =
      CallBackend(owner, "/score", body.Dump(0), call_deadline_ms);
  if (!response.ok()) {
    return Status::FailedPrecondition("owner shard " + owner.address +
                                      " unavailable: " +
                                      response.status().message());
  }
  const JsonValue* score = response.value().Find("score");
  if (score == nullptr || !score->is_number()) {
    return Status::Internal("malformed score response from " +
                            owner.address);
  }
  CoordScoreResult result;
  result.score = score->AsDouble();
  result.shard_index = owner.shard_index;
  return result;
}

obs::JsonValue ShardCoordinator::DescribeJson() const {
  JsonValue json = JsonValue::Object();
  json.Set("role", "coordinator");
  json.Set("num_shards", num_shards());
  json.Set("total_users", total_users_);
  json.Set("dim", dim_);
  json.Set("quantize", quantized_ ? "int8" : "none");
  json.Set("model_hash", model_hash_);
  json.Set("shard_deadline_ms", options_.shard_deadline_ms);
  JsonValue backends = JsonValue::Array();
  for (const std::unique_ptr<Backend>& backend : backends_) {
    JsonValue row = JsonValue::Object();
    row.Set("address", backend->address);
    row.Set("shard_index", backend->shard_index);
    row.Set("begin_user", backend->begin_user);
    row.Set("end_user", backend->end_user);
    backends.Append(std::move(row));
  }
  json.Set("backends", std::move(backends));
  return json;
}

namespace {

HttpResponse ErrorResponse(const Status& status) {
  return obs::ErrorJson(serve::HttpCodeFor(status),
                        StatusCodeName(status.code()), status.message());
}

Result<std::vector<UserId>> ParseSeedsQuery(const HttpRequest& request) {
  if (!request.HasQuery("seeds")) {
    return Status::InvalidArgument("missing required parameter: seeds");
  }
  std::vector<UserId> seeds;
  for (std::string_view field :
       SplitString(request.QueryOr("seeds", ""), ',')) {
    uint32_t id = 0;
    const Status parsed = ParseUint32(TrimString(field), &id);
    if (!parsed.ok()) {
      return Status::InvalidArgument("bad seeds entry '" +
                                     std::string(field) +
                                     "': " + parsed.message());
    }
    seeds.push_back(id);
  }
  return seeds;
}

Status ParseOptionalUint(const HttpRequest& request, const std::string& key,
                         uint64_t* out) {
  if (!request.HasQuery(key)) return Status::OK();
  const std::string raw = request.QueryOr(key, "");
  int64_t value = 0;
  const Status parsed = ParseInt64(raw, &value);
  if (!parsed.ok() || value < 0) {
    return Status::InvalidArgument("bad " + key + " '" + raw + "'");
  }
  *out = static_cast<uint64_t>(value);
  return Status::OK();
}

Status ParseOptionalAggregation(const HttpRequest& request,
                                std::optional<Aggregation>* out) {
  if (!request.HasQuery("aggregation")) return Status::OK();
  Result<Aggregation> parsed =
      ParseAggregation(request.QueryOr("aggregation", ""));
  INF2VEC_RETURN_IF_ERROR(parsed.status());
  *out = parsed.value();
  return Status::OK();
}

/// Shared fields of every degraded / partial body.
void SetDegradedFields(JsonValue* body, const CoordTopKResult& result) {
  body->Set("degraded", result.degraded);
  JsonValue missing = JsonValue::Array();
  for (uint32_t index : result.shards_missing) missing.Append(index);
  body->Set("shards_missing", std::move(missing));
}

}  // namespace

void RegisterCoordinatorEndpoints(obs::StatsServer* server,
                                  const ShardCoordinator* coordinator) {
  server->Route("GET", "/shardz", [coordinator](const HttpRequest&) {
    return HttpResponse::Json(200, coordinator->DescribeJson().Dump(2) + "\n");
  });

  server->Route("GET", "/modelz", [coordinator](const HttpRequest&) {
    return HttpResponse::Json(200, coordinator->DescribeJson().Dump(2) + "\n");
  });

  server->Route("GET", "/topk", [coordinator](const HttpRequest& request) {
    CoordTopKRequest query;
    Result<std::vector<UserId>> seeds = ParseSeedsQuery(request);
    if (!seeds.ok()) return ErrorResponse(seeds.status());
    query.seeds = std::move(seeds).value();
    uint64_t k = 10;
    if (const Status parsed = ParseOptionalUint(request, "k", &k);
        !parsed.ok()) {
      return ErrorResponse(parsed);
    }
    if (k == 0 || k > UINT32_MAX) {
      return ErrorResponse(Status::InvalidArgument("k out of range"));
    }
    query.k = static_cast<uint32_t>(k);
    if (const Status parsed =
            ParseOptionalAggregation(request, &query.aggregation);
        !parsed.ok()) {
      return ErrorResponse(parsed);
    }
    if (const Status parsed =
            ParseOptionalUint(request, "deadline_us", &query.deadline_us);
        !parsed.ok()) {
      return ErrorResponse(parsed);
    }
    const std::string include = request.QueryOr("include_seeds", "0");
    query.include_seeds = include == "1" || include == "true";

    if (obs::TraceSpan* span = obs::TraceSpan::Current()) {
      span->SetAttr("seed_count", static_cast<uint64_t>(query.seeds.size()));
      span->SetAttr("k", static_cast<uint64_t>(query.k));
      span->SetAttr("num_shards",
                    static_cast<uint64_t>(coordinator->num_shards()));
    }

    Result<CoordTopKResult> result = coordinator->TopK(query);
    if (!result.ok()) return ErrorResponse(result.status());
    const CoordTopKResult& topk = result.value();

    if (obs::TraceSpan* span = obs::TraceSpan::Current()) {
      span->SetAttr("degraded", topk.degraded);
      span->SetAttr("shards_missing",
                    static_cast<uint64_t>(topk.shards_missing.size()));
    }

    // Nothing scannable: gather owner lost, or every shard missing.
    if (topk.gather_failed ||
        topk.shards_missing.size() == coordinator->num_shards()) {
      JsonValue body = JsonValue::Object();
      body.Set("error", "no shard could answer (see shards_missing)");
      body.Set("code", "SHARDS_UNAVAILABLE");
      SetDegradedFields(&body, topk);
      HttpResponse response = HttpResponse::Json(503, body.Dump(0) + "\n");
      response.extra_headers.emplace_back("Retry-After", "1");
      return response;
    }

    JsonValue body = JsonValue::Object();
    body.Set("k", query.k);
    body.Set("scanned", topk.scanned);
    SetDegradedFields(&body, topk);
    JsonValue entries = JsonValue::Array();
    for (const serve::TopKEntry& entry : topk.entries) {
      JsonValue row = JsonValue::Object();
      row.Set("user", entry.user);
      row.Set("score", entry.score);
      entries.Append(std::move(row));
    }
    body.Set("results", std::move(entries));
    // Partial results announce themselves with 206 so clients and load
    // balancers can tell a full ranking from a shard-loss ranking.
    return HttpResponse::Json(topk.degraded ? 206 : 200,
                              body.Dump(0) + "\n");
  });

  server->Route("GET", "/score", [coordinator](const HttpRequest& request) {
    if (!request.HasQuery("candidate")) {
      return ErrorResponse(
          Status::InvalidArgument("missing required parameter: candidate"));
    }
    uint32_t candidate = 0;
    const Status candidate_ok =
        ParseUint32(request.QueryOr("candidate", ""), &candidate);
    if (!candidate_ok.ok()) {
      return ErrorResponse(
          Status::InvalidArgument("bad candidate: " + candidate_ok.message()));
    }
    Result<std::vector<UserId>> seeds = ParseSeedsQuery(request);
    if (!seeds.ok()) return ErrorResponse(seeds.status());
    std::optional<Aggregation> aggregation;
    if (const Status parsed = ParseOptionalAggregation(request, &aggregation);
        !parsed.ok()) {
      return ErrorResponse(parsed);
    }
    uint64_t deadline_us = 0;
    if (const Status parsed =
            ParseOptionalUint(request, "deadline_us", &deadline_us);
        !parsed.ok()) {
      return ErrorResponse(parsed);
    }

    Result<CoordScoreResult> result =
        coordinator->Score(candidate, seeds.value(), aggregation, deadline_us);
    if (!result.ok()) return ErrorResponse(result.status());
    JsonValue body = JsonValue::Object();
    body.Set("candidate", candidate);
    body.Set("score", result.value().score);
    body.Set("shard", result.value().shard_index);
    return HttpResponse::Json(200, body.Dump(0) + "\n");
  });
}

}  // namespace shard
}  // namespace inf2vec
