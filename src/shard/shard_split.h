// Range-partitioning of a model artifact into N per-shard artifacts (the
// `shard-split` CLI subcommand). Each shard file is a normal I2VEMB2
// artifact whose store holds users [begin, end) of the whole model, plus
// an I2VSHRD1 identity section (shard index, range, whole-model content
// hash) so a shard server knows which global ids it owns and a
// coordinator can refuse to assemble shards cut from different models.
//
// Slicing copies rows; it never reassociates arithmetic, so every fp64
// bit of shard i row j equals the whole model's row begin+j. The int8
// section is sliced the same way when present — per-row symmetric
// quantization is row-local, so the sliced codes equal what quantizing
// the slice would produce.
#ifndef INF2VEC_SHARD_SHARD_SPLIT_H_
#define INF2VEC_SHARD_SHARD_SPLIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "embedding/model_io.h"
#include "util/status.h"

namespace inf2vec {
namespace shard {

/// [begin, end) global-user range of one shard.
struct ShardRange {
  uint32_t begin = 0;
  uint32_t end = 0;
};

/// Balanced tiling of [0, total_users) into num_shards contiguous ranges:
/// the first total % N shards get one extra user. Every shard is
/// non-empty (requires num_shards <= total_users).
std::vector<ShardRange> ComputeShardRanges(uint32_t total_users,
                                           uint32_t num_shards);

/// Canonical shard file name within an output directory.
std::string ShardArtifactFileName(uint32_t shard_index, uint32_t num_shards);

/// Cuts shard `shard_index` of `num_shards` out of a full artifact.
/// `model_hash` must be ComputeModelContentHash(full.store) — passed in
/// so a split computes the whole-model hash once, not N times.
Result<ModelArtifact> BuildShardArtifact(const ModelArtifact& full,
                                         uint32_t shard_index,
                                         uint32_t num_shards,
                                         uint64_t model_hash);

/// Loads the artifact at `model_path`, splits it into `num_shards` shard
/// artifacts, and writes them into `out_dir` (which must exist) under
/// ShardArtifactFileName names. Returns the written paths in shard order.
/// Refuses to split an artifact that is itself a shard.
Result<std::vector<std::string>> SplitModelArtifact(
    const std::string& model_path, const std::string& out_dir,
    uint32_t num_shards);

}  // namespace shard
}  // namespace inf2vec

#endif  // INF2VEC_SHARD_SHARD_SPLIT_H_
