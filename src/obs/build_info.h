#ifndef INF2VEC_OBS_BUILD_INFO_H_
#define INF2VEC_OBS_BUILD_INFO_H_

#include <cstdint>
#include <string>

#include "obs/json.h"

namespace inf2vec {
namespace obs {

/// Compile-time provenance, baked in by src/obs/CMakeLists.txt at
/// configure time (git sha) and by the preprocessor (compiler, flags).
/// Every field falls back to "unknown" outside a git checkout or when the
/// build system did not provide the define.
struct BuildInfo {
  std::string git_sha;
  std::string compiler;
  std::string build_type;
  std::string build_flags;
  std::string cxx_standard;
};

/// The process's build provenance (computed once).
const BuildInfo& GetBuildInfo();

/// Runtime environment probes. Both degrade gracefully: empty hostname /
/// zero RSS when the underlying syscall fails.
std::string Hostname();
/// Peak resident set size of this process in bytes (getrusage ru_maxrss).
uint64_t PeakRssBytes();

/// The "build" block: git_sha, compiler, build_type, build_flags,
/// cxx_standard.
JsonValue BuildInfoJson();

/// Records the serving quantization mode ("none"/"int8") for /varz and
/// the run report. Set once at command startup (the `serve` command);
/// defaults to "none".
void SetServingQuantMode(const std::string& mode);
const std::string& ServingQuantMode();

/// The "kernel" block: the runtime-dispatched SIMD backend (isa, whether
/// it was forced by --kernel, what the binary compiled in and the CPU
/// supports) plus the serving quantization mode.
JsonValue KernelInfoJson();

/// The "trace" block: default-collector state — enabled, buffered event
/// count, ring capacity, and events dropped to ring overwrites (the same
/// quantity exported as inf2vec_trace_dropped_total).
JsonValue TraceInfoJson();

/// The full environment-provenance block shared by the run report's
/// "environment" section and the stats server's /varz endpoint: the build
/// block plus hostname, pid, hardware_concurrency, peak_rss_bytes
/// (sampled at call time, so the report sees the end-of-run peak), and the
/// trace-collector state.
JsonValue EnvironmentJson();

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_BUILD_INFO_H_
