#ifndef INF2VEC_OBS_METRICS_H_
#define INF2VEC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"
#include "util/histogram.h"

namespace inf2vec {
namespace obs {

/// Process-wide recording switch, off by default. Every instrumentation
/// site is written as `if (obs::MetricsEnabled()) { ... }`, so a disabled
/// build of the hot path costs one relaxed atomic load and a predictable
/// branch — the property bench_obs_overhead verifies.
bool MetricsEnabled();
void EnableMetrics(bool enabled);

/// Index of the calling thread in a small dense id space (first call
/// assigns the next free id). Used to pick metric stripes and trace track
/// ids; stable for the lifetime of the thread.
uint32_t CurrentThreadIndex();

/// Number of independent write stripes per metric. Hogwild worker counts
/// are far below this, so concurrent writers almost never share a stripe.
inline constexpr uint32_t kMetricStripes = 16;

/// Monotonic counter. Increment is lock-free: a relaxed fetch_add on the
/// calling thread's stripe; Value() sums the stripes (so totals are exact
/// — every increment lands — while writers never contend on one cache
/// line). Handles are created by MetricsRegistry and live as long as the
/// registry; call sites cache the pointer.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    cells_[CurrentThreadIndex() % kMetricStripes].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Reset() {
    for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::string name_;
  std::array<Cell, kMetricStripes> cells_;
};

/// Last-write-wins floating-point gauge (learning rate, phase seconds,
/// final objective...). Relaxed atomic store/load.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Thread-sharded histogram: each stripe owns a util::Histogram behind its
/// own (in practice uncontended) mutex; Snapshot() merges the stripes with
/// Histogram::Merge. With fixed boundaries the merged result is identical
/// whatever thread recorded which observation — the determinism contract
/// the run-report tests rely on.
class HistogramMetric {
 public:
  void Record(uint64_t value);
  /// Merged view across stripes.
  Histogram Snapshot() const;
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  /// Empty boundaries = exact-value histogram.
  HistogramMetric(std::string name, std::vector<uint64_t> boundaries);
  void Reset();
  Histogram MakeShard() const;

  struct Stripe {
    mutable std::mutex mu;
    Histogram histogram;
  };
  std::string name_;
  std::vector<uint64_t> boundaries_;
  std::array<Stripe, kMetricStripes> stripes_;
};

/// Pre-built bucket boundaries for microsecond durations: 1-2-5 series
/// from 1us to 1e9us (~17 minutes), 28 buckets.
std::vector<uint64_t> DurationBoundariesUs();

/// Name-addressed metric store. Get* registers on first use and returns a
/// stable handle afterwards (same name => same handle), so hot paths fetch
/// once and record through the pointer. Scraping walks every metric
/// name-sorted. One process-wide Default() instance backs the whole
/// pipeline; tests may Reset() it between cases.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `boundaries` applies on first registration; later calls for the same
  /// name return the existing histogram (boundaries must then match —
  /// checked).
  HistogramMetric* GetHistogram(const std::string& name,
                                std::vector<uint64_t> boundaries = {});

  /// Zeroes every metric; handles stay valid.
  void Reset();

  /// Point-in-time copy of every metric, name-sorted.
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram>> histograms;

    /// Counter value by name, 0 when absent.
    uint64_t CounterOr0(const std::string& name) const;
    /// Gauge value by name, fallback when absent.
    double GaugeOr(const std::string& name, double fallback) const;
    const Histogram* FindHistogram(const std::string& name) const;
  };
  Snapshot Scrape() const;

  /// Scrape rendered as the report's "metrics" section: counters/gauges as
  /// flat objects, histograms summarized as count/mean/max/p50/p90/p99.
  JsonValue ScrapeJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

/// Installs a ThreadPoolObserver that records pool activity into the
/// default registry (threadpool.jobs / threadpool.shards counters,
/// threadpool.shard_wait_us / threadpool.shard_exec_us histograms).
/// Idempotent; recording still honours MetricsEnabled().
void InstallThreadPoolMetrics();
/// Removes the observer installed above (used by tests).
void UninstallThreadPoolMetrics();

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_METRICS_H_
