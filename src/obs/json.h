#ifndef INF2VEC_OBS_JSON_H_
#define INF2VEC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/status.h"

namespace inf2vec {
namespace obs {

/// Minimal JSON document model for the observability layer: run reports
/// and trace files are emitted through it, and tests parse the emitted
/// bytes back to prove the round trip. Deliberately small — no external
/// dependency, insertion-ordered objects (so reports render in a stable,
/// human-friendly key order), and integer/double distinction preserved so
/// uint64 counters do not pass through a double.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}  // NOLINT
  /// Any non-bool integral type maps to kInt (one template so mixed-width
  /// counters do not hit overload ambiguity).
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  JsonValue(T value)  // NOLINT
      : kind_(Kind::kInt), int_(static_cast<int64_t>(value)) {}
  JsonValue(double value) : kind_(Kind::kDouble), double_(value) {}  // NOLINT
  JsonValue(std::string value)  // NOLINT
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(const char* value)  // NOLINT
      : kind_(Kind::kString), string_(value) {}

  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }

  /// Typed accessors; the kind must match (checked).
  bool AsBool() const;
  int64_t AsInt() const;
  /// Numeric value as double (accepts kInt and kDouble).
  double AsDouble() const;
  const std::string& AsString() const;

  /// Array ops (value must be an array — checked).
  void Append(JsonValue value);
  const std::vector<JsonValue>& items() const;
  size_t size() const;

  /// Object ops (value must be an object — checked). Set replaces an
  /// existing key in place, otherwise appends; emission preserves order.
  void Set(const std::string& key, JsonValue value);
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces per
  /// level, 0 emits compact single-line JSON.
  std::string Dump(int indent = 2) const;

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses a complete JSON document (trailing whitespace allowed, anything
/// else after the value is an error). Supports the full emitted subset:
/// null/bool/int/double/string (with escapes)/array/object.
Result<JsonValue> ParseJson(const std::string& text);

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes). Exposed for the streaming trace writer.
std::string JsonEscape(const std::string& raw);

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_JSON_H_
