#include "obs/run_report.h"

#include <cstdio>

namespace inf2vec {
namespace obs {

RunReport::RunReport(std::string command) : command_(std::move(command)) {}

void RunReport::SetConfig(const std::string& key, JsonValue value) {
  config_.Set(key, std::move(value));
}

void RunReport::AddPhase(const std::string& name, double seconds) {
  phases_.emplace_back(name, seconds);
}

void RunReport::AddEpoch(const EpochRow& row) { epochs_.push_back(row); }

void RunReport::SetSection(const std::string& name, JsonValue value) {
  for (auto& [n, v] : sections_) {
    if (n == name) {
      v = std::move(value);
      return;
    }
  }
  sections_.emplace_back(name, std::move(value));
}

void RunReport::FinalizeFromRegistry(const MetricsRegistry& registry) {
  const MetricsRegistry::Snapshot snapshot = registry.Scrape();

  // Context-composition stats: how Algorithm 1 actually split the L budget
  // between local random-walk nodes and global similarity samples, plus
  // the walk shape (the paper's L*alpha vs L*(1-alpha) contract).
  const uint64_t local = snapshot.CounterOr0("context.local_nodes");
  const uint64_t global = snapshot.CounterOr0("context.global_nodes");
  const uint64_t total_nodes = local + global;
  JsonValue context = JsonValue::Object();
  context.Set("contexts", snapshot.CounterOr0("context.generated"));
  context.Set("local_nodes", local);
  context.Set("global_nodes", global);
  context.Set("local_fraction",
              total_nodes == 0
                  ? 0.0
                  : static_cast<double>(local) /
                        static_cast<double>(total_nodes));
  context.Set("global_fraction",
              total_nodes == 0
                  ? 0.0
                  : static_cast<double>(global) /
                        static_cast<double>(total_nodes));
  if (const Histogram* walk_length =
          snapshot.FindHistogram("context.local_length")) {
    context.Set("mean_walk_length", walk_length->Mean());
  } else {
    context.Set("mean_walk_length", 0.0);
  }
  context.Set("walk_steps", snapshot.CounterOr0("walk.steps"));
  context.Set("restarts", snapshot.CounterOr0("walk.restarts"));
  SetSection("context", std::move(context));

  // Negative-sampler draw stats.
  const uint64_t draws = snapshot.CounterOr0("negative_sampler.draws");
  const uint64_t rejected = snapshot.CounterOr0("negative_sampler.rejected");
  JsonValue sampler = JsonValue::Object();
  sampler.Set("draws", draws);
  sampler.Set("rejected", rejected);
  sampler.Set("rejection_rate",
              draws == 0 ? 0.0
                         : static_cast<double>(rejected) /
                               static_cast<double>(draws + rejected));
  SetSection("negative_sampler", std::move(sampler));

  SetSection("metrics", registry.ScrapeJson());
}

JsonValue RunReport::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("schema_version", 1);
  out.Set("command", command_);
  out.Set("config", config_);

  JsonValue phases = JsonValue::Array();
  for (const auto& [name, seconds] : phases_) {
    JsonValue phase = JsonValue::Object();
    phase.Set("name", name);
    phase.Set("seconds", seconds);
    phases.Append(std::move(phase));
  }
  out.Set("phases", std::move(phases));

  JsonValue epochs = JsonValue::Array();
  for (const EpochRow& row : epochs_) {
    JsonValue epoch = JsonValue::Object();
    epoch.Set("epoch", row.epoch);
    epoch.Set("objective", row.objective);
    epoch.Set("learning_rate", row.learning_rate);
    epoch.Set("pairs", row.pairs);
    epoch.Set("seconds", row.seconds);
    epoch.Set("pairs_per_second", row.pairs_per_second);
    epochs.Append(std::move(epoch));
  }
  out.Set("epochs", std::move(epochs));

  for (const auto& [name, value] : sections_) {
    out.Set(name, value);
  }
  return out;
}

Status RunReport::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open metrics output file: " + path);
  }
  const std::string json = ToJson().Dump(2) + "\n";
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to metrics output file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace inf2vec
