#ifndef INF2VEC_OBS_HTTP_SERVER_H_
#define INF2VEC_OBS_HTTP_SERVER_H_

#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/status.h"

namespace inf2vec {
namespace obs {

struct StatsServerOptions {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port
  /// (query the result with port() after Start — the test path).
  uint16_t port = 0;
  /// Loopback by default: the stats plane is an operator tool, not a
  /// public API.
  std::string bind_address = "127.0.0.1";
};

/// Dependency-free embedded stats server: blocking POSIX sockets on one
/// background thread, GET-only, one short-lived connection at a time.
/// Endpoints:
///
///   /metrics  Prometheus text exposition of the registry (obs/prometheus)
///   /statusz  live run status JSON (obs/run_status)
///   /healthz  200 "ok"
///   /varz     build + environment provenance JSON (obs/build_info)
///
/// Responses are tiny (a scrape of every metric is a few KB), so serving
/// inline on the accept thread keeps the design at ~zero cost for the
/// training threads: handlers only ever *read* (Scrape(), RunStatus
/// snapshot) through the existing thread-safe interfaces.
///
/// Shutdown is deterministic: Stop() wakes the accept loop through a
/// self-pipe (the loop polls {listen_fd, pipe} and every in-flight
/// connection polls {client_fd, pipe}), joins the thread, and closes the
/// socket — no leaked thread, port released on return. Destruction stops
/// a running server.
class StatsServer {
 public:
  explicit StatsServer(StatsServerOptions options,
                       MetricsRegistry* registry = &MetricsRegistry::Default());
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Binds, listens, and spawns the accept thread. Fails (without leaking
  /// fds) when the port is taken or the address does not parse.
  Status Start();

  /// Idempotent; safe to call on a never-started server.
  void Stop();

  bool running() const { return running_; }
  /// Bound port (the kernel's pick when options.port was 0); 0 before
  /// Start.
  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(int client_fd);
  /// Waits until `fd` is readable or the stop pipe fires; false on stop.
  bool WaitReadable(int fd);

  StatsServerOptions options_;
  MetricsRegistry* registry_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // [read, write]; written once by Stop().
  uint16_t port_ = 0;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_HTTP_SERVER_H_
