#ifndef INF2VEC_OBS_HTTP_SERVER_H_
#define INF2VEC_OBS_HTTP_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/request_obs.h"
#include "util/status.h"

namespace inf2vec {
namespace obs {

/// A parsed GET request as seen by endpoint handlers: the path with any
/// query string already stripped, the decoded query parameters in request
/// order (duplicate keys preserved; first wins for QueryOr), and the
/// request headers with lower-cased names (HTTP header names are
/// case-insensitive; first wins for HeaderOr).
struct HttpRequest {
  std::string method;
  std::string path;
  std::vector<std::pair<std::string, std::string>> query;
  std::vector<std::pair<std::string, std::string>> headers;

  bool HasQuery(const std::string& key) const;
  /// First value of `key`, or `fallback` when absent.
  std::string QueryOr(const std::string& key,
                      const std::string& fallback) const;
  /// First value of header `name` (lower-case), or `fallback` when absent.
  std::string HeaderOr(const std::string& name,
                       const std::string& fallback) const;
};

/// What a handler sends back; defaults to an empty 200 text/plain.
struct HttpResponse {
  int code = 200;
  std::string reason = "OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Additional response headers (e.g. X-Request-Id); names sent verbatim.
  std::vector<std::pair<std::string, std::string>> extra_headers;

  static HttpResponse Text(int code, std::string body);
  static HttpResponse Json(int code, std::string body);
};

/// Percent-decodes a URL component ('+' becomes space; malformed %XX
/// sequences pass through verbatim).
std::string UrlDecode(const std::string& raw);

/// Splits "a=1&b=x%20y" into decoded key/value pairs (missing '=' yields
/// an empty value). Exposed for tests and for handlers that re-parse.
std::vector<std::pair<std::string, std::string>> ParseQueryString(
    const std::string& query);

struct StatsServerOptions {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port
  /// (query the result with port() after Start — the test path).
  uint16_t port = 0;
  /// Loopback by default: the stats plane is an operator tool, not a
  /// public API.
  std::string bind_address = "127.0.0.1";
};

/// Dependency-free embedded stats server: blocking POSIX sockets on one
/// background thread, GET-only, one short-lived connection at a time.
/// Built-in endpoints (registered at construction):
///
///   /metrics  Prometheus text exposition of the registry (obs/prometheus)
///   /statusz  live run status JSON (obs/run_status)
///   /healthz  200 "ok"
///   /varz     build + environment provenance JSON (obs/build_info)
///
/// Further endpoints register through Handle() — the serving subsystem
/// (src/serve) adds /score, /topk and /modelz this way. Dispatch strips
/// the query string before matching, so "/metrics?foo=1" routes to
/// /metrics and handlers read parameters from HttpRequest::query.
///
/// Responses are tiny (a scrape of every metric is a few KB), so serving
/// inline on the accept thread keeps the design at ~zero cost for the
/// training threads: handlers must only *read* shared state through
/// thread-safe interfaces (Scrape(), RunStatus snapshot, an immutable
/// model artifact) — they run on the server thread while the process
/// works.
///
/// Shutdown is deterministic: Stop() wakes the accept loop through a
/// self-pipe (the loop polls {listen_fd, pipe} and every in-flight
/// connection polls {client_fd, pipe}), joins the thread, and closes the
/// socket — no leaked thread, port released on return. Destruction stops
/// a running server.
class StatsServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit StatsServer(StatsServerOptions options,
                       MetricsRegistry* registry = &MetricsRegistry::Default());
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Registers (or replaces) the handler for an exact path. Thread-safe;
  /// may be called before or after Start. The handler runs on the server
  /// thread and must be safe against concurrent process activity.
  void Handle(const std::string& path, Handler handler);

  /// Registered paths, sorted (the "/" index lists them).
  std::vector<std::string> HandledPaths() const;

  /// Installs request-level observability: every request that reaches a
  /// registered handler runs inside a RequestScope — root trace span with
  /// child spans from the handler, per-endpoint /rpcz accounting, /tracez
  /// retention, and one access-log line — and the response carries an
  /// X-Request-Id header (the inbound one when the client sent it).
  /// Malformed / unknown-path requests bypass the scope: they never reach
  /// serving code and would pollute per-endpoint series with unbounded
  /// garbage paths. Pass a default-constructed bundle to turn it off.
  /// Thread-safe; the pointed-to objects must outlive the server.
  void SetRequestObservability(RequestObservability obs);

  /// Binds, listens, and spawns the accept thread. Fails (without leaking
  /// fds) when the port is taken or the address does not parse.
  Status Start();

  /// Idempotent; safe to call on a never-started server.
  void Stop();

  bool running() const { return running_; }
  /// Bound port (the kernel's pick when options.port was 0); 0 before
  /// Start.
  uint16_t port() const { return port_; }

 private:
  void RegisterBuiltinEndpoints();
  void AcceptLoop();
  void HandleConnection(int client_fd);
  /// Waits until `fd` is readable or the stop pipe fires; false on stop.
  bool WaitReadable(int fd);

  StatsServerOptions options_;
  MetricsRegistry* registry_;
  mutable std::mutex handlers_mu_;
  std::map<std::string, Handler> handlers_;
  RequestObservability request_obs_;  // Guarded by handlers_mu_.
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // [read, write]; written once by Stop().
  uint16_t port_ = 0;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_HTTP_SERVER_H_
