#ifndef INF2VEC_OBS_HTTP_SERVER_H_
#define INF2VEC_OBS_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/request_obs.h"
#include "util/status.h"

namespace inf2vec {
namespace obs {

/// A parsed request as seen by endpoint handlers: the path with any query
/// string already stripped, the decoded query parameters in request order
/// (duplicate keys preserved; first wins for QueryOr), the request headers
/// with lower-cased names (HTTP header names are case-insensitive; first
/// wins for HeaderOr), and — for POST — the Content-Length-framed body.
struct HttpRequest {
  std::string method;   // "GET", "POST", ... (verbatim from the wire).
  std::string path;
  std::string version;  // "HTTP/1.1" / "HTTP/1.0".
  std::string body;     // Empty unless the request carried Content-Length.
  /// Resolved keep-alive decision: HTTP/1.1 unless "Connection: close",
  /// HTTP/1.0 only with "Connection: keep-alive". The server frames the
  /// response accordingly; handlers can read it but not change it (a
  /// handler forces a close through HttpResponse::close_connection).
  bool keep_alive = false;
  std::vector<std::pair<std::string, std::string>> query;
  std::vector<std::pair<std::string, std::string>> headers;

  bool HasQuery(const std::string& key) const;
  /// First value of `key`, or `fallback` when absent.
  std::string QueryOr(const std::string& key,
                      const std::string& fallback) const;
  /// First value of header `name` (lower-case), or `fallback` when absent.
  std::string HeaderOr(const std::string& name,
                       const std::string& fallback) const;
};

/// What a handler sends back; defaults to an empty 200 text/plain.
struct HttpResponse {
  int code = 200;
  std::string reason = "OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Additional response headers (e.g. X-Request-Id); names sent verbatim.
  std::vector<std::pair<std::string, std::string>> extra_headers;
  /// Force "Connection: close" after this response even on a keep-alive
  /// connection (the response is still flushed first).
  bool close_connection = false;

  static HttpResponse Text(int code, std::string body);
  static HttpResponse Json(int code, std::string body);
};

/// The one JSON error envelope every endpoint in the process shares:
///
///   {"error": <human-readable message>, "code": <MACHINE_CODE>}
///
/// `code` is a stable machine-readable label (StatusCodeName spelling for
/// Status-mapped errors — "INVALID_ARGUMENT", "NOT_FOUND", ... — plus the
/// transport-level labels "OVERLOADED", "MEM_PRESSURE",
/// "HEADER_TOO_LARGE", "BODY_TOO_LARGE", "METHOD_NOT_ALLOWED",
/// "NOT_IMPLEMENTED"). Schema documented in docs/SERVING.md.
HttpResponse ErrorJson(int http_code, const std::string& code,
                       const std::string& message);

/// Canonical reason phrase for a status code ("Unknown" for codes the
/// server never emits).
const char* HttpReasonPhrase(int code);

/// Percent-decodes a URL component ('+' becomes space; malformed %XX
/// sequences pass through verbatim).
std::string UrlDecode(const std::string& raw);

/// Splits "a=1&b=x%20y" into decoded key/value pairs (missing '=' yields
/// an empty value). Exposed for tests and for handlers that re-parse.
std::vector<std::pair<std::string, std::string>> ParseQueryString(
    const std::string& query);

struct StatsServerOptions {
  /// TCP port to listen on; 0 asks the kernel for an ephemeral port
  /// (query the result with port() after Start — the test path).
  uint16_t port = 0;
  /// Loopback by default: the stats plane is an operator tool, not a
  /// public API.
  std::string bind_address = "127.0.0.1";
  /// Handler worker threads (`serve --serve-threads`). Handlers run on
  /// this pool, so every registered handler must be safe for concurrent
  /// invocation. Minimum 1.
  uint32_t num_workers = 2;
  /// Admission bound (`serve --max-inflight`): requests parsed while this
  /// many are already queued or executing are shed with 429 OVERLOADED
  /// instead of growing an unbounded queue (http.shed counter).
  uint32_t max_inflight = 256;
  /// Per-connection pipelining depth: the event loop stops reading a
  /// connection with this many responses outstanding until some flush
  /// (back-pressure, not an error).
  uint32_t max_pipeline = 32;
  /// Request line + headers beyond this answer 431 and close.
  size_t max_request_head_bytes = 8192;
  /// Declared Content-Length beyond this answers 413 and closes.
  size_t max_body_bytes = 1 << 20;
  /// Accepted connections beyond this are closed immediately.
  uint32_t max_connections = 1024;
  /// Keep-alive connections idle longer than this are closed by a
  /// periodic sweep; 0 disables the sweep (tests, short-lived tools).
  uint32_t idle_timeout_ms = 0;
};

/// Dependency-free embedded HTTP server: one epoll event-loop thread
/// drives non-blocking accept/read/write connection state machines
/// (HTTP/1.1 keep-alive + pipelining, Content-Length-framed POST bodies),
/// and a small worker pool runs the handlers. Built-in endpoints
/// (registered at construction):
///
///   /metrics  Prometheus text exposition of the registry (obs/prometheus)
///   /statusz  live run status JSON (obs/run_status)
///   /healthz  200 "ok"
///   /varz     build + environment provenance JSON (obs/build_info)
///   /memz     byte-level memory accounting JSON (obs/memory)
///   /heapz    sampling heap profiler (obs/heap_profiler)
///
/// Further endpoints register through Route() — the serving subsystem
/// (src/serve) adds /score, /topk and /modelz this way. Dispatch strips
/// the query string before matching, so "/metrics?foo=1" routes to
/// /metrics and handlers read parameters from HttpRequest::query.
///
/// Flow of one request: the event loop parses it off the connection (431
/// on an oversized head, 400 on a malformed Content-Length, 413 on an
/// oversized body — all without reading to EOF), assigns it an ordered
/// response slot, and submits it to the worker pool unless max_inflight
/// requests are already in flight (then it answers 429 directly — the
/// admission queue is bounded). A worker runs the handler (inside a
/// RequestScope when request observability is installed), serializes the
/// response, and hands the bytes back to the event loop, which writes
/// responses strictly in request order per connection — pipelined clients
/// always see answers in the order they asked.
///
/// Handlers run on worker threads while the process works, so they must
/// only *read* shared state through thread-safe interfaces (Scrape(),
/// RunStatus snapshot, an immutable model artifact) and must tolerate
/// concurrent invocation of the same handler.
///
/// Shutdown is deterministic: Stop() wakes the event loop through an
/// eventfd, joins it (closing every connection), drains and joins the
/// worker pool, and closes the listen socket — no leaked thread, port
/// released on return. Destruction stops a running server.
class StatsServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit StatsServer(StatsServerOptions options,
                       MetricsRegistry* registry = &MetricsRegistry::Default());
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Registers (or replaces) the handler for an exact (method, path)
  /// pair. Thread-safe; may be called before or after Start. The handler
  /// runs on a worker thread and must be safe against concurrent process
  /// activity and concurrent invocations of itself. A path with at least
  /// one route answers 405 (with an Allow header) for unrouted methods;
  /// unknown paths answer 404.
  void Route(const std::string& method, const std::string& path,
             Handler handler);

  /// Registered paths, sorted and deduplicated across methods (the "/"
  /// index lists them).
  std::vector<std::string> HandledPaths() const;

  /// Installs request-level observability: every request that reaches a
  /// registered handler runs inside a RequestScope — root trace span with
  /// child spans from the handler, per-endpoint /rpcz accounting, /tracez
  /// retention, and one access-log line — and the response carries an
  /// X-Request-Id header (the inbound one when the client sent it). The
  /// scope is strictly per-request, never per-connection: each request on
  /// a reused keep-alive connection gets its own id, span tree, and rpcz
  /// row. Malformed / unknown-path requests bypass the scope: they never
  /// reach serving code and would pollute per-endpoint series with
  /// unbounded garbage paths. Pass a default-constructed bundle to turn
  /// it off. Thread-safe; the pointed-to objects must outlive the server.
  void SetRequestObservability(RequestObservability obs);

  /// Binds, listens, and spawns the event loop + worker threads. Fails
  /// (without leaking fds) when the port is taken or the address does not
  /// parse.
  Status Start();

  /// Idempotent; safe to call on a never-started server.
  void Stop();

  bool running() const { return running_; }
  /// Bound port (the kernel's pick when options.port was 0); 0 before
  /// Start.
  uint16_t port() const { return port_; }

 private:
  struct Conn;

  /// One admitted request travelling to the worker pool.
  struct Job {
    uint64_t conn_id = 0;
    uint64_t slot_seq = 0;
    HttpRequest request;
  };
  /// One finished response travelling back to the event loop.
  struct Completion {
    uint64_t conn_id = 0;
    uint64_t slot_seq = 0;
    std::string bytes;
    bool close_after = false;
  };

  void RegisterBuiltinEndpoints();
  void EventLoop();
  void WorkerLoop();
  /// Routes + runs the handler (worker thread). 404/405 for unmatched.
  HttpResponse Dispatch(const HttpRequest& request);
  void WakeLoop();

  // Event-loop-thread-only connection machinery.
  void AcceptNewConnections();
  void OnConnReadable(Conn* conn);
  void OnConnWritable(Conn* conn);
  void ParseConnInput(Conn* conn);
  void SubmitRequest(Conn* conn, HttpRequest request);
  /// Completes a slot without a worker round-trip (parse errors, 429s).
  void CompleteSlotInline(Conn* conn, uint64_t slot_seq,
                          const HttpResponse& response, bool close_after);
  void ApplyCompletion(const Completion& completion);
  void FlushReadySlots(Conn* conn);
  void TryWrite(Conn* conn);
  void UpdateInterest(Conn* conn);
  void AccountConnBytes(Conn* conn);
  void DestroyConn(Conn* conn);
  void DrainCompletions();
  void SweepIdleConns();

  StatsServerOptions options_;
  MetricsRegistry* registry_;

  mutable std::mutex handlers_mu_;
  /// path -> [(METHOD, handler)] — the method list is tiny (1-2 entries).
  std::map<std::string, std::vector<std::pair<std::string, Handler>>> routes_;
  RequestObservability request_obs_;  // Guarded by handlers_mu_.

  // Admission queue (workers block here).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> job_queue_;
  bool queue_stopping_ = false;  // Guarded by queue_mu_.
  /// Queued + executing requests, bounded by options_.max_inflight.
  std::atomic<uint32_t> inflight_{0};

  // Completion queue (event loop drains on eventfd wake).
  std::mutex completion_mu_;
  std::vector<Completion> completions_;

  // Event-loop-thread-only state.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listen fd, 1 = wake fd in epoll data.

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd; written by workers and Stop().
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool running_ = false;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Transport metrics (registry-owned; incremented under MetricsEnabled).
  Counter* requests_total_;
  Counter* connections_total_;
  Counter* keepalive_reuses_;
  Counter* shed_;
  Counter* parse_errors_;
};

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_HTTP_SERVER_H_
