#include "obs/profiler.h"

#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <unordered_map>

#include "obs/http_server.h"
#include "obs/symbolize.h"
#include "util/string_util.h"

namespace inf2vec {
namespace obs {
namespace {

/// Handler-visible state. The handler may fire on any thread at any
/// instruction, so everything it touches is a raw pointer or an atomic set
/// up before the timer is armed and torn down only after it is disarmed.
/// Storage itself lives in process-lifetime vectors (below) so a straggler
/// signal delivered during disarm still writes into valid memory.
std::vector<void*> g_pc_storage;
std::vector<int> g_depth_storage;
void** g_pcs = nullptr;
int* g_depths = nullptr;
size_t g_capacity = 0;
std::atomic<size_t> g_cursor{0};
std::atomic<uint64_t> g_truncated{0};
std::atomic<bool> g_armed{false};
struct sigaction g_previous_action;

extern "C" void ProfSignalHandler(int /*signum*/) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  const size_t index = g_cursor.fetch_add(1, std::memory_order_relaxed);
  if (index >= g_capacity) {
    g_truncated.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // backtrace() is safe here because Start() already forced glibc to load
  // its unwinder (the lazy first call allocates; later calls do not).
  g_depths[index] =
      backtrace(g_pcs + index * CpuProfiler::kMaxFrames, CpuProfiler::kMaxFrames);
}

bool IsProfilerMachineryFrame(const std::string& name) {
  return name.find("ProfSignalHandler") != std::string::npos ||
         name.find("restore_rt") != std::string::npos ||
         name.find("killpg") != std::string::npos;
}

}  // namespace

CpuProfiler& CpuProfiler::Default() {
  static CpuProfiler* profiler = new CpuProfiler();
  return *profiler;
}

CpuProfiler::CpuProfiler() = default;

CpuProfiler::~CpuProfiler() { Stop(); }

Status CpuProfiler::Start() { return Start(Options{}); }

Status CpuProfiler::StartForDuration(double seconds) {
  return StartForDuration(seconds, Options{});
}

Status CpuProfiler::Start(const Options& options) {
  std::thread stale;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("profiler already running");
    }
    if (options.hz <= 0 || options.hz > 10000) {
      return Status::InvalidArgument(
          StrFormat("profiler hz out of range (1..10000): %d", options.hz));
    }
    if (options.max_samples == 0) {
      return Status::InvalidArgument("profiler max_samples must be > 0");
    }
    stale = std::move(auto_stop_);
    options_ = options;

    g_armed.store(false, std::memory_order_relaxed);
    g_pc_storage.assign(options.max_samples * kMaxFrames, nullptr);
    g_depth_storage.assign(options.max_samples, 0);
    g_pcs = g_pc_storage.data();
    g_depths = g_depth_storage.data();
    g_capacity = options.max_samples;
    g_cursor.store(0, std::memory_order_relaxed);
    g_truncated.store(0, std::memory_order_relaxed);

    // Warm up glibc's unwinder outside signal context (the first call
    // lazily loads libgcc and allocates — neither is signal-safe).
    void* warm[4];
    backtrace(warm, 4);

    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = ProfSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    if (sigaction(SIGPROF, &action, &g_previous_action) != 0) {
      return Status::IOError("sigaction(SIGPROF) failed");
    }
    g_armed.store(true, std::memory_order_release);

    const long interval_us = std::max(1000000L / options.hz, 100L);
    itimerval timer;
    timer.it_interval.tv_sec = interval_us / 1000000;
    timer.it_interval.tv_usec = interval_us % 1000000;
    timer.it_value = timer.it_interval;
    if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
      g_armed.store(false, std::memory_order_release);
      sigaction(SIGPROF, &g_previous_action, nullptr);
      return Status::IOError("setitimer(ITIMER_PROF) failed");
    }
    timer_armed_ = true;
    cancel_auto_stop_ = false;
    running_.store(true, std::memory_order_release);
  }
  // A finished auto-stop thread from a previous session joins instantly.
  if (stale.joinable()) stale.join();
  return Status::OK();
}

Status CpuProfiler::StartForDuration(double seconds, const Options& options) {
  if (seconds <= 0.0 || seconds > 3600.0) {
    return Status::InvalidArgument(
        StrFormat("profiler duration out of range (0..3600s): %g", seconds));
  }
  Status started = Start(options);
  if (!started.ok()) return started;
  std::lock_guard<std::mutex> lock(mu_);
  auto_stop_ = std::thread([this, seconds] {
    std::unique_lock<std::mutex> lock(mu_);
    stop_cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                      [this] { return cancel_auto_stop_; });
    if (!cancel_auto_stop_) StopTimerLocked();
  });
  return Status::OK();
}

void CpuProfiler::StopTimerLocked() {
  if (!timer_armed_) return;
  itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  setitimer(ITIMER_PROF, &timer, nullptr);
  sigaction(SIGPROF, &g_previous_action, nullptr);
  // Buffers stay mapped, so a signal already in flight lands harmlessly;
  // the flag just stops new samples from being claimed.
  g_armed.store(false, std::memory_order_release);
  timer_armed_ = false;
  running_.store(false, std::memory_order_release);
}

Status CpuProfiler::Stop() {
  std::thread pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancel_auto_stop_ = true;
    stop_cv_.notify_all();
    pending = std::move(auto_stop_);
    StopTimerLocked();
  }
  if (pending.joinable()) pending.join();
  return Status::OK();
}

size_t CpuProfiler::sample_count() const {
  return std::min(g_cursor.load(std::memory_order_relaxed), g_capacity);
}

uint64_t CpuProfiler::truncated() const {
  return g_truncated.load(std::memory_order_relaxed);
}

std::string CpuProfiler::FoldedStacks() const {
  const size_t samples = sample_count();
  // Per-PC symbolization cache: a hot loop produces thousands of samples
  // over a handful of distinct addresses.
  std::unordered_map<void*, std::string> names;
  auto name_of = [&names](void* pc) -> const std::string& {
    auto it = names.find(pc);
    if (it == names.end()) it = names.emplace(pc, SymbolizePc(pc)).first;
    return it->second;
  };

  std::map<std::string, uint64_t> folded;
  std::vector<const std::string*> frames;
  for (size_t i = 0; i < samples; ++i) {
    const int depth =
        std::min(g_depth_storage[i], static_cast<int>(kMaxFrames));
    if (depth <= 0) continue;
    void* const* pcs = g_pcs + i * kMaxFrames;
    // Frames come innermost-first. Trim the profiler's own machinery (the
    // handler and the kernel signal trampoline) off the leaf end; the
    // first real frame is the instruction the signal interrupted.
    frames.clear();
    int start = 0;
    for (int f = 0; f < depth; ++f) {
      if (IsProfilerMachineryFrame(name_of(pcs[f]))) start = f + 1;
    }
    if (start >= depth) start = 0;  // Never trim the whole stack away.
    for (int f = depth - 1; f >= start; --f) frames.push_back(&name_of(pcs[f]));
    std::string key;
    for (size_t f = 0; f < frames.size(); ++f) {
      if (f > 0) key += ';';
      key += *frames[f];
    }
    ++folded[key];
  }

  // Biggest stacks first: the dominant frame is on line one.
  std::vector<std::pair<std::string, uint64_t>> rows(folded.begin(),
                                                     folded.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::string out;
  for (const auto& [stack, count] : rows) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

Status CpuProfiler::WriteFolded(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open profile output file: " + path);
  }
  const std::string folded = FoldedStacks();
  const size_t written = std::fwrite(folded.data(), 1, folded.size(), f);
  std::fclose(f);
  if (written != folded.size()) {
    return Status::IOError("short write to profile output file: " + path);
  }
  return Status::OK();
}

JsonValue CpuProfiler::DescribeJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("running", running());
  out.Set("hz", options_.hz);
  out.Set("samples", static_cast<uint64_t>(sample_count()));
  out.Set("truncated", truncated());
  return out;
}

void RegisterProfilerEndpoint(StatsServer* server, CpuProfiler* profiler) {
  server->Route("GET", "/pprofz", [profiler](const HttpRequest& request) {
    if (profiler == nullptr) {
      return ErrorJson(404, "NOT_FOUND", "profiler not enabled");
    }
    const std::string seconds_raw = request.QueryOr("seconds", "");
    if (!seconds_raw.empty()) {
      if (profiler->running()) {
        JsonValue status = profiler->DescribeJson();
        status.Set("status", "running");
        return HttpResponse::Json(200, status.Dump(2) + "\n");
      }
      char* end = nullptr;
      const double seconds = std::strtod(seconds_raw.c_str(), &end);
      if (end == seconds_raw.c_str() || *end != '\0') {
        return ErrorJson(400, "INVALID_ARGUMENT",
                         "bad seconds '" + seconds_raw + "'");
      }
      Status started = profiler->StartForDuration(seconds);
      if (!started.ok()) {
        return ErrorJson(400, "INVALID_ARGUMENT", started.ToString());
      }
      JsonValue status = JsonValue::Object();
      status.Set("status", "started");
      status.Set("seconds", seconds);
      status.Set("hz", profiler->hz());
      return HttpResponse::Json(200, status.Dump(2) + "\n");
    }
    if (profiler->running()) {
      JsonValue status = profiler->DescribeJson();
      status.Set("status", "running");
      return HttpResponse::Json(200, status.Dump(2) + "\n");
    }
    if (profiler->sample_count() == 0) {
      return HttpResponse::Json(
          200,
          "{\"status\": \"idle\", \"hint\": \"GET /pprofz?seconds=N to "
          "profile\"}\n");
    }
    return HttpResponse::Text(200, profiler->FoldedStacks());
  });
}

}  // namespace obs
}  // namespace inf2vec
