#include "obs/snapshotter.h"

#include <algorithm>

#include "obs/memory.h"

namespace inf2vec {
namespace obs {

MetricsSnapshotter::MetricsSnapshotter(SnapshotterOptions options,
                                       MetricsRegistry* registry)
    : options_(std::move(options)), registry_(registry) {
  options_.interval_ms = std::max<uint32_t>(options_.interval_ms, 10);
}

MetricsSnapshotter::~MetricsSnapshotter() { Stop(); }

Status MetricsSnapshotter::Start() {
  if (running_) {
    return Status::FailedPrecondition("snapshotter already running");
  }
  file_ = std::fopen(options_.path.c_str(), "w");
  if (file_ == nullptr) {
    return Status::IOError("cannot open snapshot output file: " +
                           options_.path);
  }
  seq_ = 0;
  lines_written_.store(0, std::memory_order_relaxed);
  previous_counters_.clear();
  stop_requested_ = false;
  start_ = std::chrono::steady_clock::now();
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void MetricsSnapshotter::Stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
  std::fclose(file_);
  file_ = nullptr;
}

void MetricsSnapshotter::Loop() {
  for (;;) {
    bool stopping;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                   [this] { return stop_requested_; });
      stopping = stop_requested_;
    }
    // On stop, take one last snapshot so the series always covers the end
    // of the run, then exit.
    WriteSnapshot();
    if (stopping) return;
  }
}

void MetricsSnapshotter::WriteSnapshot() {
  const MetricsRegistry::Snapshot snapshot = registry_->Scrape();
  const uint64_t uptime_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());

  JsonValue counters = JsonValue::Object();
  JsonValue deltas = JsonValue::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, value);
    uint64_t previous = 0;
    for (const auto& [n, v] : previous_counters_) {
      if (n == name) {
        previous = v;
        break;
      }
    }
    // Counters are monotone; guard anyway so a registry Reset() mid-run
    // yields a zero delta instead of wrapping.
    deltas.Set(name, value >= previous ? value - previous : 0);
  }
  previous_counters_ = snapshot.counters;

  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, value);
  }

  JsonValue line = JsonValue::Object();
  line.Set("schema_version", 1);
  line.Set("seq", seq_++);
  line.Set("uptime_ms", uptime_ms);
  line.Set("counters", std::move(counters));
  line.Set("deltas", std::move(deltas));
  line.Set("gauges", std::move(gauges));
  // Accounted-vs-RSS per tick: the time series form of /memz, so a leak
  // (RSS climbing away from accounted bytes) shows up in the JSONL.
  line.Set("memory", MemorySeriesJson());

  const std::string text = line.Dump(0) + "\n";
  std::fwrite(text.data(), 1, text.size(), file_);
  std::fflush(file_);
  lines_written_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace inf2vec
