#ifndef INF2VEC_OBS_REQUEST_OBS_H_
#define INF2VEC_OBS_REQUEST_OBS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/access_log.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace inf2vec {
namespace obs {

class StatsServer;  // obs/http_server.h; kept forward to avoid a cycle.

/// Request ids are short hex tokens, unique within a process run. An
/// inbound X-Request-Id always wins over a generated one so ids correlate
/// across services.
std::string GenerateRequestId();

/// Live per-endpoint serving statistics — the data behind /rpcz. One
/// Begin/End pair per request; Begin resolves the endpoint record once so
/// the request path pays a single map lookup. Alongside the local
/// aggregates, every endpoint publishes labeled Prometheus series into
/// the metrics registry:
///
///   inf2vec_http_requests_total{endpoint="/topk"}
///   inf2vec_http_errors_total{endpoint="/topk"}
///   inf2vec_http_latency_us{endpoint="/topk"}   (histogram)
///
/// Thread-safe: the map is guarded by a mutex (touched once per request
/// at Begin); counters/histograms synchronize internally; in-flight is a
/// plain atomic.
class RpczRegistry {
 public:
  explicit RpczRegistry(
      MetricsRegistry* registry = &MetricsRegistry::Default());

  RpczRegistry(const RpczRegistry&) = delete;
  RpczRegistry& operator=(const RpczRegistry&) = delete;

  struct Endpoint {
    std::string name;
    std::atomic<int64_t> in_flight{0};
    Counter* requests = nullptr;
    Counter* errors = nullptr;
    HistogramMetric* latency_us = nullptr;
  };

  /// Marks a request in flight on `endpoint` (registered on first use)
  /// and returns its record; pass the pointer to End.
  Endpoint* Begin(const std::string& endpoint);

  /// Completes the request: status >= 400 counts as an error.
  void End(Endpoint* endpoint, int status, uint64_t latency_us);

  /// The /rpcz payload: uptime plus, per endpoint, request count, error
  /// count, in-flight, lifetime rate, and p50/p95/p99 latency.
  JsonValue ToJson() const;

 private:
  MetricsRegistry* const registry_;
  const std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  /// unique_ptr values: Endpoint addresses stay stable across rehash.
  std::map<std::string, std::unique_ptr<Endpoint>> endpoints_;
};

/// One fully-attributed request trace: the wide event the access log
/// writes and /tracez serves. `spans` holds every span completed on the
/// request thread while the request ran (timestamps rebased to the
/// request start), `attrs` the root span's attributes.
struct RequestTraceRecord {
  std::string request_id;
  std::string method;
  std::string endpoint;
  int status = 0;
  uint64_t start_unix_us = 0;  // Wall clock, for log correlation.
  uint64_t total_us = 0;
  uint64_t response_bytes = 0;
  std::vector<TraceEvent> spans;
  std::vector<std::pair<std::string, std::string>> attrs;

  /// Child spans summed by name: {"parse": 12, "kernel_scan": 840, ...}.
  JsonValue PhasesJson() const;
  /// Full trace (id, endpoint, status, timings, phases, attrs, spans).
  JsonValue ToJson() const;
  /// The access-log wide event: one compact line's worth — everything in
  /// ToJson minus the raw span list (phases carry the attribution).
  JsonValue ToAccessLogJson() const;
};

/// Retains finished request traces for /tracez: a ring of the N most
/// recent requests (any speed) plus the N slowest requests at or above
/// `slow_threshold_us`. The slow buffer evicts its FASTEST entry when
/// full, so tail-latency requests are never pushed out by a burst of fast
/// traffic — the failure mode a plain ring has exactly when /tracez
/// matters. Threshold 0 admits every request to the slow ranking.
class TracezBuffer {
 public:
  explicit TracezBuffer(size_t recent_capacity = 32,
                        size_t slow_capacity = 32,
                        uint64_t slow_threshold_us = 0);
  ~TracezBuffer();

  TracezBuffer(const TracezBuffer&) = delete;
  TracezBuffer& operator=(const TracezBuffer&) = delete;

  void Record(RequestTraceRecord record);

  /// Approximate live bytes across both rings, maintained incrementally
  /// (one delta per Record — never a scan on the request path). Reported
  /// into the "obs.tracez_ring" memory gauge; instances push deltas, so
  /// several buffers account additively and a destroyed buffer gives its
  /// bytes back.
  uint64_t ApproxBytes() const;

  /// Most recent first.
  std::vector<RequestTraceRecord> Recent() const;
  /// Slowest first.
  std::vector<RequestTraceRecord> Slowest() const;

  /// Recent-ring records overwritten so far.
  uint64_t evicted() const;
  uint64_t slow_threshold_us() const { return slow_threshold_us_; }

  /// The /tracez payload.
  JsonValue ToJson() const;

 private:
  const size_t recent_capacity_;
  const size_t slow_capacity_;
  const uint64_t slow_threshold_us_;
  mutable std::mutex mu_;
  std::vector<RequestTraceRecord> recent_;  // Ring. Guarded by mu_.
  size_t next_recent_ = 0;                  // Guarded by mu_.
  bool wrapped_ = false;                    // Guarded by mu_.
  uint64_t evicted_ = 0;                    // Guarded by mu_.
  std::vector<RequestTraceRecord> slow_;    // Unordered. Guarded by mu_.
  uint64_t bytes_ = 0;                      // Guarded by mu_.
  MemoryGauge* mem_gauge_;                  // Registry-owned.
};

/// The request-observability bundle a server (or bench loop) threads
/// through its dispatch path. Any member may be null; everything-null
/// means requests run exactly as before (zero overhead). The pointed-to
/// objects must outlive every request.
struct RequestObservability {
  RpczRegistry* rpcz = nullptr;
  TracezBuffer* tracez = nullptr;
  AccessLog* access_log = nullptr;

  bool enabled() const {
    return rpcz != nullptr || tracez != nullptr || access_log != nullptr;
  }
};

/// RAII scope around one request: opens the root TraceSpan, installs a
/// thread-local sink so every span below the handler lands in this
/// request's trace, and on destruction records the assembled
/// RequestTraceRecord into rpcz / tracez / the access log.
///
/// Usage (what StatsServer does per request):
///
///   RequestScope scope(obs, "GET", "/topk", inbound_id);
///   ... run the handler; spans + TraceSpan::Current()->SetAttr land here
///   scope.set_status(response.code);
///   scope.set_response_bytes(response.body.size());
///   // destructor finalizes
///
/// One scope per thread at a time (scopes install a thread-local sink);
/// nesting requests is not a thing this layer models.
class RequestScope : public TraceSink {
 public:
  RequestScope(const RequestObservability& obs, std::string method,
               std::string endpoint, const std::string& inbound_request_id);
  ~RequestScope() override;

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  const std::string& request_id() const { return request_id_; }
  /// The request's root span (active for the scope's lifetime); attach
  /// request-level attributes here. Never null.
  TraceSpan* root() { return root_.get(); }

  void set_status(int status) { status_ = status; }
  void set_response_bytes(uint64_t bytes) { response_bytes_ = bytes; }

  void OnSpanEnd(const TraceEvent& event) override;

 private:
  RequestObservability obs_;
  std::string request_id_;
  std::string method_;
  std::string endpoint_;
  int status_ = 200;
  uint64_t response_bytes_ = 0;
  uint64_t start_unix_us_ = 0;
  uint64_t start_us_ = 0;  // Collector clock, rebases child spans.
  std::chrono::steady_clock::time_point start_steady_;
  RpczRegistry::Endpoint* rpcz_endpoint_ = nullptr;
  std::vector<TraceEvent> spans_;
  ScopedTraceSink sink_guard_;
  std::unique_ptr<TraceSpan> root_;
};

/// Registers GET /rpcz and GET /tracez on `server`. Null members are
/// served as informative 404-style JSON rather than crashing, so partial
/// deployments (rpcz without tracez) work.
void RegisterRequestObsEndpoints(StatsServer* server, RpczRegistry* rpcz,
                                 TracezBuffer* tracez);

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_REQUEST_OBS_H_
