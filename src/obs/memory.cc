#include "obs/memory.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/heap_profiler.h"

namespace inf2vec {
namespace obs {
namespace {

/// Budget is global, relaxed-atomic state: the serving shed check reads it
/// on every /score//topk request and must never take a lock.
std::atomic<uint64_t> g_budget_bytes{0};
std::atomic<uint64_t> g_headroom_bytes{0};

/// Parses "VmRSS:   123456 kB" style lines out of a /proc status-format
/// file into the matching *_bytes fields. Returns false when the file
/// cannot be read at all.
bool ParseProcStatusFile(
    const char* path,
    const std::vector<std::pair<const char*, uint64_t*>>& fields) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    for (const auto& [key, out] : fields) {
      const size_t key_len = std::strlen(key);
      if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') {
        continue;
      }
      unsigned long long kb = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &kb) == 1) {
        *out = static_cast<uint64_t>(kb) * 1024ULL;
      }
      break;
    }
  }
  std::fclose(f);
  return true;
}

JsonValue AccountedJson(const MemoryRegistry::Snapshot& snapshot) {
  JsonValue accounted = JsonValue::Object();
  accounted.Set("total_bytes", snapshot.total_bytes);
  JsonValue gauges = JsonValue::Object();
  for (const MemoryRegistry::Entry& entry : snapshot.entries) {
    JsonValue row = JsonValue::Object();
    row.Set("bytes", entry.bytes);
    row.Set("high_water_bytes", entry.high_water_bytes);
    if (entry.provider) row.Set("provider", true);
    gauges.Set(entry.name, std::move(row));
  }
  accounted.Set("gauges", std::move(gauges));
  return accounted;
}

JsonValue ProcessJson(const MemorySample& sample) {
  JsonValue process = JsonValue::Object();
  process.Set("sampled", sample.sampled);
  process.Set("rss_bytes", sample.rss_bytes);
  process.Set("peak_rss_bytes", sample.peak_rss_bytes);
  process.Set("vm_size_bytes", sample.vm_size_bytes);
  process.Set("anon_bytes", sample.anon_bytes);
  process.Set("file_bytes", sample.file_bytes);
  process.Set("shmem_bytes", sample.shmem_bytes);
  return process;
}

JsonValue BudgetJson(const MemoryBudget& budget) {
  JsonValue out = JsonValue::Object();
  out.Set("budget_bytes", budget.budget_bytes);
  out.Set("headroom_bytes", budget.headroom_bytes);
  // The same figure the shedding check reads (push gauges only) — NOT the
  // scrape total, which also folds in scrape-time providers the O(1)
  // budget check cannot see. Keeping them aligned means over_budget here
  // always agrees with what /score and /topk are doing.
  out.Set("accounted_bytes", MemoryRegistry::Default().AccountedBytes());
  out.Set("over_budget", OverMemoryBudget());
  return out;
}

}  // namespace

MemoryGauge::MemoryGauge(std::string name, std::atomic<int64_t>* total,
                         Gauge* metric)
    : name_(std::move(name)), total_(total), metric_(metric) {}

void MemoryGauge::MaybeRaiseHighWater(int64_t observed) {
  int64_t seen = high_water_.load(std::memory_order_relaxed);
  while (observed > seen &&
         !high_water_.compare_exchange_weak(seen, observed,
                                            std::memory_order_relaxed)) {
  }
}

void MemoryGauge::Add(int64_t delta) {
  const int64_t now = bytes_.fetch_add(delta, std::memory_order_relaxed) +
                      delta;
  total_->fetch_add(delta, std::memory_order_relaxed);
  MaybeRaiseHighWater(now);
  metric_->Set(static_cast<double>(now > 0 ? now : 0));
}

void MemoryGauge::Set(uint64_t bytes) {
  const int64_t target = static_cast<int64_t>(bytes);
  const int64_t previous = bytes_.exchange(target, std::memory_order_relaxed);
  total_->fetch_add(target - previous, std::memory_order_relaxed);
  MaybeRaiseHighWater(target);
  metric_->Set(static_cast<double>(target));
}

MemoryRegistry& MemoryRegistry::Default() {
  static MemoryRegistry* registry = new MemoryRegistry();
  return *registry;
}

MemoryGauge* MemoryRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    Gauge* metric =
        MetricsRegistry::Default().GetGauge("mem." + name + ".bytes");
    it = gauges_
             .emplace(name, std::unique_ptr<MemoryGauge>(
                                new MemoryGauge(name, &total_, metric)))
             .first;
  }
  return it->second.get();
}

void MemoryRegistry::RegisterProvider(const std::string& name,
                                      std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_[name] = std::move(fn);
}

void MemoryRegistry::UnregisterProvider(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_.erase(name);
  provider_high_water_.erase(name);
}

MemoryRegistry::Snapshot MemoryRegistry::Scrape() const {
  Snapshot snapshot;
  // Copy the provider list out of the lock before calling: a provider may
  // take its owner's mutex (trace ring), and holding ours across that
  // call would order locks provider-owner-after-registry for no benefit.
  std::vector<std::pair<std::string, std::function<uint64_t()>>> providers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, gauge] : gauges_) {
      Entry entry;
      entry.name = name;
      entry.bytes = gauge->bytes();
      entry.high_water_bytes = gauge->high_water_bytes();
      snapshot.entries.push_back(std::move(entry));
      snapshot.total_bytes += snapshot.entries.back().bytes;
    }
    providers.assign(providers_.begin(), providers_.end());
  }
  for (const auto& [name, fn] : providers) {
    Entry entry;
    entry.name = name;
    entry.bytes = fn();
    entry.provider = true;
    snapshot.total_bytes += entry.bytes;
    {
      std::lock_guard<std::mutex> lock(mu_);
      uint64_t& high = provider_high_water_[name];
      high = std::max(high, entry.bytes);
      entry.high_water_bytes = high;
    }
    // Providers only refresh their Prometheus gauge at scrape time; the
    // write-through path covers push gauges.
    MetricsRegistry::Default()
        .GetGauge("mem." + name + ".bytes")
        ->Set(static_cast<double>(entry.bytes));
    snapshot.entries.push_back(std::move(entry));
  }
  std::sort(snapshot.entries.begin(), snapshot.entries.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return snapshot;
}

void MemoryRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, gauge] : gauges_) {
    gauge->bytes_.store(0, std::memory_order_relaxed);
    gauge->high_water_.store(0, std::memory_order_relaxed);
  }
  providers_.clear();
  provider_high_water_.clear();
  total_.store(0, std::memory_order_relaxed);
}

ScopedBytes::ScopedBytes(MemoryGauge* gauge, uint64_t bytes)
    : gauge_(gauge), bytes_(bytes) {
  if (gauge_ != nullptr && bytes_ != 0) {
    gauge_->Add(static_cast<int64_t>(bytes_));
  }
}

ScopedBytes::ScopedBytes(ScopedBytes&& other) noexcept
    : gauge_(other.gauge_), bytes_(other.bytes_) {
  other.gauge_ = nullptr;
  other.bytes_ = 0;
}

ScopedBytes& ScopedBytes::operator=(ScopedBytes&& other) noexcept {
  if (this != &other) {
    Release();
    gauge_ = other.gauge_;
    bytes_ = other.bytes_;
    other.gauge_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

ScopedBytes::~ScopedBytes() { Release(); }

void ScopedBytes::Resize(uint64_t bytes) {
  if (gauge_ == nullptr) return;
  gauge_->Add(static_cast<int64_t>(bytes) - static_cast<int64_t>(bytes_));
  bytes_ = bytes;
}

void ScopedBytes::Release() {
  if (gauge_ != nullptr && bytes_ != 0) {
    gauge_->Add(-static_cast<int64_t>(bytes_));
  }
  gauge_ = nullptr;
  bytes_ = 0;
}

MemorySample SampleProcessMemory() {
  MemorySample sample;
  sample.sampled = ParseProcStatusFile(
      "/proc/self/status", {{"VmRSS", &sample.rss_bytes},
                            {"VmHWM", &sample.peak_rss_bytes},
                            {"VmSize", &sample.vm_size_bytes},
                            {"RssAnon", &sample.anon_bytes},
                            {"RssFile", &sample.file_bytes},
                            {"RssShmem", &sample.shmem_bytes}});
  // smaps_rollup (Linux >= 4.14) refines the breakdown when present: its
  // Anonymous/Rss figures include pages /proc/self/status misses for some
  // mapping types. Best-effort — absence keeps the status numbers.
  uint64_t rollup_rss = 0;
  uint64_t rollup_anon = 0;
  if (ParseProcStatusFile("/proc/self/smaps_rollup",
                          {{"Rss", &rollup_rss},
                           {"Anonymous", &rollup_anon}})) {
    if (rollup_rss != 0) sample.rss_bytes = rollup_rss;
    if (rollup_anon != 0) sample.anon_bytes = rollup_anon;
  }
  // The kernel batches per-thread RSS deltas (SPLIT_RSS_COUNTING syncs
  // every 64 page faults) and only folds them into VmHWM at sync points,
  // so VmRSS can transiently read a few pages above VmHWM. Clamp so the
  // peak >= current invariant holds for every consumer.
  sample.peak_rss_bytes = std::max(sample.peak_rss_bytes, sample.rss_bytes);
  return sample;
}

void SetMemoryBudget(const MemoryBudget& budget) {
  g_budget_bytes.store(budget.budget_bytes, std::memory_order_relaxed);
  g_headroom_bytes.store(budget.headroom_bytes, std::memory_order_relaxed);
}

MemoryBudget GetMemoryBudget() {
  MemoryBudget budget;
  budget.budget_bytes = g_budget_bytes.load(std::memory_order_relaxed);
  budget.headroom_bytes = g_headroom_bytes.load(std::memory_order_relaxed);
  return budget;
}

bool OverMemoryBudget(uint64_t extra_bytes) {
  const uint64_t budget = g_budget_bytes.load(std::memory_order_relaxed);
  if (budget == 0) return false;
  const uint64_t headroom = g_headroom_bytes.load(std::memory_order_relaxed);
  const uint64_t accounted = MemoryRegistry::Default().AccountedBytes();
  return accounted + headroom + extra_bytes > budget;
}

JsonValue MemzJson() {
  const MemoryRegistry::Snapshot snapshot = MemoryRegistry::Default().Scrape();
  const MemorySample sample = SampleProcessMemory();

  JsonValue out = JsonValue::Object();
  out.Set("schema_version", 1);
  out.Set("accounted", AccountedJson(snapshot));
  out.Set("process", ProcessJson(sample));

  JsonValue coverage = JsonValue::Object();
  coverage.Set("accounted_over_rss",
               sample.rss_bytes == 0
                   ? 0.0
                   : static_cast<double>(snapshot.total_bytes) /
                         static_cast<double>(sample.rss_bytes));
  out.Set("coverage", std::move(coverage));

  const MemoryBudget budget = GetMemoryBudget();
  if (budget.budget_bytes != 0) {
    out.Set("budget", BudgetJson(budget));
  }
  out.Set("heap_profiler", HeapProfiler::Default().DescribeJson());
  return out;
}

JsonValue MemoryReportJson() {
  const MemoryRegistry::Snapshot snapshot = MemoryRegistry::Default().Scrape();
  const MemorySample sample = SampleProcessMemory();
  JsonValue out = JsonValue::Object();
  out.Set("accounted", AccountedJson(snapshot));
  out.Set("process", ProcessJson(sample));
  const MemoryBudget budget = GetMemoryBudget();
  if (budget.budget_bytes != 0) {
    out.Set("budget", BudgetJson(budget));
  }
  return out;
}

JsonValue MemorySeriesJson() {
  const MemoryRegistry::Snapshot snapshot = MemoryRegistry::Default().Scrape();
  const MemorySample sample = SampleProcessMemory();
  JsonValue out = JsonValue::Object();
  out.Set("accounted_bytes", snapshot.total_bytes);
  out.Set("rss_bytes", sample.rss_bytes);
  JsonValue gauges = JsonValue::Object();
  for (const MemoryRegistry::Entry& entry : snapshot.entries) {
    gauges.Set(entry.name, entry.bytes);
  }
  out.Set("gauges", std::move(gauges));
  return out;
}

JsonValue MemorySummaryJson() {
  const MemoryRegistry::Snapshot snapshot = MemoryRegistry::Default().Scrape();
  const MemorySample sample = SampleProcessMemory();
  JsonValue out = JsonValue::Object();
  out.Set("accounted_bytes", snapshot.total_bytes);
  out.Set("rss_bytes", sample.rss_bytes);
  out.Set("peak_rss_bytes", sample.peak_rss_bytes);
  JsonValue gauges = JsonValue::Object();
  for (const MemoryRegistry::Entry& entry : snapshot.entries) {
    gauges.Set(entry.name, entry.bytes);
  }
  out.Set("gauges", std::move(gauges));
  return out;
}

}  // namespace obs
}  // namespace inf2vec
