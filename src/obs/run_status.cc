#include "obs/run_status.h"

namespace inf2vec {
namespace obs {

RunStatus& RunStatus::Default() {
  static RunStatus* status = new RunStatus();
  return *status;
}

void RunStatus::StartCommand(const std::string& command) {
  std::lock_guard<std::mutex> lock(mu_);
  command_ = command;
  phase_ = "starting";
  threads_ = 1;
  epochs_done_ = 0;
  total_epochs_ = 0;
  objective_ = 0.0;
  pairs_per_second_ = 0.0;
  last_epoch_seconds_ = 0.0;
  have_epoch_ = false;
  start_ = std::chrono::steady_clock::now();
}

void RunStatus::SetPhase(const std::string& phase) {
  std::lock_guard<std::mutex> lock(mu_);
  phase_ = phase;
}

void RunStatus::SetThreads(uint32_t threads) {
  std::lock_guard<std::mutex> lock(mu_);
  threads_ = threads;
}

void RunStatus::UpdateEpoch(uint32_t epoch, uint32_t total_epochs,
                            double objective, double pairs_per_second,
                            double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  epochs_done_ = epoch + 1;  // `epoch` is 0-based; report finished count.
  total_epochs_ = total_epochs;
  objective_ = objective;
  pairs_per_second_ = pairs_per_second;
  last_epoch_seconds_ = seconds;
  have_epoch_ = true;
}

JsonValue RunStatus::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue out = JsonValue::Object();
  out.Set("command", command_);
  out.Set("phase", phase_);
  out.Set("epoch", epochs_done_);
  out.Set("total_epochs", total_epochs_);
  out.Set("objective", objective_);
  out.Set("pairs_per_second", pairs_per_second_);
  const double eta =
      have_epoch_ && total_epochs_ > epochs_done_
          ? last_epoch_seconds_ *
                static_cast<double>(total_epochs_ - epochs_done_)
          : (have_epoch_ ? 0.0 : -1.0);
  out.Set("eta_seconds", eta);
  out.Set("threads", threads_);
  out.Set("uptime_seconds",
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count());
  return out;
}

}  // namespace obs
}  // namespace inf2vec
