#ifndef INF2VEC_OBS_RUN_STATUS_H_
#define INF2VEC_OBS_RUN_STATUS_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "obs/json.h"

namespace inf2vec {
namespace obs {

/// Live "what is this process doing right now" state behind the stats
/// server's /statusz endpoint. The training pipeline updates it at phase
/// and epoch granularity (never inside per-pair loops): Inf2vecModel sets
/// the phase around corpus build and SGD and reports every finished epoch,
/// the baselines and eval tasks set their phases, and the CLI stamps the
/// command at dispatch. All updates go through one mutex — they are orders
/// of magnitude rarer than the work they describe, so the lock is
/// uncontended in practice and the reader (the HTTP thread) always sees a
/// consistent row.
class RunStatus {
 public:
  static RunStatus& Default();

  RunStatus() = default;
  RunStatus(const RunStatus&) = delete;
  RunStatus& operator=(const RunStatus&) = delete;

  /// Resets every field and restarts the uptime clock; called once at CLI
  /// dispatch (and by tests).
  void StartCommand(const std::string& command);

  /// Current coarse phase ("corpus", "sgd", "eval:activation", ...).
  void SetPhase(const std::string& phase);

  /// Worker threads the current phase runs with.
  void SetThreads(uint32_t threads);

  /// Progress of the finished SGD epoch. `seconds` is that epoch's wall
  /// time and feeds the remaining-epochs ETA.
  void UpdateEpoch(uint32_t epoch, uint32_t total_epochs, double objective,
                   double pairs_per_second, double seconds);

  /// The /statusz document:
  ///   {command, phase, epoch, total_epochs, objective, pairs_per_second,
  ///    eta_seconds, threads, uptime_seconds}
  /// `epoch` is the 1-based count of finished epochs (0 = none yet);
  /// `eta_seconds` extrapolates the last epoch's wall time over the
  /// remaining epochs, -1 before the first epoch finishes.
  JsonValue ToJson() const;

 private:
  mutable std::mutex mu_;
  std::string command_;
  std::string phase_ = "idle";
  uint32_t threads_ = 1;
  uint32_t epochs_done_ = 0;
  uint32_t total_epochs_ = 0;
  double objective_ = 0.0;
  double pairs_per_second_ = 0.0;
  double last_epoch_seconds_ = 0.0;
  bool have_epoch_ = false;
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_RUN_STATUS_H_
