#include "obs/request_obs.h"

#include <algorithm>
#include <chrono>
#include <random>

#include "obs/http_server.h"
#include "util/string_util.h"

namespace inf2vec {
namespace obs {
namespace {

/// The root span every RequestScope opens; phase attribution treats it as
/// the envelope, not a phase.
constexpr char kRootSpanName[] = "request";

uint64_t WallClockMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

JsonValue AttrsJson(
    const std::vector<std::pair<std::string, std::string>>& attrs) {
  JsonValue out = JsonValue::Object();
  for (const auto& [key, value] : attrs) out.Set(key, value);
  return out;
}

}  // namespace

std::string GenerateRequestId() {
  // One random prefix per process run + a sequence number: ids are unique
  // within the run and two runs against the same log file stay
  // distinguishable.
  static const uint32_t boot = [] {
    std::random_device rd;
    return static_cast<uint32_t>(rd());
  }();
  static std::atomic<uint32_t> seq{1};
  return StrFormat("%08x-%08x", boot,
                   seq.fetch_add(1, std::memory_order_relaxed));
}

RpczRegistry::RpczRegistry(MetricsRegistry* registry)
    : registry_(registry), start_(std::chrono::steady_clock::now()) {}

RpczRegistry::Endpoint* RpczRegistry::Begin(const std::string& endpoint) {
  Endpoint* record = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Endpoint>& slot = endpoints_[endpoint];
    if (slot == nullptr) {
      slot = std::make_unique<Endpoint>();
      slot->name = endpoint;
      // Labeled series: obs/prometheus renders `base{label}` names as a
      // proper Prometheus label block.
      const std::string label = "{endpoint=\"" + endpoint + "\"}";
      slot->requests = registry_->GetCounter("http.requests" + label);
      slot->errors = registry_->GetCounter("http.errors" + label);
      slot->latency_us = registry_->GetHistogram("http.latency_us" + label,
                                                 DurationBoundariesUs());
    }
    record = slot.get();
  }
  record->in_flight.fetch_add(1, std::memory_order_relaxed);
  return record;
}

void RpczRegistry::End(Endpoint* endpoint, int status, uint64_t latency_us) {
  if (endpoint == nullptr) return;
  endpoint->in_flight.fetch_sub(1, std::memory_order_relaxed);
  endpoint->requests->Increment();
  if (status >= 400) endpoint->errors->Increment();
  endpoint->latency_us->Record(latency_us);
}

JsonValue RpczRegistry::ToJson() const {
  const double uptime_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  JsonValue endpoints = JsonValue::Object();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, endpoint] : endpoints_) {
      const uint64_t requests = endpoint->requests->Value();
      const Histogram latency = endpoint->latency_us->Snapshot();
      JsonValue row = JsonValue::Object();
      row.Set("requests", requests);
      row.Set("errors", endpoint->errors->Value());
      row.Set("in_flight",
              endpoint->in_flight.load(std::memory_order_relaxed));
      row.Set("rate_per_sec",
              uptime_sec > 0.0 ? static_cast<double>(requests) / uptime_sec
                               : 0.0);
      row.Set("p50_us", latency.Quantile(0.50));
      row.Set("p95_us", latency.Quantile(0.95));
      row.Set("p99_us", latency.Quantile(0.99));
      endpoints.Set(name, std::move(row));
    }
  }
  JsonValue out = JsonValue::Object();
  out.Set("uptime_sec", uptime_sec);
  out.Set("endpoints", std::move(endpoints));
  return out;
}

JsonValue RequestTraceRecord::PhasesJson() const {
  // Sum durations by span name. Only the root has no parent (every span
  // below the handler nests under it), so parent_id == 0 filters the
  // envelope out of the phase breakdown.
  JsonValue out = JsonValue::Object();
  for (const TraceEvent& span : spans) {
    if (span.parent_id == 0) continue;
    const JsonValue* existing = out.Find(span.name);
    const uint64_t prior =
        existing != nullptr ? static_cast<uint64_t>(existing->AsInt()) : 0;
    out.Set(span.name, prior + span.duration_us);
  }
  return out;
}

JsonValue RequestTraceRecord::ToAccessLogJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("request_id", request_id);
  out.Set("method", method);
  out.Set("endpoint", endpoint);
  out.Set("status", status);
  out.Set("start_unix_us", start_unix_us);
  out.Set("total_us", total_us);
  out.Set("response_bytes", response_bytes);
  out.Set("phases", PhasesJson());
  out.Set("attrs", AttrsJson(attrs));
  return out;
}

JsonValue RequestTraceRecord::ToJson() const {
  JsonValue out = ToAccessLogJson();
  JsonValue span_rows = JsonValue::Array();
  for (const TraceEvent& span : spans) {
    JsonValue row = JsonValue::Object();
    row.Set("name", span.name);
    row.Set("start_us", span.start_us);
    row.Set("duration_us", span.duration_us);
    row.Set("id", span.id);
    row.Set("parent_id", span.parent_id);
    if (!span.args.empty()) row.Set("args", AttrsJson(span.args));
    span_rows.Append(std::move(row));
  }
  out.Set("spans", std::move(span_rows));
  return out;
}

namespace {

/// Approximate heap footprint of one retained request trace: the struct,
/// its strings, and every captured span with its attributes.
uint64_t RecordApproxBytes(const RequestTraceRecord& record) {
  uint64_t bytes = sizeof(RequestTraceRecord);
  bytes += record.request_id.capacity() + record.method.capacity() +
           record.endpoint.capacity();
  bytes += record.spans.capacity() * sizeof(TraceEvent);
  for (const TraceEvent& span : record.spans) {
    bytes += span.name.capacity() + span.category.capacity();
    bytes += span.args.capacity() * sizeof(std::pair<std::string, std::string>);
    for (const auto& [key, value] : span.args) {
      bytes += key.capacity() + value.capacity();
    }
  }
  bytes += record.attrs.capacity() * sizeof(std::pair<std::string, std::string>);
  for (const auto& [key, value] : record.attrs) {
    bytes += key.capacity() + value.capacity();
  }
  return bytes;
}

}  // namespace

TracezBuffer::TracezBuffer(size_t recent_capacity, size_t slow_capacity,
                           uint64_t slow_threshold_us)
    : recent_capacity_(std::max<size_t>(1, recent_capacity)),
      slow_capacity_(std::max<size_t>(1, slow_capacity)),
      slow_threshold_us_(slow_threshold_us),
      mem_gauge_(MemoryRegistry::Default().GetGauge("obs.tracez_ring")) {
  recent_.reserve(recent_capacity_);
  slow_.reserve(slow_capacity_);
}

TracezBuffer::~TracezBuffer() {
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes_ != 0) mem_gauge_->Add(-static_cast<int64_t>(bytes_));
}

void TracezBuffer::Record(RequestTraceRecord record) {
  const int64_t incoming = static_cast<int64_t>(RecordApproxBytes(record));
  int64_t delta = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (record.total_us >= slow_threshold_us_) {
      if (slow_.size() < slow_capacity_) {
        slow_.push_back(record);
        delta += incoming;
      } else {
        // Full: replace the FASTEST retained trace, and only with a slower
        // one — the slowest-N set is monotone, fast bursts cannot flush it.
        auto fastest = std::min_element(
            slow_.begin(), slow_.end(),
            [](const RequestTraceRecord& a, const RequestTraceRecord& b) {
              return a.total_us < b.total_us;
            });
        if (record.total_us > fastest->total_us) {
          delta += incoming - static_cast<int64_t>(RecordApproxBytes(*fastest));
          *fastest = record;
        }
      }
    }
    if (recent_.size() < recent_capacity_) {
      recent_.push_back(std::move(record));
      delta += incoming;
    } else {
      delta +=
          incoming - static_cast<int64_t>(RecordApproxBytes(recent_[next_recent_]));
      recent_[next_recent_] = std::move(record);
      next_recent_ = (next_recent_ + 1) % recent_capacity_;
      wrapped_ = true;
      ++evicted_;
    }
    bytes_ = static_cast<uint64_t>(static_cast<int64_t>(bytes_) + delta);
  }
  if (delta != 0) mem_gauge_->Add(delta);
}

uint64_t TracezBuffer::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::vector<RequestTraceRecord> TracezBuffer::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestTraceRecord> out;
  out.reserve(recent_.size());
  if (!wrapped_) {
    out.assign(recent_.rbegin(), recent_.rend());
    return out;
  }
  // Ring has wrapped: newest is the slot just before the write cursor.
  for (size_t i = 0; i < recent_.size(); ++i) {
    const size_t index =
        (next_recent_ + recent_.size() - 1 - i) % recent_.size();
    out.push_back(recent_[index]);
  }
  return out;
}

std::vector<RequestTraceRecord> TracezBuffer::Slowest() const {
  std::vector<RequestTraceRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = slow_;
  }
  std::sort(out.begin(), out.end(),
            [](const RequestTraceRecord& a, const RequestTraceRecord& b) {
              return a.total_us > b.total_us;
            });
  return out;
}

uint64_t TracezBuffer::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

JsonValue TracezBuffer::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("slow_threshold_us", slow_threshold_us_);
  out.Set("evicted", evicted());
  JsonValue slow_rows = JsonValue::Array();
  for (const RequestTraceRecord& record : Slowest()) {
    slow_rows.Append(record.ToJson());
  }
  out.Set("slowest", std::move(slow_rows));
  JsonValue recent_rows = JsonValue::Array();
  for (const RequestTraceRecord& record : Recent()) {
    recent_rows.Append(record.ToJson());
  }
  out.Set("recent", std::move(recent_rows));
  return out;
}

RequestScope::RequestScope(const RequestObservability& obs, std::string method,
                           std::string endpoint,
                           const std::string& inbound_request_id)
    : obs_(obs),
      request_id_(inbound_request_id.empty() ? GenerateRequestId()
                                             : inbound_request_id),
      method_(std::move(method)),
      endpoint_(std::move(endpoint)),
      start_unix_us_(WallClockMicros()),
      start_us_(TraceCollector::Default().NowMicros()),
      start_steady_(std::chrono::steady_clock::now()),
      rpcz_endpoint_(obs_.rpcz != nullptr ? obs_.rpcz->Begin(endpoint_)
                                          : nullptr),
      // Span capture costs strings + clock reads per span, so the sink is
      // installed only when something will consume the spans.
      sink_guard_(obs_.tracez != nullptr || obs_.access_log != nullptr
                      ? this
                      : nullptr),
      root_(std::make_unique<TraceSpan>(kRootSpanName, "serve")) {}

void RequestScope::OnSpanEnd(const TraceEvent& event) {
  // Only ever called from the request thread (the sink is thread-local),
  // so no synchronization.
  spans_.push_back(event);
}

RequestScope::~RequestScope() {
  // Close the root span first so its event (with every attribute the
  // handler attached) lands in spans_ through OnSpanEnd.
  const bool collect = obs_.tracez != nullptr || obs_.access_log != nullptr;
  root_->SetAttr("request_id", request_id_);
  root_.reset();

  const uint64_t total_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_steady_)
          .count());
  if (obs_.rpcz != nullptr) {
    obs_.rpcz->End(rpcz_endpoint_, status_, total_us);
  }
  if (!collect) return;

  RequestTraceRecord record;
  record.request_id = std::move(request_id_);
  record.method = std::move(method_);
  record.endpoint = std::move(endpoint_);
  record.status = status_;
  record.start_unix_us = start_unix_us_;
  record.total_us = total_us;
  record.response_bytes = response_bytes_;
  for (TraceEvent& span : spans_) {
    // Rebase onto the request clock so traces read as "us into request".
    span.start_us = span.start_us >= start_us_ ? span.start_us - start_us_ : 0;
    if (span.parent_id == 0) record.attrs = span.args;
  }
  record.spans = std::move(spans_);

  if (obs_.access_log != nullptr) {
    obs_.access_log->Append(record.ToAccessLogJson());
  }
  if (obs_.tracez != nullptr) {
    obs_.tracez->Record(std::move(record));
  }
}

void RegisterRequestObsEndpoints(StatsServer* server, RpczRegistry* rpcz,
                                 TracezBuffer* tracez) {
  server->Route("GET", "/rpcz", [rpcz](const HttpRequest&) {
    if (rpcz == nullptr) {
      return ErrorJson(404, "NOT_FOUND", "rpcz not enabled");
    }
    return HttpResponse::Json(200, rpcz->ToJson().Dump(2) + "\n");
  });
  server->Route("GET", "/tracez", [tracez](const HttpRequest&) {
    if (tracez == nullptr) {
      return ErrorJson(404, "NOT_FOUND", "tracez not enabled");
    }
    return HttpResponse::Json(200, tracez->ToJson().Dump(2) + "\n");
  });
}

}  // namespace obs
}  // namespace inf2vec
