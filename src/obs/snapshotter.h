#ifndef INF2VEC_OBS_SNAPSHOTTER_H_
#define INF2VEC_OBS_SNAPSHOTTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace inf2vec {
namespace obs {

struct SnapshotterOptions {
  std::string path;
  /// Wall-clock spacing between snapshots. Clamped to >= 10ms.
  uint32_t interval_ms = 1000;
};

/// Background thread that appends one compact JSON line per interval to
/// `path`, turning the registry into a post-hoc throughput time series
/// even when nothing scrapes /metrics. Line schema (schema_version 1,
/// validated by tools/check_snapshot.py):
///
///   {"schema_version": 1, "seq": N, "uptime_ms": T,
///    "counters": {name: cumulative, ...},
///    "deltas":   {name: since-previous-line, ...},
///    "gauges":   {name: value, ...}}
///
/// Counters are cumulative AND delta'd so consumers can plot rates without
/// re-diffing; gauges are last-write-wins. Histograms are omitted — their
/// summaries live in the run report and /metrics. Stop() (and the
/// destructor) writes one final line before joining, so even runs shorter
/// than the interval produce a usable series.
class MetricsSnapshotter {
 public:
  explicit MetricsSnapshotter(
      SnapshotterOptions options,
      MetricsRegistry* registry = &MetricsRegistry::Default());
  ~MetricsSnapshotter();

  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  /// Opens the output (truncating) and spawns the snapshot thread.
  Status Start();

  /// Deterministic shutdown: final snapshot, thread joined, file closed.
  /// Idempotent.
  void Stop();

  bool running() const { return running_; }
  /// Lines written so far (including the final Stop() line).
  uint64_t lines_written() const { return lines_written_; }

 private:
  void Loop();
  void WriteSnapshot();

  SnapshotterOptions options_;
  MetricsRegistry* registry_;
  std::FILE* file_ = nullptr;
  bool running_ = false;
  uint64_t seq_ = 0;
  std::atomic<uint64_t> lines_written_{0};
  std::vector<std::pair<std::string, uint64_t>> previous_counters_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  // Guarded by mu_.
  std::thread thread_;
};

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_SNAPSHOTTER_H_
