#ifndef INF2VEC_OBS_HEAP_PROFILER_H_
#define INF2VEC_OBS_HEAP_PROFILER_H_

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "util/status.h"

namespace inf2vec {
namespace obs {

class StatsServer;

/// Sampling heap profiler in the tcmalloc tradition: the global operator
/// new/delete replacements (defined in heap_profiler.cc, covering the
/// aligned overloads AlignedAllocator routes the big embedding tables
/// through) count bytes per thread and capture one backtrace roughly
/// every `sample_period_bytes` of allocation. Each sample carries the
/// bytes it represents (its weight), so folded output is in bytes, not
/// sample counts; allocations larger than the period are always sampled,
/// which makes the multi-hundred-MB table resizes exact.
///
/// Disabled, the hooks cost one relaxed atomic load per new/delete — the
/// same discipline as MetricsEnabled(). Enabled, the fast path adds one
/// thread-local countdown; only the ~1-per-period slow path takes the
/// profile mutex and walks the stack. Live samples are tracked through
/// free, so FoldedLive() answers "who owns the heap right now" while
/// FoldedAlloc() answers "who allocated the most".
class HeapProfiler {
 public:
  struct Options {
    /// Mean bytes of allocation per sample. Smaller = finer attribution,
    /// more overhead. 512 KB samples a 1 GB table load ~2000 times while
    /// leaving request-path allocations essentially untouched.
    uint64_t sample_period_bytes = 512 * 1024;
  };

  /// Process-wide instance (never destroyed; the new/delete hooks may run
  /// during static destructors).
  static HeapProfiler& Default();

  Status Start(const Options& options);
  // Default-period overload as a member body (not a default argument):
  // a default argument of Options{} would need the NSDMI before the class
  // is complete, which gcc rejects.
  Status Start() { return Start(Options()); }
  /// Stops sampling; recorded samples stay inspectable until Reset().
  Status Stop();
  /// Drops every recorded sample (tests).
  void Reset();

  bool running() const;
  uint64_t sample_period_bytes() const;
  /// Bytes represented by live (not yet freed) samples.
  uint64_t sampled_live_bytes() const;
  /// Cumulative bytes represented by every sample since Start().
  uint64_t sampled_alloc_bytes() const;
  /// Live tracked allocations.
  uint64_t live_samples() const;
  /// Samples taken since Start() (including freed ones).
  uint64_t total_samples() const;

  /// Folded stacks weighted by live bytes (flamegraph-ready).
  std::string FoldedLive() const;
  /// Folded stacks weighted by cumulative allocated bytes.
  std::string FoldedAlloc() const;
  /// Writes the live profile (`--heap-profile-out`).
  Status WriteFolded(const std::string& path) const;

  JsonValue DescribeJson() const;

 private:
  HeapProfiler() = default;
};

/// GET /heapz: status JSON when idle; `?period=N` starts sampling with an
/// N-byte period (0 = default), `?stop=1` stops, `?mode=alloc` returns
/// the cumulative-allocation profile instead of the live one. With
/// samples recorded and no control parameter, returns folded stacks.
void RegisterHeapProfilerEndpoint(StatsServer* server);

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_HEAP_PROFILER_H_
