#ifndef INF2VEC_OBS_TRACE_H_
#define INF2VEC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace inf2vec {
namespace obs {

/// One completed span, chrome://tracing "X" (complete) event semantics:
/// half-open interval [start_us, start_us + duration_us) on track `tid`.
/// `id`/`parent_id` link spans into a tree (0 = root / no parent) and
/// `args` carries per-span attributes (seed-set size, cache hit/miss,
/// kernel ISA...) — both are emitted into the chrome trace's "args" so
/// Perfetto shows them in the span details pane.
struct TraceEvent {
  std::string name;
  std::string category;
  uint32_t tid = 0;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint64_t id = 0;
  uint64_t parent_id = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Fixed-capacity ring buffer of completed spans. Recording is guarded by
/// one mutex — spans close at phase/epoch/shard granularity, orders of
/// magnitude below pair-level work, so the lock never sees real
/// contention. When the ring is full the OLDEST event is overwritten: a
/// trace of a long run keeps its tail, which is where the interesting
/// convergence behaviour lives. Overwrites bump the `trace.dropped`
/// counter (exported as inf2vec_trace_dropped_total and in /varz) so a
/// busy period that wraps the ring is visible instead of silently
/// corrupting span accounting. Disabled (the default) collectors record
/// nothing; TraceSpan checks the flag once at construction.
class TraceCollector {
 public:
  static constexpr size_t kDefaultCapacity = 16384;

  explicit TraceCollector(size_t capacity = kDefaultCapacity);

  /// The process-wide collector every TraceSpan uses by default.
  static TraceCollector& Default();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since this collector's epoch (construction or Clear).
  uint64_t NowMicros() const;

  void Record(TraceEvent event);

  /// Buffered events, oldest first. Copy — safe to export while spans are
  /// still being recorded.
  std::vector<TraceEvent> Events() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Events overwritten because the ring was full.
  uint64_t dropped() const;

  /// Approximate live bytes held by the ring (event structs + their
  /// string payloads). Walks the ring under the mutex — scrape-time cost,
  /// reported into /memz through a MemoryRegistry provider.
  size_t ApproxBytes() const;

  /// Empties the ring and restarts the time epoch.
  void Clear();

  /// chrome://tracing / Perfetto-loadable JSON object.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // Guarded by mu_.
  size_t next_ = 0;               // Ring write cursor. Guarded by mu_.
  bool wrapped_ = false;          // Guarded by mu_.
  uint64_t dropped_ = 0;          // Guarded by mu_.
  std::chrono::steady_clock::time_point epoch_;  // Guarded by mu_.
};

/// Receives every span completed on the thread it is installed on (see
/// SetThreadTraceSink). The request-observability layer installs one per
/// HTTP request so spans opened anywhere below the handler — endpoint
/// parsing, seed-cache gather, the kernel scan — assemble into that
/// request's trace without the serving code knowing about HTTP.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnSpanEnd(const TraceEvent& event) = 0;
};

/// Installs `sink` as the calling thread's span sink and returns the
/// previous one (null = none). Callers restore the previous sink when
/// done — ScopedTraceSink does this automatically.
TraceSink* SetThreadTraceSink(TraceSink* sink);
TraceSink* ThreadTraceSink();

/// RAII sink installation for one scope (one request, one bench arm).
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink* sink)
      : previous_(SetThreadTraceSink(sink)) {}
  ~ScopedTraceSink() { SetThreadTraceSink(previous_); }

  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceSink* previous_;
};

/// RAII span: captures the start time at construction, records a
/// TraceEvent at destruction — into the collector (when enabled) and into
/// the calling thread's TraceSink (when installed). When neither is
/// active at construction the span is inert: two relaxed loads, no
/// strings, no clock reads, and SetAttr is a no-op.
///
/// Active spans form a per-thread stack: a span's parent is the span that
/// was Current() when it was constructed, so nesting needs no explicit
/// plumbing. Spans may still nest freely across scopes and threads; the
/// chrome viewer nests by interval containment per track, and the
/// id/parent_id linkage reconstructs the tree exactly.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, std::string category = "inf2vec",
                     TraceCollector* collector = &TraceCollector::Default());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Innermost active span on the calling thread; null when tracing is
  /// off. Lets deep code attach attributes to the enclosing span (e.g. a
  /// request handler stamping the model generation on its root span).
  static TraceSpan* Current();

  /// Attaches a key/value attribute. No-op on an inert span.
  void SetAttr(const std::string& key, std::string value);
  void SetAttr(const std::string& key, const char* value);
  void SetAttr(const std::string& key, uint64_t value);
  void SetAttr(const std::string& key, bool value);

  bool active() const { return active_; }
  uint64_t span_id() const { return id_; }

 private:
  bool active_ = false;
  TraceCollector* collector_ = nullptr;  // Null unless collector-enabled.
  TraceSink* sink_ = nullptr;            // Null unless a sink is installed.
  TraceSpan* parent_ = nullptr;          // Enclosing active span, if any.
  uint64_t id_ = 0;
  std::string name_;
  std::string category_;
  uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_TRACE_H_
