#ifndef INF2VEC_OBS_TRACE_H_
#define INF2VEC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace inf2vec {
namespace obs {

/// One completed span, chrome://tracing "X" (complete) event semantics:
/// half-open interval [start_us, start_us + duration_us) on track `tid`.
struct TraceEvent {
  std::string name;
  std::string category;
  uint32_t tid = 0;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
};

/// Fixed-capacity ring buffer of completed spans. Recording is guarded by
/// one mutex — spans close at phase/epoch/shard granularity, orders of
/// magnitude below pair-level work, so the lock never sees real
/// contention. When the ring is full the OLDEST event is overwritten: a
/// trace of a long run keeps its tail, which is where the interesting
/// convergence behaviour lives. Disabled (the default) collectors record
/// nothing; TraceSpan checks the flag once at construction.
class TraceCollector {
 public:
  static constexpr size_t kDefaultCapacity = 16384;

  explicit TraceCollector(size_t capacity = kDefaultCapacity);

  /// The process-wide collector every TraceSpan uses by default.
  static TraceCollector& Default();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since this collector's epoch (construction or Clear).
  uint64_t NowMicros() const;

  void Record(TraceEvent event);

  /// Buffered events, oldest first. Copy — safe to export while spans are
  /// still being recorded.
  std::vector<TraceEvent> Events() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Events overwritten because the ring was full.
  uint64_t dropped() const;

  /// Empties the ring and restarts the time epoch.
  void Clear();

  /// chrome://tracing / Perfetto-loadable JSON object.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

 private:
  const size_t capacity_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // Guarded by mu_.
  size_t next_ = 0;               // Ring write cursor. Guarded by mu_.
  bool wrapped_ = false;          // Guarded by mu_.
  uint64_t dropped_ = 0;          // Guarded by mu_.
  std::chrono::steady_clock::time_point epoch_;  // Guarded by mu_.
};

/// RAII span: captures the start time at construction, records a
/// TraceEvent into the collector at destruction. When the collector is
/// disabled at construction the span is inert (two relaxed loads total).
/// Spans may nest freely across scopes and threads; the viewer nests by
/// interval containment per track.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, std::string category = "inf2vec",
                     TraceCollector* collector = &TraceCollector::Default());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceCollector* collector_;  // Null when inert.
  std::string name_;
  std::string category_;
  uint64_t start_us_ = 0;
};

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_TRACE_H_
