#include "obs/access_log.h"

namespace inf2vec {
namespace obs {

Status AccessLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    return Status::IOError("cannot open access log for append: " + path);
  }
  path_ = path;
  lines_written_ = 0;
  return Status::OK();
}

bool AccessLog::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

void AccessLog::Append(const JsonValue& event) {
  const std::string line = event.Dump(0);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  // Per-line flush: an access log that loses its tail on crash is useless
  // for exactly the requests one wants to debug.
  std::fflush(file_);
  ++lines_written_;
}

uint64_t AccessLog::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_written_;
}

void AccessLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace obs
}  // namespace inf2vec
