#include "obs/symbolize.h"

#include <cxxabi.h>
#include <dlfcn.h>

#include <algorithm>
#include <cstdlib>

#include "util/string_util.h"

namespace inf2vec {
namespace obs {

std::string SymbolizePc(void* pc) {
  Dl_info info;
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    const size_t paren = name.find('(');
    if (paren != std::string::npos) name.resize(paren);
    std::replace(name.begin(), name.end(), ';', ':');
    return name;
  }
  return StrFormat("0x%zx", reinterpret_cast<size_t>(pc));
}

}  // namespace obs
}  // namespace inf2vec
