#include "obs/prometheus.h"

#include <cctype>
#include <cinttypes>

#include "util/string_util.h"

namespace inf2vec {
namespace obs {
namespace {

/// %.17g is always round-trippable for doubles; gauges are operator-facing
/// so tidy short forms matter less than exactness here.
std::string FormatValue(double value) { return StrFormat("%.17g", value); }

void AppendHistogram(const std::string& name, const Histogram& histogram,
                     std::string* out) {
  *out += "# TYPE " + name + " histogram\n";
  uint64_t cumulative = 0;
  uint64_t weighted_sum = 0;
  for (const auto& [bucket, count] : histogram.Items()) {
    cumulative += count;
    weighted_sum += bucket * count;
    *out += name + "_bucket{le=\"" + std::to_string(bucket) + "\"} " +
            std::to_string(cumulative) + "\n";
  }
  *out += name + "_bucket{le=\"+Inf\"} " +
          std::to_string(histogram.total_count()) + "\n";
  *out += name + "_sum " + std::to_string(weighted_sum) + "\n";
  *out += name + "_count " + std::to_string(histogram.total_count()) + "\n";
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "inf2vec_";
  for (char c : name) {
    const bool valid = std::isalnum(static_cast<unsigned char>(c)) ||
                       c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

std::string RenderPrometheus(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string metric = PrometheusName(name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string metric = PrometheusName(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + FormatValue(value) + "\n";
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    AppendHistogram(PrometheusName(name), histogram, &out);
  }
  return out;
}

}  // namespace obs
}  // namespace inf2vec
