#include "obs/prometheus.h"

#include <cctype>
#include <cinttypes>

#include "util/string_util.h"

namespace inf2vec {
namespace obs {
namespace {

/// %.17g is always round-trippable for doubles; gauges are operator-facing
/// so tidy short forms matter less than exactness here.
std::string FormatValue(double value) { return StrFormat("%.17g", value); }

/// Registry names may carry a label block: `http.requests{endpoint="/topk"}`
/// registers one metric per label combination under one Prometheus family.
/// Split so the base sanitizes normally and the labels pass through
/// verbatim (they are constructed programmatically, never from user data).
struct SplitName {
  std::string base;
  std::string labels;  // Includes the braces; empty when unlabeled.
};

SplitName SplitLabels(const std::string& name) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') return {name, ""};
  return {name.substr(0, brace), name.substr(brace)};
}

/// Merges one more `key="value"` pair into a label block ("" -> "{extra}").
std::string WithLabel(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  return labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

/// Emits "# TYPE family kind" once per family: labeled series of one base
/// are adjacent in the name-sorted snapshot, and Prometheus parsers reject
/// a family typed twice.
void AppendTypeLine(const std::string& family, const char* kind,
                    std::string* last_typed, std::string* out) {
  if (family == *last_typed) return;
  *out += "# TYPE " + family + " " + kind + "\n";
  *last_typed = family;
}

void AppendHistogram(const std::string& family, const std::string& labels,
                     const Histogram& histogram, std::string* out) {
  uint64_t cumulative = 0;
  uint64_t weighted_sum = 0;
  for (const auto& [bucket, count] : histogram.Items()) {
    cumulative += count;
    weighted_sum += bucket * count;
    *out += family + "_bucket" +
            WithLabel(labels, "le=\"" + std::to_string(bucket) + "\"") + " " +
            std::to_string(cumulative) + "\n";
  }
  *out += family + "_bucket" + WithLabel(labels, "le=\"+Inf\"") + " " +
          std::to_string(histogram.total_count()) + "\n";
  *out += family + "_sum" + labels + " " + std::to_string(weighted_sum) + "\n";
  *out += family + "_count" + labels + " " +
          std::to_string(histogram.total_count()) + "\n";
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "inf2vec_";
  for (char c : name) {
    const bool valid = std::isalnum(static_cast<unsigned char>(c)) ||
                       c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

std::string RenderPrometheus(const MetricsRegistry::Snapshot& snapshot) {
  std::string out;
  std::string last_typed;
  for (const auto& [name, value] : snapshot.counters) {
    const SplitName split = SplitLabels(name);
    const std::string family = PrometheusName(split.base) + "_total";
    AppendTypeLine(family, "counter", &last_typed, &out);
    out += family + split.labels + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const SplitName split = SplitLabels(name);
    const std::string family = PrometheusName(split.base);
    AppendTypeLine(family, "gauge", &last_typed, &out);
    out += family + split.labels + " " + FormatValue(value) + "\n";
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const SplitName split = SplitLabels(name);
    const std::string family = PrometheusName(split.base);
    AppendTypeLine(family, "histogram", &last_typed, &out);
    AppendHistogram(family, split.labels, histogram, &out);
  }
  return out;
}

}  // namespace obs
}  // namespace inf2vec
