#include "obs/heap_profiler.h"

#include <execinfo.h>
#include <stdlib.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <new>
#include <unordered_map>
#include <vector>

#include "obs/http_server.h"
#include "obs/symbolize.h"

namespace inf2vec {
namespace obs {
// Internal linkage is deliberately NOT used here: the operator new/delete
// replacements at the bottom of this file live at global scope and need
// qualified access to this machinery.
namespace heap_internal {

constexpr int kMaxFrames = 48;

/// One distinct allocation stack, with both cumulative and live weights.
struct StackRecord {
  int depth = 0;
  void* pcs[kMaxFrames];
  uint64_t alloc_bytes = 0;
  uint64_t live_bytes = 0;
};

struct LiveAlloc {
  uint64_t weight = 0;
  uint64_t stack_hash = 0;
};

/// All control state is constant-initialized atomics: the new/delete
/// replacements run before main() and during static destruction, when
/// nothing dynamically initialized can be trusted.
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_ever_enabled{false};
std::atomic<uint64_t> g_period{512 * 1024};
std::atomic<uint64_t> g_sampled_alloc_bytes{0};
std::atomic<uint64_t> g_sampled_live_bytes{0};
std::atomic<uint64_t> g_total_samples{0};
std::atomic<uint64_t> g_live_count{0};

/// Per-thread bytes allocated since the last sample. Trivially
/// constructible, so touching it from a hook during TLS setup is safe.
thread_local uint64_t t_accum = 0;
/// Reentrancy guard: the profile tables themselves allocate (rehash), and
/// code holding the profile mutex must never re-enter the sampling path.
thread_local bool t_in_hook = false;

struct HookGuard {
  bool prev;
  HookGuard() : prev(t_in_hook) { t_in_hook = true; }
  ~HookGuard() { t_in_hook = prev; }
};

/// Leaked on purpose: hooks can fire during static destruction.
std::mutex& ProfileMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}
using StackMap = std::unordered_map<uint64_t, StackRecord>;
using LiveMap = std::unordered_map<void*, LiveAlloc>;
StackMap* g_stacks = nullptr;  // Guarded by ProfileMutex().
LiveMap* g_live = nullptr;     // Guarded by ProfileMutex().

uint64_t HashStack(void* const* pcs, int depth) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a.
  for (int i = 0; i < depth; ++i) {
    h ^= reinterpret_cast<uint64_t>(pcs[i]);
    h *= 1099511628211ULL;
  }
  return h ^ static_cast<uint64_t>(depth);
}

/// Slow path, ~once per sample period: walk the stack and record under
/// the profile mutex.
void RecordSample(void* ptr, uint64_t weight) {
  HookGuard guard;
  void* pcs[kMaxFrames];
  const int depth = backtrace(pcs, kMaxFrames);
  if (depth <= 0) return;
  const uint64_t hash = HashStack(pcs, depth);
  std::lock_guard<std::mutex> lock(ProfileMutex());
  if (g_stacks == nullptr || g_live == nullptr) return;
  StackRecord& record = (*g_stacks)[hash];
  if (record.depth == 0) {
    record.depth = depth;
    std::memcpy(record.pcs, pcs, sizeof(void*) * static_cast<size_t>(depth));
  }
  record.alloc_bytes += weight;
  record.live_bytes += weight;
  (*g_live)[ptr] = LiveAlloc{weight, hash};
  g_sampled_alloc_bytes.fetch_add(weight, std::memory_order_relaxed);
  g_sampled_live_bytes.fetch_add(weight, std::memory_order_relaxed);
  g_total_samples.fetch_add(1, std::memory_order_relaxed);
  g_live_count.fetch_add(1, std::memory_order_relaxed);
}

inline void MaybeSample(void* ptr, size_t size) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  if (t_in_hook) return;
  t_accum += size;
  const uint64_t period = g_period.load(std::memory_order_relaxed);
  if (t_accum < period) return;
  const uint64_t weight = t_accum;
  t_accum = 0;
  RecordSample(ptr, weight);
}

/// Free side: drop the live entry if this pointer was sampled. One
/// relaxed load when the profiler has never run; one more when no samples
/// are live.
inline void ForgetPointer(void* ptr) {
  if (ptr == nullptr) return;
  if (!g_ever_enabled.load(std::memory_order_relaxed)) return;
  if (g_live_count.load(std::memory_order_relaxed) == 0) return;
  if (t_in_hook) return;
  HookGuard guard;
  std::lock_guard<std::mutex> lock(ProfileMutex());
  if (g_live == nullptr) return;
  const auto it = g_live->find(ptr);
  if (it == g_live->end()) return;
  const LiveAlloc alloc = it->second;
  g_live->erase(it);
  const auto sit = g_stacks->find(alloc.stack_hash);
  if (sit != g_stacks->end()) {
    sit->second.live_bytes -=
        std::min(sit->second.live_bytes, alloc.weight);
  }
  uint64_t live = g_sampled_live_bytes.load(std::memory_order_relaxed);
  g_sampled_live_bytes.store(live >= alloc.weight ? live - alloc.weight : 0,
                             std::memory_order_relaxed);
  g_live_count.fetch_sub(1, std::memory_order_relaxed);
}

void* AllocateBytes(size_t size, size_t alignment) {
  const size_t request = size == 0 ? 1 : size;
  void* ptr = nullptr;
  if (alignment <= alignof(std::max_align_t)) {
    ptr = malloc(request);
  } else {
    const size_t align =
        alignment < sizeof(void*) ? sizeof(void*) : alignment;
    if (posix_memalign(&ptr, align, request) != 0) ptr = nullptr;
  }
  if (ptr != nullptr) MaybeSample(ptr, request);
  return ptr;
}

void* OperatorNewImpl(size_t size, size_t alignment) {
  for (;;) {
    void* ptr = AllocateBytes(size, alignment);
    if (ptr != nullptr) return ptr;
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void OperatorDeleteImpl(void* ptr) {
  ForgetPointer(ptr);
  // glibc free() handles both malloc and posix_memalign pointers.
  free(ptr);
}

bool IsHookMachineryFrame(const std::string& name) {
  return name.find("operator new") != std::string::npos ||
         name.find("heap_internal") != std::string::npos ||
         name.find("HeapProfiler") != std::string::npos ||
         name.find("backtrace") != std::string::npos;
}

/// Renders a copied set of stack records as folded stacks weighted by
/// `weight_of`, biggest first. Symbolization happens outside the profile
/// mutex (it allocates heavily).
std::string FoldStacks(const std::vector<StackRecord>& records,
                       uint64_t (*weight_of)(const StackRecord&)) {
  std::unordered_map<void*, std::string> names;
  auto name_of = [&names](void* pc) -> const std::string& {
    auto it = names.find(pc);
    if (it == names.end()) it = names.emplace(pc, SymbolizePc(pc)).first;
    return it->second;
  };

  std::map<std::string, uint64_t> folded;
  for (const StackRecord& record : records) {
    const uint64_t weight = weight_of(record);
    if (weight == 0 || record.depth <= 0) continue;
    // Frames come innermost-first. Trim the sampling machinery (the hook,
    // backtrace, operator new itself) off the leaf end; the first real
    // frame is the allocation site.
    int start = 0;
    for (int f = 0; f < record.depth; ++f) {
      if (IsHookMachineryFrame(name_of(record.pcs[f]))) start = f + 1;
    }
    if (start >= record.depth) start = 0;  // Never trim the whole stack.
    std::string key;
    for (int f = record.depth - 1; f >= start; --f) {
      if (!key.empty()) key += ';';
      key += name_of(record.pcs[f]);
    }
    folded[key] += weight;
  }

  std::vector<std::pair<std::string, uint64_t>> rows(folded.begin(),
                                                     folded.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::string out;
  for (const auto& [stack, bytes] : rows) {
    out += stack;
    out += ' ';
    out += std::to_string(bytes);
    out += '\n';
  }
  return out;
}

std::vector<StackRecord> CopyRecords() {
  HookGuard guard;
  std::lock_guard<std::mutex> lock(ProfileMutex());
  std::vector<StackRecord> records;
  if (g_stacks != nullptr) {
    records.reserve(g_stacks->size());
    for (const auto& [hash, record] : *g_stacks) records.push_back(record);
  }
  return records;
}

}  // namespace heap_internal

using heap_internal::g_enabled;
using heap_internal::g_ever_enabled;
using heap_internal::g_live;
using heap_internal::g_live_count;
using heap_internal::g_period;
using heap_internal::g_sampled_alloc_bytes;
using heap_internal::g_sampled_live_bytes;
using heap_internal::g_stacks;
using heap_internal::g_total_samples;
using heap_internal::HookGuard;
using heap_internal::ProfileMutex;
using heap_internal::StackRecord;

HeapProfiler& HeapProfiler::Default() {
  static HeapProfiler* profiler = new HeapProfiler();
  return *profiler;
}

Status HeapProfiler::Start(const Options& options) {
  const uint64_t period = options.sample_period_bytes == 0
                              ? Options{}.sample_period_bytes
                              : options.sample_period_bytes;
  HookGuard guard;
  // Warm glibc's unwinder outside the hook path: the first backtrace()
  // lazily loads libgcc and allocates.
  void* warm[4];
  backtrace(warm, 4);
  std::lock_guard<std::mutex> lock(ProfileMutex());
  if (g_enabled.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("heap profiler already running");
  }
  if (g_stacks == nullptr) {
    g_stacks = new heap_internal::StackMap();
    g_live = new heap_internal::LiveMap();
  }
  g_period.store(period, std::memory_order_relaxed);
  g_ever_enabled.store(true, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_release);
  return Status::OK();
}

Status HeapProfiler::Stop() {
  g_enabled.store(false, std::memory_order_release);
  return Status::OK();
}

void HeapProfiler::Reset() {
  HookGuard guard;
  std::lock_guard<std::mutex> lock(ProfileMutex());
  if (g_stacks != nullptr) g_stacks->clear();
  if (g_live != nullptr) g_live->clear();
  g_sampled_alloc_bytes.store(0, std::memory_order_relaxed);
  g_sampled_live_bytes.store(0, std::memory_order_relaxed);
  g_total_samples.store(0, std::memory_order_relaxed);
  g_live_count.store(0, std::memory_order_relaxed);
}

bool HeapProfiler::running() const {
  return g_enabled.load(std::memory_order_relaxed);
}

uint64_t HeapProfiler::sample_period_bytes() const {
  return g_period.load(std::memory_order_relaxed);
}

uint64_t HeapProfiler::sampled_live_bytes() const {
  return g_sampled_live_bytes.load(std::memory_order_relaxed);
}

uint64_t HeapProfiler::sampled_alloc_bytes() const {
  return g_sampled_alloc_bytes.load(std::memory_order_relaxed);
}

uint64_t HeapProfiler::live_samples() const {
  return g_live_count.load(std::memory_order_relaxed);
}

uint64_t HeapProfiler::total_samples() const {
  return g_total_samples.load(std::memory_order_relaxed);
}

std::string HeapProfiler::FoldedLive() const {
  return heap_internal::FoldStacks(
      heap_internal::CopyRecords(),
      [](const StackRecord& r) { return r.live_bytes; });
}

std::string HeapProfiler::FoldedAlloc() const {
  return heap_internal::FoldStacks(
      heap_internal::CopyRecords(),
      [](const StackRecord& r) { return r.alloc_bytes; });
}

Status HeapProfiler::WriteFolded(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open heap profile output file: " + path);
  }
  const std::string folded = FoldedLive();
  const size_t written = std::fwrite(folded.data(), 1, folded.size(), f);
  std::fclose(f);
  if (written != folded.size()) {
    return Status::IOError("short write to heap profile output file: " + path);
  }
  return Status::OK();
}

JsonValue HeapProfiler::DescribeJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("running", running());
  out.Set("sample_period_bytes", sample_period_bytes());
  out.Set("samples", total_samples());
  out.Set("live_samples", live_samples());
  out.Set("sampled_alloc_bytes", sampled_alloc_bytes());
  out.Set("sampled_live_bytes", sampled_live_bytes());
  return out;
}

void RegisterHeapProfilerEndpoint(StatsServer* server) {
  server->Route("GET", "/heapz", [](const HttpRequest& request) {
    HeapProfiler& profiler = HeapProfiler::Default();
    if (request.HasQuery("stop")) {
      (void)profiler.Stop();
      JsonValue status = profiler.DescribeJson();
      status.Set("status", "stopped");
      return HttpResponse::Json(200, status.Dump(2) + "\n");
    }
    if (request.HasQuery("period")) {
      const std::string raw = request.QueryOr("period", "0");
      char* end = nullptr;
      const unsigned long long period = std::strtoull(raw.c_str(), &end, 10);
      if (end == raw.c_str() || *end != '\0') {
        return ErrorJson(400, "INVALID_ARGUMENT", "bad period '" + raw + "'");
      }
      HeapProfiler::Options options;
      if (period != 0) options.sample_period_bytes = period;
      const Status started = profiler.Start(options);
      if (!started.ok()) {
        return ErrorJson(400, "INVALID_ARGUMENT", started.ToString());
      }
      JsonValue status = profiler.DescribeJson();
      status.Set("status", "started");
      return HttpResponse::Json(200, status.Dump(2) + "\n");
    }
    if (profiler.total_samples() == 0) {
      JsonValue status = profiler.DescribeJson();
      status.Set("status", profiler.running() ? "running" : "idle");
      status.Set("hint",
                 "GET /heapz?period=N to start sampling (N bytes per "
                 "sample, 0 = default); ?mode=alloc for cumulative");
      return HttpResponse::Json(200, status.Dump(2) + "\n");
    }
    const bool alloc_mode = request.QueryOr("mode", "live") == "alloc";
    return HttpResponse::Text(
        200, alloc_mode ? profiler.FoldedAlloc() : profiler.FoldedLive());
  });
}

}  // namespace obs
}  // namespace inf2vec

// ---------------------------------------------------------------------------
// Global operator new/delete replacements. These must cover the aligned
// overloads: kernels::AlignedAllocator routes every embedding-table buffer
// through ::operator new(size_t, std::align_val_t), and missing it would
// blind the profiler to the process's dominant allocations.
// ---------------------------------------------------------------------------

using inf2vec::obs::heap_internal::OperatorDeleteImpl;
using inf2vec::obs::heap_internal::OperatorNewImpl;

void* operator new(std::size_t size) { return OperatorNewImpl(size, 0); }
void* operator new[](std::size_t size) { return OperatorNewImpl(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return OperatorNewImpl(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return OperatorNewImpl(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return inf2vec::obs::heap_internal::AllocateBytes(size, 0);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return inf2vec::obs::heap_internal::AllocateBytes(size, 0);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return inf2vec::obs::heap_internal::AllocateBytes(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return inf2vec::obs::heap_internal::AllocateBytes(
      size, static_cast<std::size_t>(align));
}

void operator delete(void* ptr) noexcept { OperatorDeleteImpl(ptr); }
void operator delete[](void* ptr) noexcept { OperatorDeleteImpl(ptr); }
void operator delete(void* ptr, std::size_t) noexcept {
  OperatorDeleteImpl(ptr);
}
void operator delete[](void* ptr, std::size_t) noexcept {
  OperatorDeleteImpl(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  OperatorDeleteImpl(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  OperatorDeleteImpl(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  OperatorDeleteImpl(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  OperatorDeleteImpl(ptr);
}
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  OperatorDeleteImpl(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  OperatorDeleteImpl(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  OperatorDeleteImpl(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  OperatorDeleteImpl(ptr);
}
