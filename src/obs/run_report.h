#ifndef INF2VEC_OBS_RUN_REPORT_H_
#define INF2VEC_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace inf2vec {
namespace obs {

/// Structured per-run summary (--metrics-out): one JSON document capturing
/// what ran, with what configuration, where the wall time went, how the
/// objective converged, and what the pipeline's metrics counted. Schema
/// (validated by tools/check_run_report.py, documented in
/// docs/OBSERVABILITY.md):
///
///   {
///     "schema_version": 1,
///     "command": "train",
///     "config": {"dim": 50, ...},              // echo of the effective knobs
///     "phases": [{"name": "corpus", "seconds": 1.2}, ...],
///     "epochs": [{"epoch": 0, "objective": -2.1, "learning_rate": 0.005,
///                 "pairs": 12345, "seconds": 0.4,
///                 "pairs_per_second": 30862.5}, ...],
///     "context": {...},                        // derived composition stats
///     "negative_sampler": {...},               // derived draw stats
///     "eval": {...},                           // present after an eval phase
///     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
///   }
class RunReport {
 public:
  explicit RunReport(std::string command);

  /// Effective-configuration echo, any JSON-able value.
  void SetConfig(const std::string& key, JsonValue value);

  /// Coarse wall-time accounting; phases render in insertion order.
  void AddPhase(const std::string& name, double seconds);

  struct EpochRow {
    uint32_t epoch = 0;
    double objective = 0.0;
    double learning_rate = 0.0;
    uint64_t pairs = 0;
    double seconds = 0.0;
    double pairs_per_second = 0.0;
  };
  void AddEpoch(const EpochRow& row);

  /// Attaches or replaces a free-form top-level section ("eval", ...).
  void SetSection(const std::string& name, JsonValue value);

  /// Pulls the registry into the report: the raw "metrics" section plus
  /// the derived "context" (local/global composition, mean walk length,
  /// restarts) and "negative_sampler" (draws, rejection rate) sections.
  void FinalizeFromRegistry(const MetricsRegistry& registry);

  JsonValue ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  std::string command_;
  JsonValue config_ = JsonValue::Object();
  std::vector<std::pair<std::string, double>> phases_;
  std::vector<EpochRow> epochs_;
  std::vector<std::pair<std::string, JsonValue>> sections_;
};

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_RUN_REPORT_H_
