#ifndef INF2VEC_OBS_PROMETHEUS_H_
#define INF2VEC_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace inf2vec {
namespace obs {

/// Maps a dotted registry metric name onto the Prometheus exposition
/// grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every '.' (and any other invalid
/// character) becomes '_', a leading digit gains a '_' prefix, and the
/// whole name is prefixed "inf2vec_". So "sgd.pairs_trained" renders as
/// "inf2vec_sgd_pairs_trained".
std::string PrometheusName(const std::string& name);

/// Renders a registry snapshot as Prometheus text exposition format 0.0.4.
/// Deterministic: the snapshot is name-sorted, so two renders of equal
/// snapshots are byte-identical (the property the /metrics-vs-Scrape tests
/// pin down).
///
///  * counters  -> `# TYPE n_total counter` + `n_total <value>` (the
///    _total suffix is the Prometheus counter convention);
///  * gauges    -> `# TYPE n gauge` + `n <value>`;
///  * histograms -> `# TYPE n histogram` + cumulative `n_bucket{le="b"}`
///    rows (one per recorded bucket, counts attributed to the bucket's
///    lower boundary — see docs/OBSERVABILITY.md), an `le="+Inf"` row,
///    `n_sum` (lower-boundary approximation of the observation sum) and
///    `n_count`.
std::string RenderPrometheus(const MetricsRegistry::Snapshot& snapshot);

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_PROMETHEUS_H_
