#ifndef INF2VEC_OBS_SYMBOLIZE_H_
#define INF2VEC_OBS_SYMBOLIZE_H_

#include <string>

namespace inf2vec {
namespace obs {

/// Best-effort PC -> display name for folded-stack output, shared by the
/// CPU profiler and the heap profiler. dladdr needs the symbol exported
/// (-rdynamic / CMAKE_ENABLE_EXPORTS for the static parts of the binary);
/// anonymous-namespace and inlined frames fall back to a hex address,
/// which still folds consistently. The parameter list is stripped
/// (overloads collapse into one frame — the flamegraph convention) and
/// ';' is replaced because the folded format reserves it as the frame
/// separator.
std::string SymbolizePc(void* pc);

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_SYMBOLIZE_H_
