#ifndef INF2VEC_OBS_ACCESS_LOG_H_
#define INF2VEC_OBS_ACCESS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "obs/json.h"
#include "util/status.h"

namespace inf2vec {
namespace obs {

/// Append-only JSONL event log: one compact JSON object per line, flushed
/// per line so `tail -f` and a crash both see every completed record. The
/// serving plane writes one wide event per HTTP request through this
/// (`serve --access-log`); the writer itself is schema-agnostic — callers
/// hand it fully-built JsonValue objects.
///
/// Thread-safe: a mutex serializes Append, so concurrent writers (serving
/// thread + watcher, test clients) interleave whole lines, never bytes.
class AccessLog {
 public:
  AccessLog() = default;
  ~AccessLog() { Close(); }

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Opens `path` for appending (created when missing). Idempotent per
  /// instance: re-opening closes the previous file first.
  Status Open(const std::string& path);

  bool is_open() const;

  /// Serializes `event` compactly and appends it as one line. No-op when
  /// the log is not open — call sites need no guard.
  void Append(const JsonValue& event);

  /// Lines successfully written since Open.
  uint64_t lines_written() const;

  const std::string& path() const { return path_; }

  /// Flushes and closes; further Appends are no-ops until re-opened.
  void Close();

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;  // Guarded by mu_.
  std::string path_;
  uint64_t lines_written_ = 0;  // Guarded by mu_.
};

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_ACCESS_LOG_H_
