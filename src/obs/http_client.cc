#include "obs/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace inf2vec {
namespace obs {
namespace {

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// 0 deadline == wait forever. Returns the poll() timeout argument, or -2
// when the deadline already passed.
int PollTimeout(uint64_t deadline_abs_ms) {
  if (deadline_abs_ms == 0) return -1;
  const uint64_t now = NowMs();
  if (now >= deadline_abs_ms) return -2;
  const uint64_t left = deadline_abs_ms - now;
  return left > 60'000 ? 60'000 : static_cast<int>(left);
}

bool WaitFd(int fd, short events, uint64_t deadline_abs_ms) {
  for (;;) {
    const int timeout = PollTimeout(deadline_abs_ms);
    if (timeout == -2) return false;
    pollfd pfd = {fd, events, 0};
    const int n = ::poll(&pfd, 1, timeout);
    if (n > 0) return true;
    if (n == 0) {
      if (deadline_abs_ms != 0) continue;  // recompute; clamped slice
      return false;
    }
    if (errno == EINTR) continue;
    return false;
  }
}

std::string Lowered(const std::string& text) {
  std::string lowered = text;
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lowered;
}

/// Finds header `name` (lowercase) in a raw head block; returns the value
/// with surrounding whitespace trimmed, or false.
bool FindHeader(const std::string& headers, const std::string& name,
                std::string* value) {
  const std::string lowered = Lowered(headers);
  const std::string needle = "\r\n" + name + ":";
  const size_t at = lowered.find(needle);
  if (at == std::string::npos) return false;
  const size_t value_begin = at + needle.size();
  size_t value_end = lowered.find("\r\n", value_begin);
  if (value_end == std::string::npos) value_end = headers.size();
  std::string raw = headers.substr(value_begin, value_end - value_begin);
  const size_t first = raw.find_first_not_of(" \t");
  if (first == std::string::npos) {
    value->clear();
    return true;
  }
  const size_t last = raw.find_last_not_of(" \t");
  *value = raw.substr(first, last - first + 1);
  return true;
}

/// Parses "HTTP/1.1 NNN ..." -> NNN, or 0.
int ParseStatusLine(const std::string& head) {
  const size_t space = head.find(' ');
  if (space == std::string::npos || space + 4 > head.size()) return 0;
  int status = 0;
  for (size_t i = space + 1; i < space + 4; ++i) {
    const char c = head[i];
    if (c < '0' || c > '9') return 0;
    status = status * 10 + (c - '0');
  }
  return status;
}

}  // namespace

std::string HttpClientResponse::HeaderOr(const std::string& name,
                                         const std::string& fallback) const {
  std::string value;
  if (FindHeader(headers, Lowered(name), &value)) return value;
  return fallback;
}

bool HttpClientResponse::HasHeader(const std::string& name) const {
  std::string value;
  return FindHeader(headers, Lowered(name), &value);
}

HttpClient::~HttpClient() { Close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      fd_(other.fd_),
      fresh_(other.fresh_),
      buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    host_ = std::move(other.host_);
    port_ = other.port_;
    fd_ = other.fd_;
    fresh_ = other.fresh_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void HttpClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  fresh_ = false;
  buffer_.clear();
}

bool HttpClient::Connect(uint64_t deadline_ms) {
  if (fd_ >= 0) return true;
  const uint64_t deadline_abs = deadline_ms == 0 ? 0 : NowMs() + deadline_ms;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return false;
    }
    if (!WaitFd(fd, POLLOUT, deadline_abs)) {
      ::close(fd);
      return false;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return false;
    }
  }
  fd_ = fd;
  fresh_ = true;
  buffer_.clear();
  return true;
}

bool HttpClient::SendRaw(const std::string& bytes, uint64_t deadline_ms) {
  const uint64_t deadline_abs = deadline_ms == 0 ? 0 : NowMs() + deadline_ms;
  if (fd_ < 0 && !Connect(deadline_ms)) return false;
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!WaitFd(fd_, POLLOUT, deadline_abs)) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  fresh_ = false;
  return true;
}

bool HttpClient::Fill(uint64_t deadline_abs_ms) {
  if (fd_ < 0) return false;
  for (;;) {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      return true;
    }
    if (n == 0) return false;  // EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!WaitFd(fd_, POLLIN, deadline_abs_ms)) return false;
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
}

bool HttpClient::ReadResponse(HttpClientResponse* out, uint64_t deadline_ms) {
  const uint64_t deadline_abs = deadline_ms == 0 ? 0 : NowMs() + deadline_ms;
  size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    if (!Fill(deadline_abs)) return false;
  }
  out->headers = buffer_.substr(0, head_end);
  out->status = ParseStatusLine(out->headers);
  if (out->status == 0) return false;
  size_t content_length = 0;
  std::string length_value;
  if (FindHeader(out->headers, "content-length", &length_value)) {
    errno = 0;
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(length_value.c_str(), &end, 10);
    if (errno != 0 || end == length_value.c_str()) return false;
    content_length = static_cast<size_t>(parsed);
  }
  buffer_.erase(0, head_end + 4);
  while (buffer_.size() < content_length) {
    if (!Fill(deadline_abs)) return false;
  }
  out->body = buffer_.substr(0, content_length);
  buffer_.erase(0, content_length);
  return true;
}

bool HttpClient::AtEof() {
  while (buffer_.empty()) {
    if (!Fill(/*deadline_abs_ms=*/0)) return true;
  }
  return false;
}

std::string HttpClient::FormatRequest(
    const std::string& method, const std::string& target,
    const std::string& host, const std::string& body,
    const std::vector<std::string>& extra_headers, bool keep_alive) {
  std::string request = method + " " + target + " HTTP/1.1\r\nHost: " + host +
                        "\r\n";
  if (!keep_alive) request += "Connection: close\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  for (const std::string& header : extra_headers) {
    request += header + "\r\n";
  }
  request += "\r\n";
  request += body;
  return request;
}

bool HttpClient::CallOnce(const std::string& request, HttpClientResponse* out,
                          uint64_t deadline_abs_ms, bool* reused_conn_died) {
  *reused_conn_died = false;
  const bool was_fresh = fresh_;
  if (fd_ < 0) {
    if (!Connect(deadline_abs_ms == 0 ? 0 : deadline_abs_ms - NowMs())) {
      return false;
    }
  }
  // Remaining-deadline plumbing below passes absolute time through the
  // relative-ms API; compute leftovers at each step.
  const auto remaining = [deadline_abs_ms]() -> uint64_t {
    if (deadline_abs_ms == 0) return 0;
    const uint64_t now = NowMs();
    return now >= deadline_abs_ms ? 1 : deadline_abs_ms - now;
  };
  if (deadline_abs_ms != 0 && NowMs() >= deadline_abs_ms) return false;
  if (!SendRaw(request, remaining())) {
    *reused_conn_died = !was_fresh;
    return false;
  }
  if (!ReadResponse(out, remaining())) {
    *reused_conn_died = !was_fresh;
    return false;
  }
  // Honor a server-initiated close so the next Call() reconnects.
  if (Lowered(out->HeaderOr("Connection", "")) == "close") Close();
  return true;
}

bool HttpClient::Call(const std::string& method, const std::string& target,
                      const std::string& body, HttpClientResponse* out,
                      uint64_t deadline_ms) {
  const uint64_t deadline_abs = deadline_ms == 0 ? 0 : NowMs() + deadline_ms;
  const std::string request = FormatRequest(method, target, host_, body);
  bool reused_conn_died = false;
  if (CallOnce(request, out, deadline_abs, &reused_conn_died)) return true;
  if (!reused_conn_died) return false;
  // The kept-alive peer hung up between calls (idle sweep, restart);
  // one reconnect + retry, still under the original deadline.
  Close();
  return CallOnce(request, out, deadline_abs, &reused_conn_died);
}

bool HttpClient::Get(const std::string& target, HttpClientResponse* out,
                     uint64_t deadline_ms) {
  return Call("GET", target, "", out, deadline_ms);
}

bool HttpClient::Post(const std::string& target, const std::string& body,
                      HttpClientResponse* out, uint64_t deadline_ms) {
  return Call("POST", target, body, out, deadline_ms);
}

HttpClientResponse HttpClient::Fetch(uint16_t port, const std::string& target,
                                     uint64_t deadline_ms) {
  HttpClientResponse response;
  HttpClient client(port);
  const uint64_t deadline_abs = deadline_ms == 0 ? 0 : NowMs() + deadline_ms;
  if (!client.Connect(deadline_ms)) return response;
  const std::string request = FormatRequest("GET", target, client.host(), "",
                                            {}, /*keep_alive=*/false);
  if (!client.SendRaw(request, deadline_ms)) return response;
  // Read to EOF, then split — tolerates responses without Content-Length.
  while (client.Fill(deadline_abs)) {
  }
  const std::string& raw = client.buffer_;
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return response;
  response.headers = raw.substr(0, head_end);
  response.status = ParseStatusLine(response.headers);
  response.body = raw.substr(head_end + 4);
  return response;
}

}  // namespace obs
}  // namespace inf2vec
