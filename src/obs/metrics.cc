#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace inf2vec {
namespace obs {
namespace {

std::atomic<bool> g_metrics_enabled{false};
std::atomic<uint32_t> g_next_thread_index{0};

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void EnableMetrics(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

uint32_t CurrentThreadIndex() {
  thread_local const uint32_t index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void HistogramMetric::Record(uint64_t value) {
  Stripe& stripe = stripes_[CurrentThreadIndex() % kMetricStripes];
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.histogram.Add(value);
}

Histogram HistogramMetric::Snapshot() const {
  Histogram merged = MakeShard();
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    merged.Merge(stripe.histogram);
  }
  return merged;
}

HistogramMetric::HistogramMetric(std::string name,
                                 std::vector<uint64_t> boundaries)
    : name_(std::move(name)), boundaries_(std::move(boundaries)) {
  for (Stripe& stripe : stripes_) stripe.histogram = MakeShard();
}

Histogram HistogramMetric::MakeShard() const {
  return boundaries_.empty() ? Histogram() : Histogram(boundaries_);
}

void HistogramMetric::Reset() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.histogram = MakeShard();
  }
}

std::vector<uint64_t> DurationBoundariesUs() {
  std::vector<uint64_t> boundaries;
  for (uint64_t decade = 1; decade <= 1000000000ULL; decade *= 10) {
    boundaries.push_back(decade);
    boundaries.push_back(decade * 2);
    boundaries.push_back(decade * 5);
  }
  return boundaries;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter(name));
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge(name));
  return slot.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(
    const std::string& name, std::vector<uint64_t> boundaries) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<HistogramMetric>& slot = histograms_[name];
  if (slot == nullptr) {
    slot.reset(new HistogramMetric(name, std::move(boundaries)));
  } else {
    INF2VEC_CHECK(slot->boundaries_ == boundaries ||
                  boundaries.empty())
        << "histogram '" << name << "' re-registered with other boundaries";
  }
  return slot.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry::Snapshot MetricsRegistry::Scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  }
  return snapshot;
}

uint64_t MetricsRegistry::Snapshot::CounterOr0(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double MetricsRegistry::Snapshot::GaugeOr(const std::string& name,
                                          double fallback) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return fallback;
}

const Histogram* MetricsRegistry::Snapshot::FindHistogram(
    const std::string& name) const {
  for (const auto& [n, h] : histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

JsonValue MetricsRegistry::ScrapeJson() const {
  const Snapshot snapshot = Scrape();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, value);
  }
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, value);
  }
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, histogram] : snapshot.histograms) {
    JsonValue summary = JsonValue::Object();
    summary.Set("count", histogram.total_count());
    summary.Set("mean", histogram.Mean());
    summary.Set("max", histogram.Max());
    summary.Set("p50", histogram.Quantile(0.5));
    summary.Set("p90", histogram.Quantile(0.9));
    summary.Set("p99", histogram.Quantile(0.99));
    histograms.Set(name, std::move(summary));
  }
  JsonValue out = JsonValue::Object();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histograms));
  return out;
}

namespace {

/// ThreadPool -> default registry bridge. Handles are resolved lazily so
/// constructing the observer does not touch the registry.
class PoolMetricsObserver : public ThreadPoolObserver {
 public:
  void OnShard(uint32_t /*shard*/, double queue_wait_us,
               double exec_us) override {
    if (!MetricsEnabled()) return;
    Handles().shards->Increment();
    Handles().wait_us->Record(static_cast<uint64_t>(queue_wait_us));
    Handles().exec_us->Record(static_cast<uint64_t>(exec_us));
  }

  void OnJob(uint32_t /*shards*/, size_t items, double total_us) override {
    if (!MetricsEnabled()) return;
    Handles().jobs->Increment();
    Handles().job_items->Increment(items);
    Handles().job_us->Record(static_cast<uint64_t>(total_us));
  }

 private:
  struct Handle {
    Counter* jobs;
    Counter* shards;
    Counter* job_items;
    HistogramMetric* wait_us;
    HistogramMetric* exec_us;
    HistogramMetric* job_us;
  };
  static const Handle& Handles() {
    static const Handle handle = [] {
      MetricsRegistry& registry = MetricsRegistry::Default();
      return Handle{
          registry.GetCounter("threadpool.jobs"),
          registry.GetCounter("threadpool.shards"),
          registry.GetCounter("threadpool.job_items"),
          registry.GetHistogram("threadpool.shard_wait_us",
                                DurationBoundariesUs()),
          registry.GetHistogram("threadpool.shard_exec_us",
                                DurationBoundariesUs()),
          registry.GetHistogram("threadpool.job_us", DurationBoundariesUs()),
      };
    }();
    return handle;
  }
};

PoolMetricsObserver* PoolObserverInstance() {
  static PoolMetricsObserver* observer = new PoolMetricsObserver();
  return observer;
}

}  // namespace

void InstallThreadPoolMetrics() {
  SetThreadPoolObserver(PoolObserverInstance());
}

void UninstallThreadPoolMetrics() {
  if (GetThreadPoolObserver() == PoolObserverInstance()) {
    SetThreadPoolObserver(nullptr);
  }
}

}  // namespace obs
}  // namespace inf2vec
