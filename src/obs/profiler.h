#ifndef INF2VEC_OBS_PROFILER_H_
#define INF2VEC_OBS_PROFILER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "util/status.h"

namespace inf2vec {
namespace obs {

class StatsServer;  // obs/http_server.h; kept forward to avoid a cycle.

/// Sampling CPU profiler: SIGPROF driven by setitimer(ITIMER_PROF), so
/// samples land proportionally to CPU actually burned (a blocked thread is
/// never sampled — exactly the bias a "where do my cycles go" profile
/// wants). The signal handler does the absolute minimum that is
/// async-signal-safe: one relaxed fetch_add to claim a preallocated slot
/// and one backtrace() into it (glibc's backtrace is warmed up — forced to
/// load its unwinder — before the timer is armed, so the handler itself
/// never allocates). Symbolization (dladdr + demangle) and aggregation run
/// entirely offline in FoldedStacks().
///
/// Output is folded-stack text, one line per distinct stack, root first:
///
///   main;RunServe;TopK;ScoreBlockF32Avx2 412
///
/// i.e. directly flamegraph.pl / speedscope compatible, and trivially
/// grep-able for "which frame dominates" assertions in tests.
///
/// The profiler is process-global (SIGPROF has one handler) — use
/// Default(). Start/Stop are serialized; starting while running is an
/// error. Samples survive Stop until the next Start, so /pprofz's
/// start-then-poll flow and `--profile-out`'s profile-whole-run flow both
/// read results after disarm.
class CpuProfiler {
 public:
  struct Options {
    /// Samples per second of CPU time.
    int hz = 200;
    /// Preallocated sample capacity; samples past this are counted in
    /// truncated() and dropped (the handler never grows the buffer).
    size_t max_samples = 1 << 15;
  };

  /// Frames kept per sample; deeper stacks are truncated at the leaf end.
  static constexpr int kMaxFrames = 32;

  static CpuProfiler& Default();

  CpuProfiler();
  ~CpuProfiler();

  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

  /// Arms the timer and installs the SIGPROF handler. Clears any samples
  /// from a previous session. Fails if already running.
  Status Start(const Options& options);
  Status Start();

  /// Start + a managed background thread that stops the profiler after
  /// `seconds` of wall time (Stop() cancels it early). This is what
  /// /pprofz?seconds=N uses: the stats server must not block while the
  /// profile runs — a blocked server thread would serve no requests and
  /// the profile would capture an idle process.
  Status StartForDuration(double seconds, const Options& options);
  Status StartForDuration(double seconds);

  /// Disarms the timer, restores the previous SIGPROF disposition, joins
  /// the auto-stop thread if one is pending. Idempotent.
  Status Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Samples captured in the current/most recent session.
  size_t sample_count() const;
  /// Samples dropped because the buffer was full.
  uint64_t truncated() const;
  int hz() const { return options_.hz; }

  /// Symbolized, aggregated folded stacks ("frame;frame;frame count\n"
  /// lines, biggest count first). Call after Stop, or while running for a
  /// partial view (samples racing in may be missed — fine for polling).
  std::string FoldedStacks() const;

  Status WriteFolded(const std::string& path) const;

  /// Summary for the run report / /pprofz status: running, hz, samples,
  /// truncated.
  JsonValue DescribeJson() const;

 private:
  void StopTimerLocked();

  Options options_;
  std::atomic<bool> running_{false};
  mutable std::mutex mu_;  // Serializes Start/Stop and the stop thread.
  std::condition_variable stop_cv_;
  bool cancel_auto_stop_ = false;  // Guarded by mu_.
  std::thread auto_stop_;          // Guarded by mu_ (join outside lock).
  bool timer_armed_ = false;       // Guarded by mu_.
};

/// Registers GET /pprofz on `server`, start-then-poll style (the stats
/// server is single-threaded, so a handler that blocked for the profile
/// duration would starve serving and profile an idle process):
///
///   GET /pprofz?seconds=N   starts an N-second profile, returns
///                           immediately with {"status": "started"}
///                           (or "running" if one is in flight)
///   GET /pprofz             while running: JSON status;
///                           after: the folded-stack text of the last
///                           profile; never profiled: {"status": "idle"}
void RegisterProfilerEndpoint(StatsServer* server, CpuProfiler* profiler);

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_PROFILER_H_
