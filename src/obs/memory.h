#ifndef INF2VEC_OBS_MEMORY_H_
#define INF2VEC_OBS_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace inf2vec {
namespace obs {

/// Byte-accounting gauge for one named memory owner (embedding table,
/// seed cache, trace ring...). Owners report allocate/free/resize deltas;
/// the gauge tracks the current figure and its high-water mark, and
/// write-throughs every update into the default MetricsRegistry as
/// `mem.<name>.bytes` so Prometheus (/metrics) and the snapshotter see
/// memory for free. Updates are lock-free atomics — safe from any thread,
/// including destructors running at process exit.
class MemoryGauge {
 public:
  /// Allocate (positive) or free (negative) delta.
  void Add(int64_t delta);
  /// Absolute set (owners that recompute their total, e.g. on resize).
  void Set(uint64_t bytes);

  /// Current accounted bytes (clamped at zero: a stray double-free in the
  /// accounting never reports negative memory).
  uint64_t bytes() const {
    const int64_t v = bytes_.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  }
  uint64_t high_water_bytes() const {
    return static_cast<uint64_t>(high_water_.load(std::memory_order_relaxed));
  }
  const std::string& name() const { return name_; }

 private:
  friend class MemoryRegistry;
  MemoryGauge(std::string name, std::atomic<int64_t>* total, Gauge* metric);
  void MaybeRaiseHighWater(int64_t observed);

  std::string name_;
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> high_water_{0};
  std::atomic<int64_t>* total_;  // Registry-wide accounted total.
  Gauge* metric_;                // mem.<name>.bytes write-through.
};

/// Name-addressed registry of MemoryGauges plus scrape-time providers.
/// GetGauge registers on first use and returns a stable handle (same name
/// => same handle) — the MetricsRegistry idiom. Providers are callbacks
/// computed at scrape time, for owners whose live bytes are cheaper to
/// walk on demand than to maintain incrementally (ring buffers); they are
/// excluded from the O(1) AccountedBytes() fast path the serving budget
/// check reads, but included in Scrape()/MemzJson().
class MemoryRegistry {
 public:
  MemoryRegistry() = default;
  MemoryRegistry(const MemoryRegistry&) = delete;
  MemoryRegistry& operator=(const MemoryRegistry&) = delete;

  /// Process-wide instance (never destroyed, so gauge handles outlive
  /// every static destructor that might still report frees).
  static MemoryRegistry& Default();

  MemoryGauge* GetGauge(const std::string& name);

  /// Registers (or replaces) a scrape-time byte provider. Use only for
  /// process-lifetime owners (singletons); per-instance owners should
  /// push deltas through a gauge instead.
  void RegisterProvider(const std::string& name, std::function<uint64_t()> fn);
  void UnregisterProvider(const std::string& name);

  struct Entry {
    std::string name;
    uint64_t bytes = 0;
    uint64_t high_water_bytes = 0;
    bool provider = false;  // Scrape-time callback vs push gauge.
  };
  struct Snapshot {
    std::vector<Entry> entries;  // Name-sorted.
    uint64_t total_bytes = 0;    // Gauges + providers.
  };
  Snapshot Scrape() const;

  /// Sum of the push gauges only — one relaxed load, cheap enough for a
  /// per-request budget check.
  uint64_t AccountedBytes() const {
    const int64_t v = total_.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  }

  /// Zeroes every gauge and drops providers (tests only; handles stay
  /// valid).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MemoryGauge>> gauges_;
  std::map<std::string, std::function<uint64_t()>> providers_;
  /// Scrape-time high-water marks for providers (keyed like providers_).
  mutable std::map<std::string, uint64_t> provider_high_water_;
  std::atomic<int64_t> total_{0};
};

/// RAII byte reservation: Add(bytes) on construction, the matching free
/// on destruction. Movable so owners (InfluenceService and friends) can
/// hold one as a member. Resize() re-reports when the owner's footprint
/// changes.
class ScopedBytes {
 public:
  ScopedBytes() = default;
  ScopedBytes(MemoryGauge* gauge, uint64_t bytes);
  ScopedBytes(ScopedBytes&& other) noexcept;
  ScopedBytes& operator=(ScopedBytes&& other) noexcept;
  ScopedBytes(const ScopedBytes&) = delete;
  ScopedBytes& operator=(const ScopedBytes&) = delete;
  ~ScopedBytes();

  void Resize(uint64_t bytes);
  /// Frees the reservation early (idempotent).
  void Release();
  uint64_t bytes() const { return bytes_; }

 private:
  MemoryGauge* gauge_ = nullptr;
  uint64_t bytes_ = 0;
};

/// Kernel's view of this process: /proc/self/status (VmRSS / VmHWM /
/// VmSize and the RssAnon/RssFile/RssShmem breakdown) plus
/// /proc/self/smaps_rollup when available. All byte figures; zero when a
/// field is missing. `sampled` is false when /proc is unreadable (the
/// rest of the plane still works — accounting is /proc-independent).
struct MemorySample {
  uint64_t rss_bytes = 0;
  uint64_t peak_rss_bytes = 0;
  uint64_t vm_size_bytes = 0;
  uint64_t anon_bytes = 0;
  uint64_t file_bytes = 0;
  uint64_t shmem_bytes = 0;
  bool sampled = false;
};
MemorySample SampleProcessMemory();

/// Soft memory budget for serving (`serve --mem-budget-bytes`). Zero
/// budget = unlimited. `headroom_bytes` is slack reserved for everything
/// accounting cannot see (allocator overhead, stacks, code).
struct MemoryBudget {
  uint64_t budget_bytes = 0;
  uint64_t headroom_bytes = 0;
};
void SetMemoryBudget(const MemoryBudget& budget);
MemoryBudget GetMemoryBudget();
/// True when a budget is set and accounted + headroom + extra_bytes
/// exceeds it. `extra_bytes` lets a hot-swap preflight the double-resident
/// peak before committing to the load.
bool OverMemoryBudget(uint64_t extra_bytes = 0);

/// The GET /memz payload: accounted gauges, the /proc sample, coverage
/// (accounted / rss), the budget block when one is set, and the heap
/// profiler's status. Schema checked by tools/check_memz.py.
JsonValue MemzJson();
/// The run report's "memory" section (same accounting, no heap block).
JsonValue MemoryReportJson();
/// Compact per-tick series for the metrics snapshotter JSONL:
/// {accounted_bytes, rss_bytes, gauges:{name: bytes}}.
JsonValue MemorySeriesJson();
/// One-line summary for /varz: accounted total + rss.
JsonValue MemorySummaryJson();

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_MEMORY_H_
