#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace inf2vec {
namespace obs {

bool JsonValue::AsBool() const {
  INF2VEC_CHECK(kind_ == Kind::kBool) << "JSON value is not a bool";
  return bool_;
}

int64_t JsonValue::AsInt() const {
  INF2VEC_CHECK(kind_ == Kind::kInt) << "JSON value is not an integer";
  return int_;
}

double JsonValue::AsDouble() const {
  INF2VEC_CHECK(is_number()) << "JSON value is not a number";
  return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
}

const std::string& JsonValue::AsString() const {
  INF2VEC_CHECK(kind_ == Kind::kString) << "JSON value is not a string";
  return string_;
}

void JsonValue::Append(JsonValue value) {
  INF2VEC_CHECK(kind_ == Kind::kArray) << "Append needs a JSON array";
  array_.push_back(std::move(value));
}

const std::vector<JsonValue>& JsonValue::items() const {
  INF2VEC_CHECK(kind_ == Kind::kArray) << "items() needs a JSON array";
  return array_;
}

size_t JsonValue::size() const {
  INF2VEC_CHECK(kind_ == Kind::kArray || kind_ == Kind::kObject)
      << "size() needs a JSON container";
  return kind_ == Kind::kArray ? array_.size() : object_.size();
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  INF2VEC_CHECK(kind_ == Kind::kObject) << "Set needs a JSON object";
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(key, std::move(value));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  INF2VEC_CHECK(kind_ == Kind::kObject) << "members() needs a JSON object";
  return object_;
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan.
  std::string s = StrFormat("%.17g", value);
  // Round-trippable but tidy: prefer the shortest representation that
  // parses back exactly.
  for (int precision = 1; precision < 17; ++precision) {
    std::string candidate = StrFormat("%.*g", precision, value);
    if (std::strtod(candidate.c_str(), nullptr) == value) {
      s = candidate;
      break;
    }
  }
  return s;
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? "\n" + std::string(indent * (depth + 1), ' ') : "";
  const std::string close_pad =
      indent > 0 ? "\n" + std::string(indent * depth, ' ') : "";
  const char* colon = indent > 0 ? ": " : ":";
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      *out += StrFormat("%lld", static_cast<long long>(int_));
      return;
    case Kind::kDouble:
      *out += FormatDouble(double_);
      return;
    case Kind::kString:
      *out += '"';
      *out += JsonEscape(string_);
      *out += '"';
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) *out += ',';
        *out += pad;
        array_[i].DumpTo(out, indent, depth + 1);
      }
      *out += close_pad;
      *out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) *out += ',';
        *out += pad;
        *out += '"';
        *out += JsonEscape(object_[i].first);
        *out += '"';
        *out += colon;
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      *out += close_pad;
      *out += '}';
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string view; `pos` advances past
/// consumed input.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    Result<JsonValue> value = ParseValue();
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      Result<std::string> s = ParseString();
      if (!s.ok()) return s.status();
      return JsonValue(std::move(s).value());
    }
    if (ConsumeLiteral("null")) return JsonValue();
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    return ParseNumber();
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("invalid number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    if (!is_double) {
      errno = 0;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno != ERANGE) {
        return JsonValue(static_cast<int64_t>(v));
      }
      // An int64-overflowing literal falls through to the double path
      // (keeping magnitude at reduced precision), where the finiteness
      // check below still rejects truly unrepresentable values.
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("invalid number");
    if (!std::isfinite(d)) return Error("number out of range");
    return JsonValue(d);
  }

  Result<std::string> ParseString() {
    if (text_[pos_] != '"') return Error("expected '\"'");
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          // Only the control-character range is emitted by our writer;
          // decode the BMP code point naively as a byte when it fits.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            out += '?';  // Out-of-subset escape; preserve length, not data.
          }
          break;
        }
        default:
          return Error("unknown escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      Result<JsonValue> element = ParseValue();
      if (!element.ok()) return element;
      array.Append(std::move(element).value());
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return array;
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      Result<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      Result<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      object.Set(key.value(), std::move(value).value());
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return object;
      }
      return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace obs
}  // namespace inf2vec
