#include "obs/build_info.h"

#include <sys/resource.h>
#include <unistd.h>

#include <thread>

#include "kernels/kernels.h"
#include "obs/memory.h"
#include "obs/trace.h"

namespace inf2vec {
namespace obs {
namespace {

#ifndef INF2VEC_GIT_SHA
#define INF2VEC_GIT_SHA "unknown"
#endif
#ifndef INF2VEC_BUILD_TYPE
#define INF2VEC_BUILD_TYPE "unknown"
#endif
#ifndef INF2VEC_BUILD_FLAGS
#define INF2VEC_BUILD_FLAGS "unknown"
#endif

std::string CompilerVersion() {
#if defined(__VERSION__)
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return __VERSION__;
#endif
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo* info = [] {
    auto* b = new BuildInfo();
    b->git_sha = INF2VEC_GIT_SHA;
    b->compiler = CompilerVersion();
    b->build_type = INF2VEC_BUILD_TYPE;
    b->build_flags = INF2VEC_BUILD_FLAGS;
    b->cxx_standard = std::to_string(__cplusplus);
    return b;
  }();
  return *info;
}

std::string Hostname() {
  char buffer[256];
  if (gethostname(buffer, sizeof(buffer)) != 0) return "";
  buffer[sizeof(buffer) - 1] = '\0';
  return buffer;
}

uint64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes; macOS in bytes. The build only
  // targets Linux, so scale by 1024 unconditionally.
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024ULL;
}

JsonValue BuildInfoJson() {
  const BuildInfo& info = GetBuildInfo();
  JsonValue out = JsonValue::Object();
  out.Set("git_sha", info.git_sha);
  out.Set("compiler", info.compiler);
  out.Set("build_type", info.build_type);
  out.Set("build_flags", info.build_flags);
  out.Set("cxx_standard", info.cxx_standard);
  return out;
}

namespace {
std::string& QuantModeStorage() {
  static std::string mode = "none";
  return mode;
}
}  // namespace

void SetServingQuantMode(const std::string& mode) {
  QuantModeStorage() = mode;
}

const std::string& ServingQuantMode() { return QuantModeStorage(); }

JsonValue KernelInfoJson() {
  JsonValue out = JsonValue::Object();
  out.Set("isa", kernels::IsaName(kernels::ActiveIsa()));
  out.Set("forced", kernels::IsaForced());
  out.Set("best", kernels::IsaName(kernels::BestIsa()));
  out.Set("avx2_compiled", kernels::Avx2Compiled());
  out.Set("avx2_supported", kernels::Avx2Supported());
  out.Set("quantize", ServingQuantMode());
  return out;
}

JsonValue EnvironmentJson() {
  JsonValue out = JsonValue::Object();
  out.Set("hostname", Hostname());
  out.Set("pid", static_cast<int64_t>(getpid()));
  out.Set("hardware_concurrency",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
  out.Set("peak_rss_bytes", PeakRssBytes());
  out.Set("build", BuildInfoJson());
  out.Set("kernel", KernelInfoJson());
  out.Set("trace", TraceInfoJson());
  out.Set("memory", MemorySummaryJson());
  return out;
}

JsonValue TraceInfoJson() {
  const TraceCollector& trace = TraceCollector::Default();
  JsonValue out = JsonValue::Object();
  out.Set("enabled", trace.enabled());
  out.Set("events", static_cast<uint64_t>(trace.size()));
  out.Set("capacity", static_cast<uint64_t>(trace.capacity()));
  out.Set("dropped", trace.dropped());
  return out;
}

}  // namespace obs
}  // namespace inf2vec
