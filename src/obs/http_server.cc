#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/build_info.h"
#include "obs/prometheus.h"
#include "obs/run_status.h"
#include "util/logging.h"

namespace inf2vec {
namespace obs {
namespace {

struct HttpResponse {
  int code = 200;
  std::string reason = "OK";
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Serializes and writes the whole response; best-effort (a client that
/// hung up mid-write is its own problem). MSG_NOSIGNAL keeps a dead peer
/// from raising SIGPIPE in the training process.
void SendResponse(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.code) + " " +
                    response.reason + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

/// First line of "METHOD SP PATH SP VERSION"; empty method on garbage.
void ParseRequestLine(const std::string& request, std::string* method,
                      std::string* path) {
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return;
  *method = line.substr(0, sp1);
  *path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Ignore any query string: /metrics?foo=1 routes as /metrics.
  const size_t query = path->find('?');
  if (query != std::string::npos) path->resize(query);
}

}  // namespace

StatsServer::StatsServer(StatsServerOptions options, MetricsRegistry* registry)
    : options_(std::move(options)), registry_(registry) {}

StatsServer::~StatsServer() { Stop(); }

Status StatsServer::Start() {
  if (running_) return Status::FailedPrecondition("stats server already running");

  if (pipe(wake_pipe_) != 0) {
    return Status::Internal(std::string("pipe() failed: ") +
                            std::strerror(errno));
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    Stop();
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    Stop();
    return Status::InvalidArgument("bad stats server bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    Stop();
    return Status::IOError("cannot bind stats server to " +
                           options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + error);
  }
  if (listen(listen_fd_, 16) != 0) {
    const std::string error = std::strerror(errno);
    Stop();
    return Status::IOError("listen() failed: " + error);
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  running_ = true;
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void StatsServer::Stop() {
  if (running_) {
    // One byte through the self-pipe unblocks every poll() in the server
    // thread (accept loop and any in-flight connection read).
    const char wake = 'x';
    ssize_t ignored = write(wake_pipe_[1], &wake, 1);
    (void)ignored;
    thread_.join();
    running_ = false;
  }
  for (int* fd : {&listen_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) {
      close(*fd);
      *fd = -1;
    }
  }
  port_ = 0;
}

bool StatsServer::WaitReadable(int fd) {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = fd;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int n = poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (fds[1].revents != 0) return false;  // Stop() fired.
    if (fds[0].revents != 0) return true;
  }
}

void StatsServer::AcceptLoop() {
  while (WaitReadable(listen_fd_)) {
    const int client_fd = accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    HandleConnection(client_fd);
    close(client_fd);
  }
}

void StatsServer::HandleConnection(int client_fd) {
  // Read until the end of the request head; GET requests have no body.
  // 8 KB is far beyond any sane request line + headers — anything longer
  // is garbage and gets a 400.
  std::string request;
  constexpr size_t kMaxRequestBytes = 8192;
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    if (!WaitReadable(client_fd)) return;  // Stop() during a slow request.
    char buffer[1024];
    const ssize_t n = recv(client_fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // Peer closed (or error) before a full head.
    request.append(buffer, static_cast<size_t>(n));
  }

  std::string method;
  std::string path;
  ParseRequestLine(request, &method, &path);

  HttpResponse response;
  if (method.empty()) {
    response.code = 400;
    response.reason = "Bad Request";
    response.body = "malformed request\n";
  } else if (method != "GET") {
    response.code = 405;
    response.reason = "Method Not Allowed";
    response.body = "only GET is supported\n";
  } else if (path == "/metrics") {
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderPrometheus(registry_->Scrape());
  } else if (path == "/statusz") {
    response.content_type = "application/json";
    response.body = RunStatus::Default().ToJson().Dump(2) + "\n";
  } else if (path == "/varz") {
    response.content_type = "application/json";
    response.body = EnvironmentJson().Dump(2) + "\n";
  } else if (path == "/healthz") {
    response.body = "ok\n";
  } else if (path == "/") {
    response.body =
        "inf2vec stats server\n"
        "endpoints: /metrics /statusz /varz /healthz\n";
  } else {
    response.code = 404;
    response.reason = "Not Found";
    response.body = "unknown path " + path + "\n";
  }
  SendResponse(client_fd, response);
}

}  // namespace obs
}  // namespace inf2vec
