#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "obs/build_info.h"
#include "obs/heap_profiler.h"
#include "obs/memory.h"
#include "obs/prometheus.h"
#include "obs/run_status.h"
#include "util/logging.h"

namespace inf2vec {
namespace obs {
namespace {

/// Serializes and writes the whole response; best-effort (a client that
/// hung up mid-write is its own problem). MSG_NOSIGNAL keeps a dead peer
/// from raising SIGPIPE in the training process.
void SendResponse(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.code) + " " +
                    response.reason + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += response.body;
  size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

const char* ReasonFor(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

/// First line of "METHOD SP TARGET SP VERSION"; empty method on garbage.
/// The target splits into path + decoded query parameters. Header lines
/// after the request line parse into lower-cased name/value pairs
/// (garbage header lines are skipped — the request-id plumbing must not
/// make the server stricter than it was).
void ParseRequestHead(const std::string& request, HttpRequest* parsed) {
  const size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return;
  parsed->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Dispatch is on the bare path: /metrics?foo=1 routes as /metrics and
  // the query string becomes structured parameters.
  const size_t query = target.find('?');
  if (query != std::string::npos) {
    parsed->query = ParseQueryString(target.substr(query + 1));
    target.resize(query);
  }
  parsed->path = std::move(target);

  size_t cursor = line_end == std::string::npos ? request.size() : line_end + 2;
  while (cursor < request.size()) {
    size_t next = request.find("\r\n", cursor);
    if (next == std::string::npos) next = request.size();
    if (next == cursor) break;  // Empty line: end of the header block.
    const std::string header = request.substr(cursor, next - cursor);
    const size_t colon = header.find(':');
    if (colon != std::string::npos && colon > 0) {
      std::string name = header.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      size_t value_start = colon + 1;
      while (value_start < header.size() && header[value_start] == ' ') {
        ++value_start;
      }
      size_t value_end = header.size();
      while (value_end > value_start && header[value_end - 1] == ' ') {
        --value_end;
      }
      parsed->headers.emplace_back(
          std::move(name), header.substr(value_start, value_end - value_start));
    }
    cursor = next + 2;
  }
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

bool HttpRequest::HasQuery(const std::string& key) const {
  for (const auto& [k, v] : query) {
    if (k == key) return true;
  }
  return false;
}

std::string HttpRequest::QueryOr(const std::string& key,
                                 const std::string& fallback) const {
  for (const auto& [k, v] : query) {
    if (k == key) return v;
  }
  return fallback;
}

std::string HttpRequest::HeaderOr(const std::string& name,
                                  const std::string& fallback) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return fallback;
}

HttpResponse HttpResponse::Text(int code, std::string body) {
  HttpResponse response;
  response.code = code;
  response.reason = ReasonFor(code);
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Json(int code, std::string body) {
  HttpResponse response = Text(code, std::move(body));
  response.content_type = "application/json";
  return response;
}

std::string UrlDecode(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '+') {
      out += ' ';
    } else if (raw[i] == '%' && i + 2 < raw.size() &&
               HexDigit(raw[i + 1]) >= 0 && HexDigit(raw[i + 2]) >= 0) {
      out += static_cast<char>(HexDigit(raw[i + 1]) * 16 +
                               HexDigit(raw[i + 2]));
      i += 2;
    } else {
      out += raw[i];
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ParseQueryString(
    const std::string& query) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    const std::string piece = query.substr(start, end - start);
    if (!piece.empty()) {
      const size_t eq = piece.find('=');
      if (eq == std::string::npos) {
        out.emplace_back(UrlDecode(piece), "");
      } else {
        out.emplace_back(UrlDecode(piece.substr(0, eq)),
                         UrlDecode(piece.substr(eq + 1)));
      }
    }
    if (end == query.size()) break;
    start = end + 1;
  }
  return out;
}

StatsServer::StatsServer(StatsServerOptions options, MetricsRegistry* registry)
    : options_(std::move(options)), registry_(registry) {
  RegisterBuiltinEndpoints();
}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Handle(const std::string& path, Handler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  handlers_[path] = std::move(handler);
}

std::vector<std::string> StatsServer::HandledPaths() const {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  std::vector<std::string> paths;
  paths.reserve(handlers_.size());
  for (const auto& [path, handler] : handlers_) paths.push_back(path);
  return paths;
}

void StatsServer::SetRequestObservability(RequestObservability obs) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  request_obs_ = obs;
}

void StatsServer::RegisterBuiltinEndpoints() {
  Handle("/metrics", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderPrometheus(registry_->Scrape());
    return response;
  });
  Handle("/statusz", [](const HttpRequest&) {
    return HttpResponse::Json(200,
                              RunStatus::Default().ToJson().Dump(2) + "\n");
  });
  Handle("/varz", [](const HttpRequest&) {
    return HttpResponse::Json(200, EnvironmentJson().Dump(2) + "\n");
  });
  Handle("/healthz", [](const HttpRequest&) {
    return HttpResponse::Text(200, "ok\n");
  });
  Handle("/memz", [](const HttpRequest&) {
    return HttpResponse::Json(200, MemzJson().Dump(2) + "\n");
  });
  // Referencing the heap profiler here also guarantees heap_profiler.o —
  // and with it the operator new/delete replacements — is linked into
  // every binary that hosts a StatsServer.
  RegisterHeapProfilerEndpoint(this);
  Handle("/", [this](const HttpRequest&) {
    std::string body = "inf2vec stats server\nendpoints:";
    for (const std::string& path : HandledPaths()) {
      if (path != "/") body += " " + path;
    }
    return HttpResponse::Text(200, body + "\n");
  });
}

Status StatsServer::Start() {
  if (running_) return Status::FailedPrecondition("stats server already running");

  if (pipe(wake_pipe_) != 0) {
    return Status::Internal(std::string("pipe() failed: ") +
                            std::strerror(errno));
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    Stop();
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    Stop();
    return Status::InvalidArgument("bad stats server bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    Stop();
    return Status::IOError("cannot bind stats server to " +
                           options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + error);
  }
  if (listen(listen_fd_, 16) != 0) {
    const std::string error = std::strerror(errno);
    Stop();
    return Status::IOError("listen() failed: " + error);
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  running_ = true;
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void StatsServer::Stop() {
  if (running_) {
    // One byte through the self-pipe unblocks every poll() in the server
    // thread (accept loop and any in-flight connection read).
    const char wake = 'x';
    ssize_t ignored = write(wake_pipe_[1], &wake, 1);
    (void)ignored;
    thread_.join();
    running_ = false;
  }
  for (int* fd : {&listen_fd_, &wake_pipe_[0], &wake_pipe_[1]}) {
    if (*fd >= 0) {
      close(*fd);
      *fd = -1;
    }
  }
  port_ = 0;
}

bool StatsServer::WaitReadable(int fd) {
  for (;;) {
    pollfd fds[2];
    fds[0].fd = fd;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    const int n = poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (fds[1].revents != 0) return false;  // Stop() fired.
    if (fds[0].revents != 0) return true;
  }
}

void StatsServer::AcceptLoop() {
  while (WaitReadable(listen_fd_)) {
    const int client_fd = accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    HandleConnection(client_fd);
    close(client_fd);
  }
}

void StatsServer::HandleConnection(int client_fd) {
  // Read until the end of the request head; GET requests have no body.
  // 8 KB is far beyond any sane request line + headers — anything longer
  // is garbage and gets a 400.
  std::string request;
  constexpr size_t kMaxRequestBytes = 8192;
  // Connection-lifetime accounting: the request head is the only buffer
  // the server holds per connection, so /memz shows exactly what a burst
  // of slow clients pins.
  ScopedBytes conn_bytes(
      MemoryRegistry::Default().GetGauge("obs.http_conn_buffer"), 0);
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    if (!WaitReadable(client_fd)) return;  // Stop() during a slow request.
    char buffer[1024];
    const ssize_t n = recv(client_fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // Peer closed (or error) before a full head.
    request.append(buffer, static_cast<size_t>(n));
    conn_bytes.Resize(request.capacity());
  }

  HttpRequest parsed;
  ParseRequestHead(request, &parsed);

  HttpResponse response;
  if (parsed.method.empty()) {
    response = HttpResponse::Text(400, "malformed request\n");
  } else if (parsed.method != "GET") {
    response = HttpResponse::Text(405, "only GET is supported\n");
  } else {
    Handler handler;
    RequestObservability obs;
    {
      std::lock_guard<std::mutex> lock(handlers_mu_);
      const auto it = handlers_.find(parsed.path);
      if (it != handlers_.end()) handler = it->second;
      obs = request_obs_;
    }
    if (handler) {
      if (obs.enabled()) {
        // The scope closes before the response is sent: by the time a
        // client sees the reply, its trace is queryable in /rpcz, /tracez
        // and the access log.
        RequestScope scope(obs, parsed.method, parsed.path,
                           parsed.HeaderOr("x-request-id", ""));
        response = handler(parsed);
        scope.set_status(response.code);
        scope.set_response_bytes(response.body.size());
        response.extra_headers.emplace_back("X-Request-Id",
                                            scope.request_id());
      } else {
        response = handler(parsed);
      }
    } else {
      response = HttpResponse::Text(404, "unknown path " + parsed.path + "\n");
    }
  }
  SendResponse(client_fd, response);
}

}  // namespace obs
}  // namespace inf2vec
