#include "obs/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/build_info.h"
#include "obs/heap_profiler.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/prometheus.h"
#include "obs/run_status.h"
#include "util/logging.h"

namespace inf2vec {
namespace obs {
namespace {

constexpr uint64_t kListenKey = 0;
constexpr uint64_t kWakeKey = 1;

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Internal(std::string("fcntl(O_NONBLOCK) failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

/// True when a comma-separated Connection header value names `token`
/// (case-insensitive), e.g. "keep-alive, Upgrade" -> "keep-alive".
bool ConnectionHeaderHas(const std::string& value, const std::string& token) {
  const std::string lowered = ToLower(value);
  size_t start = 0;
  while (start <= lowered.size()) {
    size_t end = lowered.find(',', start);
    if (end == std::string::npos) end = lowered.size();
    size_t a = start, b = end;
    while (a < b && lowered[a] == ' ') ++a;
    while (b > a && lowered[b - 1] == ' ') --b;
    if (lowered.compare(a, b - a, token) == 0) return true;
    if (end == lowered.size()) break;
    start = end + 1;
  }
  return false;
}

/// Serializes one response; the Connection header reflects the resolved
/// keep-alive decision so clients can reuse (or must drop) the socket.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  const bool close = !keep_alive || response.close_connection;
  std::string out = "HTTP/1.1 " + std::to_string(response.code) + " " +
                    response.reason + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += close ? "Connection: close\r\n\r\n" : "Connection: keep-alive\r\n\r\n";
  out += response.body;
  return out;
}

/// Outcome of parsing one request head: a request, or an error response
/// the event loop answers directly (and then closes the connection).
struct HeadParse {
  bool ok = false;
  HttpRequest request;
  size_t content_length = 0;
  int error_code = 400;
  std::string error_label = "BAD_REQUEST";
  std::string error_message;
};

/// Strict head parser: exactly "METHOD SP TARGET SP HTTP/1.x" then header
/// lines. Unlike the old read-to-EOF server, framing errors are typed:
/// malformed request lines and Content-Length values are 400s, an
/// unsupported version is a 505, chunked transfer is a 501, and an
/// oversized body is a 413 — all decided here, before any body byte is
/// read.
HeadParse ParseRequestHead(const std::string& head, size_t max_body_bytes) {
  HeadParse parse;
  const size_t line_end = head.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos || sp1 == 0 ||
      sp2 == sp1 + 1 || line.find(' ', sp2 + 1) != std::string::npos) {
    parse.error_message = "malformed request line";
    return parse;
  }
  parse.request.method = line.substr(0, sp1);
  parse.request.version = line.substr(sp2 + 1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') {
    parse.error_message = "request target must be an absolute path";
    return parse;
  }
  if (parse.request.version != "HTTP/1.1" &&
      parse.request.version != "HTTP/1.0") {
    parse.error_code = 505;
    parse.error_label = "HTTP_VERSION_NOT_SUPPORTED";
    parse.error_message =
        "unsupported protocol version '" + parse.request.version + "'";
    return parse;
  }
  // Dispatch is on the bare path: /metrics?foo=1 routes as /metrics and
  // the query string becomes structured parameters.
  const size_t query = target.find('?');
  if (query != std::string::npos) {
    parse.request.query = ParseQueryString(target.substr(query + 1));
    target.resize(query);
  }
  parse.request.path = std::move(target);

  // Header block. Garbage header lines are skipped (the server must not
  // be stricter than it historically was for merely odd headers), but
  // the framing headers — Content-Length, Transfer-Encoding — are
  // validated hard: they decide how many bytes get read next.
  size_t cursor = line_end == std::string::npos ? head.size() : line_end + 2;
  bool have_content_length = false;
  while (cursor < head.size()) {
    size_t next = head.find("\r\n", cursor);
    if (next == std::string::npos) next = head.size();
    if (next == cursor) break;  // Empty line: end of the header block.
    const std::string header = head.substr(cursor, next - cursor);
    cursor = next + 2;
    const size_t colon = header.find(':');
    if (colon == std::string::npos || colon == 0) continue;
    std::string name = ToLower(header.substr(0, colon));
    size_t value_start = colon + 1;
    while (value_start < header.size() && header[value_start] == ' ') {
      ++value_start;
    }
    size_t value_end = header.size();
    while (value_end > value_start && header[value_end - 1] == ' ') {
      --value_end;
    }
    std::string value = header.substr(value_start, value_end - value_start);
    if (name == "content-length") {
      if (value.empty()) {
        parse.error_message = "malformed Content-Length ''";
        return parse;
      }
      uint64_t length = 0;
      for (char c : value) {
        if (c < '0' || c > '9' || length > (UINT64_MAX - 9) / 10) {
          parse.error_message = "malformed Content-Length '" + value + "'";
          return parse;
        }
        length = length * 10 + static_cast<uint64_t>(c - '0');
      }
      if (have_content_length && length != parse.content_length) {
        parse.error_message = "conflicting Content-Length headers";
        return parse;
      }
      have_content_length = true;
      parse.content_length = static_cast<size_t>(length);
    } else if (name == "transfer-encoding") {
      parse.error_code = 501;
      parse.error_label = "NOT_IMPLEMENTED";
      parse.error_message = "Transfer-Encoding is not supported; "
                            "use Content-Length framing";
      return parse;
    }
    parse.request.headers.emplace_back(std::move(name), std::move(value));
  }
  if (parse.content_length > max_body_bytes) {
    parse.error_code = 413;
    parse.error_label = "BODY_TOO_LARGE";
    parse.error_message =
        "request body of " + std::to_string(parse.content_length) +
        " bytes exceeds the " + std::to_string(max_body_bytes) +
        "-byte limit";
    return parse;
  }

  const std::string connection =
      parse.request.HeaderOr("connection", "");
  if (parse.request.version == "HTTP/1.1") {
    parse.request.keep_alive = !ConnectionHeaderHas(connection, "close");
  } else {
    parse.request.keep_alive = ConnectionHeaderHas(connection, "keep-alive");
  }
  parse.ok = true;
  return parse;
}

}  // namespace

/// One accepted connection, owned exclusively by the event-loop thread.
/// Workers never see this struct: they receive a copy of the request and
/// return serialized bytes keyed by (conn id, slot seq), so a connection
/// torn down mid-request simply drops the late completion.
struct StatsServer::Conn {
  int fd = -1;
  uint64_t id = 0;
  std::string in;           // Unparsed inbound bytes.
  size_t in_consumed = 0;   // Parse cursor into `in` (compacted per pass).
  std::string out;          // Serialized responses awaiting write.
  size_t out_off = 0;

  /// Ordered response slots — one per parsed request, completed possibly
  /// out of order by the workers, flushed strictly in order.
  struct Slot {
    uint64_t seq = 0;
    bool ready = false;
    bool close_after = false;
    std::string bytes;
  };
  std::deque<Slot> slots;
  uint64_t next_seq = 0;

  bool peer_closed = false;       // recv() == 0: no more requests.
  bool closing_after_flush = false;  // Stop reading; close once drained.
  bool reading_body = false;
  size_t body_needed = 0;
  HttpRequest pending;            // Parsed head awaiting its body.
  uint32_t armed_events = 0;      // Currently registered epoll interest.
  uint64_t requests_seen = 0;
  std::chrono::steady_clock::time_point last_activity;
  /// Connection-lifetime accounting: buffered request/response bytes are
  /// the only per-connection memory, so /memz shows exactly what a burst
  /// of slow clients pins.
  ScopedBytes bytes_gauge;
};

bool HttpRequest::HasQuery(const std::string& key) const {
  for (const auto& [k, v] : query) {
    if (k == key) return true;
  }
  return false;
}

std::string HttpRequest::QueryOr(const std::string& key,
                                 const std::string& fallback) const {
  for (const auto& [k, v] : query) {
    if (k == key) return v;
  }
  return fallback;
}

std::string HttpRequest::HeaderOr(const std::string& name,
                                  const std::string& fallback) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return fallback;
}

const char* HttpReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 206: return "Partial Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

HttpResponse HttpResponse::Text(int code, std::string body) {
  HttpResponse response;
  response.code = code;
  response.reason = HttpReasonPhrase(code);
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Json(int code, std::string body) {
  HttpResponse response = Text(code, std::move(body));
  response.content_type = "application/json";
  return response;
}

HttpResponse ErrorJson(int http_code, const std::string& code,
                       const std::string& message) {
  JsonValue body = JsonValue::Object();
  body.Set("error", message);
  body.Set("code", code);
  return HttpResponse::Json(http_code, body.Dump(0) + "\n");
}

std::string UrlDecode(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '+') {
      out += ' ';
    } else if (raw[i] == '%' && i + 2 < raw.size() &&
               HexDigit(raw[i + 1]) >= 0 && HexDigit(raw[i + 2]) >= 0) {
      out += static_cast<char>(HexDigit(raw[i + 1]) * 16 +
                               HexDigit(raw[i + 2]));
      i += 2;
    } else {
      out += raw[i];
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ParseQueryString(
    const std::string& query) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    const std::string piece = query.substr(start, end - start);
    if (!piece.empty()) {
      const size_t eq = piece.find('=');
      if (eq == std::string::npos) {
        out.emplace_back(UrlDecode(piece), "");
      } else {
        out.emplace_back(UrlDecode(piece.substr(0, eq)),
                         UrlDecode(piece.substr(eq + 1)));
      }
    }
    if (end == query.size()) break;
    start = end + 1;
  }
  return out;
}

StatsServer::StatsServer(StatsServerOptions options, MetricsRegistry* registry)
    : options_(std::move(options)),
      registry_(registry),
      requests_total_(registry->GetCounter("http.requests")),
      connections_total_(registry->GetCounter("http.connections")),
      keepalive_reuses_(registry->GetCounter("http.keepalive_reuses")),
      shed_(registry->GetCounter("http.shed")),
      parse_errors_(registry->GetCounter("http.parse_errors")) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_pipeline == 0) options_.max_pipeline = 1;
  if (options_.max_inflight == 0) options_.max_inflight = 1;
  RegisterBuiltinEndpoints();
}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Route(const std::string& method, const std::string& path,
                        Handler handler) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  auto& methods = routes_[path];
  for (auto& [m, h] : methods) {
    if (m == method) {
      h = std::move(handler);
      return;
    }
  }
  methods.emplace_back(method, std::move(handler));
}

std::vector<std::string> StatsServer::HandledPaths() const {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  std::vector<std::string> paths;
  paths.reserve(routes_.size());
  for (const auto& [path, methods] : routes_) paths.push_back(path);
  return paths;
}

void StatsServer::SetRequestObservability(RequestObservability obs) {
  std::lock_guard<std::mutex> lock(handlers_mu_);
  request_obs_ = obs;
}

void StatsServer::RegisterBuiltinEndpoints() {
  Route("GET", "/metrics", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = RenderPrometheus(registry_->Scrape());
    return response;
  });
  Route("GET", "/statusz", [](const HttpRequest&) {
    return HttpResponse::Json(200,
                              RunStatus::Default().ToJson().Dump(2) + "\n");
  });
  Route("GET", "/varz", [](const HttpRequest&) {
    return HttpResponse::Json(200, EnvironmentJson().Dump(2) + "\n");
  });
  Route("GET", "/healthz", [](const HttpRequest&) {
    return HttpResponse::Text(200, "ok\n");
  });
  Route("GET", "/memz", [](const HttpRequest&) {
    return HttpResponse::Json(200, MemzJson().Dump(2) + "\n");
  });
  // Referencing the heap profiler here also guarantees heap_profiler.o —
  // and with it the operator new/delete replacements — is linked into
  // every binary that hosts a StatsServer.
  RegisterHeapProfilerEndpoint(this);
  Route("GET", "/", [this](const HttpRequest&) {
    std::string body = "inf2vec stats server\nendpoints:";
    for (const std::string& path : HandledPaths()) {
      if (path != "/") body += " " + path;
    }
    return HttpResponse::Text(200, body + "\n");
  });
}

Status StatsServer::Start() {
  if (running_) return Status::FailedPrecondition("stats server already running");

  epoll_fd_ = epoll_create1(0);
  if (epoll_fd_ < 0) {
    return Status::Internal(std::string("epoll_create1() failed: ") +
                            std::strerror(errno));
  }
  wake_fd_ = eventfd(0, EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    Stop();
    return Status::Internal(std::string("eventfd() failed: ") +
                            std::strerror(errno));
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    Stop();
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    Stop();
    return Status::InvalidArgument("bad stats server bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string error = std::strerror(errno);
    Stop();
    return Status::IOError("cannot bind stats server to " +
                           options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + error);
  }
  if (listen(listen_fd_, 128) != 0) {
    const std::string error = std::strerror(errno);
    Stop();
    return Status::IOError("listen() failed: " + error);
  }
  {
    const Status nonblocking = SetNonBlocking(listen_fd_);
    if (!nonblocking.ok()) {
      Stop();
      return nonblocking;
    }
  }

  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN;
  event.data.u64 = kListenKey;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event) != 0) {
    Stop();
    return Status::Internal(std::string("epoll_ctl(listen) failed: ") +
                            std::strerror(errno));
  }
  event.events = EPOLLIN;
  event.data.u64 = kWakeKey;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) != 0) {
    Stop();
    return Status::Internal(std::string("epoll_ctl(wake) failed: ") +
                            std::strerror(errno));
  }

  stopping_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_stopping_ = false;
  }
  inflight_.store(0, std::memory_order_relaxed);
  running_ = true;
  loop_thread_ = std::thread([this] { EventLoop(); });
  workers_.reserve(options_.num_workers);
  for (uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void StatsServer::Stop() {
  if (running_) {
    stopping_.store(true, std::memory_order_release);
    WakeLoop();
    loop_thread_.join();  // Closes every connection on the way out.
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      queue_stopping_ = true;
      job_queue_.clear();  // Their connections are gone already.
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      completions_.clear();
    }
    running_ = false;
  }
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) {
      close(*fd);
      *fd = -1;
    }
  }
  port_ = 0;
  stopping_.store(false, std::memory_order_relaxed);
}

void StatsServer::WakeLoop() {
  const uint64_t one = 1;
  const ssize_t ignored = write(wake_fd_, &one, sizeof(one));
  (void)ignored;
}

// ---------------------------------------------------------------------------
// Worker pool: admission queue out, completion queue back.

void StatsServer::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return queue_stopping_ || !job_queue_.empty(); });
      if (queue_stopping_) return;
      job = std::move(job_queue_.front());
      job_queue_.pop_front();
    }
    HttpResponse response = Dispatch(job.request);
    Completion completion;
    completion.conn_id = job.conn_id;
    completion.slot_seq = job.slot_seq;
    completion.close_after = !job.request.keep_alive ||
                             response.close_connection;
    completion.bytes = SerializeResponse(response, job.request.keep_alive);
    {
      std::lock_guard<std::mutex> lock(completion_mu_);
      completions_.push_back(std::move(completion));
    }
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    WakeLoop();
  }
}

HttpResponse StatsServer::Dispatch(const HttpRequest& request) {
  Handler handler;
  RequestObservability obs;
  std::string allowed;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    const auto it = routes_.find(request.path);
    if (it != routes_.end()) {
      for (const auto& [method, route_handler] : it->second) {
        if (method == request.method) {
          handler = route_handler;
        } else {
          if (!allowed.empty()) allowed += ", ";
          allowed += method;
        }
      }
    }
    obs = request_obs_;
  }
  if (!handler) {
    if (!allowed.empty()) {
      HttpResponse response =
          ErrorJson(405, "METHOD_NOT_ALLOWED",
                    "method " + request.method + " not allowed for " +
                        request.path);
      response.extra_headers.emplace_back("Allow", allowed);
      return response;
    }
    return ErrorJson(404, "NOT_FOUND", "unknown path " + request.path);
  }
  if (obs.enabled()) {
    // The scope closes before the response is queued for write: by the
    // time a client sees the reply, its trace is queryable in /rpcz,
    // /tracez and the access log. One scope per request — connection
    // reuse never shares ids or spans across requests.
    RequestScope scope(obs, request.method, request.path,
                       request.HeaderOr("x-request-id", ""));
    HttpResponse response = handler(request);
    scope.set_status(response.code);
    scope.set_response_bytes(response.body.size());
    response.extra_headers.emplace_back("X-Request-Id", scope.request_id());
    return response;
  }
  return handler(request);
}

// ---------------------------------------------------------------------------
// Event loop (single thread; owns all connection state).

void StatsServer::EventLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  auto last_sweep = std::chrono::steady_clock::now();
  while (!stopping_.load(std::memory_order_acquire)) {
    const int timeout_ms = options_.idle_timeout_ms > 0 ? 100 : -1;
    const int n = epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load(std::memory_order_acquire)) break;
    for (int i = 0; i < n; ++i) {
      const uint64_t key = events[i].data.u64;
      if (key == kWakeKey) {
        uint64_t drained = 0;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
      } else if (key == kListenKey) {
        AcceptNewConnections();
      } else {
        const auto it = conns_.find(key);
        if (it == conns_.end()) continue;  // Closed earlier this batch.
        Conn* conn = it->second.get();
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
            (events[i].events & EPOLLIN) == 0) {
          DestroyConn(conn);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) OnConnReadable(conn);
        // Readable handling may have destroyed the connection.
        const auto again = conns_.find(key);
        if (again == conns_.end()) continue;
        if ((events[i].events & EPOLLOUT) != 0) OnConnWritable(conn);
      }
    }
    if (options_.idle_timeout_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_sweep >= std::chrono::milliseconds(100)) {
        last_sweep = now;
        SweepIdleConns();
      }
    }
  }
  // Teardown on the owning thread: every connection closes here, so no
  // other thread ever touches a Conn.
  while (!conns_.empty()) DestroyConn(conns_.begin()->second.get());
}

void StatsServer::AcceptNewConnections() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient error.
    }
    if (conns_.size() >= options_.max_connections) {
      // Over the connection cap: shedding by immediate close is the only
      // option that costs no memory for a client that may never talk.
      close(fd);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity = std::chrono::steady_clock::now();
    conn->bytes_gauge = ScopedBytes(
        MemoryRegistry::Default().GetGauge("obs.http_conn_buffer"), 0);

    epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EPOLLIN;
    event.data.u64 = conn->id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      close(fd);
      continue;
    }
    conn->armed_events = EPOLLIN;
    if (MetricsEnabled()) connections_total_->Increment();
    conns_.emplace(conn->id, std::move(conn));
  }
}

void StatsServer::OnConnReadable(Conn* conn) {
  conn->last_activity = std::chrono::steady_clock::now();
  char buffer[16384];
  for (;;) {
    const ssize_t n = recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->in.append(buffer, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buffer)) break;
      // A full buffer may mean more is waiting; bound the per-event read
      // so one firehose connection cannot starve the loop.
      if (conn->in.size() - conn->in_consumed >
          options_.max_request_head_bytes + options_.max_body_bytes) {
        break;
      }
      continue;
    }
    if (n == 0) {
      conn->peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    DestroyConn(conn);
    return;
  }
  ParseConnInput(conn);
  const uint64_t id = conn->id;
  TryWrite(conn);
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;  // TryWrite closed it.
  if (conn->peer_closed && conn->slots.empty() &&
      conn->out_off >= conn->out.size()) {
    DestroyConn(conn);
    return;
  }
  AccountConnBytes(conn);
  UpdateInterest(conn);
}

void StatsServer::OnConnWritable(Conn* conn) {
  conn->last_activity = std::chrono::steady_clock::now();
  const uint64_t id = conn->id;
  TryWrite(conn);
  if (conns_.find(id) == conns_.end()) return;
  AccountConnBytes(conn);
  UpdateInterest(conn);
}

void StatsServer::ParseConnInput(Conn* conn) {
  while (!conn->closing_after_flush) {
    if (conn->slots.size() >= options_.max_pipeline) break;  // Back-pressure.
    if (conn->reading_body) {
      if (conn->in.size() - conn->in_consumed < conn->body_needed) break;
      conn->pending.body.assign(conn->in, conn->in_consumed,
                                conn->body_needed);
      conn->in_consumed += conn->body_needed;
      conn->reading_body = false;
      conn->body_needed = 0;
      SubmitRequest(conn, std::move(conn->pending));
      conn->pending = HttpRequest();
      continue;
    }
    const size_t head_end = conn->in.find("\r\n\r\n", conn->in_consumed);
    if (head_end == std::string::npos) {
      if (conn->in.size() - conn->in_consumed >
          options_.max_request_head_bytes) {
        if (MetricsEnabled()) parse_errors_->Increment();
        CompleteSlotInline(
            conn, conn->next_seq++,
            ErrorJson(431, "HEADER_TOO_LARGE",
                      "request line + headers exceed " +
                          std::to_string(options_.max_request_head_bytes) +
                          " bytes"),
            /*close_after=*/true);
      }
      break;
    }
    if (head_end + 4 - conn->in_consumed > options_.max_request_head_bytes) {
      if (MetricsEnabled()) parse_errors_->Increment();
      CompleteSlotInline(
          conn, conn->next_seq++,
          ErrorJson(431, "HEADER_TOO_LARGE",
                    "request line + headers exceed " +
                        std::to_string(options_.max_request_head_bytes) +
                        " bytes"),
          /*close_after=*/true);
      break;
    }
    const std::string head =
        conn->in.substr(conn->in_consumed, head_end + 4 - conn->in_consumed);
    conn->in_consumed = head_end + 4;
    HeadParse parse = ParseRequestHead(head, options_.max_body_bytes);
    if (!parse.ok) {
      if (MetricsEnabled()) parse_errors_->Increment();
      CompleteSlotInline(
          conn, conn->next_seq++,
          ErrorJson(parse.error_code, parse.error_label, parse.error_message),
          /*close_after=*/true);
      break;
    }
    if (parse.content_length > 0) {
      conn->reading_body = true;
      conn->body_needed = parse.content_length;
      conn->pending = std::move(parse.request);
      continue;
    }
    SubmitRequest(conn, std::move(parse.request));
  }
  if (conn->in_consumed > 0) {
    conn->in.erase(0, conn->in_consumed);
    conn->in_consumed = 0;
  }
}

void StatsServer::SubmitRequest(Conn* conn, HttpRequest request) {
  conn->requests_seen++;
  if (MetricsEnabled()) {
    requests_total_->Increment();
    if (conn->requests_seen > 1) keepalive_reuses_->Increment();
  }
  const uint64_t seq = conn->next_seq++;
  Conn::Slot slot;
  slot.seq = seq;
  conn->slots.push_back(std::move(slot));
  const bool request_close = !request.keep_alive;

  // Bounded admission: requests over the in-flight cap are shed right
  // here with 429 — no worker time, no queue growth, and the connection
  // stays usable so a backing-off client can retry cheaply.
  bool admitted = false;
  uint32_t inflight = inflight_.load(std::memory_order_relaxed);
  while (inflight < options_.max_inflight) {
    if (inflight_.compare_exchange_weak(inflight, inflight + 1,
                                        std::memory_order_relaxed)) {
      admitted = true;
      break;
    }
  }
  if (!admitted) {
    if (MetricsEnabled()) shed_->Increment();
    HttpResponse shed = ErrorJson(
        429, "OVERLOADED",
        "server over its admission limit of " +
            std::to_string(options_.max_inflight) +
            " in-flight requests; back off and retry");
    shed.extra_headers.emplace_back("Retry-After", "1");
    CompleteSlotInline(conn, seq, shed, request_close);
  } else {
    Job job;
    job.conn_id = conn->id;
    job.slot_seq = seq;
    job.request = std::move(request);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      job_queue_.push_back(std::move(job));
    }
    queue_cv_.notify_one();
  }
  if (request_close) {
    // "Connection: close" honored: nothing after this request gets
    // parsed; the connection drains its pending responses and closes.
    conn->closing_after_flush = true;
  }
}

void StatsServer::CompleteSlotInline(Conn* conn, uint64_t slot_seq,
                                     const HttpResponse& response,
                                     bool close_after) {
  // Inline completions answer before any worker: the slot may not exist
  // yet (parse errors mint their own seq).
  bool found = false;
  for (Conn::Slot& slot : conn->slots) {
    if (slot.seq == slot_seq) {
      slot.bytes = SerializeResponse(response, !close_after);
      slot.ready = true;
      slot.close_after = close_after;
      found = true;
      break;
    }
  }
  if (!found) {
    Conn::Slot slot;
    slot.seq = slot_seq;
    slot.bytes = SerializeResponse(response, !close_after);
    slot.ready = true;
    slot.close_after = close_after;
    conn->slots.push_back(std::move(slot));
  }
  if (close_after) conn->closing_after_flush = true;
  FlushReadySlots(conn);
}

void StatsServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completion_mu_);
    batch.swap(completions_);
  }
  for (const Completion& completion : batch) ApplyCompletion(completion);
}

void StatsServer::ApplyCompletion(const Completion& completion) {
  const auto it = conns_.find(completion.conn_id);
  if (it == conns_.end()) return;  // Connection died while the worker ran.
  Conn* conn = it->second.get();
  for (Conn::Slot& slot : conn->slots) {
    if (slot.seq == completion.slot_seq) {
      slot.bytes = completion.bytes;
      slot.ready = true;
      slot.close_after = completion.close_after;
      break;
    }
  }
  FlushReadySlots(conn);
  const uint64_t id = conn->id;
  TryWrite(conn);
  const auto again = conns_.find(id);
  if (again == conns_.end()) return;
  // Slots drained below the pipeline cap may unblock parsing of input
  // that arrived while the connection was back-pressured.
  ParseConnInput(conn);
  FlushReadySlots(conn);
  TryWrite(conn);
  if (conns_.find(id) == conns_.end()) return;
  if (conn->peer_closed && conn->slots.empty() &&
      conn->out_off >= conn->out.size()) {
    DestroyConn(conn);
    return;
  }
  AccountConnBytes(conn);
  UpdateInterest(conn);
}

void StatsServer::FlushReadySlots(Conn* conn) {
  while (!conn->slots.empty() && conn->slots.front().ready) {
    Conn::Slot& slot = conn->slots.front();
    conn->out += slot.bytes;
    if (slot.close_after) conn->closing_after_flush = true;
    conn->slots.pop_front();
  }
  // Compact the out buffer when everything written so far is consumed.
  if (conn->out_off > 0 && conn->out_off == conn->out.size()) {
    conn->out.clear();
    conn->out_off = 0;
  }
}

void StatsServer::TryWrite(Conn* conn) {
  while (conn->out_off < conn->out.size()) {
    const ssize_t n = send(conn->fd, conn->out.data() + conn->out_off,
                           conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // Peer is gone mid-write: nothing left to deliver.
    DestroyConn(conn);
    return;
  }
  if (conn->out_off == conn->out.size()) {
    conn->out.clear();
    conn->out_off = 0;
    if (conn->closing_after_flush && conn->slots.empty()) {
      DestroyConn(conn);
    }
  }
}

void StatsServer::UpdateInterest(Conn* conn) {
  uint32_t wanted = 0;
  const bool paused = conn->slots.size() >= options_.max_pipeline;
  if (!conn->peer_closed && !conn->closing_after_flush && !paused) {
    wanted |= EPOLLIN;
  }
  if (conn->out_off < conn->out.size()) wanted |= EPOLLOUT;
  if (wanted == conn->armed_events) return;
  epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = wanted;
  event.data.u64 = conn->id;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &event) == 0) {
    conn->armed_events = wanted;
  }
}

void StatsServer::AccountConnBytes(Conn* conn) {
  uint64_t bytes = conn->in.capacity() + conn->out.capacity();
  for (const Conn::Slot& slot : conn->slots) bytes += slot.bytes.capacity();
  conn->bytes_gauge.Resize(bytes);
}

void StatsServer::DestroyConn(Conn* conn) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  conns_.erase(conn->id);  // Frees the Conn (and its byte reservation).
}

void StatsServer::SweepIdleConns() {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<Conn*> idle;
  for (const auto& [id, conn] : conns_) {
    // Only truly quiet connections: nothing buffered, nothing in flight.
    if (conn->slots.empty() && conn->out_off >= conn->out.size() &&
        now - conn->last_activity > limit) {
      idle.push_back(conn.get());
    }
  }
  for (Conn* conn : idle) DestroyConn(conn);
}

}  // namespace obs
}  // namespace inf2vec
