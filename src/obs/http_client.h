// Minimal blocking-style HTTP/1.1 loopback client with keep-alive reuse
// and per-call deadlines, shared by the test suites, bench_serve, and the
// shard coordinator's backend fan-out. One HttpClient == one connection;
// it is NOT thread-safe — give each fan-out thread its own instance.
//
// The socket is always non-blocking under the hood; every operation is a
// poll() loop against an absolute deadline, so a dead or wedged peer can
// never hang the caller past its budget (the property the coordinator's
// degraded mode depends on). deadline_ms == 0 means "no deadline".
#ifndef INF2VEC_OBS_HTTP_CLIENT_H_
#define INF2VEC_OBS_HTTP_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace inf2vec {
namespace obs {

/// One parsed response as read off the wire. `headers` is the raw head
/// block (status line + header lines, no trailing CRLFCRLF) so wire-level
/// tests can assert on exact bytes.
struct HttpClientResponse {
  int status = 0;
  std::string headers;
  std::string body;

  /// Case-insensitive single-header lookup over the raw head block.
  /// Returns `fallback` when the header is absent.
  std::string HeaderOr(const std::string& name,
                       const std::string& fallback) const;
  bool HasHeader(const std::string& name) const;
};

class HttpClient {
 public:
  HttpClient() = default;
  /// Does not connect; the first Call()/Connect() does.
  explicit HttpClient(uint16_t port, std::string host = "127.0.0.1")
      : host_(std::move(host)), port_(port) {}
  ~HttpClient();

  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  uint16_t port() const { return port_; }
  const std::string& host() const { return host_; }
  bool connected() const { return fd_ >= 0; }

  /// (Re)establishes the connection. Idempotent when already connected.
  bool Connect(uint64_t deadline_ms = 0);
  void Close();

  /// Sends one request and reads its Content-Length-framed response off
  /// the shared connection. Connects lazily; when a *reused* connection
  /// turns out to be dead (peer closed between calls), reconnects once
  /// and retries. The deadline covers connect + send + read together.
  bool Call(const std::string& method, const std::string& target,
            const std::string& body, HttpClientResponse* out,
            uint64_t deadline_ms = 0);
  bool Get(const std::string& target, HttpClientResponse* out,
           uint64_t deadline_ms = 0);
  bool Post(const std::string& target, const std::string& body,
            HttpClientResponse* out, uint64_t deadline_ms = 0);

  // --- Raw-wire surface (conformance tests drive framing by hand) ---

  /// Writes raw bytes; no framing added. Connects lazily, never retries.
  bool SendRaw(const std::string& bytes, uint64_t deadline_ms = 0);
  /// Reads exactly one Content-Length-framed response (missing
  /// Content-Length == empty body). False on EOF or malformed head.
  bool ReadResponse(HttpClientResponse* out, uint64_t deadline_ms = 0);
  /// True when the peer closed (EOF) with no further response bytes.
  bool AtEof();

  /// Builds a request head + body with Host and Content-Length headers.
  /// `extra_headers` lines are inserted verbatim before the blank line.
  static std::string FormatRequest(
      const std::string& method, const std::string& target,
      const std::string& host, const std::string& body,
      const std::vector<std::string>& extra_headers = {},
      bool keep_alive = true);

  /// One-shot convenience: GET with Connection: close, read to EOF,
  /// parse. Status 0 on any transport failure.
  static HttpClientResponse Fetch(uint16_t port, const std::string& target,
                                  uint64_t deadline_ms = 0);

 private:
  bool Fill(uint64_t deadline_abs_ms);  // appends >=1 byte or fails
  bool CallOnce(const std::string& request, HttpClientResponse* out,
                uint64_t deadline_abs_ms, bool* reused_conn_died);

  std::string host_ = "127.0.0.1";
  uint16_t port_ = 0;
  int fd_ = -1;
  bool fresh_ = false;  // no request has used this connection yet
  std::string buffer_;  // bytes received but not yet consumed
};

}  // namespace obs
}  // namespace inf2vec

#endif  // INF2VEC_OBS_HTTP_CLIENT_H_
