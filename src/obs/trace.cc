#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace inf2vec {
namespace obs {

TraceCollector::TraceCollector(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

TraceCollector& TraceCollector::Default() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

uint64_t TraceCollector::NowMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceCollector::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  // Full: overwrite the oldest (the cursor always points at it once the
  // ring has wrapped).
  ring_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

std::vector<TraceEvent> TraceCollector::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wrapped_) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<ptrdiff_t>(next_));
  return out;
}

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

std::string TraceCollector::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ',';
    out += StrFormat(
        "\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
        "\"ts\": %llu, \"dur\": %llu, \"pid\": 1, \"tid\": %u}",
        JsonEscape(e.name).c_str(), JsonEscape(e.category).c_str(),
        static_cast<unsigned long long>(e.start_us),
        static_cast<unsigned long long>(e.duration_us), e.tid);
  }
  out += "\n]}\n";
  return out;
}

Status TraceCollector::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  const std::string json = ToChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to trace output file: " + path);
  }
  return Status::OK();
}

TraceSpan::TraceSpan(std::string name, std::string category,
                     TraceCollector* collector)
    : collector_(collector != nullptr && collector->enabled() ? collector
                                                              : nullptr) {
  if (collector_ == nullptr) return;
  name_ = std::move(name);
  category_ = std::move(category);
  start_us_ = collector_->NowMicros();
}

TraceSpan::~TraceSpan() {
  if (collector_ == nullptr) return;
  const uint64_t end_us = collector_->NowMicros();
  collector_->Record(TraceEvent{
      std::move(name_), std::move(category_), CurrentThreadIndex(), start_us_,
      end_us - start_us_});
}

}  // namespace obs
}  // namespace inf2vec
