#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace inf2vec {
namespace obs {
namespace {

/// Per-thread span state: the innermost active span (parent for the next
/// one) and the installed sink. Thread-locals, so no synchronization.
thread_local TraceSpan* t_current_span = nullptr;
thread_local TraceSink* t_sink = nullptr;

/// Process-wide span-id source; 0 is reserved for "no parent".
std::atomic<uint64_t> g_next_span_id{1};

}  // namespace

TraceCollector::TraceCollector(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

TraceCollector& TraceCollector::Default() {
  static TraceCollector* collector = [] {
    auto* c = new TraceCollector();
    // The singleton never dies, so a scrape-time provider is safe; /memz
    // charges the ring's live bytes without the hot Record() path paying
    // for byte bookkeeping.
    MemoryRegistry::Default().RegisterProvider(
        "obs.trace_ring", [c] { return static_cast<uint64_t>(c->ApproxBytes()); });
    return c;
  }();
  return *collector;
}

uint64_t TraceCollector::NowMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceCollector::Record(TraceEvent event) {
  bool overflowed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(event));
    } else {
      // Full: overwrite the oldest (the cursor always points at it once
      // the ring has wrapped).
      ring_[next_] = std::move(event);
      next_ = (next_ + 1) % capacity_;
      wrapped_ = true;
      ++dropped_;
      overflowed = true;
    }
  }
  // Overflow is the one trace condition operators must see: the ring
  // wrapping during a burst is exactly when /tracez-style accounting goes
  // blind. Counted off-lock — the counter stripes synchronize themselves.
  if (overflowed && MetricsEnabled()) {
    static Counter* drops =
        MetricsRegistry::Default().GetCounter("trace.dropped");
    drops->Increment();
  }
}

std::vector<TraceEvent> TraceCollector::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wrapped_) return ring_;
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<ptrdiff_t>(next_));
  return out;
}

size_t TraceCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

size_t TraceCollector::ApproxBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = ring_.capacity() * sizeof(TraceEvent);
  for (const TraceEvent& event : ring_) {
    bytes += event.name.capacity() + event.category.capacity();
    bytes += event.args.capacity() *
             sizeof(std::pair<std::string, std::string>);
    for (const auto& [key, value] : event.args) {
      bytes += key.capacity() + value.capacity();
    }
  }
  return bytes;
}

uint64_t TraceCollector::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  dropped_ = 0;
  epoch_ = std::chrono::steady_clock::now();
}

std::string TraceCollector::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ',';
    out += StrFormat(
        "\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
        "\"ts\": %llu, \"dur\": %llu, \"pid\": 1, \"tid\": %u",
        JsonEscape(e.name).c_str(), JsonEscape(e.category).c_str(),
        static_cast<unsigned long long>(e.start_us),
        static_cast<unsigned long long>(e.duration_us), e.tid);
    // Span linkage + attributes ride in "args" so the viewer's details
    // pane shows them; absent for legacy two-field events.
    if (e.id != 0 || !e.args.empty()) {
      out += ", \"args\": {";
      bool first = true;
      if (e.id != 0) {
        out += StrFormat("\"span_id\": %llu, \"parent_id\": %llu",
                         static_cast<unsigned long long>(e.id),
                         static_cast<unsigned long long>(e.parent_id));
        first = false;
      }
      for (const auto& [key, value] : e.args) {
        if (!first) out += ", ";
        out += "\"" + JsonEscape(key) + "\": \"" + JsonEscape(value) + "\"";
        first = false;
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

Status TraceCollector::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output file: " + path);
  }
  const std::string json = ToChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to trace output file: " + path);
  }
  return Status::OK();
}

TraceSink* SetThreadTraceSink(TraceSink* sink) {
  TraceSink* previous = t_sink;
  t_sink = sink;
  return previous;
}

TraceSink* ThreadTraceSink() { return t_sink; }

TraceSpan* TraceSpan::Current() { return t_current_span; }

TraceSpan::TraceSpan(std::string name, std::string category,
                     TraceCollector* collector) {
  sink_ = t_sink;
  const bool collector_on = collector != nullptr && collector->enabled();
  if (sink_ == nullptr && !collector_on) return;  // Inert.
  active_ = true;
  collector_ = collector_on ? collector : nullptr;
  name_ = std::move(name);
  category_ = std::move(category);
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = this;
  // Sink-only spans still time against the default collector's epoch so
  // every span in the process shares one clock base.
  start_us_ = (collector_ != nullptr ? collector_ : &TraceCollector::Default())
                  ->NowMicros();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  t_current_span = parent_;
  const uint64_t end_us =
      (collector_ != nullptr ? collector_ : &TraceCollector::Default())
          ->NowMicros();
  TraceEvent event{std::move(name_),
                   std::move(category_),
                   CurrentThreadIndex(),
                   start_us_,
                   end_us - start_us_,
                   id_,
                   parent_ != nullptr ? parent_->id_ : 0,
                   std::move(args_)};
  if (sink_ != nullptr) sink_->OnSpanEnd(event);
  if (collector_ != nullptr) collector_->Record(std::move(event));
}

void TraceSpan::SetAttr(const std::string& key, std::string value) {
  if (!active_) return;
  args_.emplace_back(key, std::move(value));
}

void TraceSpan::SetAttr(const std::string& key, const char* value) {
  SetAttr(key, std::string(value));
}

void TraceSpan::SetAttr(const std::string& key, uint64_t value) {
  if (!active_) return;
  args_.emplace_back(key, std::to_string(value));
}

void TraceSpan::SetAttr(const std::string& key, bool value) {
  if (!active_) return;
  args_.emplace_back(key, value ? "true" : "false");
}

}  // namespace obs
}  // namespace inf2vec
