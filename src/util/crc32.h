#ifndef INF2VEC_UTIL_CRC32_H_
#define INF2VEC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace inf2vec {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant) over a
/// byte range. Used by the checkpoint format to detect torn or bit-rotted
/// sections before any of their content is trusted.
///
/// Pass a previous return value as `seed` to checksum a stream in chunks:
/// Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a, b)).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace inf2vec

#endif  // INF2VEC_UTIL_CRC32_H_
