#ifndef INF2VEC_UTIL_STATUS_H_
#define INF2VEC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace inf2vec {

/// Error codes carried by Status. Mirrors the small, fixed vocabulary used
/// by storage-engine style libraries (RocksDB / Arrow): a handful of broad
/// categories, with detail in the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kDeadlineExceeded,
};

/// "OK" / "INVALID_ARGUMENT" / ... — the wire label for a code.
const char* StatusCodeName(StatusCode code);

/// Return-value error type. Functions that can fail return a Status (or a
/// Result<T>, see below) instead of throwing; callers are expected to check
/// `ok()` before using any output parameters.
///
/// The OK state stores no message and is cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<CODE>: <message>" string, "OK" for success.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

namespace internal_status {
/// Reports the bad access and aborts. Out-of-line so the header stays lean.
[[noreturn]] void DieOnErrorAccess(const Status& status);
}  // namespace internal_status

/// Value-or-error holder. On success holds a T; on failure holds the Status
/// explaining why no value exists. Accessing value() on an error aborts.
template <typename T>
class Result {
 public:
  /// Implicit from value: lets `return some_t;` work in Result-returning
  /// functions, matching absl::StatusOr ergonomics.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from a non-OK Status: lets `return Status::...;` work.
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

 private:
  void AbortIfError() const {
    if (!status_.ok()) internal_status::DieOnErrorAccess(status_);
  }

  Status status_;
  std::optional<T> value_;
};

/// Propagate a non-OK Status to the caller.
#define INF2VEC_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::inf2vec::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                        \
  } while (0)

}  // namespace inf2vec

#endif  // INF2VEC_UTIL_STATUS_H_
