#ifndef INF2VEC_UTIL_IO_H_
#define INF2VEC_UTIL_IO_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace inf2vec {

/// Reads a whole text file into `lines` (without trailing newlines).
Status ReadLines(const std::string& path, std::vector<std::string>* lines);

/// Writes `lines` to `path`, one per line, replacing any existing file.
Status WriteLines(const std::string& path,
                  const std::vector<std::string>& lines);

/// Reads a whole file into `contents` as raw bytes.
Status ReadFile(const std::string& path, std::string* contents);

/// Writes `contents` verbatim, replacing any existing file.
Status WriteFile(const std::string& path, const std::string& contents);

/// Crash-safe replacement of `path`: writes to a sibling temporary file,
/// then commits with rename(2), which POSIX guarantees atomic within a
/// filesystem. Readers see either the old bytes or the complete new bytes,
/// never a torn mix — the checkpoint subsystem depends on this.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

}  // namespace inf2vec

#endif  // INF2VEC_UTIL_IO_H_
