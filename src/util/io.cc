#include "util/io.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace inf2vec {

Status ReadLines(const std::string& path, std::vector<std::string>* lines) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  lines->clear();
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines->push_back(line);
  }
  if (in.bad()) return Status::IOError("read failure: " + path);
  return Status::OK();
}

Status WriteLines(const std::string& path,
                  const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  for (const std::string& line : lines) out << line << '\n';
  out.flush();
  if (!out.good()) return Status::IOError("write failure: " + path);
  return Status::OK();
}

Status ReadFile(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read failure: " + path);
  *contents = buffer.str();
  return Status::OK();
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out.good()) return Status::IOError("write failure: " + path);
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  // The temporary lives in the same directory so the final rename never
  // crosses a filesystem boundary (rename is only atomic within one).
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const Status written = WriteFile(tmp, contents);
  if (!written.ok()) return written;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("atomic rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

}  // namespace inf2vec
