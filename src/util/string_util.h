#ifndef INF2VEC_UTIL_STRING_UTIL_H_
#define INF2VEC_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace inf2vec {

/// Splits `text` on `delim`, keeping empty fields (TSV semantics).
std::vector<std::string_view> SplitString(std::string_view text, char delim);

/// Strips leading/trailing ASCII whitespace.
std::string_view TrimString(std::string_view text);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Strict full-string numeric parses; reject trailing garbage.
Status ParseInt64(std::string_view text, int64_t* out);
Status ParseUint32(std::string_view text, uint32_t* out);
Status ParseDouble(std::string_view text, double* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace inf2vec

#endif  // INF2VEC_UTIL_STRING_UTIL_H_
