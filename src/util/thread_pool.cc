#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace inf2vec {

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(ResolveThreadCount(num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

uint32_t ThreadPool::ResolveThreadCount(uint32_t requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

uint64_t ThreadPool::ShardSeed(uint64_t base_seed, uint64_t shard) {
  // splitmix64 finalizer over the shard index.
  uint64_t z = shard + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return base_seed ^ (z ^ (z >> 31));
}

void ThreadPool::ParallelFor(size_t begin, size_t end, const ShardFn& fn) {
  if (end <= begin) return;
  const size_t n = end - begin;
  const uint32_t shards = static_cast<uint32_t>(
      std::min<size_t>(num_threads_, n));
  if (shards <= 1) {
    fn(0, begin, end);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    INF2VEC_CHECK(job_shards_ == 0 && pending_ == 0)
        << "ThreadPool::ParallelFor is not reentrant";
    job_fn_ = &fn;
    job_begin_ = begin;
    job_size_ = n;
    job_shards_ = shards;
    next_shard_ = 0;
    pending_ = shards;
  }
  work_cv_.notify_all();
  RunShards();  // The caller is worker zero-or-more; shards are claimed.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return stop_ || next_shard_ < job_shards_; });
      if (stop_) return;
    }
    RunShards();
  }
}

void ThreadPool::RunShards() {
  for (;;) {
    uint32_t shard = 0;
    size_t shard_begin = 0;
    size_t shard_end = 0;
    const ShardFn* fn = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_shard_ >= job_shards_) return;
      shard = next_shard_++;
      // Near-equal contiguous ranges; the first (size % shards) shards
      // absorb one extra element each.
      const size_t chunk = job_size_ / job_shards_;
      const size_t extra = job_size_ % job_shards_;
      shard_begin = job_begin_ + shard * chunk +
                    std::min<size_t>(shard, extra);
      shard_end = shard_begin + chunk + (shard < extra ? 1 : 0);
      fn = job_fn_;
    }
    (*fn)(shard, shard_begin, shard_end);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last = (--pending_ == 0);
      if (last) {
        job_shards_ = 0;  // Park workers until the next job is posted.
        job_fn_ = nullptr;
      }
    }
    if (last) done_cv_.notify_all();
  }
}

}  // namespace inf2vec
