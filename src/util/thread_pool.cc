#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"

namespace inf2vec {
namespace {

using SteadyClock = std::chrono::steady_clock;

std::atomic<ThreadPoolObserver*> g_pool_observer{nullptr};

double MicrosSince(SteadyClock::time_point start, SteadyClock::time_point end) {
  return std::chrono::duration<double, std::micro>(end - start).count();
}

}  // namespace

void SetThreadPoolObserver(ThreadPoolObserver* observer) {
  g_pool_observer.store(observer, std::memory_order_release);
}

ThreadPoolObserver* GetThreadPoolObserver() {
  return g_pool_observer.load(std::memory_order_acquire);
}

ThreadPool::ThreadPool(uint32_t num_threads)
    : num_threads_(ResolveThreadCount(num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (uint32_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

uint32_t ThreadPool::ResolveThreadCount(uint32_t requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

uint64_t ThreadPool::ShardSeed(uint64_t base_seed, uint64_t shard) {
  // splitmix64 finalizer over the shard index.
  uint64_t z = shard + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return base_seed ^ (z ^ (z >> 31));
}

void ThreadPool::ParallelFor(size_t begin, size_t end, const ShardFn& fn) {
  if (end <= begin) return;
  const size_t n = end - begin;
  const uint32_t shards = static_cast<uint32_t>(
      std::min<size_t>(num_threads_, n));
  ThreadPoolObserver* observer = GetThreadPoolObserver();
  if (shards <= 1) {
    if (observer == nullptr) {
      fn(0, begin, end);
      return;
    }
    const SteadyClock::time_point start = SteadyClock::now();
    fn(0, begin, end);
    const double exec_us = MicrosSince(start, SteadyClock::now());
    observer->OnShard(0, /*queue_wait_us=*/0.0, exec_us);
    observer->OnJob(1, n, exec_us);
    return;
  }
  const SteadyClock::time_point post_time = SteadyClock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    INF2VEC_CHECK(job_shards_ == 0 && pending_ == 0)
        << "ThreadPool::ParallelFor is not reentrant";
    job_fn_ = &fn;
    job_post_time_ = post_time;
    job_begin_ = begin;
    job_size_ = n;
    job_shards_ = shards;
    next_shard_ = 0;
    pending_ = shards;
  }
  work_cv_.notify_all();
  RunShards();  // The caller is worker zero-or-more; shards are claimed.
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
  }
  if (observer != nullptr) {
    observer->OnJob(shards, n, MicrosSince(post_time, SteadyClock::now()));
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return stop_ || next_shard_ < job_shards_; });
      if (stop_) return;
    }
    RunShards();
  }
}

void ThreadPool::RunShards() {
  ThreadPoolObserver* observer = GetThreadPoolObserver();
  for (;;) {
    uint32_t shard = 0;
    size_t shard_begin = 0;
    size_t shard_end = 0;
    const ShardFn* fn = nullptr;
    double wait_us = 0.0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_shard_ >= job_shards_) return;
      shard = next_shard_++;
      // Near-equal contiguous ranges; the first (size % shards) shards
      // absorb one extra element each.
      const size_t chunk = job_size_ / job_shards_;
      const size_t extra = job_size_ % job_shards_;
      shard_begin = job_begin_ + shard * chunk +
                    std::min<size_t>(shard, extra);
      shard_end = shard_begin + chunk + (shard < extra ? 1 : 0);
      fn = job_fn_;
      if (observer != nullptr) {
        wait_us = MicrosSince(job_post_time_, SteadyClock::now());
      }
    }
    const SteadyClock::time_point exec_start =
        observer != nullptr ? SteadyClock::now() : SteadyClock::time_point();
    (*fn)(shard, shard_begin, shard_end);
    if (observer != nullptr) {
      observer->OnShard(shard, wait_us,
                        MicrosSince(exec_start, SteadyClock::now()));
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last = (--pending_ == 0);
      if (last) {
        job_shards_ = 0;  // Park workers until the next job is posted.
        job_fn_ = nullptr;
      }
    }
    if (last) done_cv_.notify_all();
  }
}

}  // namespace inf2vec
