#ifndef INF2VEC_UTIL_HISTOGRAM_H_
#define INF2VEC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace inf2vec {

/// Frequency histogram over non-negative integer observations, with the
/// summaries the paper's data-analysis figures need: count-of-counts
/// (Fig. 1-2 power-law plots), CDF (Fig. 3), and a log-log slope estimate
/// used by tests to assert power-law shape.
///
/// Two construction modes:
///  * exact (default): every distinct value keeps its own count;
///  * fixed-boundary: observations are bucketized to the largest boundary
///    <= value (values below the first boundary count under the first
///    boundary). Fixed boundaries make thread-sharded histograms combine
///    deterministically with Merge() regardless of per-shard value sets —
///    the representation the observability metrics layer relies on.
class Histogram {
 public:
  Histogram() = default;
  /// Fixed-boundary mode. `boundaries` must be non-empty and strictly
  /// increasing (checked).
  explicit Histogram(std::vector<uint64_t> boundaries);

  void Add(uint64_t value) { Add(value, 1); }
  void Add(uint64_t value, uint64_t weight);

  /// Adds every count of `other` into this histogram. Both histograms must
  /// have identical boundary configurations (both exact, or both the same
  /// fixed boundaries — checked); the combined result is then independent
  /// of shard/merge order.
  void Merge(const Histogram& other);

  /// Empty for exact mode; the construction boundaries otherwise.
  const std::vector<uint64_t>& boundaries() const { return boundaries_; }

  uint64_t total_count() const { return total_count_; }
  bool empty() const { return counts_.empty(); }

  /// Number of observations equal to `value`.
  uint64_t CountOf(uint64_t value) const;

  /// P(X <= value) over all added observations. Returns 0 for an empty
  /// histogram.
  double CdfAt(uint64_t value) const;

  double Mean() const;
  uint64_t Max() const;

  /// Smallest recorded value v with CdfAt(v) >= q, for q in [0, 1]
  /// (checked). Returns 0 for an empty histogram. In fixed-boundary mode
  /// the result is the bucket's lower boundary.
  uint64_t Quantile(double q) const;

  /// Sorted (value, count) pairs.
  std::vector<std::pair<uint64_t, uint64_t>> Items() const;

  /// Least-squares slope of log10(count) vs log10(value) over entries with
  /// value >= 1; a power-law frequency plot has slope well below 0 (around
  /// -1 to -3 for social data). Returns 0 when fewer than two usable points.
  double LogLogSlope() const;

  /// Renders "value<TAB>count" lines, largest-count values first capped to
  /// `max_rows` (0 = unlimited).
  std::string ToTsv(size_t max_rows) const;

 private:
  /// Maps a raw observation to its bucket key (identity in exact mode).
  uint64_t BucketOf(uint64_t value) const;

  std::vector<uint64_t> boundaries_;  // Empty <=> exact mode.
  std::map<uint64_t, uint64_t> counts_;
  uint64_t total_count_ = 0;
};

}  // namespace inf2vec

#endif  // INF2VEC_UTIL_HISTOGRAM_H_
