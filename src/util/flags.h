#ifndef INF2VEC_UTIL_FLAGS_H_
#define INF2VEC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace inf2vec {

/// Minimal command-line flag parser for the CLI tools: supports
/// "--key value", "--key=value", and bare "--switch" forms; everything
/// else is positional. No global state — parse, then query.
class FlagParser {
 public:
  /// Parses argv[1..). Fails on a dangling "--key" at the end only if the
  /// key is followed by nothing and looks value-less ambiguous; bare
  /// switches are stored with an empty value.
  static Result<FlagParser> Parse(int argc, const char* const* argv);

  bool Has(const std::string& key) const {
    return values_.find(key) != values_.end();
  }

  /// Value of --key, or `fallback` when absent.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Integer / double / boolean flag accessors; parse errors propagate.
  Result<int64_t> GetInt(const std::string& key, int64_t fallback) const;
  Result<double> GetDouble(const std::string& key, double fallback) const;
  /// Bare "--switch" (or --switch=true/1) reads as true.
  bool GetBool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Keys that were provided but never queried are a common typo source;
  /// the CLI calls this after dispatch to warn. Order unspecified.
  std::vector<std::string> Keys() const;

 private:
  FlagParser() = default;

  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace inf2vec

#endif  // INF2VEC_UTIL_FLAGS_H_
