#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace inf2vec {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (uint64_t& lane : state_) lane = SplitMix64(s);
}

RngState Rng::state() const {
  RngState snapshot;
  for (int i = 0; i < 4; ++i) snapshot.lanes[i] = state_[i];
  snapshot.spare_gaussian = spare_gaussian_;
  snapshot.has_spare_gaussian = has_spare_gaussian_;
  return snapshot;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.lanes[i];
  spare_gaussian_ = state.spare_gaussian;
  has_spare_gaussian_ = state.has_spare_gaussian;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  INF2VEC_CHECK(bound > 0) << "UniformU64 bound must be positive";
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  INF2VEC_CHECK(lo <= hi) << "UniformInt requires lo <= hi";
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace inf2vec
