#ifndef INF2VEC_UTIL_ALIAS_SAMPLER_H_
#define INF2VEC_UTIL_ALIAS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {

/// Walker alias-method sampler: O(n) construction, O(1) draws from an
/// arbitrary discrete distribution. Used for unigram^0.75 negative sampling
/// and popularity-weighted seed selection in the synthetic generator.
class AliasSampler {
 public:
  AliasSampler() = default;

  /// Builds the alias table for (unnormalized, non-negative) `weights`.
  /// Fails if weights is empty, contains a negative/NaN entry, or sums to 0.
  Status Build(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to its
  /// weight. Requires a successful Build().
  uint32_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  /// Normalized probability of index `i` as reconstructed from the table;
  /// exposed for testing.
  double ProbabilityOf(uint32_t i) const;

 private:
  std::vector<double> prob_;     // Acceptance probability per column.
  std::vector<uint32_t> alias_;  // Fallback index per column.
};

}  // namespace inf2vec

#endif  // INF2VEC_UTIL_ALIAS_SAMPLER_H_
