#ifndef INF2VEC_UTIL_RNG_H_
#define INF2VEC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace inf2vec {

/// The complete serializable state of an Rng: the four xoshiro256** lanes
/// plus the Box-Muller spare deviate. Capturing it with Rng::state() and
/// restoring with Rng::set_state() resumes the stream exactly where it
/// left off — the checkpoint subsystem persists these so an interrupted
/// training run replays bit-for-bit.
struct RngState {
  uint64_t lanes[4] = {0, 0, 0, 0};
  double spare_gaussian = 0.0;
  bool has_spare_gaussian = false;

  friend bool operator==(const RngState&, const RngState&) = default;
};

/// Deterministic pseudo-random generator built on xoshiro256** with a
/// splitmix64-seeded state. Every randomized component of the library takes
/// an explicit Rng (or seed) so experiments are reproducible bit-for-bit.
///
/// Not thread-safe; give each thread its own instance.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Snapshot of the full generator state (lanes + Gaussian spare).
  RngState state() const;

  /// Restores a snapshot taken with state(); the next draw continues the
  /// captured stream exactly.
  void set_state(const RngState& state);

  /// An Rng resumed from a snapshot; convenience for deserialization.
  static Rng FromState(const RngState& state) {
    Rng rng(0);
    rng.set_state(state);
    return rng;
  }

  /// Next raw 64 random bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (caches the spare deviate).
  double Gaussian();

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Reservoir-samples `k` items (without replacement) from `items`.
  /// Returns fewer if items.size() < k. Result order is unspecified.
  template <typename T>
  std::vector<T> SampleWithoutReplacement(const std::vector<T>& items,
                                          size_t k) {
    std::vector<T> out;
    out.reserve(k < items.size() ? k : items.size());
    for (size_t i = 0; i < items.size(); ++i) {
      if (out.size() < k) {
        out.push_back(items[i]);
      } else {
        size_t j = static_cast<size_t>(UniformU64(i + 1));
        if (j < k) out[j] = items[i];
      }
    }
    return out;
  }

  /// Derives an independent child generator; useful for giving parallel
  /// runs decorrelated streams from one master seed.
  Rng Fork();

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace inf2vec

#endif  // INF2VEC_UTIL_RNG_H_
