#ifndef INF2VEC_UTIL_THREAD_POOL_H_
#define INF2VEC_UTIL_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace inf2vec {

/// Marks a function whose data races are intentional (Hogwild-style
/// lock-free SGD: sparse unsynchronized updates to a shared parameter
/// store, after Niu et al. 2011 and the word2vec reference code). Builds
/// with -DINF2VEC_SANITIZE=thread suppress race reports inside such
/// functions; the races are benign by the Hogwild argument (see
/// docs/ALGORITHMS.md, "Parallel training").
#if defined(__clang__) || defined(__GNUC__)
#define INF2VEC_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#else
#define INF2VEC_NO_SANITIZE_THREAD
#endif

/// Observation hook for pool activity, used by the observability layer to
/// collect per-shard queue-wait / execution timings without making the
/// util layer depend on it. Implementations must be thread-safe: OnShard
/// fires on whichever thread ran the shard, concurrently across shards.
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;
  /// One shard of a ParallelFor finished. `queue_wait_us` is the time from
  /// job posting to this shard being claimed; `exec_us` the shard-function
  /// runtime.
  virtual void OnShard(uint32_t shard, double queue_wait_us,
                       double exec_us) = 0;
  /// A whole ParallelFor drained (called once, on the posting thread).
  virtual void OnJob(uint32_t shards, size_t items, double total_us) = 0;
};

/// Installs a process-wide pool observer (nullptr to remove). The observer
/// must outlive all pool activity; when none is installed (the default)
/// the pool takes no timestamps — the cost is one relaxed atomic load per
/// shard.
void SetThreadPoolObserver(ThreadPoolObserver* observer);
ThreadPoolObserver* GetThreadPoolObserver();

/// A small fixed-size worker pool for data-parallel loops. The pool owns
/// `num_threads - 1` worker threads; the calling thread participates in
/// every ParallelFor, so `ThreadPool(1)` spawns no threads at all and runs
/// shard functions inline on the caller.
///
/// Determinism contract: ParallelFor always splits [begin, end) into the
/// same contiguous shards for a given (range, thread count), and
/// ShardSeed() derives a fixed per-shard RNG stream from a base seed, so
/// any computation whose result depends only on (shard index, shard range,
/// shard RNG) is reproducible for a fixed thread count. Which OS thread
/// executes which shard is NOT deterministic; do not key behavior on
/// std::this_thread.
///
/// ParallelFor is not reentrant: shard functions must not call back into
/// the same pool.
class ThreadPool {
 public:
  /// `num_threads == 0` resolves to the hardware concurrency (at least 1).
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const { return num_threads_; }

  /// `fn(shard, shard_begin, shard_end)` over a disjoint contiguous
  /// partition of [begin, end) into min(num_threads, end - begin) shards
  /// of near-equal size (earlier shards get the remainder). Blocks until
  /// every shard completes. Shard 0 covers the lowest indices, so
  /// concatenating per-shard results in shard order preserves input order.
  void ParallelFor(
      size_t begin, size_t end,
      const std::function<void(uint32_t shard, size_t shard_begin,
                               size_t shard_end)>& fn);

  /// The per-shard RNG stream seed: `base_seed ^ splitmix64(shard)`. The
  /// hash term is never 0 (splitmix64 has no fixed point at 0), so shard
  /// streams are decorrelated from each other and from Rng(base_seed)
  /// itself.
  static uint64_t ShardSeed(uint64_t base_seed, uint64_t shard);

  /// 0 -> max(1, std::thread::hardware_concurrency()); anything else is
  /// returned unchanged.
  static uint32_t ResolveThreadCount(uint32_t requested);

 private:
  using ShardFn =
      std::function<void(uint32_t shard, size_t begin, size_t end)>;

  void WorkerLoop();
  /// Claims and runs shards of the current job until none remain.
  void RunShards();

  const uint32_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // Signals workers: job posted / stop.
  std::condition_variable done_cv_;   // Signals the caller: job drained.
  const ShardFn* job_fn_ = nullptr;   // Guarded by mu_ (set per job).
  std::chrono::steady_clock::time_point job_post_time_;  // Guarded by mu_.
  size_t job_begin_ = 0;
  size_t job_size_ = 0;
  uint32_t job_shards_ = 0;           // 0 <=> no job outstanding.
  uint32_t next_shard_ = 0;
  uint32_t pending_ = 0;              // Shards claimed but not finished.
  bool stop_ = false;
};

}  // namespace inf2vec

#endif  // INF2VEC_UTIL_THREAD_POOL_H_
