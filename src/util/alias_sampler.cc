#include "util/alias_sampler.h"

#include <cmath>

#include "util/logging.h"

namespace inf2vec {

Status AliasSampler::Build(const std::vector<double>& weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("AliasSampler: empty weight vector");
  }
  double total = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || std::isnan(w) || std::isinf(w)) {
      return Status::InvalidArgument(
          "AliasSampler: weights must be finite and non-negative");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("AliasSampler: weights sum to zero");
  }

  const size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities: mean 1.0.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers: both queues should hold columns with scaled ~= 1.
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
  return Status::OK();
}

uint32_t AliasSampler::Sample(Rng& rng) const {
  INF2VEC_CHECK(!prob_.empty()) << "AliasSampler::Sample before Build";
  const uint32_t column =
      static_cast<uint32_t>(rng.UniformU64(prob_.size()));
  return rng.UniformDouble() < prob_[column] ? column : alias_[column];
}

double AliasSampler::ProbabilityOf(uint32_t i) const {
  INF2VEC_CHECK(i < prob_.size());
  const size_t n = prob_.size();
  double p = prob_[i] / n;
  for (size_t col = 0; col < n; ++col) {
    if (alias_[col] == i && prob_[col] < 1.0) p += (1.0 - prob_[col]) / n;
  }
  return p;
}

}  // namespace inf2vec
