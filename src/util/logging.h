#ifndef INF2VEC_UTIL_LOGGING_H_
#define INF2VEC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace inf2vec {

/// Severity levels for the library logger, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Lower-case level name ("debug", "info", ...); never null.
const char* LogLevelName(LogLevel level);

/// Parses "debug" / "info" / "warning" / "error" / "fatal" (exact,
/// lower-case). Returns false and leaves `*out` untouched on anything else.
bool ParseLogLevel(const std::string& name, LogLevel* out);

namespace internal_logging {

/// Global minimum level; messages below it are dropped. Defaults to kInfo.
/// Backed by a relaxed std::atomic, so the level may be read — and changed —
/// from any thread at any time, including while Hogwild workers are logging.
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Stream-style message collector. Emits to stderr on destruction; aborts
/// the process for kFatal.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

/// Sets the global log threshold (thread-safe: the threshold is a relaxed
/// atomic, so concurrent readers in worker threads are fine).
inline void SetMinLogLevel(LogLevel level) {
  internal_logging::SetMinLogLevel(level);
}

#define INF2VEC_LOG(level)                                                 \
  (::inf2vec::LogLevel::k##level < ::inf2vec::internal_logging::MinLogLevel()) \
      ? (void)0                                                            \
      : ::inf2vec::internal_logging::LogMessageVoidify() &                 \
            ::inf2vec::internal_logging::LogMessage(                       \
                ::inf2vec::LogLevel::k##level, __FILE__, __LINE__)         \
                .stream()

/// CHECK-style assertion, active in all build types. Prefer these over
/// <cassert> so release benchmarks keep the invariant checks that guard
/// data-structure corruption.
#define INF2VEC_CHECK(cond)                                           \
  (cond) ? (void)0                                                    \
         : ::inf2vec::internal_logging::LogMessageVoidify() &         \
               ::inf2vec::internal_logging::LogMessage(               \
                   ::inf2vec::LogLevel::kFatal, __FILE__, __LINE__)   \
                   .stream()                                          \
                   << "Check failed: " #cond " "

#define INF2VEC_CHECK_OK(expr)                                       \
  do {                                                               \
    ::inf2vec::Status _st = (expr);                                  \
    INF2VEC_CHECK(_st.ok()) << _st.ToString();                       \
  } while (0)

}  // namespace inf2vec

#endif  // INF2VEC_UTIL_LOGGING_H_
