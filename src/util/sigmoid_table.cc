#include "util/sigmoid_table.h"

#include <cmath>

namespace inf2vec {

SigmoidTable::SigmoidTable() : table_(kTableSize) {
  for (size_t i = 0; i < kTableSize; ++i) {
    // Midpoint of bucket i over [-kMaxExp, kMaxExp).
    const double z =
        -kMaxExp + (static_cast<double>(i) + 0.5) * (2.0 * kMaxExp) /
                       static_cast<double>(kTableSize);
    table_[i] = Exact(z);
  }
}

double SigmoidTable::Exact(double z) { return 1.0 / (1.0 + std::exp(-z)); }

const SigmoidTable& GlobalSigmoidTable() {
  static const SigmoidTable& table = *new SigmoidTable();
  return table;
}

}  // namespace inf2vec
