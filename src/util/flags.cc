#include "util/flags.h"

#include "util/string_util.h"

namespace inf2vec {

Result<FlagParser> FlagParser::Parse(int argc, const char* const* argv) {
  FlagParser parser;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      parser.positional_.push_back(arg);
      continue;
    }
    std::string key = arg.substr(2);
    if (key.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      parser.values_[key.substr(0, eq)] = key.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag; otherwise a
    // bare switch.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      parser.values_[key] = argv[++i];
    } else {
      parser.values_[key] = "";
    }
  }
  return parser;
}

std::string FlagParser::GetString(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

Result<int64_t> FlagParser::GetInt(const std::string& key,
                                   int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  int64_t value = 0;
  INF2VEC_RETURN_IF_ERROR(ParseInt64(it->second, &value));
  return value;
}

Result<double> FlagParser::GetDouble(const std::string& key,
                                     double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double value = 0.0;
  INF2VEC_RETURN_IF_ERROR(ParseDouble(it->second, &value));
  return value;
}

bool FlagParser::GetBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v.empty() || v == "1" || v == "true" || v == "yes";
}

std::vector<std::string> FlagParser::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

}  // namespace inf2vec
