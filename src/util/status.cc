#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace inf2vec {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIOError:
      return "IO_ERROR";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace internal_status {

void DieOnErrorAccess(const Status& status) {
  std::fprintf(stderr, "Result::value() called on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal_status
}  // namespace inf2vec
