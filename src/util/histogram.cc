#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace inf2vec {

Histogram::Histogram(std::vector<uint64_t> boundaries)
    : boundaries_(std::move(boundaries)) {
  INF2VEC_CHECK(!boundaries_.empty())
      << "fixed-boundary histogram needs at least one boundary";
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    INF2VEC_CHECK(boundaries_[i - 1] < boundaries_[i])
        << "histogram boundaries must be strictly increasing";
  }
}

uint64_t Histogram::BucketOf(uint64_t value) const {
  if (boundaries_.empty()) return value;
  // Largest boundary <= value; values below the first boundary land in the
  // first bucket so every observation is counted.
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  return it == boundaries_.begin() ? boundaries_.front() : *(it - 1);
}

void Histogram::Add(uint64_t value, uint64_t weight) {
  counts_[BucketOf(value)] += weight;
  total_count_ += weight;
}

void Histogram::Merge(const Histogram& other) {
  INF2VEC_CHECK(boundaries_ == other.boundaries_)
      << "Merge requires identical histogram boundary configurations";
  for (const auto& [value, count] : other.counts_) {
    counts_[value] += count;
  }
  total_count_ += other.total_count_;
}

uint64_t Histogram::CountOf(uint64_t value) const {
  const auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

double Histogram::CdfAt(uint64_t value) const {
  if (total_count_ == 0) return 0.0;
  uint64_t below = 0;
  for (const auto& [v, c] : counts_) {
    if (v > value) break;
    below += c;
  }
  return static_cast<double>(below) / static_cast<double>(total_count_);
}

double Histogram::Mean() const {
  if (total_count_ == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [v, c] : counts_) {
    sum += static_cast<double>(v) * static_cast<double>(c);
  }
  return sum / static_cast<double>(total_count_);
}

uint64_t Histogram::Max() const {
  return counts_.empty() ? 0 : counts_.rbegin()->first;
}

uint64_t Histogram::Quantile(double q) const {
  INF2VEC_CHECK(q >= 0.0 && q <= 1.0) << "quantile must be in [0, 1]";
  if (total_count_ == 0) return 0;
  // Smallest value whose cumulative count reaches ceil(q * total), i.e.
  // CdfAt(value) >= q; q = 0 yields the minimum, q = 1 the maximum.
  const double target = q * static_cast<double>(total_count_);
  uint64_t cumulative = 0;
  for (const auto& [value, count] : counts_) {
    cumulative += count;
    if (static_cast<double>(cumulative) >= target) return value;
  }
  return counts_.rbegin()->first;
}

std::vector<std::pair<uint64_t, uint64_t>> Histogram::Items() const {
  return {counts_.begin(), counts_.end()};
}

double Histogram::LogLogSlope() const {
  // Least squares on logarithmically binned densities: values are grouped
  // into bins [2^k, 2^(k+1)) and each bin contributes the point
  // (log10 geometric-mid, log10 count/width). Log binning de-noises the
  // sparse tail, which matters for the small-sample power-law checks the
  // synthetic-data tests run.
  constexpr int kMaxBins = 64;
  double bin_count[kMaxBins] = {0.0};
  for (const auto& [v, c] : counts_) {
    if (v < 1 || c < 1) continue;
    int bin = 0;
    uint64_t x = v;
    while (x > 1 && bin < kMaxBins - 1) {
      x >>= 1;
      ++bin;
    }
    bin_count[bin] += static_cast<double>(c);
  }
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  int n = 0;
  for (int bin = 0; bin < kMaxBins; ++bin) {
    if (bin_count[bin] <= 0.0) continue;
    const double lo = std::pow(2.0, bin);
    const double width = lo;  // Bin [2^k, 2^(k+1)) has width 2^k.
    const double mid = lo * std::sqrt(2.0);
    const double x = std::log10(mid);
    const double y = std::log10(bin_count[bin] / width);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return 0.0;
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

std::string Histogram::ToTsv(size_t max_rows) const {
  std::vector<std::pair<uint64_t, uint64_t>> items = Items();
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (max_rows > 0 && items.size() > max_rows) items.resize(max_rows);
  std::string out;
  for (const auto& [v, c] : items) {
    out += StrFormat("%llu\t%llu\n", static_cast<unsigned long long>(v),
                     static_cast<unsigned long long>(c));
  }
  return out;
}

}  // namespace inf2vec
