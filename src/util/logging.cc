#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/status.h"

namespace inf2vec {
namespace internal_logging {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace
}  // namespace internal_logging

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
    case LogLevel::kFatal:
      return "fatal";
  }
  return "unknown";
}

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarning, LogLevel::kError,
                         LogLevel::kFatal}) {
    if (name == LogLevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

namespace internal_logging {

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level_), Basename(file_),
               line_, stream_.str().c_str());
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal_logging
}  // namespace inf2vec
