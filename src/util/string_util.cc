#include "util/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace inf2vec {

std::vector<std::string_view> SplitString(std::string_view text, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimString(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

Status ParseInt64(std::string_view text, int64_t* out) {
  const std::string buf(TrimString(text));
  if (buf.empty()) return Status::InvalidArgument("empty integer field");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  *out = value;
  return Status::OK();
}

Status ParseUint32(std::string_view text, uint32_t* out) {
  int64_t wide = 0;
  INF2VEC_RETURN_IF_ERROR(ParseInt64(text, &wide));
  if (wide < 0 || wide > std::numeric_limits<uint32_t>::max()) {
    return Status::OutOfRange("value does not fit in uint32: " +
                              std::string(text));
  }
  *out = static_cast<uint32_t>(wide);
  return Status::OK();
}

Status ParseDouble(std::string_view text, double* out) {
  const std::string buf(TrimString(text));
  if (buf.empty()) return Status::InvalidArgument("empty double field");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: " + buf);
  }
  if (end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a double: " + buf);
  }
  *out = value;
  return Status::OK();
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace inf2vec
