#ifndef INF2VEC_UTIL_SIGMOID_TABLE_H_
#define INF2VEC_UTIL_SIGMOID_TABLE_H_

#include <cstddef>
#include <vector>

namespace inf2vec {

/// Precomputed sigmoid lookup table, the classic word2vec trick: SGD inner
/// loops evaluate sigma(z) millions of times and exp() dominates otherwise.
/// Values outside [-kMaxExp, kMaxExp] clamp to ~0 / ~1 which also acts as a
/// gradient clip.
class SigmoidTable {
 public:
  static constexpr double kMaxExp = 8.0;
  static constexpr size_t kTableSize = 2048;

  SigmoidTable();

  /// Approximate sigma(z) = 1 / (1 + e^-z). Max absolute error ~4e-3 at the
  /// default table size; monotone by construction.
  double Sigmoid(double z) const {
    if (z >= kMaxExp) return 1.0 - 1e-8;
    if (z <= -kMaxExp) return 1e-8;
    const size_t idx = static_cast<size_t>((z + kMaxExp) *
                                           (kTableSize / (2.0 * kMaxExp)));
    return table_[idx < kTableSize ? idx : kTableSize - 1];
  }

  /// Exact sigmoid; kept next to the table so call sites can switch when
  /// accuracy matters more than speed (tests, gradient checks).
  static double Exact(double z);

 private:
  std::vector<double> table_;
};

/// Process-wide shared instance (immutable after construction).
const SigmoidTable& GlobalSigmoidTable();

}  // namespace inf2vec

#endif  // INF2VEC_UTIL_SIGMOID_TABLE_H_
