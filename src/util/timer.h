#ifndef INF2VEC_UTIL_TIMER_H_
#define INF2VEC_UTIL_TIMER_H_

#include <sys/resource.h>

#include <chrono>

namespace inf2vec {

/// Simple steady-clock stopwatch for coarse phase timing in benches
/// (fine-grained measurement belongs to google-benchmark).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU-time stopwatch (getrusage user+system, summed over all
/// threads). On a shared machine this is far less noisy than wall time
/// for a CPU-bound section — time scheduled out simply does not count —
/// which is what tight relative comparisons (the obs-overhead gate) need.
class CpuTimer {
 public:
  CpuTimer() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
    rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
    const auto seconds = [](const timeval& tv) {
      return static_cast<double>(tv.tv_sec) +
             static_cast<double>(tv.tv_usec) * 1e-6;
    };
    return seconds(usage.ru_utime) + seconds(usage.ru_stime);
  }

  double start_;
};

}  // namespace inf2vec

#endif  // INF2VEC_UTIL_TIMER_H_
