#ifndef INF2VEC_UTIL_TIMER_H_
#define INF2VEC_UTIL_TIMER_H_

#include <chrono>

namespace inf2vec {

/// Simple steady-clock stopwatch for coarse phase timing in benches
/// (fine-grained measurement belongs to google-benchmark).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace inf2vec

#endif  // INF2VEC_UTIL_TIMER_H_
