#include "eval/activation_task.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/run_status.h"
#include "obs/trace.h"

namespace inf2vec {

std::vector<ActivationCase> BuildActivationCases(
    const SocialGraph& graph, const DiffusionEpisode& episode) {
  std::unordered_map<UserId, Timestamp> adopted_at;
  adopted_at.reserve(episode.size());
  for (const Adoption& a : episode.adoptions()) {
    adopted_at.emplace(a.user, a.time);
  }

  std::vector<ActivationCase> cases;

  // Positives: adopters influenced by earlier-adopting friends.
  for (const Adoption& a : episode.adoptions()) {
    if (a.user >= graph.num_users()) continue;
    std::vector<std::pair<Timestamp, UserId>> earlier;
    for (UserId u : graph.InNeighbors(a.user)) {
      const auto it = adopted_at.find(u);
      if (it != adopted_at.end() && it->second < a.time) {
        earlier.push_back({it->second, u});
      }
    }
    if (earlier.empty()) continue;
    std::sort(earlier.begin(), earlier.end());
    ActivationCase c;
    c.candidate = a.user;
    c.activated = true;
    c.influencers.reserve(earlier.size());
    for (const auto& [t, u] : earlier) c.influencers.push_back(u);
    cases.push_back(std::move(c));
  }

  // Negatives: exposed non-adopters. Collect the out-neighborhood of all
  // adopters instead of scanning every user (sparse-friendly).
  std::unordered_set<UserId> negative_candidates;
  for (const Adoption& a : episode.adoptions()) {
    if (a.user >= graph.num_users()) continue;
    for (UserId v : graph.OutNeighbors(a.user)) {
      if (adopted_at.find(v) == adopted_at.end()) {
        negative_candidates.insert(v);
      }
    }
  }
  for (UserId v : negative_candidates) {
    std::vector<std::pair<Timestamp, UserId>> adopters;
    for (UserId u : graph.InNeighbors(v)) {
      const auto it = adopted_at.find(u);
      if (it != adopted_at.end()) adopters.push_back({it->second, u});
    }
    if (adopters.empty()) continue;
    std::sort(adopters.begin(), adopters.end());
    ActivationCase c;
    c.candidate = v;
    c.activated = false;
    c.influencers.reserve(adopters.size());
    for (const auto& [t, u] : adopters) c.influencers.push_back(u);
    cases.push_back(std::move(c));
  }
  return cases;
}

namespace {

std::vector<RankedQuery> BuildActivationQueries(const InfluenceModel& model,
                                                const SocialGraph& graph,
                                                const ActionLog& test_log) {
  obs::TraceSpan span("EvaluateActivation", "eval");
  obs::RunStatus::Default().SetPhase("eval:activation");
  obs::Counter* episode_counter = nullptr;
  obs::Counter* case_counter = nullptr;
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    episode_counter = registry.GetCounter("eval.activation.episodes");
    case_counter = registry.GetCounter("eval.activation.cases");
  }
  std::vector<RankedQuery> queries;
  queries.reserve(test_log.num_episodes());
  for (const DiffusionEpisode& episode : test_log.episodes()) {
    const std::vector<ActivationCase> cases =
        BuildActivationCases(graph, episode);
    if (cases.empty()) continue;
    if (episode_counter != nullptr) {
      episode_counter->Increment();
      case_counter->Increment(cases.size());
    }
    RankedQuery query;
    query.scores.reserve(cases.size());
    query.labels.reserve(cases.size());
    for (const ActivationCase& c : cases) {
      query.scores.push_back(
          model.ScoreActivation(c.candidate, c.influencers));
      query.labels.push_back(c.activated);
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace

RankingMetrics EvaluateActivation(const InfluenceModel& model,
                                  const SocialGraph& graph,
                                  const ActionLog& test_log) {
  return AggregateQueries(BuildActivationQueries(model, graph, test_log));
}

std::vector<RankingMetrics> EvaluateActivationPerEpisode(
    const InfluenceModel& model, const SocialGraph& graph,
    const ActionLog& test_log) {
  std::vector<RankingMetrics> per_episode;
  for (const RankedQuery& query :
       BuildActivationQueries(model, graph, test_log)) {
    size_t num_pos = 0;
    for (bool l : query.labels) num_pos += l ? 1 : 0;
    if (num_pos == 0 || num_pos == query.labels.size()) continue;
    RankingMetrics m;
    m.auc = AucByRank(query);
    m.map = AveragePrecision(query);
    m.p10 = PrecisionAtN(query, 10);
    m.p50 = PrecisionAtN(query, 50);
    m.p100 = PrecisionAtN(query, 100);
    m.num_queries = 1;
    per_episode.push_back(m);
  }
  return per_episode;
}

}  // namespace inf2vec
