#ifndef INF2VEC_EVAL_TOPIC_EVAL_H_
#define INF2VEC_EVAL_TOPIC_EVAL_H_

#include "action/action_log.h"
#include "core/topic_inf2vec.h"
#include "eval/metrics.h"
#include "graph/social_graph.h"

namespace inf2vec {

/// Activation-prediction evaluation for the topic-aware extension.
/// Identical protocol to EvaluateActivation, except each test episode is
/// first assigned a topic from its *observed active users* (the union of
/// the cases' influencer sets — information available at prediction time,
/// so there is no test leakage), and cases are scored under that topic.
RankingMetrics EvaluateActivationTopicAware(const TopicInf2vecModel& model,
                                            const SocialGraph& graph,
                                            const ActionLog& test_log);

}  // namespace inf2vec

#endif  // INF2VEC_EVAL_TOPIC_EVAL_H_
