#include "eval/harness.h"

#include <cstdio>

#include "util/string_util.h"

namespace inf2vec {

ResultTable::ResultTable(std::string title) : title_(std::move(title)) {}

void ResultTable::AddRow(const std::string& method,
                         const RankingMetrics& metrics) {
  rows_.push_back({method, metrics, /*is_stdev_row=*/false});
}

void ResultTable::AddRowWithStdev(const std::string& method,
                                  const MetricsSummary& s) {
  rows_.push_back({method, s.mean, /*is_stdev_row=*/false});
  rows_.push_back({"(stdev)", s.stdev, /*is_stdev_row=*/true});
}

std::string ResultTable::ToString() const {
  std::string out;
  out += "== " + title_ + " ==\n";
  out += StrFormat("%-12s %8s %8s %8s %8s %8s\n", "Method", "AUC", "MAP",
                   "P@10", "P@50", "P@100");
  for (const Row& row : rows_) {
    if (row.is_stdev_row) {
      out += StrFormat("%-12s (%.4f) (%.4f) (%.4f) (%.4f) (%.4f)\n",
                       row.label.c_str(), row.metrics.auc, row.metrics.map,
                       row.metrics.p10, row.metrics.p50, row.metrics.p100);
    } else {
      out += StrFormat("%-12s %8.4f %8.4f %8.4f %8.4f %8.4f\n",
                       row.label.c_str(), row.metrics.auc, row.metrics.map,
                       row.metrics.p10, row.metrics.p50, row.metrics.p100);
    }
  }
  return out;
}

void ResultTable::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace inf2vec
