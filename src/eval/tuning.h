#ifndef INF2VEC_EVAL_TUNING_H_
#define INF2VEC_EVAL_TUNING_H_

#include <vector>

#include "action/action_log.h"
#include "core/inf2vec_model.h"
#include "eval/metrics.h"
#include "graph/social_graph.h"
#include "util/status.h"

namespace inf2vec {

/// Hyper-parameter selection on the tuning split, the way the paper picks
/// alpha = 0.1 ("based on the empirical study on tuning set"). Train on
/// `train` for each candidate, evaluate activation MAP on `tune`, return
/// the winner.
struct AlphaTuningResult {
  double best_alpha = 0.1;
  /// Tune-split metrics per candidate, parallel to the input list.
  std::vector<RankingMetrics> per_candidate;
};

/// Grid-searches the component weight alpha. `base` supplies every other
/// hyper-parameter. Fails on an empty candidate list or empty splits.
Result<AlphaTuningResult> TuneAlpha(const SocialGraph& graph,
                                    const ActionLog& train,
                                    const ActionLog& tune,
                                    const Inf2vecConfig& base,
                                    const std::vector<double>& candidates);

}  // namespace inf2vec

#endif  // INF2VEC_EVAL_TUNING_H_
