#ifndef INF2VEC_EVAL_SIGNIFICANCE_H_
#define INF2VEC_EVAL_SIGNIFICANCE_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace inf2vec {

/// Result of a paired two-sided Wilcoxon signed-rank test (normal
/// approximation with tie correction). The paper reports that all
/// Inf2vec-vs-baseline improvements are significant at p < 0.05; this is
/// the machinery benches use to make the same claim over per-episode
/// metric pairs.
struct WilcoxonResult {
  /// Standardized test statistic (signed: positive when `a` tends to
  /// exceed `b`).
  double z = 0.0;
  /// Two-sided p-value under the normal approximation.
  double p_value = 1.0;
  /// Pairs with a non-zero difference (the effective sample size).
  size_t num_effective_pairs = 0;
};

/// Paired two-sided Wilcoxon signed-rank test on equal-length samples.
/// Fails when sizes differ or fewer than 5 non-tied pairs remain (the
/// normal approximation is meaningless below that).
Result<WilcoxonResult> WilcoxonSignedRank(const std::vector<double>& a,
                                          const std::vector<double>& b);

/// Standard normal upper-tail survival function Q(z) = P(Z > z); exposed
/// for tests.
double NormalSurvival(double z);

}  // namespace inf2vec

#endif  // INF2VEC_EVAL_SIGNIFICANCE_H_
