#ifndef INF2VEC_EVAL_METRICS_H_
#define INF2VEC_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

namespace inf2vec {

/// The five ranking metrics of the paper's tables: AUC, MAP, P@10/50/100.
struct RankingMetrics {
  double auc = 0.0;
  double map = 0.0;
  double p10 = 0.0;
  double p50 = 0.0;
  double p100 = 0.0;
  /// Queries (episodes) that contributed; diagnostics only.
  size_t num_queries = 0;
};

/// One ranking query: candidate scores with binary relevance labels.
struct RankedQuery {
  std::vector<double> scores;
  std::vector<bool> labels;
};

/// ROC AUC via the rank-statistic formulation (Bradley 1997), with average
/// ranks for tied scores — the paper's "ranking scheme" AUC. Returns 0.5
/// when either class is empty.
double AucByRank(const RankedQuery& query);

/// Average precision of the descending-score ranking (ties keep input
/// order). Returns 0 when there are no positives.
double AveragePrecision(const RankedQuery& query);

/// Precision among the top-n scored candidates. When fewer than n
/// candidates exist the denominator shrinks to the candidate count, so a
/// perfect ranking of a small episode still scores 1.0 (documented
/// deviation: at paper scale every episode has >= n candidates).
double PrecisionAtN(const RankedQuery& query, size_t n);

/// Macro-averages the metrics over queries; queries lacking a positive or
/// lacking a negative are skipped (they define no ranking problem).
RankingMetrics AggregateQueries(const std::vector<RankedQuery>& queries);

/// Element-wise mean and (population) standard deviation across runs, for
/// the paper's "average of 10 runs (stdev)" reporting.
struct MetricsSummary {
  RankingMetrics mean;
  RankingMetrics stdev;
  size_t runs = 0;
};
MetricsSummary SummarizeRuns(const std::vector<RankingMetrics>& runs);

}  // namespace inf2vec

#endif  // INF2VEC_EVAL_METRICS_H_
