#ifndef INF2VEC_EVAL_DIFFUSION_TASK_H_
#define INF2VEC_EVAL_DIFFUSION_TASK_H_

#include <vector>

#include "action/action_log.h"
#include "core/influence_model.h"
#include "eval/metrics.h"
#include "util/rng.h"

namespace inf2vec {

/// Options of the diffusion-prediction protocol (Section V-B-2).
struct DiffusionTaskOptions {
  /// Fraction of each test episode's earliest adopters used as seeds; the
  /// paper uses the first 5%.
  double seed_fraction = 0.05;
  /// Lower bound on the seed count so tiny episodes still seed something.
  uint32_t min_seeds = 1;
};

/// One prepared diffusion query: seeds plus the ground-truth later
/// adopters.
struct DiffusionCase {
  std::vector<UserId> seeds;         // Chronological.
  std::vector<UserId> ground_truth;  // Adopters after the seed prefix.
};

/// Splits a test episode into seeds / ground truth per the protocol.
/// Returns an empty ground truth when the episode is too small.
DiffusionCase BuildDiffusionCase(const DiffusionEpisode& episode,
                                 const DiffusionTaskOptions& options);

/// For every test episode: score all non-seed users with the model
/// (representation models use Eq. 7, IC models Monte-Carlo), label the
/// later adopters positive, and macro-average the ranking metrics.
RankingMetrics EvaluateDiffusion(const InfluenceModel& model,
                                 uint32_t num_users,
                                 const ActionLog& test_log,
                                 const DiffusionTaskOptions& options,
                                 Rng& rng);

}  // namespace inf2vec

#endif  // INF2VEC_EVAL_DIFFUSION_TASK_H_
