#include "eval/topic_eval.h"

#include <algorithm>

#include "eval/activation_task.h"

namespace inf2vec {

RankingMetrics EvaluateActivationTopicAware(const TopicInf2vecModel& model,
                                            const SocialGraph& graph,
                                            const ActionLog& test_log) {
  std::vector<RankedQuery> queries;
  queries.reserve(test_log.num_episodes());
  for (const DiffusionEpisode& episode : test_log.episodes()) {
    const std::vector<ActivationCase> cases =
        BuildActivationCases(graph, episode);
    if (cases.empty()) continue;

    // Observable active users: everyone appearing as an influencer.
    std::vector<UserId> active;
    for (const ActivationCase& c : cases) {
      active.insert(active.end(), c.influencers.begin(),
                    c.influencers.end());
    }
    std::sort(active.begin(), active.end());
    active.erase(std::unique(active.begin(), active.end()), active.end());
    const uint32_t topic = model.InferTopic(active);

    RankedQuery query;
    query.scores.reserve(cases.size());
    query.labels.reserve(cases.size());
    for (const ActivationCase& c : cases) {
      query.scores.push_back(
          model.ScoreActivation(topic, c.candidate, c.influencers));
      query.labels.push_back(c.activated);
    }
    queries.push_back(std::move(query));
  }
  return AggregateQueries(queries);
}

}  // namespace inf2vec
