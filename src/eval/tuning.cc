#include "eval/tuning.h"

#include "eval/activation_task.h"

namespace inf2vec {

Result<AlphaTuningResult> TuneAlpha(const SocialGraph& graph,
                                    const ActionLog& train,
                                    const ActionLog& tune,
                                    const Inf2vecConfig& base,
                                    const std::vector<double>& candidates) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no alpha candidates");
  }
  if (train.num_episodes() == 0 || tune.num_episodes() == 0) {
    return Status::InvalidArgument("train and tune splits must be non-empty");
  }
  for (double alpha : candidates) {
    if (alpha < 0.0 || alpha > 1.0) {
      return Status::InvalidArgument("alpha candidates must be in [0, 1]");
    }
  }

  AlphaTuningResult result;
  double best_map = -1.0;
  for (double alpha : candidates) {
    Inf2vecConfig config = base;
    config.context.alpha = alpha;
    Result<Inf2vecModel> model = Inf2vecModel::Train(graph, train, config);
    if (!model.ok()) return model.status();
    const EmbeddingPredictor pred = model.value().Predictor();
    const RankingMetrics metrics = EvaluateActivation(pred, graph, tune);
    result.per_candidate.push_back(metrics);
    if (metrics.map > best_map) {
      best_map = metrics.map;
      result.best_alpha = alpha;
    }
  }
  return result;
}

}  // namespace inf2vec
