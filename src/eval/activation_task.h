#ifndef INF2VEC_EVAL_ACTIVATION_TASK_H_
#define INF2VEC_EVAL_ACTIVATION_TASK_H_

#include <vector>

#include "action/action_log.h"
#include "core/influence_model.h"
#include "eval/metrics.h"
#include "graph/social_graph.h"

namespace inf2vec {

/// One activation-prediction case: candidate `v` with the chronologically
/// ordered activated in-neighbors S_v, and whether v really activated.
struct ActivationCase {
  UserId candidate;
  std::vector<UserId> influencers;  // Chronological activation order.
  bool activated;
};

/// Builds the Goyal-protocol cases for one test episode:
///  * positives: adopters v with >= 1 in-neighbor adopting strictly before
///    them; S_v = those earlier in-neighbors.
///  * negatives: non-adopters v with >= 1 in-neighbor in the episode;
///    S_v = all adopting in-neighbors.
/// Adopters with no earlier-adopting friend are not candidates (their
/// adoption was unobservable as an influence event).
std::vector<ActivationCase> BuildActivationCases(
    const SocialGraph& graph, const DiffusionEpisode& episode);

/// Scores every case of every test episode with `model` and macro-averages
/// the ranking metrics per episode (Section V-B-1).
RankingMetrics EvaluateActivation(const InfluenceModel& model,
                                  const SocialGraph& graph,
                                  const ActionLog& test_log);

/// Per-episode metrics for the episodes that define a ranking problem
/// (>= 1 positive and >= 1 negative case). Episode usability depends only
/// on the data, so two models evaluated on the same log yield aligned
/// vectors — the pairing the Wilcoxon significance test needs.
std::vector<RankingMetrics> EvaluateActivationPerEpisode(
    const InfluenceModel& model, const SocialGraph& graph,
    const ActionLog& test_log);

}  // namespace inf2vec

#endif  // INF2VEC_EVAL_ACTIVATION_TASK_H_
