#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace inf2vec {
namespace {

/// Indices of `scores` ordered by descending score, ties keeping original
/// order (stable).
std::vector<size_t> DescendingOrder(const std::vector<double>& scores) {
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}

}  // namespace

double AucByRank(const RankedQuery& query) {
  INF2VEC_CHECK(query.scores.size() == query.labels.size());
  const size_t n = query.scores.size();
  size_t num_pos = 0;
  for (bool l : query.labels) num_pos += l ? 1 : 0;
  const size_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;

  // Ascending by score; average ranks over tie groups.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return query.scores[a] < query.scores[b];
  });

  double rank_sum_pos = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n &&
           query.scores[order[j + 1]] == query.scores[order[i]]) {
      ++j;
    }
    // 1-based ranks i+1 .. j+1 share the average rank.
    const double avg_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j + 1)) /
                            2.0;
    for (size_t k = i; k <= j; ++k) {
      if (query.labels[order[k]]) rank_sum_pos += avg_rank;
    }
    i = j + 1;
  }
  const double num_pos_d = static_cast<double>(num_pos);
  const double num_neg_d = static_cast<double>(num_neg);
  return (rank_sum_pos - num_pos_d * (num_pos_d + 1.0) / 2.0) /
         (num_pos_d * num_neg_d);
}

double AveragePrecision(const RankedQuery& query) {
  INF2VEC_CHECK(query.scores.size() == query.labels.size());
  const std::vector<size_t> order = DescendingOrder(query.scores);
  double hits = 0.0;
  double precision_sum = 0.0;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    if (query.labels[order[rank]]) {
      hits += 1.0;
      precision_sum += hits / static_cast<double>(rank + 1);
    }
  }
  return hits > 0.0 ? precision_sum / hits : 0.0;
}

double PrecisionAtN(const RankedQuery& query, size_t n) {
  INF2VEC_CHECK(query.scores.size() == query.labels.size());
  if (query.scores.empty() || n == 0) return 0.0;
  const std::vector<size_t> order = DescendingOrder(query.scores);
  const size_t depth = std::min(n, order.size());
  size_t hits = 0;
  for (size_t rank = 0; rank < depth; ++rank) {
    if (query.labels[order[rank]]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(depth);
}

RankingMetrics AggregateQueries(const std::vector<RankedQuery>& queries) {
  RankingMetrics total;
  for (const RankedQuery& q : queries) {
    size_t num_pos = 0;
    for (bool l : q.labels) num_pos += l ? 1 : 0;
    if (num_pos == 0 || num_pos == q.labels.size()) continue;
    total.auc += AucByRank(q);
    total.map += AveragePrecision(q);
    total.p10 += PrecisionAtN(q, 10);
    total.p50 += PrecisionAtN(q, 50);
    total.p100 += PrecisionAtN(q, 100);
    ++total.num_queries;
  }
  if (total.num_queries > 0) {
    const double n = static_cast<double>(total.num_queries);
    total.auc /= n;
    total.map /= n;
    total.p10 /= n;
    total.p50 /= n;
    total.p100 /= n;
  }
  return total;
}

MetricsSummary SummarizeRuns(const std::vector<RankingMetrics>& runs) {
  MetricsSummary summary;
  summary.runs = runs.size();
  if (runs.empty()) return summary;

  auto accumulate = [&](auto member) {
    double mean = 0.0;
    for (const RankingMetrics& r : runs) mean += r.*member;
    mean /= static_cast<double>(runs.size());
    double var = 0.0;
    for (const RankingMetrics& r : runs) {
      const double d = r.*member - mean;
      var += d * d;
    }
    var /= static_cast<double>(runs.size());
    summary.mean.*member = mean;
    summary.stdev.*member = std::sqrt(var);
  };
  accumulate(&RankingMetrics::auc);
  accumulate(&RankingMetrics::map);
  accumulate(&RankingMetrics::p10);
  accumulate(&RankingMetrics::p50);
  accumulate(&RankingMetrics::p100);
  summary.mean.num_queries = runs.front().num_queries;
  return summary;
}

}  // namespace inf2vec
