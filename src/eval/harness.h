#ifndef INF2VEC_EVAL_HARNESS_H_
#define INF2VEC_EVAL_HARNESS_H_

#include <string>
#include <vector>

#include "eval/metrics.h"

namespace inf2vec {

/// Formats paper-style result tables (method rows, AUC/MAP/P@N columns)
/// with optional "(stdev)" sub-rows, matching Tables II-V.
class ResultTable {
 public:
  explicit ResultTable(std::string title);

  /// Plain row.
  void AddRow(const std::string& method, const RankingMetrics& metrics);
  /// Row with a following "(stdev sigma)" sub-row, as the paper prints for
  /// Inf2vec.
  void AddRowWithStdev(const std::string& method, const MetricsSummary& s);

  /// Rendered fixed-width table.
  std::string ToString() const;
  /// Prints to stdout.
  void Print() const;

 private:
  struct Row {
    std::string label;
    RankingMetrics metrics;
    bool is_stdev_row;
  };
  std::string title_;
  std::vector<Row> rows_;
};

}  // namespace inf2vec

#endif  // INF2VEC_EVAL_HARNESS_H_
