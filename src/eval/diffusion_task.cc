#include "eval/diffusion_task.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/run_status.h"
#include "obs/trace.h"

namespace inf2vec {

DiffusionCase BuildDiffusionCase(const DiffusionEpisode& episode,
                                 const DiffusionTaskOptions& options) {
  DiffusionCase c;
  const std::vector<Adoption>& adoptions = episode.adoptions();
  if (adoptions.empty()) return c;
  const size_t num_seeds = std::min(
      adoptions.size(),
      std::max<size_t>(options.min_seeds,
                       static_cast<size_t>(std::ceil(
                           options.seed_fraction * adoptions.size()))));
  for (size_t i = 0; i < adoptions.size(); ++i) {
    if (i < num_seeds) {
      c.seeds.push_back(adoptions[i].user);
    } else {
      c.ground_truth.push_back(adoptions[i].user);
    }
  }
  return c;
}

RankingMetrics EvaluateDiffusion(const InfluenceModel& model,
                                 uint32_t num_users,
                                 const ActionLog& test_log,
                                 const DiffusionTaskOptions& options,
                                 Rng& rng) {
  obs::TraceSpan span("EvaluateDiffusion", "eval");
  obs::RunStatus::Default().SetPhase("eval:diffusion");
  obs::Counter* episode_counter =
      obs::MetricsEnabled()
          ? obs::MetricsRegistry::Default().GetCounter(
                "eval.diffusion.episodes")
          : nullptr;
  std::vector<RankedQuery> queries;
  queries.reserve(test_log.num_episodes());
  for (const DiffusionEpisode& episode : test_log.episodes()) {
    const DiffusionCase c = BuildDiffusionCase(episode, options);
    if (c.seeds.empty() || c.ground_truth.empty()) continue;
    if (episode_counter != nullptr) episode_counter->Increment();

    const std::vector<double> scores = model.ScoreDiffusion(c.seeds, rng);
    std::unordered_set<UserId> seed_set(c.seeds.begin(), c.seeds.end());
    std::unordered_set<UserId> truth(c.ground_truth.begin(),
                                     c.ground_truth.end());

    RankedQuery query;
    query.scores.reserve(num_users - seed_set.size());
    query.labels.reserve(num_users - seed_set.size());
    for (UserId v = 0; v < num_users; ++v) {
      if (seed_set.contains(v)) continue;
      query.scores.push_back(scores[v]);
      query.labels.push_back(truth.contains(v));
    }
    queries.push_back(std::move(query));
  }
  return AggregateQueries(queries);
}

}  // namespace inf2vec
