#include "eval/significance.h"

#include <algorithm>
#include <cmath>

namespace inf2vec {

double NormalSurvival(double z) {
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

Result<WilcoxonResult> WilcoxonSignedRank(const std::vector<double>& a,
                                          const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("paired samples must have equal size");
  }
  // Non-zero differences with their magnitudes.
  struct Diff {
    double magnitude;
    int sign;
  };
  std::vector<Diff> diffs;
  diffs.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d != 0.0) diffs.push_back({std::abs(d), d > 0 ? 1 : -1});
  }
  if (diffs.size() < 5) {
    return Status::InvalidArgument(
        "need at least 5 non-tied pairs for the Wilcoxon approximation");
  }

  std::sort(diffs.begin(), diffs.end(),
            [](const Diff& x, const Diff& y) {
              return x.magnitude < y.magnitude;
            });

  // Average ranks over tied magnitudes; accumulate the tie correction.
  const size_t n = diffs.size();
  double w_plus = 0.0;
  double tie_correction = 0.0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && diffs[j + 1].magnitude == diffs[i].magnitude) ++j;
    const double avg_rank =
        (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    const double tie_size = static_cast<double>(j - i + 1);
    if (tie_size > 1) {
      tie_correction += tie_size * (tie_size * tie_size - 1.0);
    }
    for (size_t k = i; k <= j; ++k) {
      if (diffs[k].sign > 0) w_plus += avg_rank;
    }
    i = j + 1;
  }

  const double n_d = static_cast<double>(n);
  const double mean = n_d * (n_d + 1.0) / 4.0;
  double variance = n_d * (n_d + 1.0) * (2.0 * n_d + 1.0) / 24.0 -
                    tie_correction / 48.0;
  variance = std::max(variance, 1e-12);

  WilcoxonResult result;
  result.num_effective_pairs = n;
  result.z = (w_plus - mean) / std::sqrt(variance);
  result.p_value = 2.0 * NormalSurvival(std::abs(result.z));
  result.p_value = std::min(result.p_value, 1.0);
  return result;
}

}  // namespace inf2vec
