#ifndef INF2VEC_ACTION_ACTION_LOG_IO_H_
#define INF2VEC_ACTION_ACTION_LOG_IO_H_

#include <string>

#include "action/action_log.h"
#include "util/status.h"

namespace inf2vec {

/// Loads an action log from "user<TAB>item<TAB>time" lines ('#' comments
/// and blank lines ignored), grouping rows into one episode per item.
/// Within an episode the rows may arrive in any order; duplicates keep the
/// earliest time.
Result<ActionLog> LoadActionLog(const std::string& path);

/// Writes the log back as "user<TAB>item<TAB>time" rows, episodes in log
/// order, adoptions chronologically.
Status SaveActionLog(const ActionLog& log, const std::string& path);

}  // namespace inf2vec

#endif  // INF2VEC_ACTION_ACTION_LOG_IO_H_
