#ifndef INF2VEC_ACTION_ACTION_LOG_H_
#define INF2VEC_ACTION_ACTION_LOG_H_

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {

/// Dense item (story / photo / paper) identifier.
using ItemId = uint32_t;

/// Logical timestamp within an episode. The paper only uses the order of
/// adoptions, so any monotone clock works; the synthetic generator uses
/// cascade rounds scaled up plus jitter.
using Timestamp = int64_t;

/// One "(user, time)" adoption record inside a diffusion episode.
struct Adoption {
  UserId user;
  Timestamp time;

  friend bool operator==(const Adoption&, const Adoption&) = default;
};

/// A diffusion episode D_i: every adoption of one item, in chronological
/// order (ties allowed; ties never form influence pairs, matching the
/// strict t_u < t_v condition of Definition 1).
class DiffusionEpisode {
 public:
  DiffusionEpisode() = default;
  explicit DiffusionEpisode(ItemId item) : item_(item) {}

  ItemId item() const { return item_; }
  const std::vector<Adoption>& adoptions() const { return adoptions_; }
  size_t size() const { return adoptions_.size(); }
  bool empty() const { return adoptions_.empty(); }

  /// Appends an adoption; call Finalize() after the last one.
  void Add(UserId user, Timestamp time) { adoptions_.push_back({user, time}); }

  /// Sorts by time (stable), drops duplicate users keeping their earliest
  /// adoption, and validates. Must be called before the episode is consumed.
  Status Finalize();

  /// True once Finalize() succeeded.
  bool finalized() const { return finalized_; }

  /// True if `user` adopted in this episode. O(n); prefer building a lookup
  /// for hot paths.
  bool Contains(UserId user) const;

 private:
  ItemId item_ = 0;
  std::vector<Adoption> adoptions_;
  bool finalized_ = false;
};

/// The action log A = {D_i}: one finalized episode per item.
class ActionLog {
 public:
  ActionLog() = default;

  void AddEpisode(DiffusionEpisode episode);

  const std::vector<DiffusionEpisode>& episodes() const { return episodes_; }
  size_t num_episodes() const { return episodes_.size(); }

  /// Total number of (user, item, time) actions.
  uint64_t num_actions() const;

  /// Number of distinct users appearing anywhere in the log; requires
  /// `num_users` as the id-space bound.
  uint32_t NumActiveUsers(uint32_t num_users) const;

  /// How many times each user adopted anything (item frequency vector for
  /// negative sampling / MF). Indexed by UserId, length num_users.
  std::vector<uint64_t> UserActionCounts(uint32_t num_users) const;

 private:
  std::vector<DiffusionEpisode> episodes_;
};

/// The paper's 80/10/10 episode-level split.
struct LogSplit {
  ActionLog train;
  ActionLog tune;
  ActionLog test;
};

/// Randomly partitions episodes into train/tune/test by the given fractions
/// (which must be non-negative and sum to <= 1; the remainder goes to test).
LogSplit SplitLog(const ActionLog& log, double train_fraction,
                  double tune_fraction, Rng& rng);

}  // namespace inf2vec

#endif  // INF2VEC_ACTION_ACTION_LOG_H_
