#include "action/action_log_io.h"

#include <map>

#include "util/io.h"
#include "util/string_util.h"

namespace inf2vec {

Result<ActionLog> LoadActionLog(const std::string& path) {
  std::vector<std::string> lines;
  INF2VEC_RETURN_IF_ERROR(ReadLines(path, &lines));

  std::map<ItemId, DiffusionEpisode> by_item;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string_view trimmed = TrimString(lines[i]);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string_view> fields = SplitString(trimmed, '\t');
    if (fields.size() < 3) {
      return Status::InvalidArgument(
          StrFormat("line %zu: expected 'user\\titem\\ttime'", i + 1));
    }
    uint32_t user = 0;
    uint32_t item = 0;
    int64_t time = 0;
    INF2VEC_RETURN_IF_ERROR(ParseUint32(fields[0], &user));
    INF2VEC_RETURN_IF_ERROR(ParseUint32(fields[1], &item));
    INF2VEC_RETURN_IF_ERROR(ParseInt64(fields[2], &time));
    auto [it, inserted] = by_item.try_emplace(item, DiffusionEpisode(item));
    it->second.Add(user, time);
  }

  ActionLog log;
  for (auto& [item, episode] : by_item) {
    INF2VEC_RETURN_IF_ERROR(episode.Finalize());
    if (!episode.empty()) log.AddEpisode(std::move(episode));
  }
  return log;
}

Status SaveActionLog(const ActionLog& log, const std::string& path) {
  std::vector<std::string> lines;
  lines.reserve(log.num_actions());
  for (const DiffusionEpisode& episode : log.episodes()) {
    for (const Adoption& a : episode.adoptions()) {
      lines.push_back(StrFormat("%u\t%u\t%lld", a.user, episode.item(),
                                static_cast<long long>(a.time)));
    }
  }
  return WriteLines(path, lines);
}

}  // namespace inf2vec
