#include "action/action_log.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace inf2vec {

Status DiffusionEpisode::Finalize() {
  std::stable_sort(adoptions_.begin(), adoptions_.end(),
                   [](const Adoption& a, const Adoption& b) {
                     return a.time < b.time;
                   });
  // Keep only the earliest adoption per user.
  std::unordered_set<UserId> seen;
  seen.reserve(adoptions_.size());
  std::vector<Adoption> unique;
  unique.reserve(adoptions_.size());
  for (const Adoption& a : adoptions_) {
    if (seen.insert(a.user).second) unique.push_back(a);
  }
  adoptions_ = std::move(unique);
  finalized_ = true;
  return Status::OK();
}

bool DiffusionEpisode::Contains(UserId user) const {
  for (const Adoption& a : adoptions_) {
    if (a.user == user) return true;
  }
  return false;
}

void ActionLog::AddEpisode(DiffusionEpisode episode) {
  INF2VEC_CHECK(episode.finalized())
      << "episodes must be finalized before insertion";
  episodes_.push_back(std::move(episode));
}

uint64_t ActionLog::num_actions() const {
  uint64_t total = 0;
  for (const DiffusionEpisode& e : episodes_) total += e.size();
  return total;
}

uint32_t ActionLog::NumActiveUsers(uint32_t num_users) const {
  std::vector<bool> active(num_users, false);
  for (const DiffusionEpisode& e : episodes_) {
    for (const Adoption& a : e.adoptions()) {
      if (a.user < num_users) active[a.user] = true;
    }
  }
  uint32_t count = 0;
  for (bool b : active) count += b ? 1 : 0;
  return count;
}

std::vector<uint64_t> ActionLog::UserActionCounts(uint32_t num_users) const {
  std::vector<uint64_t> counts(num_users, 0);
  for (const DiffusionEpisode& e : episodes_) {
    for (const Adoption& a : e.adoptions()) {
      if (a.user < num_users) ++counts[a.user];
    }
  }
  return counts;
}

LogSplit SplitLog(const ActionLog& log, double train_fraction,
                  double tune_fraction, Rng& rng) {
  INF2VEC_CHECK(train_fraction >= 0.0 && tune_fraction >= 0.0 &&
                train_fraction + tune_fraction <= 1.0)
      << "invalid split fractions";
  std::vector<size_t> order(log.num_episodes());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);

  const size_t n = order.size();
  const size_t n_train = static_cast<size_t>(train_fraction * n + 0.5);
  const size_t n_tune =
      std::min(n - n_train, static_cast<size_t>(tune_fraction * n + 0.5));

  LogSplit split;
  for (size_t i = 0; i < n; ++i) {
    const DiffusionEpisode& episode = log.episodes()[order[i]];
    if (i < n_train) {
      split.train.AddEpisode(episode);
    } else if (i < n_train + n_tune) {
      split.tune.AddEpisode(episode);
    } else {
      split.test.AddEpisode(episode);
    }
  }
  return split;
}

}  // namespace inf2vec
