#include "serve/topk_batcher.h"

namespace inf2vec {
namespace serve {

TopKBatcher::TopKBatcher(obs::MetricsRegistry* registry)
    : coalesced_(registry->GetCounter("serve.topk_coalesced")) {}

std::string TopKBatcher::KeyFor(uint64_t generation,
                                const TopKRequest& request) {
  std::string key = std::to_string(generation);
  key += '|';
  key += request.aggregation.has_value()
             ? std::to_string(static_cast<int>(*request.aggregation))
             : "-";
  key += request.include_seeds ? "|1|" : "|0|";
  for (const UserId seed : request.seeds) {
    key += std::to_string(seed);
    key += ',';
  }
  return key;
}

Result<TopKResult> TopKBatcher::Execute(uint64_t generation,
                                        const TopKRequest& request,
                                        const ScanFn& scan) {
  const std::string key = KeyFor(generation, request);
  std::shared_ptr<Group> group;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = groups_.find(key);
    if (it != groups_.end() && request.k <= it->second->k) {
      group = it->second;  // Join the in-flight scan.
    } else if (it == groups_.end()) {
      group = std::make_shared<Group>();
      group->k = request.k;
      groups_.emplace(key, group);
      leader = true;
    }
    // else: an in-flight scan exists but kept fewer rows than this
    // request wants — run an independent scan, uncoalesced.
  }

  if (group == nullptr) return scan(request);

  if (leader) {
    Result<TopKResult> scanned = scan(request);
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Remove the group first so late arrivals start a fresh scan
      // instead of sharing a result computed before they asked.
      groups_.erase(key);
      group->done = true;
      if (scanned.ok()) {
        group->result = scanned.value();
      } else {
        group->status = scanned.status();
      }
    }
    cv_.notify_all();
    return scanned;
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&group] { return group->done; });
    if (obs::MetricsEnabled()) coalesced_->Increment();
    if (!group->status.ok()) return group->status;
    TopKResult shared = group->result;
    if (shared.entries.size() > request.k) shared.entries.resize(request.k);
    shared.coalesced = true;
    return shared;
  }
}

uint64_t TopKBatcher::coalesced_total() const { return coalesced_->Value(); }

}  // namespace serve
}  // namespace inf2vec
