#ifndef INF2VEC_SERVE_SERVE_ENDPOINTS_H_
#define INF2VEC_SERVE_SERVE_ENDPOINTS_H_

#include "obs/http_server.h"
#include "serve/influence_service.h"
#include "serve/model_swapper.h"

namespace inf2vec {
namespace serve {

/// Maps a query-path Status to its HTTP code: InvalidArgument -> 400,
/// NotFound -> 404, DeadlineExceeded -> 504, anything else -> 500.
int HttpCodeFor(const Status& status);

/// Registers the serving endpoints on `server`:
///
///   GET  /score?candidate=U&seeds=A,B,C[&aggregation=Ave][&deadline_us=N]
///   POST /score   {"queries": [{"candidate": U, "seeds": [A, B]}, ...],
///                  "aggregation": "Ave", "deadline_us": N}
///   GET  /topk?seeds=A,B,C[&k=10][&aggregation=Ave][&deadline_us=N]
///             [&include_seeds=1]
///   GET  /modelz
///
/// The GET /score form is the single-query alias; the POST body scores
/// the whole batch through InfluenceService::ScoreBatch. Concurrent GET
/// /topk requests for the same seed set coalesce into one scan through a
/// serve::TopKBatcher owned by the registration. Responses are JSON;
/// errors use the process-wide envelope {"error": ..., "code": ...}
/// (obs::ErrorJson) with the mapping above. `service` must outlive the
/// server (queries may arrive until Stop() returns). Handlers run on the
/// server's worker pool — everything they touch is const or internally
/// synchronized.
void RegisterServeEndpoints(obs::StatsServer* server,
                            const InfluenceService* service);

/// Hot-swap variant: the same endpoints plus
///
///   GET /reloadz
///
/// which reloads the model file through `swapper` and reports the new
/// generation (a failed reload returns the error and the still-serving
/// generation — traffic is never interrupted). Every query handler
/// resolves the model once via ModelSwapper::Acquire() and pins that
/// snapshot for the whole request, so responses are internally consistent
/// even when a swap lands mid-request; /score, /topk and /modelz
/// responses carry a "generation" field naming the model that answered.
/// `swapper` must outlive the server and have completed its initial
/// Reload() before traffic arrives.
void RegisterServeEndpoints(obs::StatsServer* server, ModelSwapper* swapper);

}  // namespace serve
}  // namespace inf2vec

#endif  // INF2VEC_SERVE_SERVE_ENDPOINTS_H_
