#include "serve/serve_endpoints.h"

#include <string>
#include <vector>

#include "core/aggregation.h"
#include "kernels/kernels.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace inf2vec {
namespace serve {
namespace {

using obs::HttpRequest;
using obs::HttpResponse;
using obs::JsonValue;

HttpResponse ErrorResponse(const Status& status) {
  JsonValue body = JsonValue::Object();
  body.Set("error", status.message());
  body.Set("code", StatusCodeName(status.code()));
  return HttpResponse::Json(HttpCodeFor(status), body.Dump(0));
}

/// "1,5,9" -> {1, 5, 9}; rejects empties and non-numeric fields. `key`
/// names the query parameter in the error so 400s always point at the
/// offending input.
Result<std::vector<UserId>> ParseSeedList(const HttpRequest& request,
                                          const std::string& key) {
  if (!request.HasQuery(key)) {
    return Status::InvalidArgument("missing required parameter: " + key);
  }
  const std::string csv = request.QueryOr(key, "");
  std::vector<UserId> seeds;
  for (std::string_view field : SplitString(csv, ',')) {
    uint32_t id = 0;
    const Status parsed = ParseUint32(TrimString(field), &id);
    if (!parsed.ok()) {
      return Status::InvalidArgument("bad " + key + " entry '" +
                                     std::string(field) +
                                     "': " + parsed.message());
    }
    seeds.push_back(id);
  }
  return seeds;
}

/// Required uint parameter; 400s name `key`.
Status ParseRequiredUint32(const HttpRequest& request, const std::string& key,
                           uint32_t* out) {
  if (!request.HasQuery(key)) {
    return Status::InvalidArgument("missing required parameter: " + key);
  }
  const std::string raw = request.QueryOr(key, "");
  const Status parsed = ParseUint32(raw, out);
  if (!parsed.ok()) {
    return Status::InvalidArgument("bad " + key + " '" + raw + "'");
  }
  return Status::OK();
}

/// Optional uint parameter; missing keeps `*out` unchanged.
template <typename T>
Status ParseOptionalUint(const HttpRequest& request, const std::string& key,
                         T* out) {
  if (!request.HasQuery(key)) return Status::OK();
  const std::string raw = request.QueryOr(key, "");
  int64_t value = 0;
  const Status parsed = ParseInt64(raw, &value);
  if (!parsed.ok() || value < 0) {
    return Status::InvalidArgument("bad " + key + " '" + raw + "'");
  }
  *out = static_cast<T>(value);
  return Status::OK();
}

Status ParseOptionalAggregation(const HttpRequest& request,
                                std::optional<Aggregation>* out) {
  if (!request.HasQuery("aggregation")) return Status::OK();
  const std::string name = request.QueryOr("aggregation", "");
  Result<Aggregation> parsed = ParseAggregation(name);
  if (!parsed.ok()) {
    return Status::InvalidArgument("bad aggregation '" + name +
                                   "': " + parsed.status().message());
  }
  *out = parsed.value();
  return Status::OK();
}

/// Generation stamp for hot-swap deployments; static single-model serving
/// passes nullopt and emits no field.
using GenerationTag = std::optional<uint64_t>;

/// The parameters /score and /topk share — required `seeds`, optional
/// `aggregation` and `deadline_us` — parsed once, identically, under a
/// "parse" trace span. Every failure names the offending parameter.
template <typename RequestT>
Status ParseCommonQuery(const HttpRequest& request, RequestT* query) {
  Result<std::vector<UserId>> seeds = ParseSeedList(request, "seeds");
  if (!seeds.ok()) return seeds.status();
  query->seeds = std::move(seeds).value();
  INF2VEC_RETURN_IF_ERROR(
      ParseOptionalAggregation(request, &query->aggregation));
  INF2VEC_RETURN_IF_ERROR(
      ParseOptionalUint(request, "deadline_us", &query->deadline_us));
  return Status::OK();
}

/// Stamps the request-level attributes (seed-set size, kernel ISA, quant
/// mode, generation) onto the enclosing request's root span — a no-op
/// unless request observability has a scope open on this thread.
void AnnotateRootSpan(const InfluenceService& service,
                      const GenerationTag& generation, size_t seed_count) {
  obs::TraceSpan* root = obs::TraceSpan::Current();
  if (root == nullptr) return;
  root->SetAttr("seed_count", static_cast<uint64_t>(seed_count));
  root->SetAttr("kernel_isa", kernels::IsaName(kernels::ActiveIsa()));
  root->SetAttr("quant_mode", QuantModeName(service.quant_mode()));
  if (generation.has_value()) root->SetAttr("generation", *generation);
}

void SetGeneration(JsonValue* body, const GenerationTag& generation) {
  if (generation.has_value()) body->Set("generation", *generation);
}

HttpResponse HandleScore(const InfluenceService& service,
                         const GenerationTag& generation,
                         const HttpRequest& request) {
  ScoreRequest query;
  {
    obs::TraceSpan span("parse", "serve");
    const Status candidate =
        ParseRequiredUint32(request, "candidate", &query.candidate);
    if (!candidate.ok()) return ErrorResponse(candidate);
    const Status common = ParseCommonQuery(request, &query);
    if (!common.ok()) return ErrorResponse(common);
  }
  AnnotateRootSpan(service, generation, query.seeds.size());

  const Result<ScoreResult> result = service.ScoreActivation(query);
  if (!result.ok()) return ErrorResponse(result.status());

  obs::TraceSpan span("serialize", "serve");
  JsonValue body = JsonValue::Object();
  body.Set("candidate", query.candidate);
  body.Set("score", result.value().score);
  body.Set("cache_hit", result.value().cache_hit);
  SetGeneration(&body, generation);
  return HttpResponse::Json(200, body.Dump(0));
}

HttpResponse HandleTopK(const InfluenceService& service,
                        const GenerationTag& generation,
                        const HttpRequest& request) {
  TopKRequest query;
  {
    obs::TraceSpan span("parse", "serve");
    const Status common = ParseCommonQuery(request, &query);
    if (!common.ok()) return ErrorResponse(common);
    const Status k = ParseOptionalUint(request, "k", &query.k);
    if (!k.ok()) return ErrorResponse(k);
    query.include_seeds = request.QueryOr("include_seeds", "0") == "1";
  }
  AnnotateRootSpan(service, generation, query.seeds.size());

  const Result<TopKResult> result = service.TopK(query);
  if (!result.ok()) return ErrorResponse(result.status());

  obs::TraceSpan span("serialize", "serve");
  span.SetAttr("results", static_cast<uint64_t>(result.value().entries.size()));
  JsonValue body = JsonValue::Object();
  body.Set("k", query.k);
  body.Set("scanned", result.value().scanned);
  body.Set("cache_hit", result.value().cache_hit);
  JsonValue entries = JsonValue::Array();
  for (const TopKEntry& entry : result.value().entries) {
    JsonValue row = JsonValue::Object();
    row.Set("user", entry.user);
    row.Set("score", entry.score);
    entries.Append(std::move(row));
  }
  body.Set("results", std::move(entries));
  SetGeneration(&body, generation);
  return HttpResponse::Json(200, body.Dump(0));
}

HttpResponse ModelGoneResponse() {
  // Only reachable if traffic arrives before the initial load finished;
  // RegisterServeEndpoints documents that as a caller bug, but a typed
  // 500 beats dereferencing null.
  return ErrorResponse(Status::Internal("no model loaded yet"));
}

/// Soft-budget load shedding for the query endpoints (`serve
/// --mem-budget-bytes`): when accounted bytes + headroom sit over the
/// budget, /score and /topk answer 503 instead of queueing work on a
/// process the kernel is about to OOM-kill. Returns true (and fills
/// `*response`) when the request must be shed. The check is two relaxed
/// loads — free when no budget is configured.
bool ShedOverBudget(HttpResponse* response) {
  if (!obs::OverMemoryBudget()) return false;
  if (obs::MetricsEnabled()) {
    static obs::Counter* pressure =
        obs::MetricsRegistry::Default().GetCounter("serve.mem_pressure");
    pressure->Increment();
  }
  JsonValue body = JsonValue::Object();
  body.Set("error",
           "serving over memory budget; request shed (see /memz)");
  body.Set("code", "MEM_PRESSURE");
  *response = HttpResponse::Json(503, body.Dump(0));
  return true;
}

}  // namespace

int HttpCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
      return 504;
    default:
      return 500;
  }
}

void RegisterServeEndpoints(obs::StatsServer* server,
                            const InfluenceService* service) {
  server->Handle("/score", [service](const HttpRequest& request) {
    HttpResponse shed;
    if (ShedOverBudget(&shed)) return shed;
    return HandleScore(*service, std::nullopt, request);
  });
  server->Handle("/topk", [service](const HttpRequest& request) {
    HttpResponse shed;
    if (ShedOverBudget(&shed)) return shed;
    return HandleTopK(*service, std::nullopt, request);
  });
  server->Handle("/modelz", [service](const HttpRequest&) {
    return HttpResponse::Json(200, service->DescribeJson().Dump(2));
  });
}

void RegisterServeEndpoints(obs::StatsServer* server, ModelSwapper* swapper) {
  server->Handle("/score", [swapper](const HttpRequest& request) {
    HttpResponse shed;
    if (ShedOverBudget(&shed)) return shed;
    const auto model = swapper->Acquire();
    if (model == nullptr) return ModelGoneResponse();
    return HandleScore(model->service, model->generation, request);
  });
  server->Handle("/topk", [swapper](const HttpRequest& request) {
    HttpResponse shed;
    if (ShedOverBudget(&shed)) return shed;
    const auto model = swapper->Acquire();
    if (model == nullptr) return ModelGoneResponse();
    return HandleTopK(model->service, model->generation, request);
  });
  server->Handle("/modelz", [swapper](const HttpRequest&) {
    const auto model = swapper->Acquire();
    if (model == nullptr) return ModelGoneResponse();
    JsonValue body = model->service.DescribeJson();
    body.Set("generation", model->generation);
    body.Set("watching", swapper->watching());
    return HttpResponse::Json(200, body.Dump(2));
  });
  server->Handle("/reloadz", [swapper](const HttpRequest&) {
    const Status reloaded = swapper->Reload();
    if (!reloaded.ok()) {
      JsonValue body = JsonValue::Object();
      body.Set("error", reloaded.message());
      body.Set("code", StatusCodeName(reloaded.code()));
      // The previous model keeps serving; say which one.
      body.Set("serving_generation", swapper->generation());
      return HttpResponse::Json(HttpCodeFor(reloaded), body.Dump(0));
    }
    JsonValue body = JsonValue::Object();
    body.Set("status", "reloaded");
    body.Set("generation", swapper->generation());
    body.Set("model", swapper->model_path());
    // The accounted double-resident peak of this swap (0 on the first
    // load — nothing was resident to double).
    body.Set("swap_transient_bytes", swapper->last_swap_transient_bytes());
    return HttpResponse::Json(200, body.Dump(0));
  });
}

}  // namespace serve
}  // namespace inf2vec
