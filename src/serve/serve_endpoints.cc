#include "serve/serve_endpoints.h"

#include <memory>
#include <string>
#include <vector>

#include "core/aggregation.h"
#include "kernels/kernels.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/topk_batcher.h"
#include "util/string_util.h"

namespace inf2vec {
namespace serve {
namespace {

using obs::HttpRequest;
using obs::HttpResponse;
using obs::JsonValue;

/// Query-path Status in the process-wide error envelope (obs::ErrorJson):
/// the machine code is the StatusCodeName spelling, the HTTP code the
/// HttpCodeFor mapping.
HttpResponse ErrorResponse(const Status& status) {
  return obs::ErrorJson(HttpCodeFor(status), StatusCodeName(status.code()),
                        status.message());
}

/// "1,5,9" -> {1, 5, 9}; rejects empties and non-numeric fields. `key`
/// names the query parameter in the error so 400s always point at the
/// offending input.
Result<std::vector<UserId>> ParseSeedList(const HttpRequest& request,
                                          const std::string& key) {
  if (!request.HasQuery(key)) {
    return Status::InvalidArgument("missing required parameter: " + key);
  }
  const std::string csv = request.QueryOr(key, "");
  std::vector<UserId> seeds;
  for (std::string_view field : SplitString(csv, ',')) {
    uint32_t id = 0;
    const Status parsed = ParseUint32(TrimString(field), &id);
    if (!parsed.ok()) {
      return Status::InvalidArgument("bad " + key + " entry '" +
                                     std::string(field) +
                                     "': " + parsed.message());
    }
    seeds.push_back(id);
  }
  return seeds;
}

/// Required uint parameter; 400s name `key`.
Status ParseRequiredUint32(const HttpRequest& request, const std::string& key,
                           uint32_t* out) {
  if (!request.HasQuery(key)) {
    return Status::InvalidArgument("missing required parameter: " + key);
  }
  const std::string raw = request.QueryOr(key, "");
  const Status parsed = ParseUint32(raw, out);
  if (!parsed.ok()) {
    return Status::InvalidArgument("bad " + key + " '" + raw + "'");
  }
  return Status::OK();
}

/// Optional uint parameter; missing keeps `*out` unchanged.
template <typename T>
Status ParseOptionalUint(const HttpRequest& request, const std::string& key,
                         T* out) {
  if (!request.HasQuery(key)) return Status::OK();
  const std::string raw = request.QueryOr(key, "");
  int64_t value = 0;
  const Status parsed = ParseInt64(raw, &value);
  if (!parsed.ok() || value < 0) {
    return Status::InvalidArgument("bad " + key + " '" + raw + "'");
  }
  *out = static_cast<T>(value);
  return Status::OK();
}

Status ParseOptionalAggregation(const HttpRequest& request,
                                std::optional<Aggregation>* out) {
  if (!request.HasQuery("aggregation")) return Status::OK();
  const std::string name = request.QueryOr("aggregation", "");
  Result<Aggregation> parsed = ParseAggregation(name);
  if (!parsed.ok()) {
    return Status::InvalidArgument("bad aggregation '" + name +
                                   "': " + parsed.status().message());
  }
  *out = parsed.value();
  return Status::OK();
}

/// Generation stamp for hot-swap deployments; static single-model serving
/// passes nullopt and emits no field.
using GenerationTag = std::optional<uint64_t>;

/// The parameters /score and /topk share — required `seeds`, optional
/// `aggregation` and `deadline_us` — parsed once, identically, under a
/// "parse" trace span. Every failure names the offending parameter.
template <typename RequestT>
Status ParseCommonQuery(const HttpRequest& request, RequestT* query) {
  Result<std::vector<UserId>> seeds = ParseSeedList(request, "seeds");
  if (!seeds.ok()) return seeds.status();
  query->seeds = std::move(seeds).value();
  INF2VEC_RETURN_IF_ERROR(
      ParseOptionalAggregation(request, &query->aggregation));
  INF2VEC_RETURN_IF_ERROR(
      ParseOptionalUint(request, "deadline_us", &query->deadline_us));
  return Status::OK();
}

/// Stamps the request-level attributes (seed-set size, kernel ISA, quant
/// mode, generation) onto the enclosing request's root span — a no-op
/// unless request observability has a scope open on this thread.
void AnnotateRootSpan(const InfluenceService& service,
                      const GenerationTag& generation, size_t seed_count) {
  obs::TraceSpan* root = obs::TraceSpan::Current();
  if (root == nullptr) return;
  root->SetAttr("seed_count", static_cast<uint64_t>(seed_count));
  root->SetAttr("kernel_isa", kernels::IsaName(kernels::ActiveIsa()));
  root->SetAttr("quant_mode", QuantModeName(service.quant_mode()));
  if (generation.has_value()) root->SetAttr("generation", *generation);
}

void SetGeneration(JsonValue* body, const GenerationTag& generation) {
  if (generation.has_value()) body->Set("generation", *generation);
}

HttpResponse HandleScore(const InfluenceService& service,
                         const GenerationTag& generation,
                         const HttpRequest& request) {
  ScoreRequest query;
  {
    obs::TraceSpan span("parse", "serve");
    const Status candidate =
        ParseRequiredUint32(request, "candidate", &query.candidate);
    if (!candidate.ok()) return ErrorResponse(candidate);
    const Status common = ParseCommonQuery(request, &query);
    if (!common.ok()) return ErrorResponse(common);
  }
  AnnotateRootSpan(service, generation, query.seeds.size());

  const Result<ScoreResult> result = service.ScoreActivation(query);
  if (!result.ok()) return ErrorResponse(result.status());

  obs::TraceSpan span("serialize", "serve");
  JsonValue body = JsonValue::Object();
  body.Set("candidate", query.candidate);
  body.Set("score", result.value().score);
  body.Set("cache_hit", result.value().cache_hit);
  SetGeneration(&body, generation);
  return HttpResponse::Json(200, body.Dump(0));
}

/// Parses the POST /score body — a true batch through ScoreBatch:
///
///   {"queries": [{"candidate": U, "seeds": [A, B]}, ...],
///    "aggregation": "Ave", "deadline_us": N}
///
/// (aggregation and deadline_us optional, shared by the whole batch).
Status ParseBatchBody(const std::string& body, BatchScoreRequest* batch) {
  Result<JsonValue> parsed = obs::ParseJson(body);
  if (!parsed.ok()) {
    return Status::InvalidArgument("bad JSON body: " +
                                   parsed.status().message());
  }
  const JsonValue& root = parsed.value();
  if (root.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("body must be a JSON object");
  }
  const JsonValue* queries = root.Find("queries");
  if (queries == nullptr || queries->kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("body must carry a \"queries\" array");
  }
  batch->items.reserve(queries->size());
  for (size_t i = 0; i < queries->items().size(); ++i) {
    const JsonValue& entry = queries->items()[i];
    const std::string at = "queries[" + std::to_string(i) + "]";
    if (entry.kind() != JsonValue::Kind::kObject) {
      return Status::InvalidArgument(at + " must be an object");
    }
    BatchItem item;
    const JsonValue* candidate = entry.Find("candidate");
    if (candidate == nullptr ||
        candidate->kind() != JsonValue::Kind::kInt ||
        candidate->AsInt() < 0) {
      return Status::InvalidArgument(at +
                                     ".candidate must be a non-negative id");
    }
    item.candidate = static_cast<UserId>(candidate->AsInt());
    const JsonValue* seeds = entry.Find("seeds");
    if (seeds == nullptr || seeds->kind() != JsonValue::Kind::kArray) {
      return Status::InvalidArgument(at + ".seeds must be an array of ids");
    }
    item.seeds.reserve(seeds->size());
    for (const JsonValue& seed : seeds->items()) {
      if (seed.kind() != JsonValue::Kind::kInt || seed.AsInt() < 0) {
        return Status::InvalidArgument(at + ".seeds must be non-negative ids");
      }
      item.seeds.push_back(static_cast<UserId>(seed.AsInt()));
    }
    batch->items.push_back(std::move(item));
  }
  const JsonValue* aggregation = root.Find("aggregation");
  if (aggregation != nullptr) {
    if (aggregation->kind() != JsonValue::Kind::kString) {
      return Status::InvalidArgument("aggregation must be a string");
    }
    Result<Aggregation> kind = ParseAggregation(aggregation->AsString());
    if (!kind.ok()) {
      return Status::InvalidArgument("bad aggregation '" +
                                     aggregation->AsString() +
                                     "': " + kind.status().message());
    }
    batch->aggregation = kind.value();
  }
  const JsonValue* deadline = root.Find("deadline_us");
  if (deadline != nullptr) {
    if (deadline->kind() != JsonValue::Kind::kInt || deadline->AsInt() < 0) {
      return Status::InvalidArgument("deadline_us must be a non-negative int");
    }
    batch->deadline_us = static_cast<uint64_t>(deadline->AsInt());
  }
  return Status::OK();
}

HttpResponse HandleScoreBatch(const InfluenceService& service,
                              const GenerationTag& generation,
                              const HttpRequest& request) {
  BatchScoreRequest batch;
  {
    obs::TraceSpan span("parse", "serve");
    const Status parsed = ParseBatchBody(request.body, &batch);
    if (!parsed.ok()) return ErrorResponse(parsed);
  }
  size_t seed_count = 0;
  for (const BatchItem& item : batch.items) seed_count += item.seeds.size();
  AnnotateRootSpan(service, generation, seed_count);
  obs::TraceSpan* root = obs::TraceSpan::Current();
  if (root != nullptr) {
    root->SetAttr("batch_items", static_cast<uint64_t>(batch.items.size()));
  }

  const Result<BatchScoreResult> result = service.ScoreBatch(batch);
  if (!result.ok()) return ErrorResponse(result.status());

  obs::TraceSpan span("serialize", "serve");
  JsonValue body = JsonValue::Object();
  body.Set("count", static_cast<uint64_t>(result.value().scores.size()));
  body.Set("cache_hits", result.value().cache_hits);
  JsonValue results = JsonValue::Array();
  for (size_t i = 0; i < result.value().scores.size(); ++i) {
    JsonValue row = JsonValue::Object();
    row.Set("candidate", batch.items[i].candidate);
    row.Set("score", result.value().scores[i]);
    results.Append(std::move(row));
  }
  body.Set("results", std::move(results));
  SetGeneration(&body, generation);
  return HttpResponse::Json(200, body.Dump(0));
}

HttpResponse HandleTopK(const InfluenceService& service,
                        const GenerationTag& generation, TopKBatcher* batcher,
                        const HttpRequest& request) {
  TopKRequest query;
  {
    obs::TraceSpan span("parse", "serve");
    const Status common = ParseCommonQuery(request, &query);
    if (!common.ok()) return ErrorResponse(common);
    const Status k = ParseOptionalUint(request, "k", &query.k);
    if (!k.ok()) return ErrorResponse(k);
    query.include_seeds = request.QueryOr("include_seeds", "0") == "1";
  }
  AnnotateRootSpan(service, generation, query.seeds.size());

  // Concurrent requests for the same (generation, seed set) coalesce
  // into one cache-blocked scan; only the leader runs service.TopK.
  const Result<TopKResult> result = batcher->Execute(
      generation.value_or(0), query,
      [&service](const TopKRequest& scan) { return service.TopK(scan); });
  if (!result.ok()) return ErrorResponse(result.status());

  obs::TraceSpan span("serialize", "serve");
  span.SetAttr("results", static_cast<uint64_t>(result.value().entries.size()));
  JsonValue body = JsonValue::Object();
  body.Set("k", query.k);
  body.Set("scanned", result.value().scanned);
  body.Set("cache_hit", result.value().cache_hit);
  body.Set("coalesced", result.value().coalesced);
  JsonValue entries = JsonValue::Array();
  for (const TopKEntry& entry : result.value().entries) {
    JsonValue row = JsonValue::Object();
    row.Set("user", entry.user);
    row.Set("score", entry.score);
    entries.Append(std::move(row));
  }
  body.Set("results", std::move(entries));
  SetGeneration(&body, generation);
  return HttpResponse::Json(200, body.Dump(0));
}

HttpResponse ModelGoneResponse() {
  // Only reachable if traffic arrives before the initial load finished;
  // RegisterServeEndpoints documents that as a caller bug, but a typed
  // 500 beats dereferencing null.
  return ErrorResponse(Status::Internal("no model loaded yet"));
}

/// Soft-budget load shedding for the query endpoints (`serve
/// --mem-budget-bytes`): when accounted bytes + headroom sit over the
/// budget, /score and /topk answer 503 instead of queueing work on a
/// process the kernel is about to OOM-kill. Returns true (and fills
/// `*response`) when the request must be shed. The check is two relaxed
/// loads — free when no budget is configured.
bool ShedOverBudget(HttpResponse* response) {
  if (!obs::OverMemoryBudget()) return false;
  if (obs::MetricsEnabled()) {
    static obs::Counter* pressure =
        obs::MetricsRegistry::Default().GetCounter("serve.mem_pressure");
    pressure->Increment();
  }
  *response = obs::ErrorJson(
      503, "MEM_PRESSURE", "serving over memory budget; request shed (see /memz)");
  // Same backoff hint the 429 OVERLOADED shed sends: pressure clears on
  // the order of a snapshot interval, so "try again in a second".
  response->extra_headers.emplace_back("Retry-After", "1");
  return true;
}

}  // namespace

int HttpCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
      return 504;
    default:
      return 500;
  }
}

void RegisterServeEndpoints(obs::StatsServer* server,
                            const InfluenceService* service) {
  auto batcher = std::make_shared<TopKBatcher>();
  server->Route("GET", "/score", [service](const HttpRequest& request) {
    HttpResponse shed;
    if (ShedOverBudget(&shed)) return shed;
    return HandleScore(*service, std::nullopt, request);
  });
  server->Route("POST", "/score", [service](const HttpRequest& request) {
    HttpResponse shed;
    if (ShedOverBudget(&shed)) return shed;
    return HandleScoreBatch(*service, std::nullopt, request);
  });
  server->Route("GET", "/topk", [service, batcher](const HttpRequest& request) {
    HttpResponse shed;
    if (ShedOverBudget(&shed)) return shed;
    return HandleTopK(*service, std::nullopt, batcher.get(), request);
  });
  server->Route("GET", "/modelz", [service](const HttpRequest&) {
    return HttpResponse::Json(200, service->DescribeJson().Dump(2));
  });
}

void RegisterServeEndpoints(obs::StatsServer* server, ModelSwapper* swapper) {
  auto batcher = std::make_shared<TopKBatcher>();
  server->Route("GET", "/score", [swapper](const HttpRequest& request) {
    HttpResponse shed;
    if (ShedOverBudget(&shed)) return shed;
    const auto model = swapper->Acquire();
    if (model == nullptr) return ModelGoneResponse();
    return HandleScore(model->service, model->generation, request);
  });
  server->Route("POST", "/score", [swapper](const HttpRequest& request) {
    HttpResponse shed;
    if (ShedOverBudget(&shed)) return shed;
    const auto model = swapper->Acquire();
    if (model == nullptr) return ModelGoneResponse();
    return HandleScoreBatch(model->service, model->generation, request);
  });
  server->Route("GET", "/topk", [swapper, batcher](const HttpRequest& request) {
    HttpResponse shed;
    if (ShedOverBudget(&shed)) return shed;
    const auto model = swapper->Acquire();
    if (model == nullptr) return ModelGoneResponse();
    // The generation keys the coalescer, so requests racing a hot swap
    // never share a scan across models.
    return HandleTopK(model->service, model->generation, batcher.get(),
                      request);
  });
  server->Route("GET", "/modelz", [swapper](const HttpRequest&) {
    const auto model = swapper->Acquire();
    if (model == nullptr) return ModelGoneResponse();
    JsonValue body = model->service.DescribeJson();
    body.Set("generation", model->generation);
    body.Set("watching", swapper->watching());
    return HttpResponse::Json(200, body.Dump(2));
  });
  server->Route("GET", "/reloadz", [swapper](const HttpRequest&) {
    const Status reloaded = swapper->Reload();
    if (!reloaded.ok()) {
      JsonValue body = JsonValue::Object();
      body.Set("error", reloaded.message());
      body.Set("code", StatusCodeName(reloaded.code()));
      // The previous model keeps serving; say which one.
      body.Set("serving_generation", swapper->generation());
      return HttpResponse::Json(HttpCodeFor(reloaded), body.Dump(0));
    }
    JsonValue body = JsonValue::Object();
    body.Set("status", "reloaded");
    body.Set("generation", swapper->generation());
    body.Set("model", swapper->model_path());
    // The accounted double-resident peak of this swap (0 on the first
    // load — nothing was resident to double).
    body.Set("swap_transient_bytes", swapper->last_swap_transient_bytes());
    return HttpResponse::Json(200, body.Dump(0));
  });
}

}  // namespace serve
}  // namespace inf2vec
