#ifndef INF2VEC_SERVE_TOPK_BATCHER_H_
#define INF2VEC_SERVE_TOPK_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "serve/influence_service.h"

namespace inf2vec {
namespace serve {

/// Single-flight coalescer for concurrent /topk requests over the same
/// seed block. A full top-k scan reads the entire target table (tens of
/// milliseconds at 1M users), so N concurrent clients asking about the
/// same hot seed set would burn N scans computing one answer. Execute()
/// keys each in-flight scan by (generation, seeds, aggregation,
/// include_seeds); the first caller — the leader — runs the scan, and
/// every caller that arrives for the same key while it runs waits and
/// shares the leader's result, truncated to its own (smaller or equal)
/// k. A follower asking for MORE rows than the leader scanned for cannot
/// be served from the shared heap and falls back to its own scan.
///
/// Sharing is deliberately coarse: followers inherit the leader's
/// outcome, including a failure (a DeadlineExceeded leader fails its
/// followers — they arrived later, so their budgets are tighter still).
/// The generation in the key isolates hot-swap deployments: requests
/// answered by different model generations never share a scan.
///
/// Thread-safe; designed to be called from the HTTP worker pool.
class TopKBatcher {
 public:
  using ScanFn = std::function<Result<TopKResult>(const TopKRequest&)>;

  explicit TopKBatcher(
      obs::MetricsRegistry* registry = &obs::MetricsRegistry::Default());

  TopKBatcher(const TopKBatcher&) = delete;
  TopKBatcher& operator=(const TopKBatcher&) = delete;

  /// Runs (or joins) the scan for `request`. `generation` must change
  /// whenever the underlying model does. `scan` is invoked at most once
  /// per coalition, on the leader's thread. Results that were shared from
  /// another request's scan come back with `coalesced = true`.
  Result<TopKResult> Execute(uint64_t generation, const TopKRequest& request,
                             const ScanFn& scan);

  /// Requests served from another request's scan (serve.topk_coalesced).
  uint64_t coalesced_total() const;

 private:
  struct Group {
    bool done = false;
    uint32_t k = 0;           // The leader's k: the rows the heap kept.
    Status status = Status::OK();
    TopKResult result;
  };

  static std::string KeyFor(uint64_t generation, const TopKRequest& request);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// In-flight scans only: the leader erases its group before waking the
  /// followers (they hold a shared_ptr), so finished results never pin
  /// the map.
  std::unordered_map<std::string, std::shared_ptr<Group>> groups_;
  obs::Counter* coalesced_;  // Registry-owned.
};

}  // namespace serve
}  // namespace inf2vec

#endif  // INF2VEC_SERVE_TOPK_BATCHER_H_
