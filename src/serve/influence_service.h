#ifndef INF2VEC_SERVE_INFLUENCE_SERVICE_H_
#define INF2VEC_SERVE_INFLUENCE_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/aggregation.h"
#include "embedding/model_io.h"
#include "obs/json.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "serve/seed_cache.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace inf2vec {
namespace serve {

/// Numeric mode of the serving table. kInt8 serves from a
/// QuantizedEmbeddingStore — loaded from the artifact's quantized section
/// when present, else quantized from the fp64 table at load time — for
/// 8x smaller scan footprint at a small recall cost (see docs/SERVING.md).
enum class QuantMode {
  kNone = 0,  // fp64, bit-identical to EmbeddingPredictor.
  kInt8 = 1,
};

/// "none" / "int8".
const char* QuantModeName(QuantMode mode);

/// Parses "none" or "int8" (the CLI spelling). Returns false otherwise.
bool ParseQuantModeName(const std::string& name, QuantMode* mode);

/// Serving knobs; the defaults suit an interactive loopback deployment.
struct ServiceOptions {
  /// Aggregation used when a request does not name one. Unset resolves to
  /// the artifact's metadata (falling back to Ave for legacy v1 models).
  std::optional<Aggregation> aggregation;
  /// LRU entries for repeated seed-set gathers; 0 disables the cache.
  uint32_t seed_cache_capacity = 256;
  /// Per-query budget applied when a request carries no deadline;
  /// 0 = unbounded.
  uint64_t default_deadline_us = 0;
  /// Oversized-request guards: requests beyond these fail fast with
  /// InvalidArgument instead of tying up the serving thread.
  uint32_t max_seeds = 4096;
  uint32_t max_k = 1024;
  uint32_t max_batch = 65536;
  /// Worker threads for ScoreBatch sharding. 1 scores inline; 0 resolves
  /// to all hardware threads.
  uint32_t num_threads = 1;
  /// Targets scanned per deadline check in the top-k scan. 2048 rows of a
  /// K=50 float64 table is ~800KB of streamed reads — long enough to
  /// amortize the clock read, short enough for ~ms deadline granularity.
  uint32_t scan_block = 2048;
  /// Monotonic microsecond clock, injectable so deadline behavior is
  /// deterministically testable. Null uses steady_clock.
  std::function<uint64_t()> clock_us;
  /// Numeric mode of the serving table (`serve --quantize int8`).
  QuantMode quantize = QuantMode::kNone;
};

/// One ScoreActivation-style query: will `candidate` activate given this
/// activated (chronologically ordered) influencer set?
struct ScoreRequest {
  UserId candidate = 0;
  std::vector<UserId> seeds;
  std::optional<Aggregation> aggregation;
  uint64_t deadline_us = 0;  // Overrides the default when nonzero.
};

struct ScoreResult {
  double score = 0.0;
  bool cache_hit = false;
};

/// Top-k influence query: the k users this seed set most influences.
struct TopKRequest {
  std::vector<UserId> seeds;
  uint32_t k = 10;
  std::optional<Aggregation> aggregation;
  uint64_t deadline_us = 0;
  /// Seed users themselves are excluded from the ranking by default.
  bool include_seeds = false;
};

struct TopKEntry {
  UserId user = 0;
  double score = 0.0;
};

struct TopKResult {
  /// Descending score; ties broken by ascending user id.
  std::vector<TopKEntry> entries;
  bool cache_hit = false;
  /// Candidates scored (num_users minus excluded seeds).
  uint64_t scanned = 0;
  /// True when this result was shared from another request's in-flight
  /// scan (serve::TopKBatcher single-flight coalescing), not scanned for
  /// this request.
  bool coalesced = false;
};

/// Shard-mode top-k over a *transported* seed block (src/shard/): a shard
/// process receives the gathered seed rows on the wire instead of owning
/// them locally, and scans only its local slice. `exclude` carries the
/// coordinator's seed-exclusion set mapped into this shard's local id
/// space (need not be sorted or deduplicated).
struct BlockTopKRequest {
  uint32_t k = 10;
  std::optional<Aggregation> aggregation;
  uint64_t deadline_us = 0;
  std::vector<UserId> exclude;
};

/// Batch scoring: many (candidate, seed set) pairs in one call, sharded
/// over the service's thread pool.
struct BatchItem {
  UserId candidate = 0;
  std::vector<UserId> seeds;
};

struct BatchScoreRequest {
  std::vector<BatchItem> items;
  std::optional<Aggregation> aggregation;
  uint64_t deadline_us = 0;
};

struct BatchScoreResult {
  std::vector<double> scores;  // Parallel to request.items.
  uint64_t cache_hits = 0;
};

/// Online influence-query engine over a loaded model artifact: load ->
/// warm -> query. All query methods are const and safe for concurrent
/// callers (the embedding table is immutable after load; the seed cache
/// and metrics synchronize internally); ScoreBatch additionally
/// serializes its internal thread-pool fan-out so concurrent batch calls
/// queue rather than corrupt the pool.
///
/// Every error is a graceful Result<>: NotFound for unknown users,
/// InvalidArgument for empty/oversized requests, DeadlineExceeded when a
/// query overruns its budget.
class InfluenceService {
 public:
  /// Loads an I2VEMB1/I2VEMB2 artifact from disk.
  static Result<InfluenceService> Load(
      const std::string& model_path, ServiceOptions options,
      obs::MetricsRegistry* registry = &obs::MetricsRegistry::Default());

  /// Wraps an already-loaded artifact (benches, tests, shard serving).
  /// `model_path` is display-only provenance for /modelz.
  static Result<InfluenceService> FromArtifact(
      ModelArtifact artifact, ServiceOptions options,
      obs::MetricsRegistry* registry = &obs::MetricsRegistry::Default(),
      std::string model_path = "<in-memory>");

  InfluenceService(InfluenceService&&) = default;

  /// Touches every parameter once so first queries do not pay cold page
  /// faults; returns the table checksum it computed (and publishes model
  /// gauges as a side effect).
  double Warm() const;

  /// Eq. 7: F({x(u, candidate) : u in seeds}); bit-identical to
  /// EmbeddingPredictor::ScoreActivation on the same store.
  Result<ScoreResult> ScoreActivation(const ScoreRequest& request) const;

  /// Batched, cache-blocked scan over all target embeddings with a
  /// bounded min-heap; scores are bit-identical to brute-force Eq. 7 and
  /// ties break by ascending user id.
  Result<TopKResult> TopK(const TopKRequest& request) const;

  /// Scores every item; one shared deadline for the whole batch.
  Result<BatchScoreResult> ScoreBatch(const BatchScoreRequest& request) const;

  /// Top-k scan driven by an externally supplied seed block (shard serve
  /// mode). Runs the exact same scan loop as TopK() — same kernels, same
  /// comparator, same deadline blocking — so local entries are
  /// bit-identical to the corresponding slice of a single-node scan when
  /// the block's bytes match GatherSeedBlock's output. The block's
  /// quantized flag must match the service's quant mode.
  Result<TopKResult> TopKWithBlock(const SeedBlock& block,
                                   const BlockTopKRequest& request) const;

  /// Eq. 7 score of one local candidate against a transported seed block;
  /// same bit-identity contract as TopKWithBlock.
  Result<double> ScoreWithBlock(
      const SeedBlock& block, UserId candidate,
      const std::optional<Aggregation>& aggregation) const;

  const EmbeddingStore& store() const { return artifact_->store; }
  const ModelMetadata& metadata() const { return artifact_->metadata; }
  /// Non-null when serving in int8 mode.
  const QuantizedEmbeddingStore* quantized_store() const {
    return qstore_.get();
  }
  QuantMode quant_mode() const {
    return qstore_ == nullptr ? QuantMode::kNone : QuantMode::kInt8;
  }
  Aggregation default_aggregation() const { return default_aggregation_; }
  const std::string& model_path() const { return model_path_; }

  const SeedBlockCache& seed_cache() const { return *cache_; }

  /// The /modelz payload: artifact metadata, table shape, serving config,
  /// cache statistics.
  obs::JsonValue DescribeJson() const;

  /// Bytes this service accounts into the memory registry: the fp64
  /// table plus, in int8 mode, the quantized serving table. What a
  /// hot-swap preflight must assume a second resident copy costs.
  uint64_t AccountedBytes() const {
    return table_bytes_.bytes() + qtable_bytes_.bytes();
  }

 private:
  InfluenceService(ModelArtifact artifact, ServiceOptions options,
                   std::string model_path, obs::MetricsRegistry* registry);

  uint64_t NowUs() const;
  /// Effective deadline in absolute us-since-start terms; 0 = none.
  uint64_t ResolveDeadline(uint64_t request_deadline_us,
                           uint64_t start_us) const;
  Status ValidateSeeds(const std::vector<UserId>& seeds) const;
  Aggregation ResolveAggregation(
      const std::optional<Aggregation>& requested) const;
  /// A transported seed block must look exactly like one this service
  /// would gather itself (shape + quantization mode).
  Status ValidateBlock(const SeedBlock& block) const;
  /// The shared bounded-heap scan core behind TopK and TopKWithBlock.
  /// `excluded` must be sorted and unique; `deadline` is absolute (0 =
  /// none); increments error/deadline metrics on failure.
  Result<TopKResult> ScanTopK(const SeedBlock& block, uint32_t k,
                              Aggregation aggregation,
                              const std::vector<UserId>& excluded,
                              uint64_t deadline, uint64_t num_seeds) const;

  std::unique_ptr<ModelArtifact> artifact_;  // Stable address for spans.
  /// int8 serving table; null in fp64 mode. Owned here (moved out of the
  /// artifact's section or built at load), immutable afterwards.
  std::unique_ptr<QuantizedEmbeddingStore> qstore_;
  ServiceOptions options_;
  std::string model_path_;
  Aggregation default_aggregation_ = Aggregation::kAve;
  std::unique_ptr<SeedBlockCache> cache_;
  std::unique_ptr<ThreadPool> batch_pool_;          // Null when 1 thread.
  std::unique_ptr<std::mutex> batch_mu_;            // Guards pool posting.
  /// Byte reservations in the memory plane; released on destruction, so
  /// a retired generation's tables vanish from /memz when the last
  /// shared_ptr drops.
  obs::ScopedBytes table_bytes_;   // serve.embedding_table.
  obs::ScopedBytes qtable_bytes_;  // serve.quantized_table.

  // Metric handles (registry-owned; valid for the registry's lifetime).
  obs::Counter* score_requests_;
  obs::Counter* topk_requests_;
  obs::Counter* batch_requests_;
  obs::Counter* batch_items_;
  obs::Counter* errors_;
  obs::Counter* deadline_exceeded_;
  obs::HistogramMetric* score_latency_us_;
  obs::HistogramMetric* topk_latency_us_;
  obs::HistogramMetric* batch_latency_us_;
  obs::Counter* cache_hits_;
  obs::Counter* cache_misses_;
};

}  // namespace serve
}  // namespace inf2vec

#endif  // INF2VEC_SERVE_INFLUENCE_SERVICE_H_
