#include "serve/seed_cache.h"

#include <cstring>

#include "obs/trace.h"

namespace inf2vec {
namespace serve {
namespace {

/// Miss-path gather under a span: a request trace shows "seed_gather" time
/// exactly when the cache missed, so hit/miss is legible from the phase
/// breakdown alone.
std::shared_ptr<const SeedBlock> TracedGather(
    const std::function<SeedBlock()>& gather, size_t seed_count) {
  obs::TraceSpan span("seed_gather", "serve");
  span.SetAttr("seed_count", static_cast<uint64_t>(seed_count));
  return std::make_shared<const SeedBlock>(gather());
}

/// Exact binary key: the id sequence verbatim. Cheap to build and free of
/// separator ambiguity.
std::string CacheKey(const std::vector<UserId>& seeds) {
  return std::string(reinterpret_cast<const char*>(seeds.data()),
                     seeds.size() * sizeof(UserId));
}

}  // namespace

SeedBlockCache::SeedBlockCache(size_t capacity)
    : capacity_(capacity),
      mem_gauge_(
          obs::MemoryRegistry::Default().GetGauge("serve.seed_cache")),
      bytes_metric_(obs::MetricsRegistry::Default().GetGauge(
          "serve.seed_cache_bytes")) {}

SeedBlockCache::~SeedBlockCache() {
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes_ != 0) AccountLocked(-static_cast<int64_t>(bytes_));
}

uint64_t SeedBlockCache::EntryBytes(const Entry& entry) {
  uint64_t bytes = entry.first.capacity();
  if (entry.second != nullptr) {
    bytes += sizeof(SeedBlock) + entry.second->ApproxBytes();
  }
  return bytes;
}

void SeedBlockCache::AccountLocked(int64_t delta) {
  bytes_ = static_cast<uint64_t>(static_cast<int64_t>(bytes_) + delta);
  mem_gauge_->Add(delta);
  bytes_metric_->Set(static_cast<double>(bytes_));
}

SeedBlock GatherSeedBlock(const EmbeddingStore& store,
                          const std::vector<UserId>& seeds) {
  SeedBlock block;
  block.dim = store.dim();
  block.stride = store.row_stride();
  block.seeds = seeds;
  block.sources.resize(seeds.size() * static_cast<size_t>(block.stride), 0.0);
  block.source_biases.resize(seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    const std::span<const double> row = store.Source(seeds[i]);
    std::memcpy(
        block.sources.data() + i * static_cast<size_t>(block.stride),
        row.data(), sizeof(double) * block.dim);
    block.source_biases[i] = store.source_bias(seeds[i]);
  }
  return block;
}

SeedBlock GatherSeedBlock(const QuantizedEmbeddingStore& store,
                          const std::vector<UserId>& seeds) {
  SeedBlock block;
  block.quantized = true;
  block.dim = store.dim();
  block.q_stride = store.row_stride();
  block.seeds = seeds;
  block.q_sources.resize(seeds.size() * static_cast<size_t>(block.q_stride),
                         0);
  block.q_scales.resize(seeds.size());
  block.q_biases.resize(seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    const std::span<const int8_t> row = store.Source(seeds[i]);
    std::memcpy(
        block.q_sources.data() + i * static_cast<size_t>(block.q_stride),
        row.data(), block.dim);
    block.q_scales[i] = store.source_scale(seeds[i]);
    block.q_biases[i] = store.source_bias(seeds[i]);
  }
  return block;
}

std::shared_ptr<const SeedBlock> SeedBlockCache::Get(
    const EmbeddingStore& store, const std::vector<UserId>& seeds,
    bool* cache_hit) {
  return GetImpl(
      seeds, [&] { return GatherSeedBlock(store, seeds); }, cache_hit);
}

std::shared_ptr<const SeedBlock> SeedBlockCache::Get(
    const QuantizedEmbeddingStore& store, const std::vector<UserId>& seeds,
    bool* cache_hit) {
  return GetImpl(
      seeds, [&] { return GatherSeedBlock(store, seeds); }, cache_hit);
}

std::shared_ptr<const SeedBlock> SeedBlockCache::GetImpl(
    const std::vector<UserId>& seeds,
    const std::function<SeedBlock()>& gather, bool* cache_hit) {
  if (capacity_ == 0) {
    if (cache_hit != nullptr) *cache_hit = false;
    std::shared_ptr<const SeedBlock> block = TracedGather(gather, seeds.size());
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    return block;
  }

  const std::string key = CacheKey(seeds);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      if (cache_hit != nullptr) *cache_hit = true;
      return it->second->second;
    }
  }

  // Gather outside the lock: misses on distinct keys proceed in parallel
  // (two racing misses on the same key both insert; last one wins, both
  // blocks are identical).
  std::shared_ptr<const SeedBlock> block = TracedGather(gather, seeds.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      const int64_t replaced = static_cast<int64_t>(EntryBytes(*it->second));
      it->second->second = block;
      AccountLocked(static_cast<int64_t>(EntryBytes(*it->second)) - replaced);
    } else {
      lru_.emplace_front(key, block);
      index_[key] = lru_.begin();
      AccountLocked(static_cast<int64_t>(EntryBytes(lru_.front())));
      while (lru_.size() > capacity_) {
        AccountLocked(-static_cast<int64_t>(EntryBytes(lru_.back())));
        index_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
  }
  if (cache_hit != nullptr) *cache_hit = false;
  return block;
}

size_t SeedBlockCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t SeedBlockCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t SeedBlockCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t SeedBlockCache::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

}  // namespace serve
}  // namespace inf2vec
