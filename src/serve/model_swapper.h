#ifndef INF2VEC_SERVE_MODEL_SWAPPER_H_
#define INF2VEC_SERVE_MODEL_SWAPPER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "serve/influence_service.h"
#include "util/status.h"

namespace inf2vec {
namespace serve {

/// An InfluenceService stamped with the reload generation that produced
/// it. Acquire() hands out one of these, so a request's scores and the
/// generation it reports are always from the same model — the pair can
/// never tear even while a swap lands mid-request.
struct VersionedService {
  uint64_t generation = 0;
  InfluenceService service;

  VersionedService(uint64_t generation, InfluenceService service)
      : generation(generation), service(std::move(service)) {}
};

/// Zero-downtime model hot-swap (RCU-style). The swapper owns the current
/// model behind a shared_ptr whose handoff is guarded by a micro-mutex
/// (a refcount bump — nanoseconds; deliberately not libstdc++'s
/// std::atomic<std::shared_ptr>, whose internal spinlock unlocks with
/// relaxed ordering and is invisible to ThreadSanitizer):
///
///  - Readers (request handlers) call Acquire() — one guarded shared_ptr
///    copy — and keep the snapshot for the request's lifetime. A
///    concurrent swap cannot free a model that is still serving; the last
///    in-flight request holding the old snapshot releases it. No reader
///    ever waits on a model load: disk I/O and warming happen off-lock.
///  - Reload() builds the NEW service completely off to the side (load
///    from disk, Warm() every page) and only then publishes it; requests
///    never observe a partially loaded model. A failed reload keeps the
///    old model serving and reports the error.
///  - Each InfluenceService owns a fresh SeedBlockCache, so swapping the
///    model structurally invalidates every cached seed-block — stale
///    scores cannot leak across generations.
///
/// StartWatching() spawns a poller that Reload()s when the model file's
/// mtime changes (the `serve --watch-model` flow); /reloadz triggers the
/// same path on demand. Reloads are serialized by an internal mutex, so
/// the watcher and the endpoint cannot interleave loads.
///
/// Metrics: serve.model_generation (gauge), serve.reloads,
/// serve.reload_errors (counters), serve.reload_seconds (gauge).
class ModelSwapper {
 public:
  /// Does not load anything yet; call Reload() once for the initial load
  /// and treat its status as fatal.
  ModelSwapper(std::string model_path, ServiceOptions options,
               obs::MetricsRegistry* registry =
                   &obs::MetricsRegistry::Default());
  ~ModelSwapper();

  ModelSwapper(const ModelSwapper&) = delete;
  ModelSwapper& operator=(const ModelSwapper&) = delete;

  /// Loads + warms the model file and atomically swaps it in, bumping the
  /// generation. On failure the previous model (if any) keeps serving
  /// untouched and the error is returned.
  Status Reload();

  /// Current model snapshot; null only before the first successful
  /// Reload(). Wait-free in practice (the lock only covers a pointer
  /// copy); safe from any thread.
  std::shared_ptr<const VersionedService> Acquire() const {
    std::lock_guard<std::mutex> lock(current_mu_);
    return current_;
  }

  /// Generation of the currently served model (0 = nothing loaded yet).
  uint64_t generation() const {
    auto snapshot = Acquire();
    return snapshot == nullptr ? 0 : snapshot->generation;
  }

  const std::string& model_path() const { return model_path_; }

  /// Starts the mtime poller (idempotent). The poll interval trades
  /// staleness for stat(2) traffic; 500ms is plenty for model pushes.
  void StartWatching(uint64_t poll_interval_ms);
  /// Stops and joins the poller (idempotent; also run by the destructor).
  void StopWatching();
  bool watching() const { return watcher_.joinable(); }

  /// Registry-accounted bytes at the double-resident peak of the most
  /// recent successful swap — old model still serving, new one warmed,
  /// neither freed yet. 0 before the second reload (the first load has no
  /// prior resident model). Stamped into /reloadz and tracked as the
  /// serve.swap_transient_bytes high-water gauge.
  uint64_t last_swap_transient_bytes() const {
    return last_transient_bytes_.load(std::memory_order_relaxed);
  }
  /// Largest double-resident peak seen over the process lifetime.
  uint64_t peak_swap_transient_bytes() const {
    return peak_transient_bytes_.load(std::memory_order_relaxed);
  }

 private:
  void WatchLoop(uint64_t poll_interval_ms);

  const std::string model_path_;
  const ServiceOptions options_;
  obs::MetricsRegistry* const registry_;

  /// Guards only the current_ pointer handoff — never held across a load.
  mutable std::mutex current_mu_;
  std::shared_ptr<const VersionedService> current_;
  std::atomic<uint64_t> next_generation_{1};

  /// Serializes Reload() callers (watcher thread vs /reloadz handler).
  std::mutex reload_mu_;
  /// mtime of the file the current model was loaded from (guarded by
  /// reload_mu_); the watcher reloads when the file's mtime departs from
  /// it. A failed reload leaves it unchanged, so the watcher retries on
  /// the next poll — a model mid-push that fails to parse once heals
  /// itself when the push completes.
  std::filesystem::file_time_type loaded_mtime_{};

  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  bool stop_watching_ = false;
  std::thread watcher_;

  obs::Gauge* generation_gauge_;
  obs::Counter* reloads_;
  obs::Counter* reload_errors_;
  obs::Gauge* reload_seconds_;
  obs::Gauge* swap_transient_gauge_;  // serve.swap_transient_bytes.
  std::atomic<uint64_t> last_transient_bytes_{0};
  std::atomic<uint64_t> peak_transient_bytes_{0};
};

}  // namespace serve
}  // namespace inf2vec

#endif  // INF2VEC_SERVE_MODEL_SWAPPER_H_
