#include "serve/influence_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <unordered_set>

#include "kernels/kernels.h"
#include "obs/trace.h"

namespace inf2vec {
namespace serve {
namespace {

uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Reusable per-query scratch, sized once per request and reused across
/// the scan so no candidate allocates.
struct ScoreScratch {
  std::vector<double> scores;  // Per-seed Eq. 7 terms.
  std::vector<int32_t> idots;  // Per-seed int8 dots (int8 mode only).
};

/// Per-seed Eq. 7 terms for one candidate, then F(). kernels::SeedScan
/// produces each per-seed dot bit-identical to kernels::Dot on the active
/// backend, and the bias adds below keep the historical association
/// (dot + b_u) + b~_v — so on the scalar backend the result is
/// bit-identical to EmbeddingPredictor::ScoreActivation (which calls
/// EmbeddingStore::Score per seed and aggregates).
double ScoreCandidate(const SeedBlock& block, const double* target,
                      double target_bias, Aggregation aggregation,
                      ScoreScratch* scratch) {
  const size_t num_seeds = block.num_seeds();
  scratch->scores.resize(num_seeds);
  kernels::SeedScan(block.sources.data(), num_seeds, block.stride, target,
                    block.dim, scratch->scores.data());
  for (size_t i = 0; i < num_seeds; ++i) {
    scratch->scores[i] =
        scratch->scores[i] + block.source_biases[i] + target_bias;
  }
  return Aggregate(aggregation, scratch->scores);
}

/// int8-mode counterpart: exact integer per-seed dots, dequantized
/// through QuantizedEmbeddingStore::DequantScore — the same expression
/// QuantizedEmbeddingStore::Score uses, so both paths agree bitwise.
double ScoreCandidateQuantized(const SeedBlock& block, const int8_t* target,
                               float target_scale, float target_bias,
                               Aggregation aggregation,
                               ScoreScratch* scratch) {
  const size_t num_seeds = block.num_seeds();
  scratch->scores.resize(num_seeds);
  scratch->idots.resize(num_seeds);
  kernels::SeedScanI8(block.q_sources.data(), num_seeds, block.q_stride,
                      target, block.dim, scratch->idots.data());
  for (size_t i = 0; i < num_seeds; ++i) {
    scratch->scores[i] = QuantizedEmbeddingStore::DequantScore(
        block.q_scales[i], target_scale, scratch->idots[i],
        block.q_biases[i], target_bias);
  }
  return Aggregate(aggregation, scratch->scores);
}

/// Ranking order of the top-k result: descending score, ties broken by
/// ascending user id.
bool BetterThan(const TopKEntry& a, const TopKEntry& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.user < b.user;
}

}  // namespace

const char* QuantModeName(QuantMode mode) {
  return mode == QuantMode::kInt8 ? "int8" : "none";
}

bool ParseQuantModeName(const std::string& name, QuantMode* mode) {
  if (name == "none") {
    *mode = QuantMode::kNone;
    return true;
  }
  if (name == "int8") {
    *mode = QuantMode::kInt8;
    return true;
  }
  return false;
}

InfluenceService::InfluenceService(ModelArtifact artifact,
                                   ServiceOptions options,
                                   std::string model_path,
                                   obs::MetricsRegistry* registry)
    : artifact_(std::make_unique<ModelArtifact>(std::move(artifact))),
      options_(std::move(options)),
      model_path_(std::move(model_path)),
      cache_(std::make_unique<SeedBlockCache>(options_.seed_cache_capacity)),
      batch_mu_(std::make_unique<std::mutex>()) {
  if (options_.aggregation.has_value()) {
    default_aggregation_ = *options_.aggregation;
  } else {
    const Result<Aggregation> parsed =
        ParseAggregation(artifact_->metadata.aggregation);
    default_aggregation_ = parsed.ok() ? parsed.value() : Aggregation::kAve;
  }
  const uint32_t threads =
      ThreadPool::ResolveThreadCount(options_.num_threads);
  if (threads > 1) batch_pool_ = std::make_unique<ThreadPool>(threads);
  if (options_.scan_block == 0) options_.scan_block = 2048;

  if (options_.quantize == QuantMode::kInt8) {
    // Prefer the artifact's persisted int8 section (one quantization,
    // done offline by `quantize`); fall back to quantizing the fp64
    // table at load — identical codes either way, just slower startup.
    if (artifact_->quantized.has_value()) {
      qstore_ = std::make_unique<QuantizedEmbeddingStore>(
          std::move(*artifact_->quantized));
      artifact_->quantized.reset();
    } else {
      qstore_ = std::make_unique<QuantizedEmbeddingStore>(
          QuantizedEmbeddingStore::FromStore(artifact_->store));
    }
  }

  obs::MemoryRegistry& mem = obs::MemoryRegistry::Default();
  table_bytes_ = obs::ScopedBytes(mem.GetGauge("serve.embedding_table"),
                                  artifact_->store.ApproxBytes());
  if (qstore_ != nullptr) {
    qtable_bytes_ = obs::ScopedBytes(mem.GetGauge("serve.quantized_table"),
                                     qstore_->TableBytes());
  }

  score_requests_ = registry->GetCounter("serve.score.requests");
  topk_requests_ = registry->GetCounter("serve.topk.requests");
  batch_requests_ = registry->GetCounter("serve.batch.requests");
  batch_items_ = registry->GetCounter("serve.batch.items");
  errors_ = registry->GetCounter("serve.errors");
  deadline_exceeded_ = registry->GetCounter("serve.deadline_exceeded");
  score_latency_us_ = registry->GetHistogram("serve.score.latency_us",
                                             obs::DurationBoundariesUs());
  topk_latency_us_ = registry->GetHistogram("serve.topk.latency_us",
                                            obs::DurationBoundariesUs());
  batch_latency_us_ = registry->GetHistogram("serve.batch.latency_us",
                                             obs::DurationBoundariesUs());
  cache_hits_ = registry->GetCounter("serve.seed_cache.hits");
  cache_misses_ = registry->GetCounter("serve.seed_cache.misses");
}

Result<InfluenceService> InfluenceService::Load(
    const std::string& model_path, ServiceOptions options,
    obs::MetricsRegistry* registry) {
  Result<ModelArtifact> artifact = LoadModelArtifact(model_path);
  INF2VEC_RETURN_IF_ERROR(artifact.status());
  if (artifact.value().shard.has_value()) {
    // A slice only answers for its own user range; serving it as a whole
    // model would silently mis-rank. The shard serve mode loads these.
    return Status::FailedPrecondition(
        "model is a shard slice (I2VSHRD1 section present); serve it with "
        "`serve --shard`: " +
        model_path);
  }
  return InfluenceService(std::move(artifact).value(), std::move(options),
                          model_path, registry);
}

Result<InfluenceService> InfluenceService::FromArtifact(
    ModelArtifact artifact, ServiceOptions options,
    obs::MetricsRegistry* registry, std::string model_path) {
  if (artifact.store.num_users() == 0) {
    return Status::InvalidArgument("cannot serve an empty embedding store");
  }
  return InfluenceService(std::move(artifact), std::move(options),
                          std::move(model_path), registry);
}

uint64_t InfluenceService::NowUs() const {
  return options_.clock_us ? options_.clock_us() : SteadyNowUs();
}

uint64_t InfluenceService::ResolveDeadline(uint64_t request_deadline_us,
                                           uint64_t start_us) const {
  const uint64_t budget = request_deadline_us != 0
                              ? request_deadline_us
                              : options_.default_deadline_us;
  return budget == 0 ? 0 : start_us + budget;
}

Status InfluenceService::ValidateSeeds(
    const std::vector<UserId>& seeds) const {
  if (seeds.empty()) {
    return Status::InvalidArgument(
        "seed set is empty: at least one activated influencer is required");
  }
  if (seeds.size() > options_.max_seeds) {
    return Status::InvalidArgument(
        "seed set too large: " + std::to_string(seeds.size()) + " > max " +
        std::to_string(options_.max_seeds));
  }
  const uint32_t num_users = store().num_users();
  for (UserId u : seeds) {
    if (u >= num_users) {
      return Status::NotFound("unknown seed user " + std::to_string(u) +
                              " (model has " + std::to_string(num_users) +
                              " users)");
    }
  }
  return Status::OK();
}

Aggregation InfluenceService::ResolveAggregation(
    const std::optional<Aggregation>& requested) const {
  return requested.value_or(default_aggregation_);
}

double InfluenceService::Warm() const {
  const EmbeddingStore& s = store();
  double checksum = 0.0;
  for (UserId u = 0; u < s.num_users(); ++u) {
    for (double x : s.Source(u)) checksum += x;
    for (double x : s.Target(u)) checksum += x;
    checksum += s.source_bias(u) + s.target_bias(u);
  }
  if (qstore_ != nullptr) {
    for (UserId u = 0; u < qstore_->num_users(); ++u) {
      for (int8_t x : qstore_->Source(u)) checksum += x;
      for (int8_t x : qstore_->Target(u)) checksum += x;
      checksum += qstore_->source_scale(u) + qstore_->target_scale(u) +
                  qstore_->source_bias(u) + qstore_->target_bias(u);
    }
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetGauge("serve.model.num_users")->Set(s.num_users());
    registry.GetGauge("serve.model.dim")->Set(s.dim());
  }
  return checksum;
}

Result<ScoreResult> InfluenceService::ScoreActivation(
    const ScoreRequest& request) const {
  const uint64_t start = NowUs();
  if (obs::MetricsEnabled()) score_requests_->Increment();
  const auto fail = [this](Status status) -> Status {
    if (obs::MetricsEnabled()) errors_->Increment();
    return status;
  };

  if (request.candidate >= store().num_users()) {
    return fail(Status::NotFound("unknown candidate user " +
                                 std::to_string(request.candidate)));
  }
  const Status seeds_ok = ValidateSeeds(request.seeds);
  if (!seeds_ok.ok()) return fail(seeds_ok);

  const uint64_t deadline = ResolveDeadline(request.deadline_us, start);
  bool cache_hit = false;
  std::shared_ptr<const SeedBlock> block;
  {
    obs::TraceSpan span("cache_lookup", "serve");
    block = qstore_ != nullptr
                ? cache_->Get(*qstore_, request.seeds, &cache_hit)
                : cache_->Get(store(), request.seeds, &cache_hit);
    span.SetAttr("cache_hit", cache_hit);
  }
  if (obs::MetricsEnabled()) {
    (cache_hit ? cache_hits_ : cache_misses_)->Increment();
  }
  if (deadline != 0 && NowUs() > deadline) {
    if (obs::MetricsEnabled()) deadline_exceeded_->Increment();
    return fail(Status::DeadlineExceeded("score query exceeded deadline"));
  }

  ScoreScratch scratch;
  const Aggregation aggregation = ResolveAggregation(request.aggregation);
  ScoreResult result;
  result.cache_hit = cache_hit;
  {
    obs::TraceSpan span("kernel_scan", "serve");
    span.SetAttr("seed_count", static_cast<uint64_t>(request.seeds.size()));
    if (qstore_ != nullptr) {
      result.score = ScoreCandidateQuantized(
          *block, qstore_->Target(request.candidate).data(),
          qstore_->target_scale(request.candidate),
          qstore_->target_bias(request.candidate), aggregation, &scratch);
    } else {
      result.score = ScoreCandidate(
          *block, store().Target(request.candidate).data(),
          store().target_bias(request.candidate), aggregation, &scratch);
    }
  }
  if (obs::MetricsEnabled()) score_latency_us_->Record(NowUs() - start);
  return result;
}

Result<TopKResult> InfluenceService::TopK(const TopKRequest& request) const {
  const uint64_t start = NowUs();
  if (obs::MetricsEnabled()) topk_requests_->Increment();
  const auto fail = [this](Status status) -> Status {
    if (obs::MetricsEnabled()) errors_->Increment();
    return status;
  };

  if (request.k == 0) {
    return fail(Status::InvalidArgument("k must be positive"));
  }
  if (request.k > options_.max_k) {
    return fail(Status::InvalidArgument(
        "k too large: " + std::to_string(request.k) + " > max " +
        std::to_string(options_.max_k)));
  }
  const Status seeds_ok = ValidateSeeds(request.seeds);
  if (!seeds_ok.ok()) return fail(seeds_ok);

  const uint64_t deadline = ResolveDeadline(request.deadline_us, start);
  const Aggregation aggregation = ResolveAggregation(request.aggregation);

  bool cache_hit = false;
  std::shared_ptr<const SeedBlock> block;
  {
    obs::TraceSpan span("cache_lookup", "serve");
    block = qstore_ != nullptr
                ? cache_->Get(*qstore_, request.seeds, &cache_hit)
                : cache_->Get(store(), request.seeds, &cache_hit);
    span.SetAttr("cache_hit", cache_hit);
  }
  if (obs::MetricsEnabled()) {
    (cache_hit ? cache_hits_ : cache_misses_)->Increment();
  }

  // Seeds to skip, sorted: the scan visits candidates in ascending id
  // order, so one walking index replaces a per-candidate hash lookup.
  std::vector<UserId> excluded;
  if (!request.include_seeds) {
    excluded.assign(request.seeds.begin(), request.seeds.end());
    std::sort(excluded.begin(), excluded.end());
    excluded.erase(std::unique(excluded.begin(), excluded.end()),
                   excluded.end());
  }

  Result<TopKResult> result = ScanTopK(*block, request.k, aggregation,
                                       excluded, deadline,
                                       request.seeds.size());
  INF2VEC_RETURN_IF_ERROR(result.status());
  result.value().cache_hit = cache_hit;
  if (obs::MetricsEnabled()) topk_latency_us_->Record(NowUs() - start);
  return result;
}

Result<TopKResult> InfluenceService::ScanTopK(
    const SeedBlock& block, uint32_t k, Aggregation aggregation,
    const std::vector<UserId>& excluded, uint64_t deadline,
    uint64_t num_seeds) const {
  size_t next_excluded = 0;

  // Cache-blocked scan: the gathered seed block stays hot while target
  // rows stream through, `scan_block` targets between deadline checks.
  // A bounded heap keeps the k current winners with the weakest on top.
  const EmbeddingStore& s = store();
  ScoreScratch scratch;
  const auto score_candidate = [&](UserId v) {
    if (qstore_ != nullptr) {
      return ScoreCandidateQuantized(block, qstore_->Target(v).data(),
                                     qstore_->target_scale(v),
                                     qstore_->target_bias(v), aggregation,
                                     &scratch);
    }
    return ScoreCandidate(block, s.Target(v).data(), s.target_bias(v),
                          aggregation, &scratch);
  };
  std::vector<TopKEntry> heap;
  heap.reserve(k);
  TopKResult result;
  const uint32_t num_users = s.num_users();
  {
    obs::TraceSpan span("kernel_scan", "serve");
    span.SetAttr("seed_count", num_seeds);
    span.SetAttr("candidates", static_cast<uint64_t>(num_users));
    for (uint32_t begin = 0; begin < num_users;
         begin += options_.scan_block) {
      if (deadline != 0 && NowUs() > deadline) {
        if (obs::MetricsEnabled()) {
          deadline_exceeded_->Increment();
          errors_->Increment();
        }
        return Status::DeadlineExceeded(
            "top-k scan exceeded deadline after " +
            std::to_string(result.scanned) + " candidates");
      }
      const uint32_t end =
          std::min<uint64_t>(num_users, uint64_t{begin} + options_.scan_block);
      for (uint32_t v = begin; v < end; ++v) {
        while (next_excluded < excluded.size() &&
               excluded[next_excluded] < v) {
          ++next_excluded;
        }
        if (next_excluded < excluded.size() && excluded[next_excluded] == v) {
          ++next_excluded;
          continue;
        }
        ++result.scanned;
        const TopKEntry entry{v, score_candidate(v)};
        if (heap.size() < k) {
          heap.push_back(entry);
          std::push_heap(heap.begin(), heap.end(), BetterThan);
        } else if (BetterThan(entry, heap.front())) {
          std::pop_heap(heap.begin(), heap.end(), BetterThan);
          heap.back() = entry;
          std::push_heap(heap.begin(), heap.end(), BetterThan);
        }
      }
    }
  }

  {
    obs::TraceSpan span("merge", "serve");
    std::sort(heap.begin(), heap.end(), BetterThan);
    result.entries = std::move(heap);
  }
  return result;
}

Status InfluenceService::ValidateBlock(const SeedBlock& block) const {
  if (block.num_seeds() == 0) {
    return Status::InvalidArgument(
        "seed block is empty: at least one activated influencer is required");
  }
  if (block.num_seeds() > options_.max_seeds) {
    return Status::InvalidArgument(
        "seed block too large: " + std::to_string(block.num_seeds()) +
        " > max " + std::to_string(options_.max_seeds));
  }
  if (block.dim != store().dim()) {
    return Status::InvalidArgument(
        "seed block dim " + std::to_string(block.dim) +
        " disagrees with model dim " + std::to_string(store().dim()));
  }
  if (block.quantized != (qstore_ != nullptr)) {
    return Status::FailedPrecondition(
        std::string("seed block quantization mode mismatch: block is ") +
        (block.quantized ? "int8" : "fp64") + ", service serves " +
        QuantModeName(quant_mode()));
  }
  return Status::OK();
}

Result<TopKResult> InfluenceService::TopKWithBlock(
    const SeedBlock& block, const BlockTopKRequest& request) const {
  const uint64_t start = NowUs();
  if (obs::MetricsEnabled()) topk_requests_->Increment();
  const auto fail = [this](Status status) -> Status {
    if (obs::MetricsEnabled()) errors_->Increment();
    return status;
  };

  if (request.k == 0) {
    return fail(Status::InvalidArgument("k must be positive"));
  }
  if (request.k > options_.max_k) {
    return fail(Status::InvalidArgument(
        "k too large: " + std::to_string(request.k) + " > max " +
        std::to_string(options_.max_k)));
  }
  const Status block_ok = ValidateBlock(block);
  if (!block_ok.ok()) return fail(block_ok);

  const uint64_t deadline = ResolveDeadline(request.deadline_us, start);
  const Aggregation aggregation = ResolveAggregation(request.aggregation);
  std::vector<UserId> excluded = request.exclude;
  std::sort(excluded.begin(), excluded.end());
  excluded.erase(std::unique(excluded.begin(), excluded.end()),
                 excluded.end());

  Result<TopKResult> result = ScanTopK(block, request.k, aggregation,
                                       excluded, deadline, block.num_seeds());
  INF2VEC_RETURN_IF_ERROR(result.status());
  if (obs::MetricsEnabled()) topk_latency_us_->Record(NowUs() - start);
  return result;
}

Result<double> InfluenceService::ScoreWithBlock(
    const SeedBlock& block, UserId candidate,
    const std::optional<Aggregation>& aggregation) const {
  const uint64_t start = NowUs();
  if (obs::MetricsEnabled()) score_requests_->Increment();
  const auto fail = [this](Status status) -> Status {
    if (obs::MetricsEnabled()) errors_->Increment();
    return status;
  };

  if (candidate >= store().num_users()) {
    return fail(Status::NotFound("unknown candidate user " +
                                 std::to_string(candidate)));
  }
  const Status block_ok = ValidateBlock(block);
  if (!block_ok.ok()) return fail(block_ok);

  ScoreScratch scratch;
  const Aggregation agg = ResolveAggregation(aggregation);
  double score;
  {
    obs::TraceSpan span("kernel_scan", "serve");
    span.SetAttr("seed_count", static_cast<uint64_t>(block.num_seeds()));
    if (qstore_ != nullptr) {
      score = ScoreCandidateQuantized(block, qstore_->Target(candidate).data(),
                                      qstore_->target_scale(candidate),
                                      qstore_->target_bias(candidate), agg,
                                      &scratch);
    } else {
      score = ScoreCandidate(block, store().Target(candidate).data(),
                             store().target_bias(candidate), agg, &scratch);
    }
  }
  if (obs::MetricsEnabled()) score_latency_us_->Record(NowUs() - start);
  return score;
}

Result<BatchScoreResult> InfluenceService::ScoreBatch(
    const BatchScoreRequest& request) const {
  const uint64_t start = NowUs();
  if (obs::MetricsEnabled()) batch_requests_->Increment();
  const auto fail = [this](Status status) -> Status {
    if (obs::MetricsEnabled()) errors_->Increment();
    return status;
  };

  if (request.items.empty()) {
    return fail(Status::InvalidArgument("batch is empty"));
  }
  if (request.items.size() > options_.max_batch) {
    return fail(Status::InvalidArgument(
        "batch too large: " + std::to_string(request.items.size()) +
        " > max " + std::to_string(options_.max_batch)));
  }
  // Validate everything up front so errors name the offending item and no
  // partial parallel work runs for a doomed request.
  const uint32_t num_users = store().num_users();
  for (size_t i = 0; i < request.items.size(); ++i) {
    const BatchItem& item = request.items[i];
    if (item.candidate >= num_users) {
      return fail(Status::NotFound(
          "batch item " + std::to_string(i) + ": unknown candidate user " +
          std::to_string(item.candidate)));
    }
    const Status seeds_ok = ValidateSeeds(item.seeds);
    if (!seeds_ok.ok()) {
      return fail(Status(seeds_ok.code(), "batch item " + std::to_string(i) +
                                              ": " + seeds_ok.message()));
    }
  }

  const uint64_t deadline = ResolveDeadline(request.deadline_us, start);
  const Aggregation aggregation = ResolveAggregation(request.aggregation);

  BatchScoreResult result;
  result.scores.resize(request.items.size(), 0.0);
  std::atomic<uint64_t> hits{0};
  std::atomic<bool> expired{false};

  const auto score_range = [&](size_t begin, size_t end) {
    ScoreScratch scratch;
    uint64_t local_hits = 0;
    for (size_t i = begin; i < end; ++i) {
      if ((i - begin) % 64 == 0 && deadline != 0 && NowUs() > deadline) {
        expired.store(true, std::memory_order_relaxed);
        break;
      }
      const BatchItem& item = request.items[i];
      bool cache_hit = false;
      if (qstore_ != nullptr) {
        const std::shared_ptr<const SeedBlock> block =
            cache_->Get(*qstore_, item.seeds, &cache_hit);
        result.scores[i] = ScoreCandidateQuantized(
            *block, qstore_->Target(item.candidate).data(),
            qstore_->target_scale(item.candidate),
            qstore_->target_bias(item.candidate), aggregation, &scratch);
      } else {
        const std::shared_ptr<const SeedBlock> block =
            cache_->Get(store(), item.seeds, &cache_hit);
        result.scores[i] = ScoreCandidate(
            *block, store().Target(item.candidate).data(),
            store().target_bias(item.candidate), aggregation, &scratch);
      }
      if (cache_hit) ++local_hits;
    }
    hits.fetch_add(local_hits, std::memory_order_relaxed);
  };

  if (batch_pool_ == nullptr) {
    score_range(0, request.items.size());
  } else {
    // The pool is not reentrant and posting is single-producer; serialize
    // concurrent batch callers on it.
    std::lock_guard<std::mutex> lock(*batch_mu_);
    batch_pool_->ParallelFor(
        0, request.items.size(),
        [&](uint32_t /*shard*/, size_t begin, size_t end) {
          score_range(begin, end);
        });
  }

  if (expired.load(std::memory_order_relaxed)) {
    if (obs::MetricsEnabled()) deadline_exceeded_->Increment();
    return fail(Status::DeadlineExceeded("batch scoring exceeded deadline"));
  }
  result.cache_hits = hits.load(std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    batch_items_->Increment(request.items.size());
    cache_hits_->Increment(result.cache_hits);
    cache_misses_->Increment(request.items.size() - result.cache_hits);
    batch_latency_us_->Record(NowUs() - start);
  }
  return result;
}

obs::JsonValue InfluenceService::DescribeJson() const {
  obs::JsonValue json = obs::JsonValue::Object();
  json.Set("model_path", model_path_);
  json.Set("num_users", store().num_users());
  json.Set("dim", store().dim());
  json.Set("aggregation", AggregationName(default_aggregation_));
  json.Set("model", metadata().ToJson());

  obs::JsonValue serving = obs::JsonValue::Object();
  serving.Set("seed_cache_capacity", options_.seed_cache_capacity);
  serving.Set("default_deadline_us", options_.default_deadline_us);
  serving.Set("max_seeds", options_.max_seeds);
  serving.Set("max_k", options_.max_k);
  serving.Set("max_batch", options_.max_batch);
  serving.Set("num_threads",
              batch_pool_ == nullptr ? 1u : batch_pool_->num_threads());
  serving.Set("scan_block", options_.scan_block);
  serving.Set("quantize", QuantModeName(quant_mode()));
  serving.Set("kernel_isa", kernels::IsaName(kernels::ActiveIsa()));
  serving.Set("embedding_table_bytes", artifact_->store.ApproxBytes());
  if (qstore_ != nullptr) {
    serving.Set("quantized_table_bytes",
                static_cast<uint64_t>(qstore_->TableBytes()));
  }
  json.Set("serving", std::move(serving));

  obs::JsonValue cache = obs::JsonValue::Object();
  cache.Set("capacity", cache_->capacity());
  cache.Set("size", cache_->size());
  cache.Set("hits", cache_->hits());
  cache.Set("misses", cache_->misses());
  cache.Set("bytes", cache_->total_bytes());
  json.Set("seed_cache", std::move(cache));
  return json;
}

}  // namespace serve
}  // namespace inf2vec
