#ifndef INF2VEC_SERVE_SEED_CACHE_H_
#define INF2VEC_SERVE_SEED_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "embedding/embedding_store.h"
#include "graph/social_graph.h"

namespace inf2vec {
namespace serve {

/// The per-query reusable part of Eq. 7 for one activated seed set: the
/// seed users' source rows gathered into one contiguous block (so the
/// top-k scan streams seed rows from L1/L2 instead of hopping across the
/// full S matrix) plus their influence-ability biases. Arithmetic over
/// the block is bit-identical to calling EmbeddingStore::Score per seed —
/// gathering copies rows, it does not reassociate any sum.
struct SeedBlock {
  std::vector<double> sources;        // num_seeds x dim, row-major.
  std::vector<double> source_biases;  // num_seeds.
  std::vector<UserId> seeds;          // The gathered ids, query order.
  uint32_t dim = 0;

  size_t num_seeds() const { return source_biases.size(); }
  const double* source_row(size_t i) const {
    return sources.data() + i * static_cast<size_t>(dim);
  }
};

/// Builds the block by gathering from `store`. Callers validate ids.
SeedBlock GatherSeedBlock(const EmbeddingStore& store,
                          const std::vector<UserId>& seeds);

/// Thread-safe LRU cache of SeedBlocks keyed by the exact seed-id
/// sequence (order matters: the Latest aggregator is order-sensitive, so
/// two orderings are distinct queries). Values are shared_ptrs so a hit
/// stays valid after eviction while a reader still holds it.
class SeedBlockCache {
 public:
  /// `capacity` in entries; 0 disables caching (every Get misses and
  /// nothing is stored).
  explicit SeedBlockCache(size_t capacity) : capacity_(capacity) {}

  SeedBlockCache(const SeedBlockCache&) = delete;
  SeedBlockCache& operator=(const SeedBlockCache&) = delete;

  /// Returns the cached block for `seeds`, gathering and inserting on
  /// miss. `*cache_hit` (optional) reports which path ran.
  std::shared_ptr<const SeedBlock> Get(const EmbeddingStore& store,
                                       const std::vector<UserId>& seeds,
                                       bool* cache_hit);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const SeedBlock>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recent.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace serve
}  // namespace inf2vec

#endif  // INF2VEC_SERVE_SEED_CACHE_H_
