#ifndef INF2VEC_SERVE_SEED_CACHE_H_
#define INF2VEC_SERVE_SEED_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "embedding/embedding_store.h"
#include "embedding/quantized_store.h"
#include "graph/social_graph.h"
#include "kernels/aligned.h"
#include "obs/memory.h"
#include "obs/metrics.h"

namespace inf2vec {
namespace serve {

/// The per-query reusable part of Eq. 7 for one activated seed set: the
/// seed users' source rows gathered into one contiguous block (so the
/// top-k scan streams seed rows from L1/L2 instead of hopping across the
/// full S matrix) plus their influence-ability biases. Arithmetic over
/// the block is bit-identical to calling EmbeddingStore::Score per seed —
/// gathering copies rows, it does not reassociate any sum.
///
/// Rows keep the store's 64-byte-aligned padded pitch (`stride` doubles
/// for fp64, `q_stride` bytes for int8) so kernels::SeedScan streams
/// cache-line-aligned rows. A block is either fp64 or int8 (`quantized`),
/// matching the serving mode of the service that gathered it.
struct SeedBlock {
  kernels::AlignedVector<double> sources;  // num_seeds x stride (fp64 mode).
  std::vector<double> source_biases;       // num_seeds (fp64 mode).
  std::vector<UserId> seeds;               // The gathered ids, query order.
  uint32_t dim = 0;
  uint32_t stride = 0;  // fp64 row pitch in doubles.

  // int8 serving mode: quantized codes plus per-seed fp32 scale/bias.
  kernels::AlignedVector<int8_t> q_sources;  // num_seeds x q_stride.
  std::vector<float> q_scales;               // num_seeds.
  std::vector<float> q_biases;               // num_seeds.
  uint32_t q_stride = 0;  // int8 row pitch in bytes.
  bool quantized = false;

  size_t num_seeds() const { return seeds.size(); }
  const double* source_row(size_t i) const {
    return sources.data() + i * static_cast<size_t>(stride);
  }
  const int8_t* q_source_row(size_t i) const {
    return q_sources.data() + i * static_cast<size_t>(q_stride);
  }

  /// Heap bytes this block holds. Capacity-based, so an fp64 block costs
  /// num_seeds * stride * 8 where the int8 block costs num_seeds *
  /// q_stride — the 8x stride gap is visible in cache accounting.
  uint64_t ApproxBytes() const {
    return sources.capacity() * sizeof(double) +
           source_biases.capacity() * sizeof(double) +
           seeds.capacity() * sizeof(UserId) + q_sources.capacity() +
           q_scales.capacity() * sizeof(float) +
           q_biases.capacity() * sizeof(float);
  }
};

/// Builds an fp64 block by gathering from `store`. Callers validate ids.
SeedBlock GatherSeedBlock(const EmbeddingStore& store,
                          const std::vector<UserId>& seeds);

/// Builds an int8 block from a quantized serving table.
SeedBlock GatherSeedBlock(const QuantizedEmbeddingStore& store,
                          const std::vector<UserId>& seeds);

/// Thread-safe LRU cache of SeedBlocks keyed by the exact seed-id
/// sequence (order matters: the Latest aggregator is order-sensitive, so
/// two orderings are distinct queries). Values are shared_ptrs so a hit
/// stays valid after eviction while a reader still holds it. A cache
/// instance belongs to one service and therefore one serving mode — fp64
/// and int8 blocks never share a cache, so the key does not encode the
/// mode.
class SeedBlockCache {
 public:
  /// `capacity` in entries; 0 disables caching (every Get misses and
  /// nothing is stored).
  explicit SeedBlockCache(size_t capacity);
  ~SeedBlockCache();

  SeedBlockCache(const SeedBlockCache&) = delete;
  SeedBlockCache& operator=(const SeedBlockCache&) = delete;

  /// Returns the cached block for `seeds`, gathering and inserting on
  /// miss. `*cache_hit` (optional) reports which path ran.
  std::shared_ptr<const SeedBlock> Get(const EmbeddingStore& store,
                                       const std::vector<UserId>& seeds,
                                       bool* cache_hit);

  /// Same, gathering int8 rows from the quantized table on miss.
  std::shared_ptr<const SeedBlock> Get(const QuantizedEmbeddingStore& store,
                                       const std::vector<UserId>& seeds,
                                       bool* cache_hit);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t hits() const;
  uint64_t misses() const;

  /// Live bytes across every retained block (keys + block payloads),
  /// maintained incrementally at insert/replace/evict. With fp64 blocks
  /// each entry costs ~8x its int8 counterpart — the per-entry stride gap
  /// the quantized mode exists to win. Also pushed into the
  /// "serve.seed_cache" memory gauge and the serve.seed_cache_bytes
  /// metric gauge.
  uint64_t total_bytes() const;

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const SeedBlock>>;

  std::shared_ptr<const SeedBlock> GetImpl(
      const std::vector<UserId>& seeds,
      const std::function<SeedBlock()>& gather, bool* cache_hit);

  /// Bytes charged for one retained entry (key + block).
  static uint64_t EntryBytes(const Entry& entry);
  /// Applies a byte delta to bytes_ (under mu_) and both exported gauges.
  void AccountLocked(int64_t delta);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // Front = most recent.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t bytes_ = 0;  // Guarded by mu_.
  obs::MemoryGauge* mem_gauge_;   // Registry-owned.
  obs::Gauge* bytes_metric_;      // serve.seed_cache_bytes.
};

}  // namespace serve
}  // namespace inf2vec

#endif  // INF2VEC_SERVE_SEED_CACHE_H_
