#include "serve/model_swapper.h"

#include <chrono>
#include <utility>

#include "obs/memory.h"
#include "obs/trace.h"

namespace inf2vec {
namespace serve {

ModelSwapper::ModelSwapper(std::string model_path, ServiceOptions options,
                           obs::MetricsRegistry* registry)
    : model_path_(std::move(model_path)),
      options_(std::move(options)),
      registry_(registry),
      generation_gauge_(registry->GetGauge("serve.model_generation")),
      reloads_(registry->GetCounter("serve.reloads")),
      reload_errors_(registry->GetCounter("serve.reload_errors")),
      reload_seconds_(registry->GetGauge("serve.reload_seconds")),
      swap_transient_gauge_(
          registry->GetGauge("serve.swap_transient_bytes")) {}

ModelSwapper::~ModelSwapper() { StopWatching(); }

Status ModelSwapper::Reload() {
  std::lock_guard<std::mutex> lock(reload_mu_);
  obs::TraceSpan span("model_reload", "serve");
  const auto start = std::chrono::steady_clock::now();

  // Stat before reading: if the file is replaced between the stat and the
  // read we remember the older mtime and the watcher simply reloads once
  // more — erring toward an extra reload, never a missed one.
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(model_path_, ec);

  // Budget preflight: while the new model loads and warms, BOTH
  // generations are resident. Refuse the swap when that double-resident
  // peak would blow the serving budget — keeping the old model serving
  // beats OOM-killing the process mid-swap. The current model's table
  // bytes approximate the incoming one (same artifact family); a first
  // load has nothing resident and nothing to preflight.
  if (const auto current = Acquire(); current != nullptr) {
    const uint64_t incoming = current->service.AccountedBytes();
    if (obs::OverMemoryBudget(incoming)) {
      reload_errors_->Increment();
      return Status::FailedPrecondition(
          "hot-swap preflight: loading a second ~" +
          std::to_string(incoming) +
          " byte model would exceed the memory budget; old model keeps "
          "serving");
    }
  }

  Result<InfluenceService> loaded =
      InfluenceService::Load(model_path_, options_, registry_);
  if (!loaded.ok()) {
    reload_errors_->Increment();
    return loaded.status();
  }
  // Fault in every page of the new table BEFORE it takes traffic; the
  // swap must not trade a working hot model for a cold one.
  loaded.value().Warm();

  // Double-resident peak: the new model is fully built and the old one
  // has not been released yet — this is the swap's true memory cost.
  {
    const bool had_previous = Acquire() != nullptr;
    const uint64_t transient =
        had_previous ? obs::MemoryRegistry::Default().AccountedBytes() : 0;
    last_transient_bytes_.store(transient, std::memory_order_relaxed);
    uint64_t peak = peak_transient_bytes_.load(std::memory_order_relaxed);
    while (transient > peak && !peak_transient_bytes_.compare_exchange_weak(
                                   peak, transient,
                                   std::memory_order_relaxed)) {
    }
    swap_transient_gauge_->Set(static_cast<double>(
        peak_transient_bytes_.load(std::memory_order_relaxed)));
  }

  const uint64_t generation =
      next_generation_.fetch_add(1, std::memory_order_relaxed);
  span.SetAttr("generation", generation);
  auto versioned = std::make_shared<const VersionedService>(
      generation, std::move(loaded).value());
  {
    std::lock_guard<std::mutex> current_lock(current_mu_);
    current_ = std::move(versioned);
  }
  if (!ec) loaded_mtime_ = mtime;

  generation_gauge_->Set(static_cast<double>(generation));
  reloads_->Increment();
  reload_seconds_->Set(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  return Status::OK();
}

void ModelSwapper::StartWatching(uint64_t poll_interval_ms) {
  if (watcher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    stop_watching_ = false;
  }
  watcher_ = std::thread(
      [this, poll_interval_ms]() { WatchLoop(poll_interval_ms); });
}

void ModelSwapper::StopWatching() {
  if (!watcher_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(watch_mu_);
    stop_watching_ = true;
  }
  watch_cv_.notify_all();
  watcher_.join();
}

void ModelSwapper::WatchLoop(uint64_t poll_interval_ms) {
  const auto interval = std::chrono::milliseconds(
      poll_interval_ms == 0 ? 1 : poll_interval_ms);
  std::unique_lock<std::mutex> lock(watch_mu_);
  while (!watch_cv_.wait_for(lock, interval,
                             [this]() { return stop_watching_; })) {
    lock.unlock();
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(model_path_, ec);
    bool changed = false;
    if (!ec) {
      std::lock_guard<std::mutex> reload_lock(reload_mu_);
      changed = mtime != loaded_mtime_;
    }
    // A vanished file (ec set) is NOT a reload trigger: mid-push renames
    // briefly unlink the path; keep serving the loaded model.
    // Reload errors are already counted + the old model keeps serving;
    // nothing useful to do with the status on the poll thread.
    if (changed) (void)Reload();
    lock.lock();
  }
}

}  // namespace serve
}  // namespace inf2vec
