#include "diffusion/ic_model.h"

#include "util/logging.h"

namespace inf2vec {

CascadeResult SimulateCascade(const SocialGraph& graph,
                              const EdgeProbabilities& probs,
                              const std::vector<UserId>& seeds, Rng& rng) {
  CascadeResult result;
  std::vector<bool> active(graph.num_users(), false);

  std::vector<UserId> frontier;
  for (UserId s : seeds) {
    INF2VEC_CHECK(s < graph.num_users()) << "seed out of range";
    if (!active[s]) {
      active[s] = true;
      frontier.push_back(s);
      result.activated.push_back(s);
      result.rounds.push_back(0);
    }
  }

  uint32_t round = 0;
  while (!frontier.empty()) {
    ++round;
    std::vector<UserId> next;
    for (UserId u : frontier) {
      const auto nbrs = graph.OutNeighbors(u);
      if (nbrs.empty()) continue;
      // Out-edges of u occupy a contiguous edge-id range starting at the id
      // of its first neighbor.
      const uint64_t first_edge =
          static_cast<uint64_t>(graph.EdgeId(u, nbrs[0]));
      for (size_t k = 0; k < nbrs.size(); ++k) {
        const UserId v = nbrs[k];
        if (active[v]) continue;
        if (rng.Bernoulli(probs.Get(first_edge + k))) {
          active[v] = true;
          next.push_back(v);
          result.activated.push_back(v);
          result.rounds.push_back(round);
        }
      }
    }
    frontier = std::move(next);
  }
  return result;
}

std::vector<double> EstimateActivationProbabilities(
    const SocialGraph& graph, const EdgeProbabilities& probs,
    const std::vector<UserId>& seeds, uint32_t num_simulations, Rng& rng) {
  std::vector<double> freq(graph.num_users(), 0.0);
  if (num_simulations == 0) return freq;
  for (uint32_t s = 0; s < num_simulations; ++s) {
    const CascadeResult run = SimulateCascade(graph, probs, seeds, rng);
    for (UserId u : run.activated) freq[u] += 1.0;
  }
  for (double& f : freq) f /= num_simulations;
  return freq;
}

}  // namespace inf2vec
