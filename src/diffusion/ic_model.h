#ifndef INF2VEC_DIFFUSION_IC_MODEL_H_
#define INF2VEC_DIFFUSION_IC_MODEL_H_

#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "util/rng.h"

namespace inf2vec {

/// Per-edge propagation probabilities for the Independent Cascade model,
/// indexed by SocialGraph::EdgeId. Shared by the synthetic world generator
/// (forward simulation) and the Monte-Carlo diffusion scorer.
class EdgeProbabilities {
 public:
  explicit EdgeProbabilities(const SocialGraph& graph)
      : probs_(graph.num_edges(), 0.0) {}
  EdgeProbabilities(const SocialGraph& graph, double uniform)
      : probs_(graph.num_edges(), uniform) {}

  double Get(uint64_t edge_id) const { return probs_[edge_id]; }
  void Set(uint64_t edge_id, double p) { probs_[edge_id] = p; }

  size_t size() const { return probs_.size(); }
  const std::vector<double>& raw() const { return probs_; }
  std::vector<double>& raw() { return probs_; }

 private:
  std::vector<double> probs_;
};

/// Result of one IC cascade simulation: activated users with the round at
/// which each activated (seeds are round 0).
struct CascadeResult {
  std::vector<UserId> activated;   // In activation order.
  std::vector<uint32_t> rounds;    // Parallel to `activated`.
};

/// Runs one Independent Cascade from `seeds`: every newly activated node
/// gets a single chance to activate each inactive out-neighbor v with
/// probability probs[EdgeId(u, v)]. Stops when a round activates nobody.
CascadeResult SimulateCascade(const SocialGraph& graph,
                              const EdgeProbabilities& probs,
                              const std::vector<UserId>& seeds, Rng& rng);

/// Monte-Carlo activation-frequency estimate: fraction of `num_simulations`
/// cascades in which each user activates. Seeds score 1. The estimator the
/// paper uses (5,000 simulations) for scoring IC-based baselines on the
/// diffusion-prediction task.
std::vector<double> EstimateActivationProbabilities(
    const SocialGraph& graph, const EdgeProbabilities& probs,
    const std::vector<UserId>& seeds, uint32_t num_simulations, Rng& rng);

}  // namespace inf2vec

#endif  // INF2VEC_DIFFUSION_IC_MODEL_H_
