#include "diffusion/random_walk.h"

#include <algorithm>

#include "obs/metrics.h"

namespace inf2vec {

std::vector<UserId> RandomWalkWithRestart(const PropagationNetwork& network,
                                          UserId start, uint32_t num_nodes,
                                          const RandomWalkOptions& options,
                                          Rng& rng) {
  std::vector<UserId> visited;
  if (num_nodes == 0) return visited;
  visited.reserve(num_nodes);

  UserId current = start;
  uint64_t steps_taken = 0;
  uint64_t restarts = 0;
  const uint64_t max_steps =
      static_cast<uint64_t>(num_nodes) * options.max_step_factor;
  for (uint64_t step = 0; step < max_steps && visited.size() < num_nodes;
       ++step) {
    ++steps_taken;
    if (current != start && rng.Bernoulli(options.restart_prob)) {
      current = start;
      ++restarts;
    }
    const std::vector<UserId>& succ = network.Successors(current);
    if (succ.empty()) {
      if (current == start) break;  // Start is a sink: no local context.
      current = start;
      ++restarts;
      continue;
    }
    current = succ[rng.UniformU64(succ.size())];
    visited.push_back(current);
  }
  // Batched: one striped add per walk, not per step.
  if (obs::MetricsEnabled()) {
    static obs::Counter* steps_counter =
        obs::MetricsRegistry::Default().GetCounter("walk.steps");
    static obs::Counter* restart_counter =
        obs::MetricsRegistry::Default().GetCounter("walk.restarts");
    steps_counter->Increment(steps_taken);
    restart_counter->Increment(restarts);
  }
  return visited;
}

std::vector<UserId> BiasedWalk(const SocialGraph& graph, UserId start,
                               uint32_t walk_length, double return_param,
                               double inout_param, Rng& rng) {
  std::vector<UserId> walk;
  walk.reserve(walk_length);
  walk.push_back(start);
  if (walk_length <= 1) return walk;

  auto out = graph.OutNeighbors(start);
  if (out.empty()) return walk;
  walk.push_back(out[rng.UniformU64(out.size())]);

  while (walk.size() < walk_length) {
    const UserId prev = walk[walk.size() - 2];
    const UserId curr = walk.back();
    const auto nbrs = graph.OutNeighbors(curr);
    if (nbrs.empty()) break;

    // Rejection sampling of the node2vec transition kernel: propose a
    // uniform neighbor, accept with weight/upper_bound. Weights: 1/p to go
    // back to prev, 1 if candidate is also prev's neighbor (distance 1),
    // 1/q otherwise (distance 2).
    const double inv_p = 1.0 / return_param;
    const double inv_q = 1.0 / inout_param;
    const double upper = std::max({inv_p, 1.0, inv_q});
    for (int attempt = 0; attempt < 64; ++attempt) {
      const UserId candidate = nbrs[rng.UniformU64(nbrs.size())];
      double weight;
      if (candidate == prev) {
        weight = inv_p;
      } else if (graph.HasEdge(prev, candidate)) {
        weight = 1.0;
      } else {
        weight = inv_q;
      }
      if (rng.UniformDouble() * upper <= weight) {
        walk.push_back(candidate);
        break;
      }
      if (attempt == 63) walk.push_back(candidate);  // Fallback: accept.
    }
  }
  return walk;
}

}  // namespace inf2vec
