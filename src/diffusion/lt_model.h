#ifndef INF2VEC_DIFFUSION_LT_MODEL_H_
#define INF2VEC_DIFFUSION_LT_MODEL_H_

#include <vector>

#include "diffusion/ic_model.h"
#include "graph/social_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {

/// The Linear Threshold model — the second prevalent diffusion model the
/// paper's related-work section describes: an inactive node activates once
/// the summed weights of its active in-neighbors exceed its (randomly
/// drawn) threshold. Provided for substrate completeness and used by tests
/// as an alternative planted process; the paper's evaluation itself is
/// IC-based.
///
/// Edge weights are indexed like EdgeProbabilities; for each node v the
/// incoming weights should sum to <= 1 (NormalizeInWeights enforces it).
class LtWeights {
 public:
  explicit LtWeights(const SocialGraph& graph)
      : weights_(graph.num_edges(), 0.0) {}

  double Get(uint64_t edge_id) const { return weights_[edge_id]; }
  void Set(uint64_t edge_id, double w) { weights_[edge_id] = w; }
  size_t size() const { return weights_.size(); }

  /// Scales every node's incoming weights so they sum to at most 1
  /// (leaves nodes whose weights already satisfy the bound untouched).
  void NormalizeInWeights(const SocialGraph& graph);

  /// Uniform LT weights: w(u, v) = 1 / InDegree(v), the standard
  /// parameter-free instantiation.
  static LtWeights UniformByInDegree(const SocialGraph& graph);

 private:
  std::vector<double> weights_;
};

/// Runs one Linear Threshold cascade: thresholds theta_v ~ U[0, 1] are
/// drawn per run; rounds proceed until no new activations. Returns
/// activations in order with their rounds (seeds round 0).
CascadeResult SimulateLtCascade(const SocialGraph& graph,
                                const LtWeights& weights,
                                const std::vector<UserId>& seeds, Rng& rng);

/// Monte-Carlo activation-frequency estimate under LT (the analogue of
/// EstimateActivationProbabilities).
std::vector<double> EstimateLtActivationProbabilities(
    const SocialGraph& graph, const LtWeights& weights,
    const std::vector<UserId>& seeds, uint32_t num_simulations, Rng& rng);

}  // namespace inf2vec

#endif  // INF2VEC_DIFFUSION_LT_MODEL_H_
