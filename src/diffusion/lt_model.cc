#include "diffusion/lt_model.h"

#include <algorithm>

#include "util/logging.h"

namespace inf2vec {

void LtWeights::NormalizeInWeights(const SocialGraph& graph) {
  for (UserId v = 0; v < graph.num_users(); ++v) {
    double total = 0.0;
    for (UserId u : graph.InNeighbors(v)) {
      total += weights_[graph.EdgeId(u, v)];
    }
    if (total <= 1.0 || total <= 0.0) continue;
    for (UserId u : graph.InNeighbors(v)) {
      const uint64_t e = static_cast<uint64_t>(graph.EdgeId(u, v));
      weights_[e] /= total;
    }
  }
}

LtWeights LtWeights::UniformByInDegree(const SocialGraph& graph) {
  LtWeights weights(graph);
  for (UserId v = 0; v < graph.num_users(); ++v) {
    const uint32_t indeg = graph.InDegree(v);
    if (indeg == 0) continue;
    for (UserId u : graph.InNeighbors(v)) {
      weights.Set(static_cast<uint64_t>(graph.EdgeId(u, v)),
                  1.0 / static_cast<double>(indeg));
    }
  }
  return weights;
}

CascadeResult SimulateLtCascade(const SocialGraph& graph,
                                const LtWeights& weights,
                                const std::vector<UserId>& seeds, Rng& rng) {
  INF2VEC_CHECK(weights.size() == graph.num_edges());
  CascadeResult result;
  const uint32_t n = graph.num_users();
  std::vector<bool> active(n, false);
  std::vector<double> pressure(n, 0.0);   // Sum of active in-weights.
  std::vector<double> threshold(n, 0.0);  // Drawn lazily on first touch.
  std::vector<bool> threshold_drawn(n, false);

  std::vector<UserId> frontier;
  for (UserId s : seeds) {
    INF2VEC_CHECK(s < n) << "seed out of range";
    if (!active[s]) {
      active[s] = true;
      frontier.push_back(s);
      result.activated.push_back(s);
      result.rounds.push_back(0);
    }
  }

  uint32_t round = 0;
  while (!frontier.empty()) {
    ++round;
    std::vector<UserId> next;
    for (UserId u : frontier) {
      const auto nbrs = graph.OutNeighbors(u);
      if (nbrs.empty()) continue;
      const uint64_t first_edge =
          static_cast<uint64_t>(graph.EdgeId(u, nbrs[0]));
      for (size_t k = 0; k < nbrs.size(); ++k) {
        const UserId v = nbrs[k];
        if (active[v]) continue;
        pressure[v] += weights.Get(first_edge + k);
        if (!threshold_drawn[v]) {
          threshold[v] = rng.UniformDouble();
          threshold_drawn[v] = true;
        }
        if (pressure[v] >= threshold[v]) {
          active[v] = true;
          next.push_back(v);
          result.activated.push_back(v);
          result.rounds.push_back(round);
        }
      }
    }
    frontier = std::move(next);
  }
  return result;
}

std::vector<double> EstimateLtActivationProbabilities(
    const SocialGraph& graph, const LtWeights& weights,
    const std::vector<UserId>& seeds, uint32_t num_simulations, Rng& rng) {
  std::vector<double> freq(graph.num_users(), 0.0);
  if (num_simulations == 0) return freq;
  for (uint32_t s = 0; s < num_simulations; ++s) {
    for (UserId u : SimulateLtCascade(graph, weights, seeds, rng).activated) {
      freq[u] += 1.0;
    }
  }
  for (double& f : freq) f /= num_simulations;
  return freq;
}

}  // namespace inf2vec
