#include "diffusion/propagation_network.h"

namespace inf2vec {

PropagationNetwork::PropagationNetwork(const SocialGraph& graph,
                                       const DiffusionEpisode& episode)
    : item_(episode.item()) {
  users_.reserve(episode.size());
  local_index_.reserve(episode.size());
  for (const Adoption& a : episode.adoptions()) {
    if (local_index_.emplace(a.user, static_cast<uint32_t>(users_.size()))
            .second) {
      users_.push_back(a.user);
    }
  }
  successors_.resize(users_.size());

  for (const InfluencePair& p : ExtractInfluencePairs(graph, episode)) {
    const auto it = local_index_.find(p.source);
    if (it == local_index_.end()) continue;
    successors_[it->second].push_back(p.target);
    ++num_edges_;
  }
}

const std::vector<UserId>& PropagationNetwork::Successors(UserId user) const {
  const auto it = local_index_.find(user);
  if (it == local_index_.end()) return empty_;
  return successors_[it->second];
}

bool PropagationNetwork::IsAcyclic() const {
  // Kahn's algorithm over local indices.
  const size_t n = users_.size();
  std::vector<uint32_t> indegree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (UserId succ : successors_[i]) {
      const auto it = local_index_.find(succ);
      if (it != local_index_.end()) ++indegree[it->second];
    }
  }
  std::vector<uint32_t> frontier;
  frontier.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) frontier.push_back(static_cast<uint32_t>(i));
  }
  size_t visited = 0;
  while (!frontier.empty()) {
    const uint32_t node = frontier.back();
    frontier.pop_back();
    ++visited;
    for (UserId succ : successors_[node]) {
      const auto it = local_index_.find(succ);
      if (it != local_index_.end() && --indegree[it->second] == 0) {
        frontier.push_back(it->second);
      }
    }
  }
  return visited == n;
}

}  // namespace inf2vec
