#ifndef INF2VEC_DIFFUSION_RANDOM_WALK_H_
#define INF2VEC_DIFFUSION_RANDOM_WALK_H_

#include <cstdint>
#include <vector>

#include "diffusion/propagation_network.h"
#include "graph/social_graph.h"
#include "util/rng.h"

namespace inf2vec {

/// Options for the random walk with restart used to harvest local influence
/// context (Section IV-A-1). Defaults match the paper.
struct RandomWalkOptions {
  /// Probability of teleporting back to the start user at each step. The
  /// paper fixes 0.5 "following the default setting of node2vec".
  double restart_prob = 0.5;
  /// Hard cap on simulated steps per requested node, guarding against
  /// degenerate graphs where the walk keeps restarting into dead ends.
  uint32_t max_step_factor = 20;
};

/// Runs a random walk with restart on the episode's propagation network,
/// starting at `start`, collecting up to `num_nodes` visited users (the
/// start user itself is never emitted; repeat visits are emitted again, as
/// in DeepWalk-style corpus building). Returns fewer than `num_nodes` when
/// the start has no successors or the walk exhausts its step budget.
std::vector<UserId> RandomWalkWithRestart(const PropagationNetwork& network,
                                          UserId start, uint32_t num_nodes,
                                          const RandomWalkOptions& options,
                                          Rng& rng);

/// node2vec-style second-order biased walk over a full social graph
/// (used by the Node2vec baseline). Generates a fixed-length node sequence
/// beginning with `start`. `return_param` is node2vec's p, `inout_param`
/// its q.
std::vector<UserId> BiasedWalk(const SocialGraph& graph, UserId start,
                               uint32_t walk_length, double return_param,
                               double inout_param, Rng& rng);

}  // namespace inf2vec

#endif  // INF2VEC_DIFFUSION_RANDOM_WALK_H_
