#ifndef INF2VEC_DIFFUSION_PROPAGATION_NETWORK_H_
#define INF2VEC_DIFFUSION_PROPAGATION_NETWORK_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "action/action_log.h"
#include "diffusion/influence_pairs.h"
#include "graph/social_graph.h"

namespace inf2vec {

/// Per-episode influence propagation network G_i (Definition 3): nodes are
/// the episode's participants, edges are its social influence pairs. The
/// time constraint makes it a DAG by construction; IsAcyclic() verifies.
///
/// Nodes are stored with compact local indices to keep walk state small;
/// the public API speaks global UserIds. Immutable after construction, so
/// const accessors are safe to call from multiple threads (the parallel
/// corpus builder constructs one per episode inside its own shard).
class PropagationNetwork {
 public:
  /// Builds from a social graph and one finalized episode.
  PropagationNetwork(const SocialGraph& graph,
                     const DiffusionEpisode& episode);

  ItemId item() const { return item_; }

  /// Episode participants (adoption order preserved).
  const std::vector<UserId>& users() const { return users_; }
  size_t num_users() const { return users_.size(); }
  size_t num_edges() const { return num_edges_; }

  /// True if `user` participates in this episode.
  bool ContainsUser(UserId user) const {
    return local_index_.find(user) != local_index_.end();
  }

  /// Influence successors of `user` inside this episode (users this user's
  /// adoption may have triggered). Empty span if user absent.
  const std::vector<UserId>& Successors(UserId user) const;

  uint32_t OutDegree(UserId user) const {
    return static_cast<uint32_t>(Successors(user).size());
  }

  /// Topological sanity check; always true for data obeying the strict
  /// time-order extraction, exposed for tests and corrupted-input guards.
  bool IsAcyclic() const;

 private:
  ItemId item_ = 0;
  std::vector<UserId> users_;
  std::unordered_map<UserId, uint32_t> local_index_;
  std::vector<std::vector<UserId>> successors_;  // Indexed by local index.
  std::vector<UserId> empty_;
  size_t num_edges_ = 0;
};

}  // namespace inf2vec

#endif  // INF2VEC_DIFFUSION_PROPAGATION_NETWORK_H_
