#ifndef INF2VEC_DIFFUSION_INFLUENCE_PAIRS_H_
#define INF2VEC_DIFFUSION_INFLUENCE_PAIRS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "action/action_log.h"
#include "graph/social_graph.h"
#include "util/histogram.h"

namespace inf2vec {

/// A social influence pair (u -> v): Definition 1 of the paper. Exists for
/// an episode when (u, v) is a social edge and u adopted strictly before v.
struct InfluencePair {
  UserId source;
  UserId target;

  friend bool operator==(const InfluencePair&, const InfluencePair&) = default;
};

/// Extracts all influence pairs of one episode. O(sum over adopters v of
/// InDegree(v)) using a per-episode adoption-time lookup.
std::vector<InfluencePair> ExtractInfluencePairs(
    const SocialGraph& graph, const DiffusionEpisode& episode);

/// Aggregated pair statistics over a whole log, powering Fig. 1 (source
/// frequency), Fig. 2 (target frequency), and the Fig. 6 top-pair pick.
class PairFrequencyTable {
 public:
  /// Scans every episode. O(total pair count).
  PairFrequencyTable(const SocialGraph& graph, const ActionLog& log);

  uint64_t total_pairs() const { return total_pairs_; }

  /// Times user u appeared as pair source / target.
  uint64_t SourceCount(UserId u) const;
  uint64_t TargetCount(UserId u) const;

  /// Fig. 1: histogram of "times a user was a source" -> "#such users".
  Histogram SourceFrequencyDistribution() const;
  /// Fig. 2: same for targets.
  Histogram TargetFrequencyDistribution() const;

  /// Most frequent distinct (source, target) pairs, ordered by multiplicity
  /// descending (ties by id). Used by the visualization experiment.
  std::vector<std::pair<InfluencePair, uint64_t>> TopPairs(size_t k) const;

 private:
  std::vector<uint64_t> source_counts_;
  std::vector<uint64_t> target_counts_;
  std::unordered_map<uint64_t, uint64_t> pair_counts_;  // key: src<<32|dst
  uint64_t total_pairs_ = 0;
};

/// Fig. 3: for every adoption in the log, the number of the adopter's
/// in-neighbors (friends they watch) who adopted strictly earlier.
/// Histogram value = that count; CdfAt(0) is the paper's "fraction of
/// actions taken with zero influenced friends" statistic (0.7 Digg /
/// 0.5 Flickr).
Histogram ActiveFriendCountDistribution(const SocialGraph& graph,
                                        const ActionLog& log);

}  // namespace inf2vec

#endif  // INF2VEC_DIFFUSION_INFLUENCE_PAIRS_H_
