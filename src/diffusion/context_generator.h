#ifndef INF2VEC_DIFFUSION_CONTEXT_GENERATOR_H_
#define INF2VEC_DIFFUSION_CONTEXT_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "diffusion/propagation_network.h"
#include "diffusion/random_walk.h"
#include "graph/social_graph.h"
#include "util/rng.h"

namespace inf2vec {

/// How the local influence neighborhood is harvested. The paper's
/// conclusion explicitly flags "other approaches for context generation"
/// as future work; kForwardBfs implements the natural alternative.
enum class LocalContextStrategy {
  /// Random walk with restart on the propagation network (the paper's
  /// Algorithm 1).
  kRandomWalkRestart,
  /// Breadth-first expansion of the user's influence cone: emit direct
  /// successors first, then successors-of-successors, ..., sampling
  /// uniformly inside a level when the level alone overflows the budget.
  /// Deterministic coverage of near influencees, no revisits.
  kForwardBfs,
};

/// Parameters of Algorithm 1 (Generating Influence Context).
struct ContextOptions {
  /// Length threshold L: total context size budget. Paper default 50.
  uint32_t length = 50;
  /// Component weight alpha: fraction of the budget filled by the local
  /// random walk; the remainder is global similarity samples. Paper default
  /// 0.1; alpha = 1.0 yields the Inf2vec-L ablation.
  double alpha = 0.1;
  /// Whether global samples may repeat (sampling with replacement). The
  /// paper samples "randomly"; default false (without replacement) when the
  /// episode is large enough, falling back to with-replacement otherwise.
  bool global_with_replacement = false;
  LocalContextStrategy strategy = LocalContextStrategy::kRandomWalkRestart;
  /// Depth cap for kForwardBfs (how many influence hops to expand).
  uint32_t bfs_max_depth = 4;
  RandomWalkOptions walk;
};

/// A user together with its generated influence context C_u^i.
struct InfluenceContext {
  UserId user;
  std::vector<UserId> context;
};

/// Implements Algorithm 1: local random-walk context (L*alpha nodes) plus
/// global user-similarity context (L*(1-alpha) uniform samples from the
/// episode's participants, excluding `user` itself).
InfluenceContext GenerateInfluenceContext(const PropagationNetwork& network,
                                          UserId user,
                                          const ContextOptions& options,
                                          Rng& rng);

/// Convenience: contexts for every participant of the episode, in adoption
/// order (the P_{D_i} list of Algorithm 2).
///
/// Thread-compatibility: both generators take the network and options by
/// const reference and touch no global state — the only mutation is the
/// caller's Rng. Concurrent calls from the parallel corpus builder are
/// safe as long as each thread passes its own Rng (and its own episodes'
/// networks; PropagationNetwork itself is immutable after construction).
std::vector<InfluenceContext> GenerateEpisodeContexts(
    const PropagationNetwork& network, const ContextOptions& options,
    Rng& rng);

}  // namespace inf2vec

#endif  // INF2VEC_DIFFUSION_CONTEXT_GENERATOR_H_
