#include "diffusion/context_generator.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/logging.h"

namespace inf2vec {
namespace {

/// kForwardBfs local context: level-order expansion of the influence cone,
/// uniformly subsampling the frontier level that overflows the budget.
std::vector<UserId> ForwardBfsContext(const PropagationNetwork& network,
                                      UserId start, uint32_t budget,
                                      uint32_t max_depth, Rng& rng) {
  std::vector<UserId> context;
  if (budget == 0) return context;
  std::unordered_set<UserId> visited = {start};
  std::vector<UserId> frontier = {start};
  for (uint32_t depth = 0; depth < max_depth && !frontier.empty() &&
                           context.size() < budget;
       ++depth) {
    std::vector<UserId> next;
    for (UserId u : frontier) {
      for (UserId v : network.Successors(u)) {
        if (visited.insert(v).second) next.push_back(v);
      }
    }
    const uint32_t room = budget - static_cast<uint32_t>(context.size());
    if (next.size() > room) {
      next = rng.SampleWithoutReplacement(next, room);
    }
    context.insert(context.end(), next.begin(), next.end());
    frontier = std::move(next);
  }
  return context;
}

}  // namespace

InfluenceContext GenerateInfluenceContext(const PropagationNetwork& network,
                                          UserId user,
                                          const ContextOptions& options,
                                          Rng& rng) {
  INF2VEC_CHECK(options.alpha >= 0.0 && options.alpha <= 1.0)
      << "alpha must be in [0, 1]";
  InfluenceContext out;
  out.user = user;

  const uint32_t local_budget = static_cast<uint32_t>(
      static_cast<double>(options.length) * options.alpha + 0.5);
  const uint32_t global_budget = options.length - local_budget;

  // Line 2 of Algorithm 1: local influence neighbors.
  out.context =
      options.strategy == LocalContextStrategy::kRandomWalkRestart
          ? RandomWalkWithRestart(network, user, local_budget, options.walk,
                                  rng)
          : ForwardBfsContext(network, user, local_budget,
                              options.bfs_max_depth, rng);
  const size_t local_nodes = out.context.size();

  // Line 3: global user-similarity samples from V_i \ {user}.
  if (global_budget > 0 && network.num_users() > 1) {
    const std::vector<UserId>& participants = network.users();
    if (!options.global_with_replacement &&
        participants.size() > global_budget + 1) {
      // Sample distinct users, rejecting the ego.
      std::vector<UserId> pool;
      pool.reserve(participants.size() - 1);
      for (UserId p : participants) {
        if (p != user) pool.push_back(p);
      }
      std::vector<UserId> sampled =
          rng.SampleWithoutReplacement(pool, global_budget);
      out.context.insert(out.context.end(), sampled.begin(), sampled.end());
    } else {
      // Small episode (or explicit request): sample with replacement.
      uint32_t produced = 0;
      uint32_t attempts = 0;
      while (produced < global_budget && attempts < global_budget * 20) {
        ++attempts;
        const UserId pick =
            participants[rng.UniformU64(participants.size())];
        if (pick == user) continue;
        out.context.push_back(pick);
        ++produced;
      }
    }
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    static obs::Counter* contexts = registry.GetCounter("context.generated");
    static obs::Counter* local = registry.GetCounter("context.local_nodes");
    static obs::Counter* global = registry.GetCounter("context.global_nodes");
    static obs::HistogramMetric* local_length =
        registry.GetHistogram("context.local_length");
    contexts->Increment();
    local->Increment(local_nodes);
    global->Increment(out.context.size() - local_nodes);
    local_length->Record(local_nodes);
  }
  return out;
}

std::vector<InfluenceContext> GenerateEpisodeContexts(
    const PropagationNetwork& network, const ContextOptions& options,
    Rng& rng) {
  std::vector<InfluenceContext> contexts;
  contexts.reserve(network.num_users());
  for (UserId u : network.users()) {
    InfluenceContext ctx = GenerateInfluenceContext(network, u, options, rng);
    if (!ctx.context.empty()) contexts.push_back(std::move(ctx));
  }
  return contexts;
}

}  // namespace inf2vec
