#include "diffusion/influence_pairs.h"

#include <algorithm>

namespace inf2vec {
namespace {

uint64_t PairKey(UserId src, UserId dst) {
  return (static_cast<uint64_t>(src) << 32) | dst;
}

}  // namespace

std::vector<InfluencePair> ExtractInfluencePairs(
    const SocialGraph& graph, const DiffusionEpisode& episode) {
  // Adoption time per participating user for O(1) lookup.
  std::unordered_map<UserId, Timestamp> adopted_at;
  adopted_at.reserve(episode.size());
  for (const Adoption& a : episode.adoptions()) adopted_at.emplace(a.user, a.time);

  std::vector<InfluencePair> pairs;
  for (const Adoption& a : episode.adoptions()) {
    const UserId v = a.user;
    if (v >= graph.num_users()) continue;
    for (UserId u : graph.InNeighbors(v)) {
      const auto it = adopted_at.find(u);
      if (it != adopted_at.end() && it->second < a.time) {
        pairs.push_back({u, v});
      }
    }
  }
  return pairs;
}

PairFrequencyTable::PairFrequencyTable(const SocialGraph& graph,
                                       const ActionLog& log)
    : source_counts_(graph.num_users(), 0),
      target_counts_(graph.num_users(), 0) {
  for (const DiffusionEpisode& episode : log.episodes()) {
    for (const InfluencePair& p : ExtractInfluencePairs(graph, episode)) {
      ++source_counts_[p.source];
      ++target_counts_[p.target];
      ++pair_counts_[PairKey(p.source, p.target)];
      ++total_pairs_;
    }
  }
}

uint64_t PairFrequencyTable::SourceCount(UserId u) const {
  return u < source_counts_.size() ? source_counts_[u] : 0;
}

uint64_t PairFrequencyTable::TargetCount(UserId u) const {
  return u < target_counts_.size() ? target_counts_[u] : 0;
}

Histogram PairFrequencyTable::SourceFrequencyDistribution() const {
  Histogram hist;
  for (uint64_t c : source_counts_) {
    if (c > 0) hist.Add(c);
  }
  return hist;
}

Histogram PairFrequencyTable::TargetFrequencyDistribution() const {
  Histogram hist;
  for (uint64_t c : target_counts_) {
    if (c > 0) hist.Add(c);
  }
  return hist;
}

std::vector<std::pair<InfluencePair, uint64_t>> PairFrequencyTable::TopPairs(
    size_t k) const {
  std::vector<std::pair<InfluencePair, uint64_t>> items;
  items.reserve(pair_counts_.size());
  for (const auto& [key, count] : pair_counts_) {
    const InfluencePair pair{static_cast<UserId>(key >> 32),
                             static_cast<UserId>(key & 0xffffffffu)};
    items.push_back({pair, count});
  }
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    if (a.first.source != b.first.source) {
      return a.first.source < b.first.source;
    }
    return a.first.target < b.first.target;
  });
  if (items.size() > k) items.resize(k);
  return items;
}

Histogram ActiveFriendCountDistribution(const SocialGraph& graph,
                                        const ActionLog& log) {
  Histogram hist;
  for (const DiffusionEpisode& episode : log.episodes()) {
    std::unordered_map<UserId, Timestamp> adopted_at;
    adopted_at.reserve(episode.size());
    for (const Adoption& a : episode.adoptions()) {
      adopted_at.emplace(a.user, a.time);
    }
    for (const Adoption& a : episode.adoptions()) {
      if (a.user >= graph.num_users()) continue;
      uint64_t active_friends = 0;
      for (UserId u : graph.InNeighbors(a.user)) {
        const auto it = adopted_at.find(u);
        if (it != adopted_at.end() && it->second < a.time) ++active_friends;
      }
      hist.Add(active_friends);
    }
  }
  return hist;
}

}  // namespace inf2vec
