#ifndef INF2VEC_BASELINES_EMB_IC_H_
#define INF2VEC_BASELINES_EMB_IC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "action/action_log.h"
#include "baselines/em_ic.h"
#include "core/influence_model.h"
#include "diffusion/ic_model.h"
#include "embedding/embedding_store.h"
#include "graph/social_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {

/// Options for the Emb-IC baseline: Bourigault et al.'s embedded cascade
/// model (WSDM 2016). Each user gets a sender position omega_u and a
/// receiver position z_v; the IC edge probability is distance-
/// parameterized, p_uv = sigmoid(lambda_v - ||omega_u - z_v||^2), and the
/// parameters are learned with a Saito-style EM loop whose M-step is
/// gradient ascent on the expected complete-data log-likelihood.
///
/// Deviation from the original: trials are restricted to actual social
/// edges (the original creates a link whenever u acts before v). This uses
/// the real network structure — the deviation the Inf2vec paper itself
/// argues for — and only helps the baseline.
struct EmbIcOptions {
  uint32_t dim = 50;
  uint32_t em_iterations = 15;
  /// Gradient ascent steps per M-step.
  uint32_t mstep_grad_steps = 4;
  double learning_rate = 0.05;
  /// Uniform init range for positions.
  double init_scale = 0.1;
  uint32_t mc_simulations = 1000;
  uint64_t seed = 7;
};

/// Incremental trainer so the Fig. 9 bench can time individual EM
/// iterations. Usage: construct, call RunEmIteration() repeatedly, then
/// Finalize().
class EmbIcTrainer {
 public:
  EmbIcTrainer(const SocialGraph& graph, const ActionLog& log,
               const EmbIcOptions& options);

  /// One full EM iteration (E-step responsibilities + M-step gradient
  /// ascent). Returns the expected complete-data log-likelihood under the
  /// entering parameters.
  double RunEmIteration();

  /// Current edge probability under the learned positions.
  double EdgeProbability(uint64_t edge_id) const;

  const EmbeddingStore& embeddings() const { return store_; }

  /// Materializes per-edge probabilities from the final positions.
  EdgeProbabilities MaterializeProbabilities() const;

 private:
  const SocialGraph& graph_;
  EmbIcOptions options_;
  EmStatistics stats_;
  EmbeddingStore store_;  // Source = omega, Target = z, target_bias = lambda.
  std::vector<UserId> edge_src_;  // Cached endpoints per edge id.
};

/// Faithful-complexity replica of the ORIGINAL Emb-IC training pass, used
/// only by the Fig. 9 runtime comparison. Two deliberate differences from
/// EmbIcTrainer, both matching Bourigault et al.'s published algorithm:
///  1. links are built from episode co-occurrence — a link (u, v) exists
///     whenever u acts before v in some episode (the design the Inf2vec
///     paper criticizes), not from the social graph;
///  2. the E-step and M-step walk every (episode, target, parent) term
///     individually, with per-term d-dimensional distance work — no
///     per-edge sufficient-statistic aggregation.
/// EmbIcTrainer above aggregates statistics per edge, which is a
/// mathematically equivalent but much faster formulation; timing that
/// optimized version against Inf2vec would misrepresent the paper's
/// comparison, so the bench times this replica.
class NaiveEmbIcReplica {
 public:
  NaiveEmbIcReplica(uint32_t num_users, const ActionLog& log,
                    const EmbIcOptions& options);

  /// One EM iteration over all per-cascade terms. Returns the expected
  /// log-likelihood under the entering parameters.
  double RunEmIteration();

  /// Number of (episode, target, parent) trial terms processed per
  /// iteration (the paper-scale cost driver).
  uint64_t num_trial_terms() const { return num_trial_terms_; }

 private:
  struct CascadeTerms {
    // For each activation with parents: index ranges into parents_.
    std::vector<std::pair<uint32_t, uint32_t>> activation_spans;
    std::vector<std::pair<UserId, UserId>> parents;  // (parent, target).
    // Failed trials: (active user, never-activated co-occurring link tgt).
    std::vector<std::pair<UserId, UserId>> failures;
  };

  double PairProbability(UserId u, UserId v) const;
  void ApplyGradient(UserId u, UserId v, double da);

  EmbIcOptions options_;
  EmbeddingStore store_;
  std::vector<CascadeTerms> cascades_;
  uint64_t num_trial_terms_ = 0;
};

/// The trained Emb-IC baseline. Scores like the other IC methods (Eq. 8 /
/// Monte-Carlo) over the materialized probabilities; additionally exposes
/// the learned node representations for the visualization experiment.
class EmbIcModel : public InfluenceModel {
 public:
  /// Trains with `options.em_iterations` EM rounds.
  static Result<EmbIcModel> Train(const SocialGraph& graph,
                                  const ActionLog& log,
                                  const EmbIcOptions& options);

  std::string name() const override { return "Emb-IC"; }
  double ScoreActivation(
      UserId v, const std::vector<UserId>& active_influencers) const override;
  std::vector<double> ScoreDiffusion(const std::vector<UserId>& seeds,
                                     Rng& rng) const override;

  const EmbeddingStore& embeddings() const { return *store_; }
  const EdgeProbabilities& probs() const { return probs_; }

 private:
  EmbIcModel(const SocialGraph* graph,
             std::unique_ptr<EmbeddingStore> store, EdgeProbabilities probs,
             uint32_t mc_simulations)
      : graph_(graph),
        store_(std::move(store)),
        probs_(std::move(probs)),
        mc_simulations_(mc_simulations) {}

  const SocialGraph* graph_;
  std::unique_ptr<EmbeddingStore> store_;
  EdgeProbabilities probs_;
  uint32_t mc_simulations_;
};

}  // namespace inf2vec

#endif  // INF2VEC_BASELINES_EMB_IC_H_
