#include "baselines/ic_baseline.h"

#include <algorithm>

#include "diffusion/influence_pairs.h"
#include "util/logging.h"

namespace inf2vec {

IcBaselineModel::IcBaselineModel(std::string name, const SocialGraph* graph,
                                 EdgeProbabilities probs,
                                 uint32_t mc_simulations)
    : name_(std::move(name)),
      graph_(graph),
      probs_(std::move(probs)),
      mc_simulations_(mc_simulations) {
  INF2VEC_CHECK(graph_ != nullptr);
  INF2VEC_CHECK(probs_.size() == graph_->num_edges())
      << "edge probability table does not match graph";
}

double IcBaselineModel::ScoreActivation(
    UserId v, const std::vector<UserId>& active_influencers) const {
  double survival = 1.0;  // Probability that nobody activates v.
  for (UserId u : active_influencers) {
    const int64_t edge = graph_->EdgeId(u, v);
    if (edge < 0) continue;  // Not a social edge; no influence channel.
    survival *= 1.0 - probs_.Get(static_cast<uint64_t>(edge));
  }
  return 1.0 - survival;
}

std::vector<double> IcBaselineModel::ScoreDiffusion(
    const std::vector<UserId>& seeds, Rng& rng) const {
  return EstimateActivationProbabilities(*graph_, probs_, seeds,
                                         mc_simulations_, rng);
}

IcBaselineModel CreateDegreeModel(const SocialGraph& graph,
                                  uint32_t mc_simulations) {
  EdgeProbabilities probs(graph);
  for (UserId u = 0; u < graph.num_users(); ++u) {
    const auto nbrs = graph.OutNeighbors(u);
    if (nbrs.empty()) continue;
    const uint64_t first_edge = static_cast<uint64_t>(graph.EdgeId(u, nbrs[0]));
    for (size_t k = 0; k < nbrs.size(); ++k) {
      probs.Set(first_edge + k,
                1.0 / static_cast<double>(graph.InDegree(nbrs[k])));
    }
  }
  return IcBaselineModel("DE", &graph, std::move(probs), mc_simulations);
}

IcBaselineModel CreateStaticModel(const SocialGraph& graph,
                                  const ActionLog& log,
                                  uint32_t mc_simulations) {
  // A_u: episodes in which u acted; A_u2v: episodes with pair (u -> v).
  std::vector<uint64_t> actions(graph.num_users(), 0);
  std::vector<uint64_t> successes(graph.num_edges(), 0);
  for (const DiffusionEpisode& episode : log.episodes()) {
    for (const Adoption& a : episode.adoptions()) {
      if (a.user < graph.num_users()) ++actions[a.user];
    }
    for (const InfluencePair& p : ExtractInfluencePairs(graph, episode)) {
      const int64_t edge = graph.EdgeId(p.source, p.target);
      if (edge >= 0) ++successes[static_cast<uint64_t>(edge)];
    }
  }

  EdgeProbabilities probs(graph);
  for (UserId u = 0; u < graph.num_users(); ++u) {
    const auto nbrs = graph.OutNeighbors(u);
    if (nbrs.empty() || actions[u] == 0) continue;
    const uint64_t first_edge = static_cast<uint64_t>(graph.EdgeId(u, nbrs[0]));
    for (size_t k = 0; k < nbrs.size(); ++k) {
      const double p = static_cast<double>(successes[first_edge + k]) /
                       static_cast<double>(actions[u]);
      probs.Set(first_edge + k, std::min(1.0, p));
    }
  }
  return IcBaselineModel("ST", &graph, std::move(probs), mc_simulations);
}

}  // namespace inf2vec
