#ifndef INF2VEC_BASELINES_NODE2VEC_H_
#define INF2VEC_BASELINES_NODE2VEC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/aggregation.h"
#include "core/embedding_predictor.h"
#include "embedding/embedding_store.h"
#include "embedding/negative_sampler.h"
#include "graph/social_graph.h"
#include "util/status.h"

namespace inf2vec {

/// Options for the Node2vec baseline (Grover & Leskovec, KDD 2016): biased
/// second-order random walks over the *social graph only* (no action log),
/// then skip-gram with negative sampling. Walk counts are scaled down from
/// the original defaults (r=10, l=80, w=10) to keep the laptop-scale bench
/// fast; ratios are preserved.
struct Node2vecOptions {
  uint32_t dim = 50;
  uint32_t walks_per_node = 6;
  uint32_t walk_length = 20;
  uint32_t window = 4;
  /// node2vec return parameter p.
  double return_param = 1.0;
  /// node2vec in-out parameter q.
  double inout_param = 1.0;
  uint32_t epochs = 2;
  double learning_rate = 0.025;
  uint32_t num_negatives = 5;
  NegativeSamplerKind negative_kind = NegativeSamplerKind::kUnigram075;
  uint64_t seed = 21;
  Aggregation aggregation = Aggregation::kAve;
  /// Hogwild workers for the SGD epochs (walk generation stays serial).
  /// 1 = bit-reproducible serial path; 0 = all hardware threads.
  uint32_t num_threads = 1;
};

/// Trained Node2vec model; scores through the shared EmbeddingPredictor.
/// Uses network structure only, which is why the paper finds it weak on
/// influence tasks — reproducing that gap is the point of this baseline.
class Node2vecModel {
 public:
  static Result<Node2vecModel> Train(const SocialGraph& graph,
                                     const Node2vecOptions& options);

  const EmbeddingStore& embeddings() const { return *store_; }

  EmbeddingPredictor Predictor() const {
    return EmbeddingPredictor("Node2vec", store_.get(),
                              options_.aggregation);
  }

 private:
  Node2vecModel(Node2vecOptions options,
                std::unique_ptr<EmbeddingStore> store)
      : options_(options), store_(std::move(store)) {}

  Node2vecOptions options_;
  std::unique_ptr<EmbeddingStore> store_;
};

}  // namespace inf2vec

#endif  // INF2VEC_BASELINES_NODE2VEC_H_
