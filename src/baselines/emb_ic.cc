#include "baselines/emb_ic.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/sigmoid_table.h"

namespace inf2vec {
namespace {

constexpr double kEps = 1e-9;

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (size_t k = 0; k < a.size(); ++k) {
    const double d = a[k] - b[k];
    sum += d * d;
  }
  return sum;
}

}  // namespace

EmbIcTrainer::EmbIcTrainer(const SocialGraph& graph, const ActionLog& log,
                           const EmbIcOptions& options)
    : graph_(graph),
      options_(options),
      stats_(graph, log),
      store_(graph.num_users(), options.dim) {
  Rng rng(options_.seed);
  store_.InitUniform(-options_.init_scale, options_.init_scale, rng);
  edge_src_.resize(graph.num_edges());
  for (UserId u = 0; u < graph.num_users(); ++u) {
    const auto nbrs = graph.OutNeighbors(u);
    if (nbrs.empty()) continue;
    const uint64_t first = static_cast<uint64_t>(graph.EdgeId(u, nbrs[0]));
    for (size_t k = 0; k < nbrs.size(); ++k) edge_src_[first + k] = u;
  }
}

double EmbIcTrainer::EdgeProbability(uint64_t edge_id) const {
  const UserId u = edge_src_[edge_id];
  const UserId v = graph_.EdgeDst(edge_id);
  const double a = store_.target_bias(v) -
                   SquaredDistance(store_.Source(u), store_.Target(v));
  const double p = SigmoidTable::Exact(a);
  return std::clamp(p, kEps, 1.0 - kEps);
}

double EmbIcTrainer::RunEmIteration() {
  const size_t num_edges = graph_.num_edges();
  const uint32_t dim = store_.dim();

  // E-step: responsibilities R_e and positive counts under current params.
  std::vector<double> prob(num_edges, 0.0);
  for (size_t e = 0; e < num_edges; ++e) {
    if (stats_.trials()[e] > 0) prob[e] = EdgeProbability(e);
  }
  std::vector<double> responsibility(num_edges, 0.0);
  double log_likelihood = 0.0;
  for (const std::vector<uint64_t>& group : stats_.groups()) {
    double survival = 1.0;
    for (uint64_t e : group) survival *= 1.0 - prob[e];
    const double activation = std::max(kEps, 1.0 - survival);
    log_likelihood += std::log(activation);
    for (uint64_t e : group) responsibility[e] += prob[e] / activation;
  }
  for (size_t e = 0; e < num_edges; ++e) {
    const uint64_t trials = stats_.trials()[e];
    if (trials == 0) continue;
    // Failure mass contributes (trials - R_e) * log(1 - p_e) in expectation;
    // report the observed-data likelihood part for monitoring.
    const double fail_weight =
        static_cast<double>(trials) - responsibility[e];
    if (fail_weight > 0) {
      log_likelihood += fail_weight * std::log(std::max(kEps, 1.0 - prob[e]));
    }
  }

  // M-step: gradient ascent on Q(theta) = sum_e [R_e log p_e +
  // (trials_e - R_e) log(1 - p_e)] with p_e = sigmoid(a_e).
  // dQ/da_e = R_e - trials_e * p_e.
  for (uint32_t step = 0; step < options_.mstep_grad_steps; ++step) {
    for (size_t e = 0; e < num_edges; ++e) {
      const uint64_t trials = stats_.trials()[e];
      if (trials == 0) continue;
      const UserId u = edge_src_[e];
      const UserId v = graph_.EdgeDst(static_cast<uint64_t>(e));
      const std::span<double> omega = store_.Source(u);
      const std::span<double> z = store_.Target(v);
      const double a =
          store_.target_bias(v) - SquaredDistance(omega, z);
      const double p = SigmoidTable::Exact(a);
      const double da = responsibility[e] - static_cast<double>(trials) * p;
      // Normalize by trials so dense edges do not dominate the step size.
      const double scale =
          options_.learning_rate * da / static_cast<double>(trials);
      for (uint32_t k = 0; k < dim; ++k) {
        const double diff = omega[k] - z[k];
        omega[k] += scale * (-2.0 * diff);
        z[k] += scale * (2.0 * diff);
      }
      store_.mutable_target_bias(v) += scale;
    }
  }
  return log_likelihood;
}

EdgeProbabilities EmbIcTrainer::MaterializeProbabilities() const {
  EdgeProbabilities probs(graph_);
  for (uint64_t e = 0; e < graph_.num_edges(); ++e) {
    // Edges never observed in training keep a tiny floor probability
    // rather than the raw model value: the model has no evidence there.
    probs.Set(e, stats_.trials()[e] > 0 ? EdgeProbability(e) : kEps);
  }
  return probs;
}

NaiveEmbIcReplica::NaiveEmbIcReplica(uint32_t num_users, const ActionLog& log,
                                     const EmbIcOptions& options)
    : options_(options), store_(num_users, options.dim) {
  Rng rng(options.seed);
  store_.InitUniform(-options.init_scale, options.init_scale, rng);

  cascades_.reserve(log.num_episodes());
  for (const DiffusionEpisode& episode : log.episodes()) {
    CascadeTerms cascade;
    const std::vector<Adoption>& adoptions = episode.adoptions();
    // Positive trials: every co-occurrence link (u before v), grouped per
    // activated target for the noisy-or responsibility split.
    for (size_t j = 0; j < adoptions.size(); ++j) {
      const uint32_t begin = static_cast<uint32_t>(cascade.parents.size());
      for (size_t i = 0; i < j; ++i) {
        if (adoptions[i].time < adoptions[j].time) {
          cascade.parents.push_back(
              {adoptions[i].user, adoptions[j].user});
        }
      }
      const uint32_t end = static_cast<uint32_t>(cascade.parents.size());
      if (end > begin) cascade.activation_spans.push_back({begin, end});
    }
    // Failure trials: for each active user, |D_i| sampled non-adopting
    // link targets (the original's failure mass over created links; the
    // per-term cost is what matters for the runtime comparison).
    for (const Adoption& a : adoptions) {
      for (size_t s = 0; s < adoptions.size(); ++s) {
        const UserId w = static_cast<UserId>(rng.UniformU64(num_users));
        if (!episode.Contains(w)) cascade.failures.push_back({a.user, w});
      }
    }
    num_trial_terms_ += cascade.parents.size() + cascade.failures.size();
    cascades_.push_back(std::move(cascade));
  }
}

double NaiveEmbIcReplica::PairProbability(UserId u, UserId v) const {
  const double a = store_.target_bias(v) -
                   SquaredDistance(store_.Source(u), store_.Target(v));
  return std::clamp(SigmoidTable::Exact(a), kEps, 1.0 - kEps);
}

void NaiveEmbIcReplica::ApplyGradient(UserId u, UserId v, double da) {
  const double scale = options_.learning_rate * da;
  const std::span<double> omega = store_.Source(u);
  const std::span<double> z = store_.Target(v);
  for (uint32_t k = 0; k < store_.dim(); ++k) {
    const double diff = omega[k] - z[k];
    omega[k] += scale * (-2.0 * diff);
    z[k] += scale * (2.0 * diff);
  }
  store_.mutable_target_bias(v) += scale;
}

double NaiveEmbIcReplica::RunEmIteration() {
  double log_likelihood = 0.0;
  for (const CascadeTerms& cascade : cascades_) {
    // E-step per activation: responsibilities over the parent span.
    std::vector<double> responsibility(cascade.parents.size(), 0.0);
    for (const auto& [begin, end] : cascade.activation_spans) {
      double survival = 1.0;
      for (uint32_t i = begin; i < end; ++i) {
        survival *= 1.0 - PairProbability(cascade.parents[i].first,
                                          cascade.parents[i].second);
      }
      const double activation = std::max(kEps, 1.0 - survival);
      log_likelihood += std::log(activation);
      for (uint32_t i = begin; i < end; ++i) {
        responsibility[i] = PairProbability(cascade.parents[i].first,
                                            cascade.parents[i].second) /
                            activation;
      }
    }
    // M-step: per-term gradient ascent, the original's per-cascade sweep.
    for (uint32_t step = 0; step < options_.mstep_grad_steps; ++step) {
      for (size_t i = 0; i < cascade.parents.size(); ++i) {
        const auto [u, v] = cascade.parents[i];
        const double p = PairProbability(u, v);
        ApplyGradient(u, v, responsibility[i] - p);
      }
      for (const auto& [u, w] : cascade.failures) {
        const double p = PairProbability(u, w);
        ApplyGradient(u, w, -p);
        if (step == 0) log_likelihood += std::log(1.0 - p);
      }
    }
  }
  return log_likelihood;
}

Result<EmbIcModel> EmbIcModel::Train(const SocialGraph& graph,
                                     const ActionLog& log,
                                     const EmbIcOptions& options) {
  if (log.num_episodes() == 0) {
    return Status::InvalidArgument("action log has no episodes");
  }
  if (options.dim == 0) {
    return Status::InvalidArgument("embedding dimension must be positive");
  }
  EmbIcTrainer trainer(graph, log, options);
  for (uint32_t i = 0; i < options.em_iterations; ++i) {
    trainer.RunEmIteration();
  }
  auto store = std::make_unique<EmbeddingStore>(trainer.embeddings());
  EdgeProbabilities probs = trainer.MaterializeProbabilities();
  return EmbIcModel(&graph, std::move(store), std::move(probs),
                    options.mc_simulations);
}

double EmbIcModel::ScoreActivation(
    UserId v, const std::vector<UserId>& active_influencers) const {
  double survival = 1.0;
  for (UserId u : active_influencers) {
    const int64_t edge = graph_->EdgeId(u, v);
    if (edge < 0) continue;
    survival *= 1.0 - probs_.Get(static_cast<uint64_t>(edge));
  }
  return 1.0 - survival;
}

std::vector<double> EmbIcModel::ScoreDiffusion(const std::vector<UserId>& seeds,
                                               Rng& rng) const {
  return EstimateActivationProbabilities(*graph_, probs_, seeds,
                                         mc_simulations_, rng);
}

}  // namespace inf2vec
