#include "baselines/mf_bpr.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/run_status.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/sigmoid_table.h"
#include "util/thread_pool.h"

namespace inf2vec {
namespace {

/// Flattened co-action observations: one entry per (u, v, episode) with
/// u != v, i.e. multiplicity equals the matrix entry. Also per-user
/// positive sets for negative rejection.
struct CoActionData {
  std::vector<std::pair<UserId, UserId>> observations;
  std::vector<std::unordered_set<UserId>> positives;  // Indexed by user.
};

/// Caps co-actor fan-out per (user, episode) so a single huge episode does
/// not quadratically dominate the training stream.
constexpr size_t kMaxCoActorsPerUser = 64;

CoActionData BuildCoActions(uint32_t num_users, const ActionLog& log) {
  CoActionData data;
  data.positives.resize(num_users);
  for (const DiffusionEpisode& episode : log.episodes()) {
    const std::vector<Adoption>& adoptions = episode.adoptions();
    const size_t n = adoptions.size();
    // Deterministic stride subsampling keeps at most kMaxCoActorsPerUser
    // co-actors per user while covering the episode evenly.
    const size_t stride = std::max<size_t>(1, n / kMaxCoActorsPerUser);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i % stride; j < n; j += stride) {
        if (i == j) continue;
        const UserId u = adoptions[i].user;
        const UserId v = adoptions[j].user;
        if (u >= num_users || v >= num_users) continue;
        data.observations.push_back({u, v});
        data.positives[u].insert(v);
      }
    }
  }
  return data;
}

void RecordMfBprEpoch(uint64_t observations) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  registry.GetCounter("mf_bpr.epochs")->Increment();
  registry.GetCounter("mf_bpr.observations_trained")->Increment(observations);
}

}  // namespace

Result<MfBprModel> MfBprModel::Train(uint32_t num_users, const ActionLog& log,
                                     const MfOptions& options) {
  if (num_users == 0) {
    return Status::InvalidArgument("num_users must be positive");
  }
  if (options.dim == 0) {
    return Status::InvalidArgument("dimension must be positive");
  }
  obs::TraceSpan train_span("MfBprModel::Train", "baseline");
  obs::RunStatus::Default().SetPhase("baseline:mf_bpr");
  CoActionData data = BuildCoActions(num_users, log);
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Default()
        .GetCounter("mf_bpr.observations")
        ->Increment(data.observations.size());
  }
  if (data.observations.empty()) {
    return Status::InvalidArgument("no co-action observations in the log");
  }

  Rng rng(options.seed);
  auto store = std::make_unique<EmbeddingStore>(num_users, options.dim);
  store->InitUniform(-0.05, 0.05, rng);

  const uint32_t dim = options.dim;
  const double lr = options.learning_rate;
  const double reg = options.regularization;

  // One BPR step for the observation (u, v); `step_rng` draws the
  // negative. Safe to run Hogwild: updates are sparse rows of the shared
  // store (see EmbeddingStore's concurrency contract for the benign-race
  // model; races here are intentional under num_threads > 1, hence the
  // sanitizer annotation).
  const auto train_observation = [&](UserId u, UserId v, Rng& step_rng)
                                     INF2VEC_NO_SANITIZE_THREAD {
    // Negative: a user u never co-acted with.
    UserId w = 0;
    bool found = false;
    for (int attempt = 0; attempt < 32; ++attempt) {
      w = static_cast<UserId>(step_rng.UniformU64(num_users));
      if (w != u && data.positives[u].find(w) == data.positives[u].end()) {
        found = true;
        break;
      }
    }
    if (!found) return;  // u co-acted with nearly everyone.

    const double x_uv = store->Score(u, v);
    const double x_uw = store->Score(u, w);
    // BPR gradient coefficient: sigma(-(x_uv - x_uw)).
    const double coeff = SigmoidTable::Exact(-(x_uv - x_uw));

    const std::span<double> p_u = store->Source(u);
    const std::span<double> q_v = store->Target(v);
    const std::span<double> q_w = store->Target(w);
    for (uint32_t k = 0; k < dim; ++k) {
      const double pu = p_u[k];
      p_u[k] += lr * (coeff * (q_v[k] - q_w[k]) - reg * pu);
      q_v[k] += lr * (coeff * pu - reg * q_v[k]);
      q_w[k] += lr * (-coeff * pu - reg * q_w[k]);
    }
    // Source bias cancels in the BPR difference; only target biases move.
    store->mutable_target_bias(v) +=
        lr * (coeff - reg * store->target_bias(v));
    store->mutable_target_bias(w) +=
        lr * (-coeff - reg * store->target_bias(w));
  };

  const uint32_t num_threads =
      ThreadPool::ResolveThreadCount(options.num_threads);
  if (num_threads <= 1) {
    for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
      rng.Shuffle(data.observations);
      for (const auto& [u, v] : data.observations) {
        train_observation(u, v, rng);
      }
      RecordMfBprEpoch(data.observations.size());
    }
    return MfBprModel(options, std::move(store));
  }

  ThreadPool pool(num_threads);
  std::vector<Rng> shard_rngs;
  shard_rngs.reserve(num_threads);
  for (uint32_t s = 0; s < num_threads; ++s) {
    shard_rngs.emplace_back(ThreadPool::ShardSeed(options.seed, s));
  }
  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(data.observations);
    pool.ParallelFor(0, data.observations.size(),
                     [&](uint32_t shard, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         train_observation(data.observations[i].first,
                                           data.observations[i].second,
                                           shard_rngs[shard]);
                       }
                     });
    RecordMfBprEpoch(data.observations.size());
  }
  return MfBprModel(options, std::move(store));
}

}  // namespace inf2vec
