#include "baselines/node2vec.h"

#include <algorithm>

#include "diffusion/random_walk.h"
#include "embedding/sgd_trainer.h"
#include "obs/metrics.h"
#include "obs/run_status.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace inf2vec {
namespace {

/// Same epoch-granularity counters as Inf2vecModel, under the baseline's
/// own prefix so one report can hold both.
void RecordNode2vecEpoch(uint64_t pairs) {
  if (!obs::MetricsEnabled()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  registry.GetCounter("node2vec.epochs")->Increment();
  registry.GetCounter("node2vec.pairs_trained")->Increment(pairs);
}

}  // namespace

Result<Node2vecModel> Node2vecModel::Train(const SocialGraph& graph,
                                           const Node2vecOptions& options) {
  if (graph.num_users() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  if (options.dim == 0 || options.walk_length < 2 || options.window == 0) {
    return Status::InvalidArgument("invalid node2vec options");
  }

  Rng rng(options.seed);
  obs::TraceSpan train_span("Node2vecModel::Train", "baseline");
  obs::RunStatus::Default().SetPhase("baseline:node2vec");

  // 1. Walk corpus: (center, context) skip-gram pairs within the window.
  std::vector<std::pair<UserId, UserId>> pairs;
  std::vector<uint64_t> context_freq(graph.num_users(), 0);
  std::vector<UserId> nodes(graph.num_users());
  for (UserId u = 0; u < graph.num_users(); ++u) nodes[u] = u;

  for (uint32_t r = 0; r < options.walks_per_node; ++r) {
    rng.Shuffle(nodes);
    for (UserId start : nodes) {
      const std::vector<UserId> walk =
          BiasedWalk(graph, start, options.walk_length, options.return_param,
                     options.inout_param, rng);
      for (size_t i = 0; i < walk.size(); ++i) {
        const size_t lo = i >= options.window ? i - options.window : 0;
        const size_t hi = std::min(walk.size(), i + options.window + 1);
        for (size_t j = lo; j < hi; ++j) {
          if (j == i || walk[j] == walk[i]) continue;
          pairs.push_back({walk[i], walk[j]});
          ++context_freq[walk[j]];
        }
      }
    }
  }
  if (pairs.empty()) {
    return Status::InvalidArgument(
        "node2vec produced no training pairs (graph has no usable walks)");
  }
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Default()
        .GetCounter("node2vec.pairs")
        ->Increment(pairs.size());
  }

  // 2. Skip-gram with negative sampling, no bias terms (plain node2vec).
  auto store = std::make_unique<EmbeddingStore>(graph.num_users(),
                                                options.dim);
  store->InitPaperDefault(rng);
  Result<NegativeSampler> sampler = NegativeSampler::Create(
      options.negative_kind, graph.num_users(), context_freq);
  if (!sampler.ok()) return sampler.status();

  SgdOptions sgd;
  sgd.learning_rate = options.learning_rate;
  sgd.num_negatives = options.num_negatives;
  sgd.use_biases = false;

  const uint32_t num_threads =
      ThreadPool::ResolveThreadCount(options.num_threads);
  if (num_threads <= 1) {
    SgdTrainer trainer(store.get(), &sampler.value(), sgd);
    for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
      rng.Shuffle(pairs);
      for (const auto& [u, v] : pairs) {
        trainer.TrainPair(u, v, rng, /*want_objective=*/false);
      }
      RecordNode2vecEpoch(pairs.size());
    }
    return Node2vecModel(options, std::move(store));
  }

  // Hogwild epochs against the shared store, one trainer + RNG stream per
  // shard (same scheme as Inf2vecModel::TrainFromCorpus).
  ThreadPool pool(num_threads);
  std::vector<SgdTrainer> trainers;
  std::vector<Rng> shard_rngs;
  trainers.reserve(num_threads);
  shard_rngs.reserve(num_threads);
  for (uint32_t s = 0; s < num_threads; ++s) {
    trainers.emplace_back(store.get(), &sampler.value(), sgd);
    shard_rngs.emplace_back(ThreadPool::ShardSeed(options.seed, s));
  }
  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(pairs);
    pool.ParallelFor(0, pairs.size(),
                     [&](uint32_t shard, size_t begin, size_t end) {
                       for (size_t i = begin; i < end; ++i) {
                         trainers[shard].TrainPair(pairs[i].first,
                                                   pairs[i].second,
                                                   shard_rngs[shard],
                                                   /*want_objective=*/false);
                       }
                     });
    RecordNode2vecEpoch(pairs.size());
  }
  return Node2vecModel(options, std::move(store));
}

}  // namespace inf2vec
