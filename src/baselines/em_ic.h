#ifndef INF2VEC_BASELINES_EM_IC_H_
#define INF2VEC_BASELINES_EM_IC_H_

#include <cstdint>
#include <vector>

#include "action/action_log.h"
#include "baselines/ic_baseline.h"
#include "graph/social_graph.h"

namespace inf2vec {

/// Options for the Saito et al. (KES 2008) EM estimator of IC edge
/// probabilities.
struct EmOptions {
  uint32_t iterations = 20;
  /// Initial probability for every edge (Saito initializes uniformly).
  double initial_prob = 0.1;
  /// Monte-Carlo simulations for the resulting model's diffusion scoring.
  uint32_t mc_simulations = 1000;
};

/// Per-iteration diagnostics for convergence tests and the Fig. 9 runtime
/// bench.
struct EmDiagnostics {
  std::vector<double> log_likelihood;  // One entry per iteration.
};

/// Precomputed sufficient statistics of the EM estimator: for every
/// activation of v with non-empty parent set B_v, the edge ids of B_v; plus
/// per-edge trial counts (successes + failures). Building this once makes
/// iterations cheap and is what the runtime bench times as "one iteration".
class EmStatistics {
 public:
  EmStatistics(const SocialGraph& graph, const ActionLog& log);

  /// Groups: parent edge-id lists, one per (episode, activated-user-with-
  /// parents) occurrence.
  const std::vector<std::vector<uint64_t>>& groups() const { return groups_; }
  /// trials[e] = #episodes where edge e's source acted and had the chance
  /// to influence the target (success or failure).
  const std::vector<uint64_t>& trials() const { return trials_; }

 private:
  std::vector<std::vector<uint64_t>> groups_;
  std::vector<uint64_t> trials_;
};

/// Runs one EM iteration in place over `probs` and returns the expected
/// data log-likelihood under the *input* probabilities.
double EmIterate(const EmStatistics& stats, std::vector<double>* probs);

/// EM baseline: learns per-edge IC probabilities by EM and wraps them in
/// an IcBaselineModel named "EM".
IcBaselineModel CreateEmModel(const SocialGraph& graph, const ActionLog& log,
                              const EmOptions& options,
                              EmDiagnostics* diagnostics = nullptr);

}  // namespace inf2vec

#endif  // INF2VEC_BASELINES_EM_IC_H_
