#ifndef INF2VEC_BASELINES_IC_BASELINE_H_
#define INF2VEC_BASELINES_IC_BASELINE_H_

#include <string>
#include <vector>

#include "action/action_log.h"
#include "core/influence_model.h"
#include "diffusion/ic_model.h"
#include "graph/social_graph.h"

namespace inf2vec {

/// InfluenceModel over explicit per-edge IC probabilities. All four
/// IC-based methods of Section V-A-3 (DE, ST, EM, Emb-IC) score through
/// this class; they differ only in how the probabilities were produced.
///
/// Activation scoring uses Eq. 8: Pr(v) = 1 - prod_u (1 - P_uv).
/// Diffusion scoring runs `mc_simulations` Monte-Carlo cascades.
class IcBaselineModel : public InfluenceModel {
 public:
  /// Does not own `graph`; it must outlive the model.
  IcBaselineModel(std::string name, const SocialGraph* graph,
                  EdgeProbabilities probs, uint32_t mc_simulations);

  std::string name() const override { return name_; }

  double ScoreActivation(
      UserId v, const std::vector<UserId>& active_influencers) const override;

  std::vector<double> ScoreDiffusion(const std::vector<UserId>& seeds,
                                     Rng& rng) const override;

  const EdgeProbabilities& probs() const { return probs_; }
  uint32_t mc_simulations() const { return mc_simulations_; }

 private:
  std::string name_;
  const SocialGraph* graph_;
  EdgeProbabilities probs_;
  uint32_t mc_simulations_;
};

/// DE baseline: P_uv = 1 / InDegree(v), the influence-maximization
/// convention [Kempe et al. 2003].
IcBaselineModel CreateDegreeModel(const SocialGraph& graph,
                                  uint32_t mc_simulations);

/// ST baseline: Goyal et al.'s static maximum-likelihood estimator,
/// P_uv = A_u2v / A_u, where A_u2v counts episodes with influence pair
/// (u -> v) and A_u counts episodes in which u acted.
IcBaselineModel CreateStaticModel(const SocialGraph& graph,
                                  const ActionLog& log,
                                  uint32_t mc_simulations);

}  // namespace inf2vec

#endif  // INF2VEC_BASELINES_IC_BASELINE_H_
