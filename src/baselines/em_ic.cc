#include "baselines/em_ic.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/run_status.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace inf2vec {

EmStatistics::EmStatistics(const SocialGraph& graph, const ActionLog& log)
    : trials_(graph.num_edges(), 0) {
  for (const DiffusionEpisode& episode : log.episodes()) {
    std::unordered_map<UserId, Timestamp> adopted_at;
    adopted_at.reserve(episode.size());
    for (const Adoption& a : episode.adoptions()) {
      adopted_at.emplace(a.user, a.time);
    }

    // Trials: u acted and had a chance on out-neighbor v, i.e. v was not
    // already active when u acted (v absent, or v strictly later).
    for (const Adoption& a : episode.adoptions()) {
      const UserId u = a.user;
      if (u >= graph.num_users()) continue;
      const auto nbrs = graph.OutNeighbors(u);
      if (nbrs.empty()) continue;
      const uint64_t first_edge =
          static_cast<uint64_t>(graph.EdgeId(u, nbrs[0]));
      for (size_t k = 0; k < nbrs.size(); ++k) {
        const auto it = adopted_at.find(nbrs[k]);
        if (it == adopted_at.end() || it->second > a.time) {
          ++trials_[first_edge + k];
        }
      }
    }

    // Groups: activated users with at least one earlier-active in-neighbor.
    for (const Adoption& a : episode.adoptions()) {
      const UserId v = a.user;
      if (v >= graph.num_users()) continue;
      std::vector<uint64_t> parents;
      for (UserId u : graph.InNeighbors(v)) {
        const auto it = adopted_at.find(u);
        if (it != adopted_at.end() && it->second < a.time) {
          parents.push_back(static_cast<uint64_t>(graph.EdgeId(u, v)));
        }
      }
      if (!parents.empty()) groups_.push_back(std::move(parents));
    }
  }
}

double EmIterate(const EmStatistics& stats, std::vector<double>* probs) {
  constexpr double kEps = 1e-9;
  std::vector<double>& p = *probs;
  std::vector<double> responsibility_sum(p.size(), 0.0);
  std::vector<uint64_t> positives(p.size(), 0);

  double log_likelihood = 0.0;
  for (const std::vector<uint64_t>& group : stats.groups()) {
    double survival = 1.0;
    for (uint64_t e : group) survival *= 1.0 - p[e];
    const double activation = std::max(kEps, 1.0 - survival);
    log_likelihood += std::log(activation);
    for (uint64_t e : group) {
      responsibility_sum[e] += p[e] / activation;
      ++positives[e];
    }
  }

  for (size_t e = 0; e < p.size(); ++e) {
    const uint64_t trials = stats.trials()[e];
    if (trials == 0) {
      p[e] = 0.0;
      continue;
    }
    INF2VEC_CHECK(positives[e] <= trials)
        << "EM invariant violated: more successes than trials on edge " << e;
    const uint64_t failures = trials - positives[e];
    if (failures > 0) {
      log_likelihood +=
          static_cast<double>(failures) * std::log(std::max(kEps, 1.0 - p[e]));
    }
    p[e] = std::clamp(responsibility_sum[e] / static_cast<double>(trials),
                      0.0, 1.0 - kEps);
  }
  return log_likelihood;
}

IcBaselineModel CreateEmModel(const SocialGraph& graph, const ActionLog& log,
                              const EmOptions& options,
                              EmDiagnostics* diagnostics) {
  obs::TraceSpan train_span("CreateEmModel", "baseline");
  obs::RunStatus::Default().SetPhase("baseline:em_ic");
  const EmStatistics stats(graph, log);
  std::vector<double> probs(graph.num_edges(), options.initial_prob);
  if (diagnostics != nullptr) diagnostics->log_likelihood.clear();
  obs::Counter* iteration_counter = nullptr;
  obs::Gauge* likelihood_gauge = nullptr;
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    iteration_counter = registry.GetCounter("em_ic.iterations");
    likelihood_gauge = registry.GetGauge("em_ic.log_likelihood");
  }
  for (uint32_t iter = 0; iter < options.iterations; ++iter) {
    const double ll = EmIterate(stats, &probs);
    if (diagnostics != nullptr) diagnostics->log_likelihood.push_back(ll);
    if (iteration_counter != nullptr) {
      iteration_counter->Increment();
      likelihood_gauge->Set(ll);
    }
  }
  EdgeProbabilities edge_probs(graph);
  edge_probs.raw() = std::move(probs);
  return IcBaselineModel("EM", &graph, std::move(edge_probs),
                         options.mc_simulations);
}

}  // namespace inf2vec
