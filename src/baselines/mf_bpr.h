#ifndef INF2VEC_BASELINES_MF_BPR_H_
#define INF2VEC_BASELINES_MF_BPR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "action/action_log.h"
#include "core/aggregation.h"
#include "core/embedding_predictor.h"
#include "embedding/embedding_store.h"
#include "util/status.h"

namespace inf2vec {

/// Options for the MF baseline: user-user matrix factorization trained with
/// Bayesian Personalized Ranking (Rendle et al., UAI 2009). The matrix
/// entry for (u, v) is the number of common actions; BPR ranks observed
/// co-actors above unobserved users. Captures only global user-interest
/// similarity — no network structure, no propagation — which is exactly the
/// role it plays in the paper's comparison.
struct MfOptions {
  uint32_t dim = 50;
  uint32_t epochs = 10;
  double learning_rate = 0.02;
  double regularization = 0.01;
  uint64_t seed = 13;
  Aggregation aggregation = Aggregation::kAve;
  /// Hogwild workers for the BPR epochs. 1 = bit-reproducible serial
  /// path; 0 = all hardware threads.
  uint32_t num_threads = 1;
};

/// Trained MF model. Source factors = "affects" side, target factors =
/// "affected" side; prediction goes through the shared EmbeddingPredictor
/// (Eq. 7), like the other representation methods.
class MfBprModel {
 public:
  static Result<MfBprModel> Train(uint32_t num_users, const ActionLog& log,
                                  const MfOptions& options);

  const EmbeddingStore& embeddings() const { return *store_; }

  /// InfluenceModel view; this model must outlive it.
  EmbeddingPredictor Predictor() const {
    return EmbeddingPredictor("MF", store_.get(), options_.aggregation);
  }

 private:
  MfBprModel(MfOptions options, std::unique_ptr<EmbeddingStore> store)
      : options_(options), store_(std::move(store)) {}

  MfOptions options_;
  std::unique_ptr<EmbeddingStore> store_;
};

}  // namespace inf2vec

#endif  // INF2VEC_BASELINES_MF_BPR_H_
