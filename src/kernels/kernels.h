#ifndef INF2VEC_KERNELS_KERNELS_H_
#define INF2VEC_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace inf2vec {
namespace kernels {

/// Vectorized math kernels for the three hot paths (serve-time scoring,
/// the top-k scan, and the SGD inner loop), behind one runtime-dispatched
/// function table.
///
/// Backends:
///  - kScalar: plain loops, byte-for-byte the pre-kernel-layer
///    implementations. This is the pinned reference path — tests assert
///    bit-identity of training and scoring against frozen goldens, so its
///    accumulation order must NEVER change.
///  - kAvx2: AVX2/FMA, 4-wide fp64 with four independent accumulators.
///    Reassociates dot-product sums and contracts mul+add to FMA, so fp64
///    results may differ from scalar by a few ULPs (bounded; see
///    docs/KERNELS.md for the accuracy contract). The int8 kernels
///    accumulate in exact integer arithmetic and are bit-identical to
///    scalar on every backend.
///
/// The active backend is chosen once at startup by CPUID (best supported
/// wins) and can be overridden — `--kernel scalar|avx2|auto` on the CLI,
/// SetActiveIsa() in tests. Dispatch is one relaxed atomic pointer load
/// per call; the table itself is immutable.
///
/// Concurrency: all kernels are pure functions over caller-owned memory.
/// Under Hogwild training they intentionally race on store rows exactly
/// like the loops they replaced; they carry the same
/// no_sanitize("thread") annotation (see EmbeddingStore's contract).

enum class Isa {
  kScalar = 0,
  kAvx2 = 1,
};

/// The dispatched operation table. `stride` parameters are in elements,
/// letting callers keep rows padded to 64-byte pitch.
struct KernelOps {
  /// sum_k a[k]*b[k].
  double (*dot)(const double* a, const double* b, size_t n);

  /// y[k] += alpha * x[k].
  void (*axpy)(double alpha, const double* x, double* y, size_t n);

  /// The fused skip-gram inner step (Eq. 6): for every k,
  ///   grad[k] += coeff * t[k]      (reads t BEFORE its update)
  ///   t[k]    += lr_coeff * s[k]
  void (*grad_step)(double coeff, double lr_coeff, const double* s,
                    double* t, double* grad, size_t n);

  /// sigma(dot(a, b) + bias) with the exact (not table) sigmoid.
  double (*sigmoid_dot)(const double* a, const double* b, size_t n,
                        double bias);

  /// The seed-block scan primitive behind ScoreActivation/TopK: one
  /// target row against `num_seeds` gathered seed rows (row pitch
  /// `stride` elements); out[i] = dot(seeds + i*stride, target). Each
  /// per-seed dot is bit-identical to this backend's dot().
  void (*seed_scan)(const double* seeds, size_t num_seeds, size_t stride,
                    const double* target, size_t n, double* out);

  /// Exact int32 accumulation of sum_k a[k]*b[k]; identical across
  /// backends (integer arithmetic does not reassociate rounding).
  int32_t (*dot_i8)(const int8_t* a, const int8_t* b, size_t n);

  /// seed_scan over int8 rows: out[i] = dot_i8(seeds + i*stride, target).
  void (*seed_scan_i8)(const int8_t* seeds, size_t num_seeds, size_t stride,
                       const int8_t* target, size_t n, int32_t* out);
};

/// The scalar reference table (always available).
const KernelOps& ScalarOps();

/// True when the binary was compiled with the AVX2 backend
/// (INF2VEC_ENABLE_AVX2 and a -mavx2-capable compiler).
bool Avx2Compiled();

/// True when this CPU reports AVX2+FMA (cached CPUID probe).
bool Avx2Supported();

/// The best ISA this binary can run here: kAvx2 when compiled in AND
/// supported by the CPU, else kScalar. The startup default.
Isa BestIsa();

/// The currently dispatched ISA.
Isa ActiveIsa();

/// True when ActiveIsa() was pinned by SetActiveIsa (CLI flag or test)
/// rather than left at the CPUID-selected default.
bool IsaForced();

/// Switches the dispatch table. Returns false (and leaves dispatch
/// unchanged) when the requested backend is not compiled in or not
/// supported by this CPU. Not intended to race in-flight kernel calls:
/// switch at startup or between test cases.
bool SetActiveIsa(Isa isa);

/// Resets dispatch to BestIsa() and clears the forced flag (tests).
void ResetIsaForTest();

/// "scalar" / "avx2".
const char* IsaName(Isa isa);

/// Parses "scalar", "avx2" or "auto" (case-sensitive, the CLI spelling).
/// "auto" yields BestIsa(). Returns false on anything else.
bool ParseIsaName(const std::string& name, Isa* isa);

/// The active operation table (one relaxed atomic load).
const KernelOps& Ops();

// Convenience wrappers over the active table.
inline double Dot(const double* a, const double* b, size_t n) {
  return Ops().dot(a, b, n);
}
inline void Axpy(double alpha, const double* x, double* y, size_t n) {
  Ops().axpy(alpha, x, y, n);
}
inline void GradStep(double coeff, double lr_coeff, const double* s,
                     double* t, double* grad, size_t n) {
  Ops().grad_step(coeff, lr_coeff, s, t, grad, n);
}
inline double SigmoidDot(const double* a, const double* b, size_t n,
                         double bias) {
  return Ops().sigmoid_dot(a, b, n, bias);
}
inline void SeedScan(const double* seeds, size_t num_seeds, size_t stride,
                     const double* target, size_t n, double* out) {
  Ops().seed_scan(seeds, num_seeds, stride, target, n, out);
}
inline int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
  return Ops().dot_i8(a, b, n);
}
inline void SeedScanI8(const int8_t* seeds, size_t num_seeds, size_t stride,
                       const int8_t* target, size_t n, int32_t* out) {
  Ops().seed_scan_i8(seeds, num_seeds, stride, target, n, out);
}

}  // namespace kernels
}  // namespace inf2vec

#endif  // INF2VEC_KERNELS_KERNELS_H_
