// The scalar reference backend. These loops are byte-for-byte the
// pre-kernel-layer implementations from EmbeddingStore::Score,
// SgdTrainer::TrainPair and InfluenceService's ScoreCandidate; the pinned
// bit-identity suite (tests/scalar_reference_test.cc) freezes their
// results, so do not change accumulation order or contract to FMA here.

#include <cmath>

#include "kernels/kernels_internal.h"

namespace inf2vec {
namespace kernels {
namespace {

INF2VEC_KERNELS_NO_SANITIZE_THREAD
double DotScalar(const double* a, const double* b, size_t n) {
  double dot = 0.0;
  for (size_t k = 0; k < n; ++k) dot += a[k] * b[k];
  return dot;
}

INF2VEC_KERNELS_NO_SANITIZE_THREAD
void AxpyScalar(double alpha, const double* x, double* y, size_t n) {
  for (size_t k = 0; k < n; ++k) y[k] += alpha * x[k];
}

INF2VEC_KERNELS_NO_SANITIZE_THREAD
void GradStepScalar(double coeff, double lr_coeff, const double* s,
                    double* t, double* grad, size_t n) {
  for (size_t k = 0; k < n; ++k) {
    grad[k] += coeff * t[k];
    t[k] += lr_coeff * s[k];
  }
}

INF2VEC_KERNELS_NO_SANITIZE_THREAD
double SigmoidDotScalar(const double* a, const double* b, size_t n,
                        double bias) {
  return 1.0 / (1.0 + std::exp(-(DotScalar(a, b, n) + bias)));
}

INF2VEC_KERNELS_NO_SANITIZE_THREAD
void SeedScanScalar(const double* seeds, size_t num_seeds, size_t stride,
                    const double* target, size_t n, double* out) {
  for (size_t i = 0; i < num_seeds; ++i) {
    out[i] = DotScalar(seeds + i * stride, target, n);
  }
}

int32_t DotI8Scalar(const int8_t* a, const int8_t* b, size_t n) {
  int32_t acc = 0;
  for (size_t k = 0; k < n; ++k) {
    acc += static_cast<int32_t>(a[k]) * static_cast<int32_t>(b[k]);
  }
  return acc;
}

void SeedScanI8Scalar(const int8_t* seeds, size_t num_seeds, size_t stride,
                      const int8_t* target, size_t n, int32_t* out) {
  for (size_t i = 0; i < num_seeds; ++i) {
    out[i] = DotI8Scalar(seeds + i * stride, target, n);
  }
}

}  // namespace

const KernelOps& ScalarOps() {
  static constexpr KernelOps ops = {
      DotScalar,    AxpyScalar,  GradStepScalar,   SigmoidDotScalar,
      SeedScanScalar, DotI8Scalar, SeedScanI8Scalar,
  };
  return ops;
}

}  // namespace kernels
}  // namespace inf2vec
