// Runtime dispatch: probe CPUID once, pick the widest compiled-in backend,
// and publish the table behind a relaxed atomic pointer.

#include <atomic>

#include "kernels/kernels_internal.h"

namespace inf2vec {
namespace kernels {
namespace {

std::atomic<const KernelOps*> g_active{nullptr};
std::atomic<bool> g_forced{false};

const KernelOps* TableFor(Isa isa) {
  return isa == Isa::kAvx2 ? Avx2OpsOrNull() : &ScalarOps();
}

/// First-use initialization: BestIsa() without any explicit startup call,
/// so library users (tests, benches) get the dispatched path too.
const KernelOps* ActiveOrInit() {
  const KernelOps* ops = g_active.load(std::memory_order_relaxed);
  if (ops == nullptr) {
    ops = TableFor(BestIsa());
    g_active.store(ops, std::memory_order_relaxed);
  }
  return ops;
}

}  // namespace

bool Avx2Compiled() { return Avx2OpsOrNull() != nullptr; }

bool Avx2Supported() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

Isa BestIsa() {
  return Avx2Compiled() && Avx2Supported() ? Isa::kAvx2 : Isa::kScalar;
}

Isa ActiveIsa() {
  return ActiveOrInit() == Avx2OpsOrNull() ? Isa::kAvx2 : Isa::kScalar;
}

bool IsaForced() { return g_forced.load(std::memory_order_relaxed); }

bool SetActiveIsa(Isa isa) {
  if (isa == Isa::kAvx2 && (!Avx2Compiled() || !Avx2Supported())) {
    return false;
  }
  g_active.store(TableFor(isa), std::memory_order_relaxed);
  g_forced.store(true, std::memory_order_relaxed);
  return true;
}

void ResetIsaForTest() {
  g_active.store(TableFor(BestIsa()), std::memory_order_relaxed);
  g_forced.store(false, std::memory_order_relaxed);
}

const char* IsaName(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

bool ParseIsaName(const std::string& name, Isa* isa) {
  if (name == "scalar") {
    *isa = Isa::kScalar;
    return true;
  }
  if (name == "avx2") {
    *isa = Isa::kAvx2;
    return true;
  }
  if (name == "auto") {
    *isa = BestIsa();
    return true;
  }
  return false;
}

const KernelOps& Ops() { return *ActiveOrInit(); }

}  // namespace kernels
}  // namespace inf2vec
