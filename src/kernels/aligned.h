#ifndef INF2VEC_KERNELS_ALIGNED_H_
#define INF2VEC_KERNELS_ALIGNED_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace inf2vec {
namespace kernels {

/// Alignment of every kernel-facing row buffer: one cache line, which is
/// also the widest vector the AVX2 backend ever loads from one row.
inline constexpr size_t kAlignment = 64;

/// Rounds `n` elements of `Size` bytes up so a row of `n` values occupies
/// a whole number of `kAlignment`-byte blocks — consecutive rows laid out
/// at this stride all start cache-line aligned.
constexpr size_t PaddedStride(size_t n, size_t element_size) {
  const size_t bytes = n * element_size;
  const size_t padded = (bytes + kAlignment - 1) / kAlignment * kAlignment;
  return padded / element_size;
}

/// Minimal C++17 allocator handing out kAlignment-aligned blocks, so
/// std::vector buffers can be fed to aligned SIMD loads. Value-equality
/// semantics (stateless): any two instances compare equal.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    if (n > std::numeric_limits<size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    // operator new with extended alignment: sized, aligned, throwing.
    const size_t bytes =
        (n * sizeof(T) + kAlignment - 1) / kAlignment * kAlignment;
    return static_cast<T*>(
        ::operator new(bytes, std::align_val_t(kAlignment)));
  }

  void deallocate(T* p, size_t /*n*/) noexcept {
    ::operator delete(p, std::align_val_t(kAlignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const {
    return false;
  }
};

/// Row-major buffer type used by EmbeddingStore and the quantized serving
/// table: base pointer is kAlignment-aligned, and with a PaddedStride row
/// pitch every row is too.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

inline bool IsAligned(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % kAlignment == 0;
}

/// Debug-build alignment guard for kernel-facing buffers; compiles away
/// under NDEBUG like assert().
#define INF2VEC_DASSERT_ALIGNED(ptr) \
  assert(::inf2vec::kernels::IsAligned(ptr) && "buffer must be 64B-aligned")

}  // namespace kernels
}  // namespace inf2vec

#endif  // INF2VEC_KERNELS_ALIGNED_H_
