// The AVX2/FMA backend. fp64 kernels run 4-wide with four independent
// accumulators (reassociated sums, FMA contraction — a few ULPs from the
// scalar reference; see docs/KERNELS.md). The int8 kernels widen to int16
// lanes and madd into int32, which is exact, so they are bit-identical to
// scalar. This file alone is compiled with -mavx2 -mfma; nothing here may
// run unless CPUID confirmed support (kernels.cc guards dispatch).

#include "kernels/kernels_internal.h"

#if defined(INF2VEC_HAVE_AVX2)

#include <immintrin.h>

#include <cmath>

namespace inf2vec {
namespace kernels {
namespace {

/// Fixed reduction tree over the four accumulators and their lanes — the
/// order is part of the backend's deterministic output for a given n.
inline double ReduceAcc4(__m256d acc0, __m256d acc1, __m256d acc2,
                         __m256d acc3) {
  const __m256d sum =
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  const __m128d lo = _mm256_castpd256_pd128(sum);
  const __m128d hi = _mm256_extractf128_pd(sum, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

INF2VEC_KERNELS_NO_SANITIZE_THREAD
double DotAvx2(const double* a, const double* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  double dot = ReduceAcc4(acc0, acc1, acc2, acc3);
  for (; i < n; ++i) dot = std::fma(a[i], b[i], dot);
  return dot;
}

INF2VEC_KERNELS_NO_SANITIZE_THREAD
void AxpyAvx2(double alpha, const double* x, double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

INF2VEC_KERNELS_NO_SANITIZE_THREAD
void GradStepAvx2(double coeff, double lr_coeff, const double* s, double* t,
                  double* grad, size_t n) {
  const __m256d vc = _mm256_set1_pd(coeff);
  const __m256d vl = _mm256_set1_pd(lr_coeff);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vt = _mm256_loadu_pd(t + i);  // Pre-update t feeds grad.
    _mm256_storeu_pd(grad + i,
                     _mm256_fmadd_pd(vc, vt, _mm256_loadu_pd(grad + i)));
    _mm256_storeu_pd(t + i,
                     _mm256_fmadd_pd(vl, _mm256_loadu_pd(s + i), vt));
  }
  for (; i < n; ++i) {
    const double ti = t[i];
    grad[i] = std::fma(coeff, ti, grad[i]);
    t[i] = std::fma(lr_coeff, s[i], ti);
  }
}

INF2VEC_KERNELS_NO_SANITIZE_THREAD
double SigmoidDotAvx2(const double* a, const double* b, size_t n,
                      double bias) {
  return 1.0 / (1.0 + std::exp(-(DotAvx2(a, b, n) + bias)));
}

INF2VEC_KERNELS_NO_SANITIZE_THREAD
void SeedScanAvx2(const double* seeds, size_t num_seeds, size_t stride,
                  const double* target, size_t n, double* out) {
  // Per-seed dots share the streamed target row; each dot is exactly
  // DotAvx2, keeping block scoring bit-identical to per-row Score calls
  // on this backend (the serving layer relies on that equality).
  for (size_t i = 0; i < num_seeds; ++i) {
    out[i] = DotAvx2(seeds + i * stride, target, n);
  }
}

inline int32_t ReduceI32(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i sum = _mm_add_epi32(lo, hi);
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(sum);
}

int32_t DotI8Avx2(const int8_t* a, const int8_t* b, size_t n) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i wa = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i wb = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb));
  }
  int32_t dot = ReduceI32(acc);
  for (; i < n; ++i) {
    dot += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return dot;
}

void SeedScanI8Avx2(const int8_t* seeds, size_t num_seeds, size_t stride,
                    const int8_t* target, size_t n, int32_t* out) {
  for (size_t i = 0; i < num_seeds; ++i) {
    out[i] = DotI8Avx2(seeds + i * stride, target, n);
  }
}

}  // namespace

const KernelOps* Avx2OpsOrNull() {
  static constexpr KernelOps ops = {
      DotAvx2,    AxpyAvx2,  GradStepAvx2,   SigmoidDotAvx2,
      SeedScanAvx2, DotI8Avx2, SeedScanI8Avx2,
  };
  return &ops;
}

}  // namespace kernels
}  // namespace inf2vec

#else  // !INF2VEC_HAVE_AVX2

namespace inf2vec {
namespace kernels {

const KernelOps* Avx2OpsOrNull() { return nullptr; }

}  // namespace kernels
}  // namespace inf2vec

#endif  // INF2VEC_HAVE_AVX2
