#ifndef INF2VEC_KERNELS_KERNELS_INTERNAL_H_
#define INF2VEC_KERNELS_KERNELS_INTERNAL_H_

#include "kernels/kernels.h"

// Hogwild training intentionally races kernel reads/writes on shared
// store rows (see EmbeddingStore's concurrency contract); the same
// annotation the old inline loops carried moves here with them.
#if defined(__clang__) || defined(__GNUC__)
#define INF2VEC_KERNELS_NO_SANITIZE_THREAD \
  __attribute__((no_sanitize("thread")))
#else
#define INF2VEC_KERNELS_NO_SANITIZE_THREAD
#endif

namespace inf2vec {
namespace kernels {

/// The AVX2/FMA table; null in binaries built without the backend
/// (INF2VEC_ENABLE_AVX2=OFF or a non-x86 toolchain).
const KernelOps* Avx2OpsOrNull();

}  // namespace kernels
}  // namespace inf2vec

#endif  // INF2VEC_KERNELS_KERNELS_INTERNAL_H_
