#ifndef INF2VEC_CORE_TOPIC_INF2VEC_H_
#define INF2VEC_CORE_TOPIC_INF2VEC_H_

#include <memory>
#include <vector>

#include "core/inf2vec_model.h"
#include "core/item_clustering.h"

namespace inf2vec {

/// Configuration of the topic-aware Inf2vec extension — the first item on
/// the paper's future-work list ("model the topic-aware influence
/// propagation"). Episodes are clustered by audience; a global Inf2vec
/// model is trained on everything and a topic model on each sufficiently
/// large cluster; item-conditioned scores interpolate the two.
struct TopicInf2vecConfig {
  Inf2vecConfig base;
  ItemClusteringOptions clustering;
  /// Interpolation weight of the topic-specific score (0 = plain Inf2vec).
  double topic_weight = 0.4;
  /// Clusters with fewer training episodes than this fall back to the
  /// global model only.
  uint32_t min_cluster_episodes = 8;
};

/// Topic-aware influence model: x_z(u, v) = (1 - w) * x_global(u, v) +
/// w * x_topic(z)(u, v), where z is the item's audience cluster. At
/// prediction time the cluster of an unseen episode is inferred from its
/// already-activated users, which are observable when the prediction is
/// made (no test leakage).
class TopicInf2vecModel {
 public:
  static Result<TopicInf2vecModel> Train(const SocialGraph& graph,
                                         const ActionLog& log,
                                         const TopicInf2vecConfig& config);

  uint32_t num_topics() const { return clustering_->num_clusters(); }
  const Inf2vecModel& global_model() const { return *global_; }
  /// nullptr when the cluster fell below min_cluster_episodes.
  const Inf2vecModel* topic_model(uint32_t cluster) const {
    return topic_models_[cluster].get();
  }
  const ItemClustering& clustering() const { return *clustering_; }

  /// Cluster for a partially observed episode (its active users so far).
  uint32_t InferTopic(const std::vector<UserId>& active_users) const {
    return clustering_->AssignAdopters(active_users);
  }

  /// Item-conditioned influence score.
  double Score(uint32_t topic, UserId u, UserId v) const;

  /// Item-conditioned Eq. 7 activation score.
  double ScoreActivation(uint32_t topic, UserId v,
                         const std::vector<UserId>& influencers) const;

 private:
  TopicInf2vecModel(TopicInf2vecConfig config,
                    std::unique_ptr<ItemClustering> clustering,
                    std::unique_ptr<Inf2vecModel> global,
                    std::vector<std::unique_ptr<Inf2vecModel>> topic_models)
      : config_(std::move(config)),
        clustering_(std::move(clustering)),
        global_(std::move(global)),
        topic_models_(std::move(topic_models)) {}

  TopicInf2vecConfig config_;
  std::unique_ptr<ItemClustering> clustering_;
  std::unique_ptr<Inf2vecModel> global_;
  std::vector<std::unique_ptr<Inf2vecModel>> topic_models_;
};

}  // namespace inf2vec

#endif  // INF2VEC_CORE_TOPIC_INF2VEC_H_
