#include "core/topic_inf2vec.h"

#include "core/aggregation.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace inf2vec {

Result<TopicInf2vecModel> TopicInf2vecModel::Train(
    const SocialGraph& graph, const ActionLog& log,
    const TopicInf2vecConfig& config) {
  if (config.topic_weight < 0.0 || config.topic_weight > 1.0) {
    return Status::InvalidArgument("topic_weight must be in [0, 1]");
  }

  Result<ItemClustering> clustering =
      ItemClustering::Fit(log, graph.num_users(), config.clustering);
  if (!clustering.ok()) return clustering.status();
  auto clustering_ptr =
      std::make_unique<ItemClustering>(std::move(clustering).value());

  Result<Inf2vecModel> global = Inf2vecModel::Train(graph, log, config.base);
  if (!global.ok()) return global.status();
  auto global_ptr = std::make_unique<Inf2vecModel>(std::move(global).value());

  // Partition the log by cluster.
  const uint32_t k = clustering_ptr->num_clusters();
  std::vector<ActionLog> cluster_logs(k);
  for (size_t i = 0; i < log.num_episodes(); ++i) {
    cluster_logs[clustering_ptr->ClusterOfEpisode(i)].AddEpisode(
        log.episodes()[i]);
  }

  std::vector<std::unique_ptr<Inf2vecModel>> topic_models(k);
  const auto train_cluster = [&](uint32_t c, uint32_t cluster_threads) {
    if (cluster_logs[c].num_episodes() < config.min_cluster_episodes) {
      return;  // Too little data: global fallback.
    }
    Inf2vecConfig topic_config = config.base;
    topic_config.seed = config.base.seed + 1000 + c;
    topic_config.num_threads = cluster_threads;
    Result<Inf2vecModel> topic =
        Inf2vecModel::Train(graph, cluster_logs[c], topic_config);
    if (!topic.ok()) return;  // Cluster degenerate (e.g. no pairs).
    topic_models[c] =
        std::make_unique<Inf2vecModel>(std::move(topic).value());
  };
  const uint32_t num_threads =
      ThreadPool::ResolveThreadCount(config.base.num_threads);
  if (num_threads > 1 && k > 1) {
    // Cluster jobs are the parallel unit here: each cluster trains on its
    // single shard thread (num_threads = 1, the deterministic serial
    // path), so the per-cluster seeds yield identical models regardless
    // of how clusters land on workers.
    ThreadPool pool(num_threads);
    pool.ParallelFor(0, k, [&](uint32_t, size_t begin, size_t end) {
      for (size_t c = begin; c < end; ++c) {
        train_cluster(static_cast<uint32_t>(c), 1);
      }
    });
  } else {
    for (uint32_t c = 0; c < k; ++c) train_cluster(c, 1);
  }

  return TopicInf2vecModel(config, std::move(clustering_ptr),
                           std::move(global_ptr), std::move(topic_models));
}

double TopicInf2vecModel::Score(uint32_t topic, UserId u, UserId v) const {
  INF2VEC_CHECK(topic < topic_models_.size()) << "topic out of range";
  const double global_score = global_->Score(u, v);
  const Inf2vecModel* topical = topic_models_[topic].get();
  if (topical == nullptr || config_.topic_weight == 0.0) {
    return global_score;
  }
  return (1.0 - config_.topic_weight) * global_score +
         config_.topic_weight * topical->Score(u, v);
}

double TopicInf2vecModel::ScoreActivation(
    uint32_t topic, UserId v, const std::vector<UserId>& influencers) const {
  INF2VEC_CHECK(!influencers.empty());
  std::vector<double> scores;
  scores.reserve(influencers.size());
  for (UserId u : influencers) scores.push_back(Score(topic, u, v));
  return Aggregate(config_.base.aggregation, scores);
}

}  // namespace inf2vec
