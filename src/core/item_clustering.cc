#include "core/item_clustering.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace inf2vec {
namespace {

/// Sorted unique adopter ids of an episode, bounded by num_users.
std::vector<UserId> AdopterSet(const DiffusionEpisode& episode,
                               uint32_t num_users) {
  std::vector<UserId> users;
  users.reserve(episode.size());
  for (const Adoption& a : episode.adoptions()) {
    if (a.user < num_users) users.push_back(a.user);
  }
  std::sort(users.begin(), users.end());
  users.erase(std::unique(users.begin(), users.end()), users.end());
  return users;
}

}  // namespace

Result<ItemClustering> ItemClustering::Fit(
    const ActionLog& log, uint32_t num_users,
    const ItemClusteringOptions& options) {
  if (log.num_episodes() == 0) {
    return Status::InvalidArgument("cannot cluster an empty log");
  }
  if (options.num_clusters == 0 || num_users == 0) {
    return Status::InvalidArgument("need clusters and users");
  }
  const uint32_t k =
      std::min<uint32_t>(options.num_clusters,
                         static_cast<uint32_t>(log.num_episodes()));

  std::vector<std::vector<UserId>> items;
  items.reserve(log.num_episodes());
  for (const DiffusionEpisode& e : log.episodes()) {
    items.push_back(AdopterSet(e, num_users));
  }

  ItemClustering clustering(num_users, k);
  clustering.centroids_.assign(static_cast<size_t>(k) * num_users, 0.0);
  clustering.assignments_.assign(items.size(), 0);

  // Init: centroids from k distinct random episodes.
  Rng rng(options.seed);
  std::vector<size_t> order(items.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  for (uint32_t c = 0; c < k; ++c) {
    const std::vector<UserId>& seed_item = items[order[c]];
    if (seed_item.empty()) continue;
    const double weight = 1.0 / std::sqrt(static_cast<double>(
                                    seed_item.size()));
    for (UserId u : seed_item) {
      clustering.centroids_[static_cast<size_t>(c) * num_users + u] = weight;
    }
  }

  for (uint32_t iter = 0; iter < options.iterations; ++iter) {
    // Assign.
    bool changed = false;
    for (size_t i = 0; i < items.size(); ++i) {
      uint32_t best = 0;
      double best_dot = -1.0;
      for (uint32_t c = 0; c < k; ++c) {
        const double dot = clustering.CentroidDot(c, items[i]);
        if (dot > best_dot) {
          best_dot = dot;
          best = c;
        }
      }
      if (clustering.assignments_[i] != best) {
        clustering.assignments_[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    // Update: mean of normalized member vectors, re-normalized.
    std::fill(clustering.centroids_.begin(), clustering.centroids_.end(),
              0.0);
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i].empty()) continue;
      const uint32_t c = clustering.assignments_[i];
      const double weight =
          1.0 / std::sqrt(static_cast<double>(items[i].size()));
      for (UserId u : items[i]) {
        clustering.centroids_[static_cast<size_t>(c) * num_users + u] +=
            weight;
      }
    }
    for (uint32_t c = 0; c < k; ++c) {
      double norm = 0.0;
      double* row = clustering.centroids_.data() +
                    static_cast<size_t>(c) * num_users;
      for (uint32_t u = 0; u < num_users; ++u) norm += row[u] * row[u];
      norm = std::sqrt(norm);
      if (norm <= 1e-12) {
        // Dead cluster: re-seed from a random episode.
        const std::vector<UserId>& seed_item =
            items[rng.UniformU64(items.size())];
        if (!seed_item.empty()) {
          const double weight =
              1.0 / std::sqrt(static_cast<double>(seed_item.size()));
          for (UserId u : seed_item) row[u] = weight;
        }
        continue;
      }
      for (uint32_t u = 0; u < num_users; ++u) row[u] /= norm;
    }
  }
  return clustering;
}

double ItemClustering::CentroidDot(uint32_t cluster,
                                   const std::vector<UserId>& adopters) const {
  const double* row =
      centroids_.data() + static_cast<size_t>(cluster) * num_users_;
  double dot = 0.0;
  for (UserId u : adopters) {
    if (u < num_users_) dot += row[u];
  }
  return dot;
}

uint32_t ItemClustering::AssignAdopters(
    const std::vector<UserId>& adopters) const {
  uint32_t best = 0;
  double best_dot = -1.0;
  for (uint32_t c = 0; c < num_clusters_; ++c) {
    const double dot = CentroidDot(c, adopters);
    if (dot > best_dot) {
      best_dot = dot;
      best = c;
    }
  }
  return best;
}

std::vector<uint32_t> ItemClustering::ClusterSizes() const {
  std::vector<uint32_t> sizes(num_clusters_, 0);
  for (uint32_t a : assignments_) ++sizes[a];
  return sizes;
}

}  // namespace inf2vec
