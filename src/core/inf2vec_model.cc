#include "core/inf2vec_model.h"

#include <algorithm>

#include "diffusion/propagation_network.h"
#include "util/logging.h"

namespace inf2vec {

InfluenceCorpus BuildInfluenceCorpus(const SocialGraph& graph,
                                     const ActionLog& log,
                                     const ContextOptions& options,
                                     uint32_t num_users, Rng& rng) {
  InfluenceCorpus corpus;
  corpus.target_frequencies.assign(num_users, 0);
  for (const DiffusionEpisode& episode : log.episodes()) {
    const PropagationNetwork network(graph, episode);
    for (const InfluenceContext& ctx :
         GenerateEpisodeContexts(network, options, rng)) {
      ++corpus.num_tuples;
      for (UserId v : ctx.context) {
        corpus.pairs.push_back({ctx.user, v});
        if (v < num_users) ++corpus.target_frequencies[v];
      }
    }
  }
  return corpus;
}

Result<Inf2vecModel> Inf2vecModel::TrainFromCorpus(
    const InfluenceCorpus& corpus, uint32_t num_users,
    const Inf2vecConfig& config, std::vector<double>* epoch_objective) {
  if (corpus.pairs.empty()) {
    return Status::InvalidArgument(
        "empty influence corpus: no influence pairs in the training log");
  }
  if (num_users == 0) {
    return Status::InvalidArgument("num_users must be positive");
  }

  Rng rng(config.seed);
  auto store = std::make_unique<EmbeddingStore>(num_users, config.dim);
  store->InitPaperDefault(rng);

  Result<NegativeSampler> sampler = NegativeSampler::Create(
      config.negative_kind, num_users, corpus.target_frequencies);
  if (!sampler.ok()) return sampler.status();

  SgdTrainer trainer(store.get(), &sampler.value(), config.sgd);

  std::vector<std::pair<UserId, UserId>> pairs = corpus.pairs;
  if (epoch_objective != nullptr) epoch_objective->clear();

  for (uint32_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle_pairs) rng.Shuffle(pairs);
    double objective_sum = 0.0;
    for (const auto& [u, v] : pairs) {
      objective_sum += trainer.TrainPair(u, v, rng);
    }
    if (epoch_objective != nullptr) {
      epoch_objective->push_back(objective_sum /
                                 static_cast<double>(pairs.size()));
    }
  }
  return Inf2vecModel(config, std::move(store));
}

Result<Inf2vecModel> Inf2vecModel::Train(const SocialGraph& graph,
                                         const ActionLog& log,
                                         const Inf2vecConfig& config) {
  if (log.num_episodes() == 0) {
    return Status::InvalidArgument("action log has no episodes");
  }
  Rng rng(config.seed);
  const InfluenceCorpus corpus = BuildInfluenceCorpus(
      graph, log, config.context, graph.num_users(), rng);
  // Offset the SGD stream from the corpus stream so the two phases do not
  // share random state across configs with equal seeds.
  Inf2vecConfig sgd_config = config;
  sgd_config.seed = config.seed ^ 0x5deece66dULL;
  Result<Inf2vecModel> model = TrainFromCorpus(corpus, graph.num_users(),
                                               sgd_config, nullptr);
  if (!model.ok()) return model.status();
  Inf2vecModel out = std::move(model).value();
  out.config_ = config;
  return out;
}

}  // namespace inf2vec
