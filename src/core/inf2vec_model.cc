#include "core/inf2vec_model.h"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "diffusion/propagation_network.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/run_status.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace inf2vec {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Corpus-level tallies, recorded once per build (deterministic counts:
/// identical for serial and pooled builds of the same corpus).
void RecordCorpusMetrics(const InfluenceCorpus& corpus,
                         size_t num_episodes) {
  // Corpus buffers dominate training-side heap after the embedding table;
  // absolute Set (not Add) so a rebuilt corpus re-states rather than
  // double-counts. The corpus lives to the end of the run, so nothing
  // frees the figure — that is the truth of the training process.
  obs::MemoryRegistry::Default()
      .GetGauge("train.corpus")
      ->Set(corpus.pairs.capacity() * sizeof(corpus.pairs[0]) +
            corpus.target_frequencies.capacity() *
                sizeof(corpus.target_frequencies[0]));
  if (!obs::MetricsEnabled()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  registry.GetCounter("corpus.episodes")->Increment(num_episodes);
  registry.GetCounter("corpus.tuples")->Increment(corpus.num_tuples);
  registry.GetCounter("corpus.pairs")->Increment(corpus.pairs.size());
}

/// Per-epoch bookkeeping shared by the serial and Hogwild paths: metric
/// counters (epoch-granularity, deterministic across thread counts),
/// objective recording, and the user epoch callback. Runs on the training
/// thread outside the hot pair loop.
void FinishEpoch(const Inf2vecConfig& config, uint32_t epoch, uint64_t pairs,
                 double objective_sum, bool have_objective, double seconds,
                 std::vector<double>* epoch_objective) {
  const double mean_objective =
      pairs == 0 ? 0.0 : objective_sum / static_cast<double>(pairs);
  if (epoch_objective != nullptr) epoch_objective->push_back(mean_objective);
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("sgd.epochs")->Increment();
    registry.GetCounter("sgd.pairs_trained")->Increment(pairs);
    registry.GetGauge("sgd.learning_rate")->Set(config.sgd.learning_rate);
    if (have_objective) {
      registry.GetGauge("sgd.objective")->Set(mean_objective);
    }
  }
  const double pairs_per_second =
      seconds > 0.0 ? static_cast<double>(pairs) / seconds : 0.0;
  // Live /statusz progress: epoch granularity, one uncontended lock.
  obs::RunStatus::Default().UpdateEpoch(epoch, config.epochs, mean_objective,
                                        pairs_per_second, seconds);
  if (config.epoch_callback) {
    EpochStats stats;
    stats.epoch = epoch;
    stats.total_epochs = config.epochs;
    stats.objective = mean_objective;
    stats.learning_rate = config.sgd.learning_rate;
    stats.pairs = pairs;
    stats.seconds = seconds;
    stats.pairs_per_second = pairs_per_second;
    config.epoch_callback(stats);
  }
}

/// Appends one episode's Algorithm-1 output to a corpus fragment.
void AccumulateEpisode(const SocialGraph& graph,
                       const DiffusionEpisode& episode,
                       const ContextOptions& options, uint32_t num_users,
                       Rng& rng, InfluenceCorpus* corpus) {
  const PropagationNetwork network(graph, episode);
  for (const InfluenceContext& ctx :
       GenerateEpisodeContexts(network, options, rng)) {
    ++corpus->num_tuples;
    for (UserId v : ctx.context) {
      corpus->pairs.push_back({ctx.user, v});
      if (v < num_users) ++corpus->target_frequencies[v];
    }
  }
}

/// Serial reference build over an externally owned RNG stream (the old
/// Rng& overload's body; the options path seeds a fresh stream).
InfluenceCorpus BuildCorpusSerial(const SocialGraph& graph,
                                  const ActionLog& log,
                                  const ContextOptions& options,
                                  uint32_t num_users, Rng& rng) {
  obs::TraceSpan span("BuildInfluenceCorpus", "corpus");
  InfluenceCorpus corpus;
  corpus.target_frequencies.assign(num_users, 0);
  for (const DiffusionEpisode& episode : log.episodes()) {
    AccumulateEpisode(graph, episode, options, num_users, rng, &corpus);
  }
  RecordCorpusMetrics(corpus, log.episodes().size());
  return corpus;
}

InfluenceCorpus BuildCorpusPooled(const SocialGraph& graph,
                                  const ActionLog& log,
                                  const ContextOptions& options,
                                  uint32_t num_users, uint64_t seed,
                                  ThreadPool& pool) {
  obs::TraceSpan span("BuildInfluenceCorpus", "corpus");
  const std::vector<DiffusionEpisode>& episodes = log.episodes();
  std::vector<InfluenceCorpus> fragments(pool.num_threads());
  pool.ParallelFor(0, episodes.size(),
                   [&](uint32_t shard, size_t begin, size_t end) {
                     Rng rng(ThreadPool::ShardSeed(seed, shard));
                     InfluenceCorpus& fragment = fragments[shard];
                     fragment.target_frequencies.assign(num_users, 0);
                     for (size_t i = begin; i < end; ++i) {
                       AccumulateEpisode(graph, episodes[i], options,
                                         num_users, rng, &fragment);
                     }
                   });

  // Deterministic merge: shard s covers a contiguous episode range below
  // shard s+1's, so fragment order IS episode order.
  InfluenceCorpus corpus;
  corpus.target_frequencies.assign(num_users, 0);
  size_t total_pairs = 0;
  for (const InfluenceCorpus& fragment : fragments) {
    total_pairs += fragment.pairs.size();
  }
  corpus.pairs.reserve(total_pairs);
  for (const InfluenceCorpus& fragment : fragments) {
    corpus.pairs.insert(corpus.pairs.end(), fragment.pairs.begin(),
                        fragment.pairs.end());
    corpus.num_tuples += fragment.num_tuples;
    if (fragment.target_frequencies.empty()) continue;  // Unclaimed shard.
    for (uint32_t u = 0; u < num_users; ++u) {
      corpus.target_frequencies[u] += fragment.target_frequencies[u];
    }
  }
  RecordCorpusMetrics(corpus, episodes.size());
  return corpus;
}

/// Builds the checkpoint view and invokes the configured callback (no-op
/// without one). Runs on the training thread between epochs, so the
/// pointed-to state is quiescent for the duration of the call.
Status MaybeCheckpoint(const Inf2vecConfig& config, uint32_t epochs_completed,
                       const EmbeddingStore* store,
                       const std::vector<std::pair<UserId, UserId>>* pairs,
                       const std::vector<uint64_t>* target_frequencies,
                       const Rng& rng, const std::vector<Rng>& shard_rngs) {
  if (!config.checkpoint_callback) return Status::OK();
  TrainCheckpointView view;
  view.epochs_completed = epochs_completed;
  view.total_epochs = config.epochs;
  view.num_users = store->num_users();
  view.store = store;
  view.pairs = pairs;
  view.target_frequencies = target_frequencies;
  view.master_rng = rng.state();
  view.shard_rngs.reserve(shard_rngs.size());
  for (const Rng& shard : shard_rngs) view.shard_rngs.push_back(shard.state());
  return config.checkpoint_callback(view);
}

/// The SGD epoch loop shared by TrainFromCorpus (start_epoch = 0) and
/// ResumeFromState. Serial when `shard_rngs` is empty, Hogwild over
/// shard_rngs.size() workers otherwise. Mutates `pairs` (per-epoch
/// shuffle), `rng`, `shard_rngs` and the store in place.
Status RunSgdEpochs(const Inf2vecConfig& config, EmbeddingStore* store,
                    NegativeSampler* sampler,
                    std::vector<std::pair<UserId, UserId>>& pairs,
                    const std::vector<uint64_t>& target_frequencies,
                    Rng& rng, std::vector<Rng>& shard_rngs,
                    uint32_t start_epoch,
                    std::vector<double>* epoch_objective) {
  const bool want_objective =
      epoch_objective != nullptr || static_cast<bool>(config.epoch_callback);
  if (shard_rngs.empty()) {
    // Serial reference path: identical RNG stream and update order to the
    // pre-parallel implementation, hence bit-for-bit reproducible.
    SgdTrainer trainer(store, sampler, config.sgd);
    for (uint32_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
      const auto epoch_start = std::chrono::steady_clock::now();
      double objective_sum = 0.0;
      {
        obs::TraceSpan span("sgd.epoch", "train");
        if (config.shuffle_pairs) rng.Shuffle(pairs);
        for (const auto& [u, v] : pairs) {
          objective_sum += trainer.TrainPair(u, v, rng, want_objective);
        }
      }
      FinishEpoch(config, epoch, pairs.size(), objective_sum, want_objective,
                  SecondsSince(epoch_start), epoch_objective);
      INF2VEC_RETURN_IF_ERROR(MaybeCheckpoint(config, epoch + 1, store,
                                              &pairs, &target_frequencies,
                                              rng, shard_rngs));
    }
    return Status::OK();
  }

  // Hogwild epochs: each epoch statically partitions the shuffled pair
  // vector across the pool; workers own their SgdTrainer (scratch buffers)
  // and RNG stream but share the EmbeddingStore lock-free. The shuffle
  // stays on the master rng so the pair sequence matches the serial path.
  const uint32_t num_threads = static_cast<uint32_t>(shard_rngs.size());
  ThreadPool pool(num_threads);
  std::vector<SgdTrainer> trainers;
  trainers.reserve(num_threads);
  for (uint32_t s = 0; s < num_threads; ++s) {
    trainers.emplace_back(store, sampler, config.sgd);
  }
  std::vector<double> shard_objective(num_threads, 0.0);

  for (uint32_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    const auto epoch_start = std::chrono::steady_clock::now();
    {
      obs::TraceSpan span("sgd.epoch", "train");
      if (config.shuffle_pairs) rng.Shuffle(pairs);
      std::fill(shard_objective.begin(), shard_objective.end(), 0.0);
      pool.ParallelFor(0, pairs.size(),
                       [&](uint32_t shard, size_t begin, size_t end) {
                         SgdTrainer& trainer = trainers[shard];
                         Rng& shard_rng = shard_rngs[shard];
                         double sum = 0.0;
                         for (size_t i = begin; i < end; ++i) {
                           sum += trainer.TrainPair(pairs[i].first,
                                                    pairs[i].second,
                                                    shard_rng,
                                                    want_objective);
                         }
                         shard_objective[shard] = sum;
                       });
    }
    const double total = std::accumulate(shard_objective.begin(),
                                         shard_objective.end(), 0.0);
    FinishEpoch(config, epoch, pairs.size(), total, want_objective,
                SecondsSince(epoch_start), epoch_objective);
    INF2VEC_RETURN_IF_ERROR(MaybeCheckpoint(config, epoch + 1, store, &pairs,
                                            &target_frequencies, rng,
                                            shard_rngs));
  }
  return Status::OK();
}

}  // namespace

InfluenceCorpus BuildInfluenceCorpus(const SocialGraph& graph,
                                     const ActionLog& log,
                                     const ContextOptions& options,
                                     uint32_t num_users,
                                     const CorpusBuildOptions& build) {
  if (build.pool == nullptr) {
    Rng rng(build.seed);
    return BuildCorpusSerial(graph, log, options, num_users, rng);
  }
  return BuildCorpusPooled(graph, log, options, num_users, build.seed,
                           *build.pool);
}

Result<Inf2vecModel> Inf2vecModel::TrainFromCorpus(
    const InfluenceCorpus& corpus, uint32_t num_users,
    const Inf2vecConfig& config, std::vector<double>* epoch_objective) {
  if (corpus.pairs.empty()) {
    return Status::InvalidArgument(
        "empty influence corpus: no influence pairs in the training log");
  }
  if (num_users == 0) {
    return Status::InvalidArgument("num_users must be positive");
  }

  Rng rng(config.seed);
  auto store = std::make_unique<EmbeddingStore>(num_users, config.dim);
  store->InitPaperDefault(rng);

  Result<NegativeSampler> sampler = NegativeSampler::Create(
      config.negative_kind, num_users, corpus.target_frequencies);
  if (!sampler.ok()) return sampler.status();

  std::vector<std::pair<UserId, UserId>> pairs = corpus.pairs;
  if (epoch_objective != nullptr) epoch_objective->clear();

  const uint32_t num_threads =
      ThreadPool::ResolveThreadCount(config.num_threads);
  obs::RunStatus::Default().SetPhase("sgd");
  obs::RunStatus::Default().SetThreads(num_threads);
  std::vector<Rng> shard_rngs;
  if (num_threads > 1) {
    shard_rngs.reserve(num_threads);
    for (uint32_t s = 0; s < num_threads; ++s) {
      shard_rngs.emplace_back(ThreadPool::ShardSeed(config.seed, s));
    }
  }
  INF2VEC_RETURN_IF_ERROR(RunSgdEpochs(config, store.get(), &sampler.value(),
                                       pairs, corpus.target_frequencies, rng,
                                       shard_rngs, /*start_epoch=*/0,
                                       epoch_objective));
  return Inf2vecModel(config, std::move(store));
}

Result<Inf2vecModel> Inf2vecModel::ResumeFromState(
    TrainResumeState state, const Inf2vecConfig& config,
    std::vector<double>* epoch_objective) {
  if (state.corpus.pairs.empty()) {
    return Status::InvalidArgument("resume state has no training pairs");
  }
  const uint32_t num_users = state.store.num_users();
  if (num_users == 0) {
    return Status::InvalidArgument(
        "resume state has an empty embedding store");
  }
  if (state.store.dim() != config.dim) {
    return Status::FailedPrecondition(
        "checkpointed dim " + std::to_string(state.store.dim()) +
        " != config.dim " + std::to_string(config.dim));
  }
  if (state.corpus.target_frequencies.size() != num_users) {
    return Status::InvalidArgument(
        "resume state target_frequencies covers " +
        std::to_string(state.corpus.target_frequencies.size()) +
        " users, embedding store has " + std::to_string(num_users));
  }

  auto store = std::make_unique<EmbeddingStore>(std::move(state.store));
  if (epoch_objective != nullptr) epoch_objective->clear();
  if (state.epochs_completed >= config.epochs) {
    // The checkpoint already covers every requested epoch (e.g. resuming a
    // finished run without raising --epochs): nothing left to train.
    return Inf2vecModel(config, std::move(store));
  }

  Result<NegativeSampler> sampler = NegativeSampler::Create(
      config.negative_kind, num_users, state.corpus.target_frequencies);
  if (!sampler.ok()) return sampler.status();

  const uint32_t num_threads =
      ThreadPool::ResolveThreadCount(config.num_threads);
  obs::RunStatus::Default().SetPhase("sgd");
  obs::RunStatus::Default().SetThreads(num_threads);
  std::vector<Rng> shard_rngs;
  if (num_threads > 1) {
    if (state.shard_rngs.size() != num_threads) {
      return Status::FailedPrecondition(
          "checkpoint carries " + std::to_string(state.shard_rngs.size()) +
          " shard RNG streams but config.num_threads resolves to " +
          std::to_string(num_threads) +
          "; resume with the checkpointed thread count");
    }
    shard_rngs.reserve(num_threads);
    for (const RngState& s : state.shard_rngs) {
      shard_rngs.push_back(Rng::FromState(s));
    }
  } else if (!state.shard_rngs.empty()) {
    return Status::FailedPrecondition(
        "checkpoint came from a Hogwild run (" +
        std::to_string(state.shard_rngs.size()) +
        " shard RNG streams); resume with the same num_threads");
  }

  Rng rng = Rng::FromState(state.master_rng);
  INF2VEC_RETURN_IF_ERROR(RunSgdEpochs(
      config, store.get(), &sampler.value(), state.corpus.pairs,
      state.corpus.target_frequencies, rng, shard_rngs,
      state.epochs_completed, epoch_objective));
  return Inf2vecModel(config, std::move(store));
}

Result<Inf2vecModel> Inf2vecModel::Train(const SocialGraph& graph,
                                         const ActionLog& log,
                                         const Inf2vecConfig& config) {
  if (log.num_episodes() == 0) {
    return Status::InvalidArgument("action log has no episodes");
  }
  const uint32_t num_threads =
      ThreadPool::ResolveThreadCount(config.num_threads);
  obs::RunStatus::Default().SetPhase("corpus");
  obs::RunStatus::Default().SetThreads(num_threads);
  const auto corpus_start = std::chrono::steady_clock::now();
  InfluenceCorpus corpus;
  CorpusBuildOptions build;
  build.seed = config.seed;
  if (num_threads <= 1) {
    corpus = BuildInfluenceCorpus(graph, log, config.context,
                                  graph.num_users(), build);
  } else {
    ThreadPool pool(num_threads);
    build.pool = &pool;
    corpus = BuildInfluenceCorpus(graph, log, config.context,
                                  graph.num_users(), build);
  }
  const double corpus_seconds = SecondsSince(corpus_start);
  // Offset the SGD stream from the corpus stream so the two phases do not
  // share random state across configs with equal seeds.
  Inf2vecConfig sgd_config = config;
  sgd_config.seed = config.seed ^ 0x5deece66dULL;
  const auto sgd_start = std::chrono::steady_clock::now();
  Result<Inf2vecModel> model = TrainFromCorpus(corpus, graph.num_users(),
                                               sgd_config, nullptr);
  if (obs::MetricsEnabled()) {
    // Phase split of the end-to-end run (Fig. 9's two-phase accounting);
    // set here because the phase boundary is internal to Train().
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetGauge("train.corpus_seconds")->Set(corpus_seconds);
    registry.GetGauge("train.sgd_seconds")->Set(SecondsSince(sgd_start));
  }
  if (!model.ok()) return model.status();
  Inf2vecModel out = std::move(model).value();
  out.config_ = config;
  return out;
}

}  // namespace inf2vec
