#include "core/embedding_predictor.h"

#include "util/logging.h"

namespace inf2vec {

EmbeddingPredictor::EmbeddingPredictor(std::string name,
                                       const EmbeddingStore* store,
                                       Aggregation aggregation)
    : name_(std::move(name)), store_(store), aggregation_(aggregation) {
  INF2VEC_CHECK(store_ != nullptr);
}

double EmbeddingPredictor::ScoreActivation(
    UserId v, const std::vector<UserId>& active_influencers) const {
  INF2VEC_CHECK(!active_influencers.empty())
      << "candidate must have at least one active influencer";
  std::vector<double> scores;
  scores.reserve(active_influencers.size());
  for (UserId u : active_influencers) scores.push_back(store_->Score(u, v));
  return Aggregate(aggregation_, scores);
}

std::vector<double> EmbeddingPredictor::ScoreDiffusion(
    const std::vector<UserId>& seeds, Rng& rng) const {
  (void)rng;  // Deterministic scorer.
  std::vector<double> out(store_->num_users(), 0.0);
  std::vector<double> scores(seeds.size(), 0.0);
  for (UserId v = 0; v < store_->num_users(); ++v) {
    for (size_t i = 0; i < seeds.size(); ++i) {
      scores[i] = store_->Score(seeds[i], v);
    }
    out[v] = Aggregate(aggregation_, scores);
  }
  return out;
}

}  // namespace inf2vec
