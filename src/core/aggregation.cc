#include "core/aggregation.h"

#include <algorithm>

#include "util/logging.h"

namespace inf2vec {

double Aggregate(Aggregation kind, std::span<const double> scores) {
  INF2VEC_CHECK(!scores.empty()) << "Aggregate over empty score list";
  switch (kind) {
    case Aggregation::kAve: {
      double sum = 0.0;
      for (double x : scores) sum += x;
      return sum / static_cast<double>(scores.size());
    }
    case Aggregation::kSum: {
      double sum = 0.0;
      for (double x : scores) sum += x;
      return sum;
    }
    case Aggregation::kMax:
      return *std::max_element(scores.begin(), scores.end());
    case Aggregation::kLatest:
      return scores.back();
  }
  INF2VEC_CHECK(false) << "unreachable aggregation kind";
  return 0.0;
}

std::string AggregationName(Aggregation kind) {
  switch (kind) {
    case Aggregation::kAve:
      return "Ave";
    case Aggregation::kSum:
      return "Sum";
    case Aggregation::kMax:
      return "Max";
    case Aggregation::kLatest:
      return "Latest";
  }
  return "?";
}

Result<Aggregation> ParseAggregation(const std::string& name) {
  if (name == "Ave") return Aggregation::kAve;
  if (name == "Sum") return Aggregation::kSum;
  if (name == "Max") return Aggregation::kMax;
  if (name == "Latest") return Aggregation::kLatest;
  return Status::InvalidArgument("unknown aggregation: " + name);
}

}  // namespace inf2vec
