#include "core/influence_maximization.h"

#include <algorithm>
#include <queue>

namespace inf2vec {

double EstimateSpread(const SocialGraph& graph,
                      const EdgeProbabilities& probs,
                      const std::vector<UserId>& seeds,
                      uint32_t mc_simulations, Rng& rng) {
  if (seeds.empty() || mc_simulations == 0) return 0.0;
  double total = 0.0;
  for (uint32_t s = 0; s < mc_simulations; ++s) {
    total += static_cast<double>(
        SimulateCascade(graph, probs, seeds, rng).activated.size());
  }
  return total / static_cast<double>(mc_simulations);
}

Result<SeedSelection> SelectSeedsCelf(const SocialGraph& graph,
                                      const EdgeProbabilities& probs,
                                      const InfluenceMaxOptions& options) {
  if (options.num_seeds == 0 || options.num_seeds > graph.num_users()) {
    return Status::InvalidArgument("invalid seed count");
  }
  if (probs.size() != graph.num_edges()) {
    return Status::InvalidArgument("probability table does not match graph");
  }
  Rng rng(options.seed);

  // CELF: max-heap of (stale marginal gain, user, round-of-last-update).
  struct Entry {
    double gain;
    UserId user;
    uint32_t round;
    bool operator<(const Entry& other) const { return gain < other.gain; }
  };
  std::priority_queue<Entry> heap;
  for (UserId u = 0; u < graph.num_users(); ++u) {
    const double gain =
        EstimateSpread(graph, probs, {u}, options.mc_simulations, rng);
    heap.push({gain, u, 0});
  }

  SeedSelection selection;
  double current_spread = 0.0;
  uint32_t round = 0;
  while (selection.seeds.size() < options.num_seeds && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (top.round == round) {
      // Gain is fresh for the current seed set: commit (submodularity
      // guarantees no stale entry can beat it).
      selection.seeds.push_back(top.user);
      current_spread += top.gain;
      selection.objective.push_back(current_spread);
      ++round;
    } else {
      // Recompute the marginal gain against the current seed set.
      std::vector<UserId> with = selection.seeds;
      with.push_back(top.user);
      const double spread =
          EstimateSpread(graph, probs, with, options.mc_simulations, rng);
      top.gain = std::max(0.0, spread - current_spread);
      top.round = round;
      heap.push(top);
    }
  }
  return selection;
}

Result<SeedSelection> SelectSeedsEmbedding(const EmbeddingStore& store,
                                           const InfluenceMaxOptions& options) {
  const uint32_t n = store.num_users();
  if (options.num_seeds == 0 || options.num_seeds > n) {
    return Status::InvalidArgument("invalid seed count");
  }

  SeedSelection selection;
  std::vector<double> covered(n, -1e30);
  std::vector<bool> chosen(n, false);
  double objective = 0.0;

  for (uint32_t k = 0; k < options.num_seeds; ++k) {
    UserId best = 0;
    double best_gain = -1e30;
    for (UserId u = 0; u < n; ++u) {
      if (chosen[u]) continue;
      double gain = 0.0;
      for (UserId v = 0; v < n; ++v) {
        if (v == u) continue;
        const double x = store.Score(u, v);
        if (x > covered[v]) {
          gain += covered[v] <= -1e29 ? x : x - covered[v];
        }
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = u;
      }
    }
    chosen[best] = true;
    selection.seeds.push_back(best);
    objective += best_gain;
    selection.objective.push_back(objective);
    for (UserId v = 0; v < n; ++v) {
      if (v != best) covered[v] = std::max(covered[v], store.Score(best, v));
    }
  }
  return selection;
}

}  // namespace inf2vec
