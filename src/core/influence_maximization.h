#ifndef INF2VEC_CORE_INFLUENCE_MAXIMIZATION_H_
#define INF2VEC_CORE_INFLUENCE_MAXIMIZATION_H_

#include <cstdint>
#include <vector>

#include "diffusion/ic_model.h"
#include "embedding/embedding_store.h"
#include "graph/social_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {

/// Influence maximization (Kempe-Kleinberg-Tardos): pick k seeds
/// maximizing expected cascade size. The paper cites this as the canonical
/// application of learned influence parameters [1]; this module provides
/// both the classical Monte-Carlo greedy (with CELF lazy evaluation) over
/// explicit edge probabilities, and a fast embedding-space greedy proxy
/// over a trained Inf2vec model — the workflow behind the viral_marketing
/// example.
struct InfluenceMaxOptions {
  uint32_t num_seeds = 5;
  /// Monte-Carlo cascades per marginal-gain estimate (CELF greedy only).
  uint32_t mc_simulations = 200;
  uint64_t seed = 17;
};

/// Result of a seed-selection run.
struct SeedSelection {
  std::vector<UserId> seeds;  // In selection order.
  /// Estimated expected spread after each selection (CELF) or the proxy
  /// objective value (embedding greedy). Parallel to `seeds`.
  std::vector<double> objective;
};

/// Classical greedy with CELF lazy re-evaluation over IC Monte-Carlo
/// spread. Exact submodular guarantees (1 - 1/e within sampling noise) but
/// expensive: O(k * n * simulations * cascade cost) worst case, heavily
/// pruned in practice by CELF.
Result<SeedSelection> SelectSeedsCelf(const SocialGraph& graph,
                                      const EdgeProbabilities& probs,
                                      const InfluenceMaxOptions& options);

/// Embedding-space greedy: repeatedly add the user whose influence scores
/// x(u, v) add the most coverage over max-covered targets. A fast proxy
/// with the same max-coverage structure; no simulation, no edge
/// probabilities required.
Result<SeedSelection> SelectSeedsEmbedding(const EmbeddingStore& store,
                                           const InfluenceMaxOptions& options);

/// Expected cascade size of a fixed seed set under IC Monte-Carlo.
double EstimateSpread(const SocialGraph& graph,
                      const EdgeProbabilities& probs,
                      const std::vector<UserId>& seeds,
                      uint32_t mc_simulations, Rng& rng);

}  // namespace inf2vec

#endif  // INF2VEC_CORE_INFLUENCE_MAXIMIZATION_H_
