#ifndef INF2VEC_CORE_INF2VEC_MODEL_H_
#define INF2VEC_CORE_INF2VEC_MODEL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "action/action_log.h"
#include "core/aggregation.h"
#include "core/embedding_predictor.h"
#include "diffusion/context_generator.h"
#include "embedding/embedding_store.h"
#include "embedding/negative_sampler.h"
#include "embedding/sgd_trainer.h"
#include "graph/social_graph.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace inf2vec {

/// Per-epoch training progress, delivered to Inf2vecConfig::epoch_callback
/// right after each SGD epoch finishes. `objective` is the mean pair
/// objective (Eq. 4 contribution averaged over pairs) for that epoch.
struct EpochStats {
  uint32_t epoch = 0;        // 0-based.
  uint32_t total_epochs = 0;
  double objective = 0.0;
  double learning_rate = 0.0;
  uint64_t pairs = 0;        // Pairs trained this epoch.
  double seconds = 0.0;      // Wall time of this epoch.
  double pairs_per_second = 0.0;
};

/// A read-only snapshot of everything the SGD phase needs to continue a
/// run later, handed to Inf2vecConfig::checkpoint_callback after each
/// epoch. Pointers reference training-owned storage and are only valid
/// for the duration of the callback — serialize, don't retain.
///
/// `pairs` is the flattened pair vector IN ITS CURRENT SHUFFLED ORDER and
/// `master_rng` is the stream state after the epoch finished, so a resumed
/// run re-enters the next epoch's shuffle exactly where an uninterrupted
/// run would: with num_threads == 1 the resumed embeddings are
/// bit-identical to never having stopped.
struct TrainCheckpointView {
  uint32_t epochs_completed = 0;  // Epochs fully finished so far.
  uint32_t total_epochs = 0;      // config.epochs of the running config.
  uint32_t num_users = 0;
  const EmbeddingStore* store = nullptr;
  const std::vector<std::pair<UserId, UserId>>* pairs = nullptr;
  const std::vector<uint64_t>* target_frequencies = nullptr;
  RngState master_rng;
  /// One state per Hogwild shard (empty on the serial path).
  std::vector<RngState> shard_rngs;
};

/// All knobs of Algorithm 2, defaulting to the paper's Section V-A-2
/// settings: K = 50, L = 50, alpha = 0.1, gamma = 0.005, |N| = 5,
/// Ave aggregation. Setting context.alpha = 1.0 gives the paper's
/// Inf2vec-L ablation (local context only).
struct Inf2vecConfig {
  uint32_t dim = 50;
  ContextOptions context;
  SgdOptions sgd;
  /// The paper "randomly generates" negatives — uniform sampling. The
  /// word2vec-style unigram^0.75 alternative is available for ablation but
  /// measurably *hurts* here: it cancels the activity-frequency signal the
  /// conformity bias is supposed to learn (see bench_aggregation).
  NegativeSamplerKind negative_kind = NegativeSamplerKind::kUniform;
  /// Training epochs over the generated tuples; the paper observes
  /// convergence after 10-20 iterations.
  uint32_t epochs = 10;
  /// Shuffle the flattened (u, v) training pairs each epoch. Algorithm 2
  /// literally replays episodes in order; shuffling is standard SGD
  /// practice and the default. Disable to match the paper verbatim.
  bool shuffle_pairs = true;
  Aggregation aggregation = Aggregation::kAve;
  uint64_t seed = 42;
  /// Worker threads for corpus generation and SGD. 1 (the default) is the
  /// fully serial reference path and is bit-for-bit reproducible against
  /// pre-parallel builds for a fixed seed. 0 means "use all hardware
  /// threads". With > 1 threads, corpus generation shards episodes across
  /// the pool (deterministic for a fixed thread count) and SGD epochs run
  /// Hogwild: lock-free workers over a static partition of the shuffled
  /// pairs, so trained parameters vary run-to-run at the floating-point
  /// noise level while the objective matches the serial run to ~1%.
  uint32_t num_threads = 1;
  /// Invoked on the training thread after every SGD epoch (progress lines,
  /// run reports). Setting it turns on per-pair objective accumulation,
  /// which costs one extra fused objective evaluation per update — leave
  /// unset for maximum-throughput runs.
  std::function<void(const EpochStats&)> epoch_callback;
  /// Invoked on the training thread after every SGD epoch with a snapshot
  /// view of the resumable state (see TrainCheckpointView). The callback
  /// decides cadence (e.g. CheckpointWriter::MaybeWrite checkpoints every
  /// N epochs and is a no-op otherwise). Returning a non-OK status aborts
  /// training and propagates that status to the Train*/Resume* caller.
  std::function<Status(const TrainCheckpointView&)> checkpoint_callback;

  /// The Inf2vec-L ablation (Table IV): local influence context only.
  static Inf2vecConfig LocalOnly() {
    Inf2vecConfig config;
    config.context.alpha = 1.0;
    return config;
  }
};

/// The trained corpus of Algorithm 2's first phase: the flattened
/// (source, context-member) pairs from every (u, C_u^i) tuple. Exposed so
/// benches can time context generation and per-iteration training
/// separately (Fig. 9).
struct InfluenceCorpus {
  std::vector<std::pair<UserId, UserId>> pairs;
  /// Times each user appears as a context member, for the unigram sampler.
  std::vector<uint64_t> target_frequencies;
  /// Number of (u, C_u^i) tuples the pairs came from (the paper's |P|).
  uint64_t num_tuples = 0;
};

/// How BuildInfluenceCorpus executes: one options struct replaces the old
/// serial (Rng&) / parallel (seed, ThreadPool&) overload pair.
struct CorpusBuildOptions {
  /// Base RNG seed. Serial builds draw from Rng(seed) exactly as the old
  /// Rng& overload did with a fresh Rng; pooled builds derive per-shard
  /// streams with ThreadPool::ShardSeed(seed, shard).
  uint64_t seed = 42;
  /// Null (the default) runs the bit-identical serial reference path.
  /// Non-null shards episodes across the pool, each shard with its own
  /// RNG stream into a private corpus fragment, and concatenates the
  /// fragments in shard order — i.e. episode order — afterward.
  /// Deterministic for a fixed (seed, thread count); different thread
  /// counts yield different (equally valid) corpora because the RNG
  /// sharding changes.
  ThreadPool* pool = nullptr;
};

/// Builds the influence corpus: per episode, extract the propagation
/// network and run Algorithm 1 for every participant. See
/// CorpusBuildOptions for the serial/parallel execution contract.
InfluenceCorpus BuildInfluenceCorpus(const SocialGraph& graph,
                                     const ActionLog& log,
                                     const ContextOptions& options,
                                     uint32_t num_users,
                                     const CorpusBuildOptions& build);

/// Everything needed to continue a partially trained run, typically
/// deserialized from a checkpoint (ckpt::ToResumeState). `corpus.pairs`
/// must be in the exact order the checkpoint captured them.
struct TrainResumeState {
  uint32_t epochs_completed = 0;
  EmbeddingStore store;
  InfluenceCorpus corpus;
  RngState master_rng;
  /// Must have exactly ResolveThreadCount(config.num_threads) entries when
  /// resuming a Hogwild run; must be empty for the serial path.
  std::vector<RngState> shard_rngs;
};

/// The Inf2vec model (Algorithm 2). Train() runs both phases and returns a
/// model holding the learned EmbeddingStore; Predictor() adapts it to the
/// common InfluenceModel interface.
class Inf2vecModel {
 public:
  /// Trains on `graph` + `log` with `config`. Fails on empty input.
  static Result<Inf2vecModel> Train(const SocialGraph& graph,
                                    const ActionLog& log,
                                    const Inf2vecConfig& config);

  /// Phase-2 only: SGD epochs over a pre-built corpus (used by benches to
  /// time one iteration). `epoch_objective`, if non-null, receives the mean
  /// pair objective per epoch.
  static Result<Inf2vecModel> TrainFromCorpus(
      const InfluenceCorpus& corpus, uint32_t num_users,
      const Inf2vecConfig& config, std::vector<double>* epoch_objective);

  /// Continues training from a checkpointed state: runs epochs
  /// [state.epochs_completed, config.epochs) over the restored pairs and
  /// RNG streams. With num_threads == 1 the result is bit-identical to an
  /// uninterrupted TrainFromCorpus run of the same config. `config` must
  /// match the checkpointed run's training-relevant fields (the ckpt layer
  /// enforces this via config hashing) — except `epochs`, which may be
  /// raised to extend a finished run (warm restart). If
  /// state.epochs_completed >= config.epochs the model is returned as-is.
  static Result<Inf2vecModel> ResumeFromState(
      TrainResumeState state, const Inf2vecConfig& config,
      std::vector<double>* epoch_objective = nullptr);

  const EmbeddingStore& embeddings() const { return *store_; }
  const Inf2vecConfig& config() const { return config_; }

  /// Influence score x(u, v); convenience passthrough.
  double Score(UserId u, UserId v) const { return store_->Score(u, v); }

  /// InfluenceModel view bound to this model's embeddings. The model must
  /// outlive the returned predictor.
  EmbeddingPredictor Predictor(const std::string& name = "Inf2vec") const {
    return EmbeddingPredictor(name, store_.get(), config_.aggregation);
  }

 private:
  Inf2vecModel(Inf2vecConfig config, std::unique_ptr<EmbeddingStore> store)
      : config_(config), store_(std::move(store)) {}

  Inf2vecConfig config_;
  std::unique_ptr<EmbeddingStore> store_;
};

}  // namespace inf2vec

#endif  // INF2VEC_CORE_INF2VEC_MODEL_H_
