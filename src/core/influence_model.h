#ifndef INF2VEC_CORE_INFLUENCE_MODEL_H_
#define INF2VEC_CORE_INFLUENCE_MODEL_H_

#include <string>
#include <vector>

#include "graph/social_graph.h"
#include "util/rng.h"

namespace inf2vec {

/// Common scoring interface implemented by every evaluated method (Inf2vec
/// and all six baselines). The two evaluation tasks of Section V consume
/// only this interface, so IC-based and representation-based methods are
/// compared on equal footing (the paper's "fair and reasonable" ranking
/// argument).
class InfluenceModel {
 public:
  virtual ~InfluenceModel() = default;

  /// Short display name ("Inf2vec", "ST", ...), used in result tables.
  virtual std::string name() const = 0;

  /// Activation-prediction score: likelihood that candidate `v` is
  /// activated by `active_influencers` (v's already-active in-neighbors, in
  /// chronological activation order — the order matters only for the
  /// Latest aggregator). IC-based methods use Eq. 8; representation
  /// methods use Eq. 7.
  virtual double ScoreActivation(
      UserId v, const std::vector<UserId>& active_influencers) const = 0;

  /// Diffusion-prediction scores for every user given initially activated
  /// `seeds` (chronological). IC-based methods run Monte-Carlo simulation;
  /// representation methods aggregate x(u, v) over the seeds directly.
  /// `rng` feeds the Monte-Carlo methods; deterministic scorers ignore it.
  virtual std::vector<double> ScoreDiffusion(const std::vector<UserId>& seeds,
                                             Rng& rng) const = 0;
};

}  // namespace inf2vec

#endif  // INF2VEC_CORE_INFLUENCE_MODEL_H_
