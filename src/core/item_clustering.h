#ifndef INF2VEC_CORE_ITEM_CLUSTERING_H_
#define INF2VEC_CORE_ITEM_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "action/action_log.h"
#include "util/rng.h"
#include "util/status.h"

namespace inf2vec {

/// Options for audience-based item clustering (spherical k-means over the
/// L2-normalized adopter-indicator vectors of each episode). This is the
/// unsupervised "topic" signal behind the topic-aware Inf2vec extension:
/// items adopted by the same crowd get the same cluster.
struct ItemClusteringOptions {
  uint32_t num_clusters = 8;
  uint32_t iterations = 12;
  uint64_t seed = 5;
};

/// Learned clustering: per-episode assignments plus the centroids needed
/// to place unseen episodes (prediction-time assignment from the already
/// activated users).
class ItemClustering {
 public:
  /// Clusters `log`'s episodes. Fails on an empty log or zero clusters.
  /// `num_users` bounds the indicator dimension.
  static Result<ItemClustering> Fit(const ActionLog& log, uint32_t num_users,
                                    const ItemClusteringOptions& options);

  uint32_t num_clusters() const { return num_clusters_; }

  /// Cluster of training episode `index` (position in log.episodes()).
  uint32_t ClusterOfEpisode(size_t index) const {
    return assignments_[index];
  }
  const std::vector<uint32_t>& assignments() const { return assignments_; }

  /// Nearest centroid (cosine) for an arbitrary adopter set; used to place
  /// *test* episodes from their observed active users. Empty sets map to
  /// cluster 0.
  uint32_t AssignAdopters(const std::vector<UserId>& adopters) const;

  /// Episodes per cluster, for capacity decisions downstream.
  std::vector<uint32_t> ClusterSizes() const;

 private:
  ItemClustering(uint32_t num_users, uint32_t num_clusters)
      : num_users_(num_users), num_clusters_(num_clusters) {}

  double CentroidDot(uint32_t cluster,
                     const std::vector<UserId>& adopters) const;

  uint32_t num_users_;
  uint32_t num_clusters_;
  std::vector<uint32_t> assignments_;
  /// Row-major num_clusters x num_users, rows L2-normalized.
  std::vector<double> centroids_;
};

}  // namespace inf2vec

#endif  // INF2VEC_CORE_ITEM_CLUSTERING_H_
