#ifndef INF2VEC_CORE_EMBEDDING_PREDICTOR_H_
#define INF2VEC_CORE_EMBEDDING_PREDICTOR_H_

#include <string>
#include <vector>

#include "core/aggregation.h"
#include "core/influence_model.h"
#include "embedding/embedding_store.h"

namespace inf2vec {

/// InfluenceModel adapter over a trained EmbeddingStore: Section IV-C's
/// prediction rule. Shared by Inf2vec, Inf2vec-L, MF, and Node2vec — they
/// differ only in how the store was trained.
///
/// Does not own the store; the store must outlive the predictor.
class EmbeddingPredictor : public InfluenceModel {
 public:
  EmbeddingPredictor(std::string name, const EmbeddingStore* store,
                     Aggregation aggregation);

  std::string name() const override { return name_; }

  /// Eq. 7: F({x(u, v) : u in S_v}).
  double ScoreActivation(
      UserId v, const std::vector<UserId>& active_influencers) const override;

  /// Direct Eq. 7 per candidate over the seed set (no simulation).
  std::vector<double> ScoreDiffusion(const std::vector<UserId>& seeds,
                                     Rng& rng) const override;

  Aggregation aggregation() const { return aggregation_; }
  void set_aggregation(Aggregation aggregation) { aggregation_ = aggregation; }
  const EmbeddingStore& store() const { return *store_; }

 private:
  std::string name_;
  const EmbeddingStore* store_;
  Aggregation aggregation_;
};

}  // namespace inf2vec

#endif  // INF2VEC_CORE_EMBEDDING_PREDICTOR_H_
