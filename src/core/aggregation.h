#ifndef INF2VEC_CORE_AGGREGATION_H_
#define INF2VEC_CORE_AGGREGATION_H_

#include <span>
#include <string>

#include "util/status.h"

namespace inf2vec {

/// The four aggregation functions F() of Eq. 7, merging per-influencer
/// scores x(u, v) into one activation likelihood.
enum class Aggregation {
  kAve,     ///< Mean of all elements (paper default).
  kSum,     ///< Sum of all elements.
  kMax,     ///< Maximum element.
  kLatest,  ///< Last element (most recent influencer).
};

/// Applies the aggregator. `scores` must be in chronological influencer
/// order (kLatest takes the final element) and non-empty.
double Aggregate(Aggregation kind, std::span<const double> scores);

/// "Ave" / "Sum" / "Max" / "Latest" (table labels).
std::string AggregationName(Aggregation kind);

/// Parses a name produced by AggregationName (case-sensitive).
Result<Aggregation> ParseAggregation(const std::string& name);

}  // namespace inf2vec

#endif  // INF2VEC_CORE_AGGREGATION_H_
