// Checkpoint subsystem bench: serialize / deserialize / durable write /
// read of a realistically shaped training checkpoint (embeddings dominate;
// the pair list is the next-biggest section). Reports wall time and
// throughput per arm through BENCH_checkpoint.json so the bench gate can
// catch regressions in the CRC path or the atomic-commit flow.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "ckpt/checkpoint.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace inf2vec;         // NOLINT
using namespace inf2vec::bench;  // NOLINT

constexpr uint32_t kNumUsers = 20000;
constexpr uint32_t kDim = 32;
constexpr uint64_t kNumPairs = 400000;
constexpr uint32_t kSerializeReps = 8;
constexpr uint32_t kFileReps = 6;

ckpt::CheckpointState MakeState() {
  ckpt::CheckpointState state;
  state.config_hash = 0x1234abcd5678ef00ULL;
  state.epochs_completed = 7;
  state.total_epochs = 10;
  Rng rng(99);
  state.store = EmbeddingStore(kNumUsers, kDim);
  state.store.InitUniform(-0.5, 0.5, rng);
  state.pairs.reserve(kNumPairs);
  state.target_frequencies.assign(kNumUsers, 0);
  for (uint64_t i = 0; i < kNumPairs; ++i) {
    const auto u = static_cast<UserId>(rng.UniformU64(kNumUsers));
    const auto v = static_cast<UserId>(rng.UniformU64(kNumUsers));
    state.pairs.emplace_back(u, v);
    state.target_frequencies[v]++;
  }
  state.master_rng = rng.state();
  state.shard_rngs = {Rng(1).state(), Rng(2).state(), Rng(3).state(),
                      Rng(4).state()};
  return state;
}

}  // namespace

int main() {
  const ckpt::CheckpointState state = MakeState();

  std::string bytes;
  const WallTimer serialize_wall;
  for (uint32_t i = 0; i < kSerializeReps; ++i) {
    bytes = ckpt::SerializeCheckpoint(state);
  }
  const double serialize_ms = serialize_wall.ElapsedMillis();

  const WallTimer deserialize_wall;
  for (uint32_t i = 0; i < kSerializeReps; ++i) {
    auto got = ckpt::DeserializeCheckpoint(bytes);
    INF2VEC_CHECK(got.ok()) << got.status().ToString();
  }
  const double deserialize_ms = deserialize_wall.ElapsedMillis();

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "inf2vec_bench_ckpt";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "ckpt.bin").string();

  const WallTimer write_wall;
  for (uint32_t i = 0; i < kFileReps; ++i) {
    const Status written = ckpt::WriteCheckpointFile(path, state);
    INF2VEC_CHECK(written.ok()) << written.ToString();
  }
  const double write_ms = write_wall.ElapsedMillis();

  const WallTimer read_wall;
  for (uint32_t i = 0; i < kFileReps; ++i) {
    auto got = ckpt::ReadCheckpointFile(path);
    INF2VEC_CHECK(got.ok()) << got.status().ToString();
  }
  const double read_ms = read_wall.ElapsedMillis();
  std::filesystem::remove_all(dir);

  const double mb = static_cast<double>(bytes.size()) / (1024.0 * 1024.0);
  const auto mb_per_sec = [mb](double total_ms, uint32_t reps) {
    return mb * reps / (total_ms / 1000.0);
  };

  std::printf("checkpoint bench: %u users, dim %u, %llu pairs, %.1f MB\n\n",
              kNumUsers, kDim, static_cast<unsigned long long>(kNumPairs),
              mb);
  std::printf("%-12s %10s %12s\n", "arm", "wall ms", "MB/s");
  std::printf("%-12s %10.1f %12.0f\n", "serialize", serialize_ms,
              mb_per_sec(serialize_ms, kSerializeReps));
  std::printf("%-12s %10.1f %12.0f\n", "deserialize", deserialize_ms,
              mb_per_sec(deserialize_ms, kSerializeReps));
  std::printf("%-12s %10.1f %12.0f\n", "write", write_ms,
              mb_per_sec(write_ms, kFileReps));
  std::printf("%-12s %10.1f %12.0f\n", "read", read_ms,
              mb_per_sec(read_ms, kFileReps));

  BenchReport report("checkpoint");
  report.SetConfig("num_users", static_cast<int64_t>(kNumUsers));
  report.SetConfig("dim", static_cast<int64_t>(kDim));
  report.SetConfig("num_pairs", static_cast<int64_t>(kNumPairs));
  report.SetConfig("checkpoint_bytes", static_cast<int64_t>(bytes.size()));
  report.SetSummary("serialize_mb_per_sec",
                    mb_per_sec(serialize_ms, kSerializeReps));
  report.SetSummary("write_mb_per_sec", mb_per_sec(write_ms, kFileReps));
  report.AddResult("serialize", serialize_ms,
                   mb_per_sec(serialize_ms, kSerializeReps), kSerializeReps);
  report.AddResult("deserialize", deserialize_ms,
                   mb_per_sec(deserialize_ms, kSerializeReps),
                   kSerializeReps);
  report.AddResult("write", write_ms, mb_per_sec(write_ms, kFileReps),
                   kFileReps);
  report.AddResult("read", read_ms, mb_per_sec(read_ms, kFileReps),
                   kFileReps);
  report.Write();
  return 0;
}
